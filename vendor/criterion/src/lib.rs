//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, implementing the subset `benches/kernels.rs` uses.
//! The build environment has no registry access, so the real crate cannot
//! be fetched. Measurements are honest wall-clock medians but there is no
//! statistical analysis, HTML report, or outlier detection.

use std::time::{Duration, Instant};

/// Target measurement time per benchmark (kept small; this is a smoke
/// harness, not a statistics engine).
const TARGET: Duration = Duration::from_millis(300);

/// Benchmark driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        run_one(name, 20, f);
        self
    }
}

/// A named group of benchmarks (subset of criterion's `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measures `f` and prints a median time per iteration.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Ends the group (no-op; parity with real criterion).
    pub fn finish(self) {}
}

fn run_one(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    // Calibrate: one sample to estimate per-iteration cost.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budget = TARGET.checked_div(sample_size as u32).unwrap_or(TARGET);
    let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    println!("bench {label:<40} {median:>12.0} ns/iter ({sample_size} samples x {iters} iters)");
}

/// Timing context passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Re-export for code written against criterion's own `black_box`.
pub use std::hint::black_box;

/// Declares a group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` for a benchmark binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
