//! # minipool — a minimal work-stealing thread pool for indexed fan-out
//!
//! The build environment has no registry access, so `rayon` and friends
//! are unavailable; this crate implements exactly the primitive the
//! search drivers need: run `job(i)` for every `i` in `0..n` across a
//! fixed set of worker threads, with dynamic load balancing.
//!
//! ## Scheduling model
//!
//! The index space `0..n` is split into one contiguous chunk per worker.
//! Each worker pops indices from the *front* of its own chunk; when its
//! chunk drains, it scans the other workers, picks the one with the most
//! remaining work, and steals the *back half* of that chunk. Front-pop /
//! back-steal keeps owners working on low indices (which matters for the
//! deterministic lowest-index-wins protocols built on top) while thieves
//! take the work farthest from the owner's cursor.
//!
//! Chunks are guarded by plain mutexes rather than lock-free deques: the
//! jobs scheduled here are entire program executions (milliseconds), so
//! the nanoseconds a Chase–Lev deque would save are irrelevant, and the
//! mutex version is trivially correct.
//!
//! ## Determinism contract
//!
//! The pool guarantees that every index runs exactly once and that
//! [`Pool::for_each_index`] returns only after all jobs finish. It makes
//! *no* ordering guarantee — callers that need deterministic results must
//! encode a winner-selection rule in shared state (see `mcr-search`'s
//! lowest-worklist-index rule and `mcr-core`'s lowest-seed rule), not
//! rely on execution order.
//!
//! ```
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let hits = AtomicU64::new(0);
//! minipool::Pool::new(4).for_each_index(100, |_i| {
//!     hits.fetch_add(1, Ordering::Relaxed);
//! });
//! assert_eq!(hits.load(Ordering::Relaxed), 100);
//! ```

#![warn(missing_docs)]

use std::sync::{Arc, Mutex};

/// A shared budget of worker threads, so many concurrent fan-outs — a
/// fleet of schedule searches, say — draw from *one* executor-wide cap
/// instead of each spawning its own full-width pool.
///
/// A [`Pool`] carrying a limit (see [`Pool::with_limit`]) acquires worker
/// permits non-blockingly at the start of each [`Pool::for_each_index`]
/// and releases them at the end; the calling thread always participates
/// without a permit, so a fan-out that finds the budget spent simply runs
/// serially on its caller — no call ever blocks waiting for capacity and
/// nested fan-outs cannot deadlock.
#[derive(Debug, Clone)]
pub struct Limit {
    inner: Arc<LimitInner>,
}

#[derive(Debug)]
struct LimitInner {
    available: Mutex<usize>,
    cap: usize,
}

impl Limit {
    /// A budget of `workers` spawnable worker threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Limit {
        let cap = workers.max(1);
        Limit {
            inner: Arc::new(LimitInner {
                available: Mutex::new(cap),
                cap,
            }),
        }
    }

    /// The total budget.
    pub fn capacity(&self) -> usize {
        self.inner.cap
    }

    /// Permits currently unclaimed.
    pub fn available(&self) -> usize {
        *self
            .inner
            .available
            .lock()
            .expect("minipool limit poisoned")
    }

    /// Permits currently claimed by in-flight fan-outs
    /// ([`Limit::capacity`] − [`Limit::available`]). Admission control
    /// built on top of a shared executor reads this to decide whether
    /// the budget is saturated before accepting more work.
    pub fn in_use(&self) -> usize {
        self.inner.cap - self.available()
    }

    /// Whether every permit is claimed — the instantaneous "executor is
    /// saturated" signal an admission policy keys off.
    pub fn is_saturated(&self) -> bool {
        self.available() == 0
    }

    /// Claims up to `want` permits without blocking; returns how many
    /// were actually claimed.
    fn try_acquire(&self, want: usize) -> usize {
        let mut avail = self
            .inner
            .available
            .lock()
            .expect("minipool limit poisoned");
        let take = want.min(*avail);
        *avail -= take;
        take
    }

    fn release(&self, n: usize) {
        // Runs from a drop guard, possibly mid-unwind: recover from a
        // poisoned mutex instead of double-panicking.
        let mut avail = self
            .inner
            .available
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *avail += n;
        debug_assert!(*avail <= self.inner.cap);
    }
}

/// Returns claimed permits to their [`Limit`] on drop, so a panicking
/// job inside a fan-out cannot leak executor budget (a long-running
/// service catching the panic would otherwise degrade toward serial
/// forever).
struct Permits<'a> {
    limit: Option<&'a Limit>,
    n: usize,
}

impl Drop for Permits<'_> {
    fn drop(&mut self) {
        if let Some(limit) = self.limit {
            limit.release(self.n);
        }
    }
}

/// A half-open range `[lo, hi)` of still-unclaimed indices owned by one
/// worker.
#[derive(Debug, Clone, Copy)]
struct Chunk {
    lo: usize,
    hi: usize,
}

impl Chunk {
    fn remaining(&self) -> usize {
        self.hi - self.lo
    }
}

/// A fixed-size work-stealing thread pool.
///
/// The pool owns no threads between calls: [`Pool::for_each_index`]
/// spawns scoped workers for the duration of one fan-out and joins them
/// before returning, so borrowed data (programs, candidate tables,
/// template VMs) can flow into jobs without `'static` bounds.
///
/// A pool is a cheap, clonable *handle*: clones share the same
/// configuration (and, with [`Pool::with_limit`], the same worker
/// budget), so one handle can be injected into many subsystems — every
/// schedule search of a batch fleet, for example — and they all draw
/// from a single executor-wide thread cap.
#[derive(Debug, Clone)]
pub struct Pool {
    threads: usize,
    limit: Option<Limit>,
}

impl Pool {
    /// Creates a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
            limit: None,
        }
    }

    /// A pool sized to the machine: one worker per available core.
    pub fn with_available_parallelism() -> Pool {
        Pool::new(available_parallelism())
    }

    /// A pool whose spawned workers are debited from `limit`, shared
    /// with every other pool (and pool clone) holding the same limit.
    /// Each fan-out claims permits non-blockingly and runs with whatever
    /// it got — the caller thread always participates for free, so the
    /// degenerate claim of zero permits is a plain serial loop.
    pub fn with_limit(threads: usize, limit: Limit) -> Pool {
        Pool {
            threads: threads.max(1),
            limit: Some(limit),
        }
    }

    /// The shared worker budget, when this pool carries one.
    pub fn limit(&self) -> Option<&Limit> {
        self.limit.as_ref()
    }

    /// Number of worker threads this pool uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job(i)` exactly once for every `i` in `0..n`, across the
    /// pool's workers, and returns when all jobs have finished.
    ///
    /// With one worker (or one job) everything runs on the calling
    /// thread — no threads are spawned, so `parallelism = 1` configs
    /// behave byte-for-byte like a plain serial loop.
    ///
    /// A panicking job poisons nothing: the panic propagates out of the
    /// scope and aborts the fan-out, like a panic in a serial loop would.
    pub fn for_each_index<F>(&self, n: usize, job: F)
    where
        F: Fn(usize) + Sync,
    {
        if n == 0 {
            return;
        }
        let desired = self.threads.min(n);
        // Under a shared limit only the *spawned* workers need permits;
        // the caller thread participates unconditionally, so the claim
        // never blocks and a spent budget degrades to a serial loop.
        // The guard returns the permits even when a job panics.
        let spawned = match (&self.limit, desired) {
            (_, 1) => 0,
            (Some(limit), d) => limit.try_acquire(d - 1),
            (None, d) => d - 1,
        };
        let _permits = Permits {
            limit: self.limit.as_ref(),
            n: spawned,
        };
        let workers = spawned + 1;
        if workers == 1 {
            for i in 0..n {
                job(i);
            }
            return;
        }

        // Initial split: evenly sized contiguous chunks, remainder spread
        // over the first workers.
        let base = n / workers;
        let extra = n % workers;
        let mut chunks = Vec::with_capacity(workers);
        let mut next = 0usize;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            chunks.push(Mutex::new(Chunk {
                lo: next,
                hi: next + len,
            }));
            next += len;
        }
        debug_assert_eq!(next, n);
        let chunks = &chunks;
        let job = &job;

        std::thread::scope(|s| {
            for w in 1..workers {
                s.spawn(move || worker_loop(w, chunks, job));
            }
            // The caller owns chunk 0 (the low indices, which matter for
            // the lowest-index-wins protocols built on top).
            worker_loop(0, chunks, job);
        });
    }
}

/// One worker: drain own chunk from the front, then steal the back half
/// of the richest victim until no chunk holds work.
fn worker_loop<F: Fn(usize) + Sync>(me: usize, chunks: &[Mutex<Chunk>], job: &F) {
    loop {
        // Pop the front of our own chunk.
        let claimed = {
            let mut c = chunks[me].lock().expect("minipool chunk poisoned");
            if c.lo < c.hi {
                let i = c.lo;
                c.lo += 1;
                Some(i)
            } else {
                None
            }
        };
        if let Some(i) = claimed {
            job(i);
            continue;
        }

        // Own chunk empty: find the victim with the most remaining work.
        let victim = chunks
            .iter()
            .enumerate()
            .filter(|&(v, _)| v != me)
            .map(|(v, c)| (v, c.lock().expect("minipool chunk poisoned").remaining()))
            .max_by_key(|&(_, rem)| rem);
        match victim {
            Some((v, rem)) if rem > 0 => {
                // Steal the back half (re-check under the lock: the owner
                // may have drained it since the scan).
                let mut vc = chunks[v].lock().expect("minipool chunk poisoned");
                let rem = vc.remaining();
                if rem == 0 {
                    continue;
                }
                let take = rem.div_ceil(2);
                let stolen = Chunk {
                    lo: vc.hi - take,
                    hi: vc.hi,
                };
                vc.hi = stolen.lo;
                drop(vc);
                let mut mine = chunks[me].lock().expect("minipool chunk poisoned");
                debug_assert_eq!(mine.remaining(), 0);
                *mine = stolen;
            }
            // Every chunk is empty; jobs never enqueue new indices, so
            // there is nothing left to claim.
            _ => return,
        }
    }
}

/// The machine's available parallelism, defaulting to 1 when the query
/// fails (the behavior of `std::thread::available_parallelism`'s Err arm
/// in restricted environments).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    #[test]
    fn every_index_runs_exactly_once() {
        for threads in [1, 2, 3, 8] {
            for n in [0usize, 1, 2, 7, 64, 1000] {
                let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                Pool::new(threads).for_each_index(n, |i| {
                    counts[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(
                    counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                    "threads={threads} n={n}"
                );
            }
        }
    }

    #[test]
    fn skewed_work_is_stolen() {
        // All the work sits in the low indices (first worker's chunk);
        // with stealing, other workers must end up running some of it.
        let n = 64;
        let ran_off_owner = AtomicBool::new(false);
        let owner = std::thread::current().id();
        Pool::new(4).for_each_index(n, |i| {
            if i < n / 4 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            if std::thread::current().id() != owner {
                ran_off_owner.store(true, Ordering::Relaxed);
            }
        });
        assert!(ran_off_owner.load(Ordering::Relaxed));
    }

    #[test]
    fn single_worker_runs_in_order_on_caller() {
        let seen = Mutex::new(Vec::new());
        let caller = std::thread::current().id();
        Pool::new(1).for_each_index(10, |i| {
            assert_eq!(std::thread::current().id(), caller);
            seen.lock().unwrap().push(i);
        });
        assert_eq!(*seen.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pool_reports_threads() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert_eq!(Pool::new(5).threads(), 5);
        assert!(Pool::with_available_parallelism().threads() >= 1);
        assert!(available_parallelism() >= 1);
    }

    #[test]
    fn limited_pool_runs_every_index_and_restores_budget() {
        let limit = Limit::new(3);
        assert_eq!(limit.capacity(), 3);
        let pool = Pool::with_limit(8, limit.clone());
        for n in [0usize, 1, 5, 100] {
            let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.for_each_index(n, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "n={n}"
            );
            assert_eq!(limit.available(), 3, "permits restored after n={n}");
        }
    }

    #[test]
    fn limit_reports_usage() {
        let limit = Limit::new(3);
        assert_eq!(limit.in_use(), 0);
        assert!(!limit.is_saturated());
        assert_eq!(limit.try_acquire(2), 2);
        assert_eq!(limit.in_use(), 2);
        assert!(!limit.is_saturated());
        assert_eq!(limit.try_acquire(5), 1, "only one permit left");
        assert_eq!(limit.in_use(), 3);
        assert!(limit.is_saturated());
        limit.release(3);
        assert_eq!(limit.in_use(), 0);
    }

    #[test]
    fn spent_limit_degrades_to_serial_on_caller() {
        let limit = Limit::new(2);
        assert_eq!(limit.try_acquire(2), 2); // drain the budget
        let pool = Pool::with_limit(4, limit.clone());
        let caller = std::thread::current().id();
        let seen = Mutex::new(Vec::new());
        pool.for_each_index(6, |i| {
            assert_eq!(std::thread::current().id(), caller);
            seen.lock().unwrap().push(i);
        });
        assert_eq!(*seen.lock().unwrap(), (0..6).collect::<Vec<_>>());
        limit.release(2);
        assert_eq!(limit.available(), 2);
    }

    #[test]
    fn panicking_job_returns_permits() {
        let limit = Limit::new(3);
        let pool = Pool::with_limit(3, limit.clone());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.for_each_index(8, |i| {
                if i == 0 {
                    panic!("job blew up");
                }
            });
        }));
        assert!(result.is_err(), "panic must propagate");
        assert_eq!(limit.available(), 3, "permits restored despite the panic");
        // The limit stays usable afterwards.
        let hits = AtomicUsize::new(0);
        pool.for_each_index(4, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_limited_fanouts_do_not_deadlock() {
        let limit = Limit::new(2);
        let pool = Pool::with_limit(2, limit.clone());
        let hits = AtomicUsize::new(0);
        let inner_pool = pool.clone();
        pool.for_each_index(4, |_| {
            inner_pool.for_each_index(4, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16);
        assert_eq!(limit.available(), 2);
    }
}
