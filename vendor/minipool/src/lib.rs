//! # minipool — a minimal work-stealing thread pool for indexed fan-out
//!
//! The build environment has no registry access, so `rayon` and friends
//! are unavailable; this crate implements exactly the primitive the
//! search drivers need: run `job(i)` for every `i` in `0..n` across a
//! fixed set of worker threads, with dynamic load balancing.
//!
//! ## Scheduling model
//!
//! The index space `0..n` is split into one contiguous chunk per worker.
//! Each worker pops indices from the *front* of its own chunk; when its
//! chunk drains, it scans the other workers, picks the one with the most
//! remaining work, and steals the *back half* of that chunk. Front-pop /
//! back-steal keeps owners working on low indices (which matters for the
//! deterministic lowest-index-wins protocols built on top) while thieves
//! take the work farthest from the owner's cursor.
//!
//! Chunks are guarded by plain mutexes rather than lock-free deques: the
//! jobs scheduled here are entire program executions (milliseconds), so
//! the nanoseconds a Chase–Lev deque would save are irrelevant, and the
//! mutex version is trivially correct.
//!
//! ## Determinism contract
//!
//! The pool guarantees that every index runs exactly once and that
//! [`Pool::for_each_index`] returns only after all jobs finish. It makes
//! *no* ordering guarantee — callers that need deterministic results must
//! encode a winner-selection rule in shared state (see `mcr-search`'s
//! lowest-worklist-index rule and `mcr-core`'s lowest-seed rule), not
//! rely on execution order.
//!
//! ```
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let hits = AtomicU64::new(0);
//! minipool::Pool::new(4).for_each_index(100, |_i| {
//!     hits.fetch_add(1, Ordering::Relaxed);
//! });
//! assert_eq!(hits.load(Ordering::Relaxed), 100);
//! ```

#![warn(missing_docs)]

use std::sync::Mutex;

/// A half-open range `[lo, hi)` of still-unclaimed indices owned by one
/// worker.
#[derive(Debug, Clone, Copy)]
struct Chunk {
    lo: usize,
    hi: usize,
}

impl Chunk {
    fn remaining(&self) -> usize {
        self.hi - self.lo
    }
}

/// A fixed-size work-stealing thread pool.
///
/// The pool owns no threads between calls: [`Pool::for_each_index`]
/// spawns scoped workers for the duration of one fan-out and joins them
/// before returning, so borrowed data (programs, candidate tables,
/// template VMs) can flow into jobs without `'static` bounds.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// Creates a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// A pool sized to the machine: one worker per available core.
    pub fn with_available_parallelism() -> Pool {
        Pool::new(available_parallelism())
    }

    /// Number of worker threads this pool uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job(i)` exactly once for every `i` in `0..n`, across the
    /// pool's workers, and returns when all jobs have finished.
    ///
    /// With one worker (or one job) everything runs on the calling
    /// thread — no threads are spawned, so `parallelism = 1` configs
    /// behave byte-for-byte like a plain serial loop.
    ///
    /// A panicking job poisons nothing: the panic propagates out of the
    /// scope and aborts the fan-out, like a panic in a serial loop would.
    pub fn for_each_index<F>(&self, n: usize, job: F)
    where
        F: Fn(usize) + Sync,
    {
        if n == 0 {
            return;
        }
        let workers = self.threads.min(n);
        if workers == 1 {
            for i in 0..n {
                job(i);
            }
            return;
        }

        // Initial split: evenly sized contiguous chunks, remainder spread
        // over the first workers.
        let base = n / workers;
        let extra = n % workers;
        let mut chunks = Vec::with_capacity(workers);
        let mut next = 0usize;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            chunks.push(Mutex::new(Chunk {
                lo: next,
                hi: next + len,
            }));
            next += len;
        }
        debug_assert_eq!(next, n);
        let chunks = &chunks;
        let job = &job;

        std::thread::scope(|s| {
            for w in 0..workers {
                s.spawn(move || worker_loop(w, chunks, job));
            }
        });
    }
}

/// One worker: drain own chunk from the front, then steal the back half
/// of the richest victim until no chunk holds work.
fn worker_loop<F: Fn(usize) + Sync>(me: usize, chunks: &[Mutex<Chunk>], job: &F) {
    loop {
        // Pop the front of our own chunk.
        let claimed = {
            let mut c = chunks[me].lock().expect("minipool chunk poisoned");
            if c.lo < c.hi {
                let i = c.lo;
                c.lo += 1;
                Some(i)
            } else {
                None
            }
        };
        if let Some(i) = claimed {
            job(i);
            continue;
        }

        // Own chunk empty: find the victim with the most remaining work.
        let victim = chunks
            .iter()
            .enumerate()
            .filter(|&(v, _)| v != me)
            .map(|(v, c)| (v, c.lock().expect("minipool chunk poisoned").remaining()))
            .max_by_key(|&(_, rem)| rem);
        match victim {
            Some((v, rem)) if rem > 0 => {
                // Steal the back half (re-check under the lock: the owner
                // may have drained it since the scan).
                let mut vc = chunks[v].lock().expect("minipool chunk poisoned");
                let rem = vc.remaining();
                if rem == 0 {
                    continue;
                }
                let take = rem.div_ceil(2);
                let stolen = Chunk {
                    lo: vc.hi - take,
                    hi: vc.hi,
                };
                vc.hi = stolen.lo;
                drop(vc);
                let mut mine = chunks[me].lock().expect("minipool chunk poisoned");
                debug_assert_eq!(mine.remaining(), 0);
                *mine = stolen;
            }
            // Every chunk is empty; jobs never enqueue new indices, so
            // there is nothing left to claim.
            _ => return,
        }
    }
}

/// The machine's available parallelism, defaulting to 1 when the query
/// fails (the behavior of `std::thread::available_parallelism`'s Err arm
/// in restricted environments).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    #[test]
    fn every_index_runs_exactly_once() {
        for threads in [1, 2, 3, 8] {
            for n in [0usize, 1, 2, 7, 64, 1000] {
                let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                Pool::new(threads).for_each_index(n, |i| {
                    counts[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(
                    counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                    "threads={threads} n={n}"
                );
            }
        }
    }

    #[test]
    fn skewed_work_is_stolen() {
        // All the work sits in the low indices (first worker's chunk);
        // with stealing, other workers must end up running some of it.
        let n = 64;
        let ran_off_owner = AtomicBool::new(false);
        let owner = std::thread::current().id();
        Pool::new(4).for_each_index(n, |i| {
            if i < n / 4 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            if std::thread::current().id() != owner {
                ran_off_owner.store(true, Ordering::Relaxed);
            }
        });
        assert!(ran_off_owner.load(Ordering::Relaxed));
    }

    #[test]
    fn single_worker_runs_in_order_on_caller() {
        let seen = Mutex::new(Vec::new());
        let caller = std::thread::current().id();
        Pool::new(1).for_each_index(10, |i| {
            assert_eq!(std::thread::current().id(), caller);
            seen.lock().unwrap().push(i);
        });
        assert_eq!(*seen.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pool_reports_threads() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert_eq!(Pool::new(5).threads(), 5);
        assert!(Pool::with_available_parallelism().threads() >= 1);
        assert!(available_parallelism() >= 1);
    }
}
