//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, implementing exactly the subset of the API this repository's test
//! suite uses. The build environment has no registry access, so the real
//! crate cannot be fetched; this shim keeps the property tests meaningful:
//! strategies draw pseudo-random values from a per-test deterministic
//! generator and every failure reports the concrete inputs.
//!
//! Differences from real proptest: no shrinking, no persistence files, and
//! rejected cases (`prop_assume!`) are simply re-drawn rather than tracked
//! against a rejection budget.

use std::ops::Range;

/// Deterministic 64-bit generator (splitmix64) used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A source of values for one generated test argument.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % width;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Strategies for boolean values.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The any-boolean strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Strategies for numeric primitives.
pub mod num {
    /// Strategies for `u64`.
    pub mod u64 {
        use crate::{Strategy, TestRng};

        /// Uniformly random `u64`s.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The any-`u64` strategy (`proptest::num::u64::ANY`).
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = u64;
            fn sample(&self, rng: &mut TestRng) -> u64 {
                rng.next_u64()
            }
        }
    }
}

/// Strategies for collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.clone().sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is discarded and re-drawn.
    Reject,
    /// An assertion failed with this message.
    Fail(String),
}

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Stable seed derived from the test path so failures reproduce across runs.
pub fn seed_from_name(name: &str) -> u64 {
    // FNV-1a
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `body` over `config.cases` accepted cases, drawing arguments from
/// `draw` (used by the `proptest!` macro expansion; not public API in the
/// real crate).
pub fn run_cases<A: std::fmt::Debug>(
    test_path: &str,
    config: &ProptestConfig,
    mut draw: impl FnMut(&mut TestRng) -> A,
    mut body: impl FnMut(&A) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::new(seed_from_name(test_path));
    let mut accepted = 0u32;
    let mut drawn = 0u32;
    let max_draws = config.cases.saturating_mul(64).max(1024);
    while accepted < config.cases {
        if drawn >= max_draws {
            panic!(
                "proptest {test_path}: too many rejected cases \
                 ({accepted}/{} accepted after {drawn} draws)",
                config.cases
            );
        }
        drawn += 1;
        let args = draw(&mut rng);
        match body(&args) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest {test_path} failed: {msg}\n  inputs: {args:?}")
            }
        }
    }
}

/// Declares property tests (subset of real proptest's macro).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                &config,
                |rng| ( $( $crate::Strategy::sample(&($strat), rng), )* ),
                |&( $(ref $arg,)* )| {
                    $( let $arg = ::core::clone::Clone::clone($arg); )*
                    $body
                    Ok(())
                },
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Like `assert!` but reports the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!` but reports the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assert_eq failed: {:?} != {:?} ({} vs {})",
            a, b, stringify!($a), stringify!($b)
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assert_eq failed: {:?} != {:?}: {}", a, b, format!($($fmt)+)),
            ));
        }
    }};
}

/// Like `assert_ne!` but reports the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assert_ne failed: both {:?} ({} vs {})",
            a,
            stringify!($a),
            stringify!($b)
        );
    }};
}

/// Everything a `proptest!` block needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}
