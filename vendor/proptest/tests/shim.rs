//! Self-tests for the offline proptest stand-in: cases vary, assumes
//! reject, and assertion failures panic with the inputs attached.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn ranges_stay_in_bounds(a in 1i64..6, b in 0u8..8, n in 5usize..200) {
        prop_assert!((1..6).contains(&a));
        prop_assert!(b < 8);
        prop_assert!((5..200).contains(&n));
    }

    #[test]
    fn vec_respects_size(v in proptest::collection::vec(-100i64..100, 0..8)) {
        prop_assert!(v.len() < 8);
        prop_assert!(v.iter().all(|x| (-100..100).contains(x)));
    }

    #[test]
    fn assume_filters(x in 0u64..100) {
        prop_assume!(x % 2 == 0);
        prop_assert!(x % 2 == 0);
    }
}

#[test]
fn cases_actually_vary() {
    let mut rng = proptest::TestRng::new(proptest::seed_from_name("vary"));
    let strat = 0i64..1_000_000;
    let vals: std::collections::HashSet<i64> = (0..64)
        .map(|_| proptest::Strategy::sample(&strat, &mut rng))
        .collect();
    assert!(
        vals.len() > 32,
        "rng produced only {} distinct values",
        vals.len()
    );
}

#[test]
fn failures_panic_with_inputs() {
    let result = std::panic::catch_unwind(|| {
        proptest::run_cases(
            "shim::failures_panic_with_inputs",
            &ProptestConfig::with_cases(16),
            |rng| (proptest::Strategy::sample(&(0i64..10), rng),),
            |(x,)| {
                prop_assert!(*x < 3, "x too big: {x}");
                Ok(())
            },
        );
    });
    let err = result.expect_err("a case with x >= 3 must fail");
    let msg = err.downcast_ref::<String>().expect("string panic");
    assert!(msg.contains("x too big"), "unexpected message: {msg}");
    assert!(msg.contains("inputs:"), "inputs missing: {msg}");
}
