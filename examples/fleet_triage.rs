//! Fleet-triage walkthrough for the `mcr-batch` batch engine.
//!
//! A triage queue rarely holds unique work: the same bug crashes over
//! and over, occasionally under a different input. This example builds
//! such a queue — five duplicate crash reports of the paper's Fig. 1
//! race plus one genuinely distinct job — and runs it as one fleet with
//! a shared executor and a shared content-addressed artifact store:
//!
//! * the first Fig. 1 job computes all five pipeline phases;
//! * the four duplicates are *single-flighted* behind it and rehydrate
//!   every phase from the store (zero recomputation);
//! * the distinct job (a different failing input → different phase
//!   keys) computes its own pipeline, proving the cache never confuses
//!   different work.
//!
//! ```text
//! cargo run --release --example fleet_triage
//! ```

use mcr_batch::{Fleet, FleetConfig, FleetJob};
use mcr_core::find_failure;
use mcr_testsupport::{FIG1, FIG1_INPUT};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = mcr_lang::compile(FIG1)?;

    // The duplicate stream: one stress campaign produces the failure
    // dump every duplicate report carries.
    let dup =
        find_failure(&program, &FIG1_INPUT, 0..2_000_000, 1_000_000).expect("stress exposes fig1");
    println!(
        "failure dump obtained (stress seed {}, {} bytes encoded)",
        dup.seed,
        mcr_dump::encode(&dup.dump).len()
    );

    // The distinct job: same program, different failing input — the
    // race arms in iteration 1 instead of 2, so every phase artifact
    // differs and nothing may be served from the duplicates' cache.
    let other_input = [1i64, 0];
    let distinct = find_failure(&program, &other_input, 0..2_000_000, 1_000_000)
        .expect("stress exposes the variant");

    let config = FleetConfig::default();
    let store = std::sync::Arc::clone(&config.store);
    let mut fleet = Fleet::new(config);
    for i in 0..5 {
        fleet.push(
            FleetJob::new(
                format!("fig1-dup{i}"),
                &program,
                dup.dump.clone(),
                &FIG1_INPUT,
            )
            .with_priority(1),
        );
    }
    fleet.push(
        FleetJob::new(
            "fig1-variant",
            &program,
            distinct.dump.clone(),
            &other_input,
        )
        .with_priority(5),
    );
    println!("fleet: {} jobs queued\n", fleet.len());

    let outcome = fleet.run();
    for job in &outcome.jobs {
        match &job.result {
            Ok(report) => println!(
                "  {:<14} reproduced={} tries={:<4} computed={} cached={} deduped={}",
                job.name,
                report.search.reproduced,
                report.search.tries,
                job.computed,
                job.cache_hits,
                job.deduped,
            ),
            Err(e) => println!("  {:<14} FAILED: {e}", job.name),
        }
    }
    let s = outcome.summary;
    println!(
        "\nfleet summary: {} jobs in {:?} over {} workers ({} waves)",
        s.jobs, s.wall, s.workers, s.waves
    );
    println!(
        "  phase units: {} scheduled = {} computed + {} cache hits ({} single-flighted)",
        s.phase_units, s.computed, s.cache_hits, s.deduped_in_flight
    );
    println!(
        "  store: {} artifacts, {} bytes, hit rate {:.0}%",
        s.store.entries,
        s.store.bytes,
        s.store.hit_rate() * 100.0
    );

    // The walkthrough doubles as a check CI runs.
    assert_eq!(s.completed, 6);
    assert_eq!(
        s.computed, 10,
        "exactly two distinct pipelines (5 phases each) may compute"
    );
    assert_eq!(s.cache_hits, 20, "4 duplicates x 5 phases rehydrate");
    assert!(s.deduped_in_flight >= 4, "duplicates single-flighted");
    let reports: Vec<_> = outcome
        .jobs
        .iter()
        .filter_map(|j| j.result.as_ref().ok())
        .collect();
    assert!(reports.iter().all(|r| r.search.reproduced));
    // Duplicates agree bit-for-bit (timings included — rehydrated
    // artifacts embed the originals); the variant genuinely differs.
    for dup_report in &reports[1..5] {
        assert_eq!(&reports[0], dup_report, "duplicates must be bit-identical");
    }
    assert_ne!(store.stats().entries, 5, "variant artifacts are distinct");
    println!("\nduplicates served from cache, variant computed fresh — batch engine OK");
    Ok(())
}
