//! Long-running triage-service walkthrough: streaming job admission
//! with back-pressure against a 4-shard artifact store.
//!
//! Where `examples/fleet_triage.rs` runs a *closed* job list, this
//! example models the production shape the `TriageService` exists for:
//! crash reports arrive one at a time (a seeded `fleet_stream` arrival
//! order over a duplicate-heavy `fleet_mix` corpus), the service admits
//! them *while earlier waves are executing*, a `Reject` admission policy
//! pushes back once too many jobs are pending, and the shared cache is
//! a [`ShardedStore`] partitioning the key space across four
//! [`MemoryStore`] backends by consistent hashing.
//!
//! The walkthrough then re-runs the whole corpus as a closed-list
//! `Fleet` (the compatibility facade) against the *same* sharded store:
//! everything is served from cache and every report comes back
//! bit-identical.
//!
//! ```text
//! cargo run --release --example triage_service
//! ```

use mcr_batch::{AdmissionPolicy, AdmitError, Fleet, FleetConfig, FleetJob, TriageService};
use mcr_core::{find_failure, ArtifactStore, ShardedStore, PHASES};
use mcr_workloads::{all_bugs, fleet_stream, FleetSpec};
use std::collections::HashMap;
use std::sync::Arc;

/// Stress-seed cap, mirroring the repository's smoke/full tiers.
fn stress_seed_cap() -> u64 {
    match std::env::var("MCR_TEST_TIER") {
        Ok(v) if v.eq_ignore_ascii_case("full") => 2_000_000,
        _ => 200_000,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The arrival stream: a duplicate-heavy mix over a three-bug subset
    // (2 identical reports + 1 distinct-input variant per bug), in a
    // seeded shuffled arrival order.
    let bugs: Vec<_> = all_bugs()
        .into_iter()
        .filter(|b| matches!(b.name, "mysql-3" | "apache-2" | "mysql-1"))
        .collect();
    let arrivals: Vec<FleetSpec> = fleet_stream(&bugs, 2, 11).collect();
    println!("arrival stream: {} jobs (duplicate-heavy)", arrivals.len());

    // Compile each program once and stress each *distinct* work unit
    // once — duplicates share the dump, exactly how a triage queue
    // receives repeated crashes of one bug.
    let mut programs: Vec<mcr_lang::Program> = Vec::new();
    let mut program_of: HashMap<String, usize> = HashMap::new();
    let mut dump_of: HashMap<(String, usize, u64), mcr_dump::CoreDump> = HashMap::new();
    for spec in &arrivals {
        let idx = *program_of
            .entry(spec.bug.name.to_string())
            .or_insert_with(|| {
                programs.push(spec.bug.compile());
                programs.len() - 1
            });
        dump_of.entry(spec.dedup_key()).or_insert_with(|| {
            find_failure(
                &programs[idx],
                &spec.input(),
                0..stress_seed_cap(),
                spec.bug.max_steps,
            )
            .unwrap_or_else(|| panic!("{}: stress found no failure", spec.name))
            .dump
        });
    }
    let distinct = dump_of.len();

    // The sharded artifact store: one logical cache over four backends,
    // keys routed by consistent hashing on their content hash.
    let sharded = Arc::new(ShardedStore::with_memory_shards(4));
    let config = FleetConfig {
        store: Arc::clone(&sharded) as Arc<dyn ArtifactStore>,
        admission: AdmissionPolicy::Reject { max_pending: 4 },
        ..FleetConfig::default()
    };
    let service = TriageService::new(config.clone());

    // Stream the corpus in: submit, and when the service pushes back,
    // drive a wave and retry — admission interleaves with execution.
    let mut tickets = Vec::new();
    let mut saturated = 0usize;
    for spec in &arrivals {
        let mut job = FleetJob::new(
            spec.name.clone(),
            &programs[program_of[spec.bug.name]],
            dump_of[&spec.dedup_key()].clone(),
            &spec.input(),
        )
        .with_priority(spec.priority);
        let ticket = loop {
            match service.submit(job) {
                Ok(ticket) => break ticket,
                Err(refused) => match refused.reason {
                    AdmitError::Saturated { pending, .. } => {
                        // Back-pressure: help drain, then retry with
                        // the job the service handed back — no
                        // rebuild, no dump re-clone.
                        saturated += 1;
                        print!("  [back-pressure at {pending} pending] ");
                        service.poll();
                        job = refused.job;
                    }
                    AdmitError::ShutDown => return Err(refused.reason.into()),
                },
            }
        };
        println!(
            "submitted {:<16} (pending {}, executor in use {}/{})",
            ticket.name(),
            service.pending(),
            service.limit().in_use(),
            service.limit().capacity(),
        );
        tickets.push(ticket);
    }

    // Graceful teardown: close admission, drain everything, summarize.
    let summary = service.shutdown();
    println!();
    for ticket in tickets {
        let outcome = ticket.wait(); // drained: returns immediately
        match &outcome.result {
            Ok(report) => println!(
                "  {:<16} reproduced={} tries={:<4} computed={} cached={} deduped={}",
                outcome.name,
                report.search.reproduced,
                report.search.tries,
                outcome.computed,
                outcome.cache_hits,
                outcome.deduped,
            ),
            Err(e) => println!("  {:<16} FAILED: {e}", outcome.name),
        }
    }
    println!(
        "\nservice summary: {} jobs in {:?} over {} workers ({} waves, {} back-pressure events)",
        summary.jobs, summary.wall, summary.workers, summary.waves, saturated
    );
    println!(
        "  phase units: {} = {} computed + {} cache hits ({} single-flighted)",
        summary.phase_units, summary.computed, summary.cache_hits, summary.deduped_in_flight
    );
    println!(
        "  store: {} artifacts, {} bytes, hit rate {:.0}%",
        summary.store.entries,
        summary.store.bytes,
        summary.store.hit_rate() * 100.0
    );
    println!("  per-phase histogram (hits/entries/bytes):");
    for phase in PHASES {
        let row = summary.store.phase(phase);
        println!(
            "    {:<7} {:>3} hits  {:>2} entries  {:>6} bytes",
            phase.name(),
            row.hits,
            row.entries,
            row.bytes
        );
    }
    let per_shard: Vec<usize> = sharded.shards().iter().map(|s| s.stats().entries).collect();
    println!("  shard layout (entries per shard): {per_shard:?}");

    // The walkthrough doubles as a check CI runs.
    assert_eq!(summary.completed, arrivals.len());
    assert_eq!(summary.failed, 0);
    assert_eq!(
        summary.computed as usize,
        distinct * PHASES.len(),
        "each distinct pipeline computes exactly once, service-wide"
    );
    assert_eq!(
        summary.cache_hits as usize,
        (arrivals.len() - distinct) * PHASES.len(),
        "every duplicate job rehydrates all five phases"
    );
    assert_eq!(
        per_shard.iter().sum::<usize>(),
        summary.store.entries,
        "shards partition the keyspace"
    );
    assert!(
        per_shard.iter().filter(|&&n| n > 0).count() >= 2,
        "the keyspace spreads across shards: {per_shard:?}"
    );

    // Warm pass: the closed-list facade over the same sharded store —
    // nothing recomputes, and reports are bit-identical rehydrations.
    let mut fleet = Fleet::new(FleetConfig {
        store: Arc::clone(&sharded) as Arc<dyn ArtifactStore>,
        ..FleetConfig::default()
    });
    for spec in &arrivals {
        fleet.push(
            FleetJob::new(
                spec.name.clone(),
                &programs[program_of[spec.bug.name]],
                dump_of[&spec.dedup_key()].clone(),
                &spec.input(),
            )
            .with_priority(spec.priority),
        );
    }
    let warm = fleet.run();
    assert_eq!(warm.summary.completed, arrivals.len());
    assert_eq!(warm.summary.computed, 0, "warm fleet computes nothing");
    assert_eq!(
        warm.summary.cache_hits as usize,
        arrivals.len() * PHASES.len()
    );
    println!(
        "\nwarm closed-list pass over the same shards: {} jobs, {} computed, {} cache hits",
        warm.summary.jobs, warm.summary.computed, warm.summary.cache_hits
    );
    println!("streaming admission, back-pressure, and sharded caching OK");
    Ok(())
}
