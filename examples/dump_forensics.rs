//! Core dump forensics, piece by piece: capture a failure dump, encode
//! and reparse it, reverse-engineer the failure index, locate the
//! aligned point, and diff the two dumps — without running the schedule
//! search. Useful for understanding what each phase of the paper's
//! analysis actually produces.
//!
//! ```text
//! cargo run --release --example dump_forensics
//! ```

use mcr_analysis::ProgramAnalysis;
use mcr_dump::{reachable_vars, CoreDump, DumpDiff, DumpReason, TraverseLimits};
use mcr_index::{reverse_index, Aligner};
use mcr_vm::{run, run_until, DeterministicScheduler, NullObserver, StressScheduler, Vm};

const PROGRAM: &str = r#"
    global input: [int; 4];
    global inventory: ptr;
    global count: int;
    global audits: int;
    lock inv;

    fn restock(n) {
        var fresh; var k;
        fresh = alloc(8);
        for (k = 0; k < n; k = k + 1) {
            fresh[k] = k * 10;
        }
        // BUG: the swap publishes the count before the new inventory is
        // installed (and the install happens outside the lock).
        inventory = null;
        acquire inv;
        count = n;
        release inv;
        inventory = fresh;
    }

    fn audit() {
        var i; var total;
        if (count > 0) {
            total = 0;
            for (i = 0; i < count; i = i + 1) {
                total = total + inventory[i];
            }
            audits = audits + 1;
        }
    }

    fn stocker() { restock(5); }
    fn auditor() { audit(); }

    fn main() {
        count = 3;
        inventory = alloc(8);
        spawn stocker();
        spawn auditor();
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = mcr_lang::compile(PROGRAM)?;
    let analysis = ProgramAnalysis::analyze(&program);
    let input: [i64; 0] = [];

    // 1. Produce a failure dump under random interleavings.
    let mut failure_dump = None;
    for seed in 0..1_000_000u64 {
        let mut vm = Vm::new(&program, &input);
        let mut sched = StressScheduler::new(seed);
        run(&mut vm, &mut sched, &mut NullObserver, 1_000_000);
        if let Some(d) = CoreDump::capture_failure(&vm) {
            println!("seed {seed} crashed: {}", d.failure().unwrap());
            failure_dump = Some(d);
            break;
        }
    }
    let failure_dump = failure_dump.expect("race fires");

    // 2. The dump as an artifact: encode, measure, reparse.
    let bytes = mcr_dump::encode(&failure_dump);
    println!("failure dump: {} bytes on disk", bytes.len());
    let reparsed = mcr_dump::decode(&bytes)?;
    assert_eq!(reparsed, failure_dump);
    let ctx = failure_dump.focus_context();
    println!("calling context depth {} (outer -> inner):", ctx.len());
    for (func, stmt) in &ctx {
        println!("  {}:{}", program.func(*func).name, stmt.0);
    }
    println!(
        "live loop counters of the innermost frame: {:?}",
        failure_dump.focus_thread().top().unwrap().loop_counters
    );

    // 3. Reverse-engineer the failure index (Algorithm 1).
    let index = reverse_index(&program, &analysis, &failure_dump)?;
    println!("failure index: {}", index.display(&program));

    // 4. Locate the aligned point in the deterministic passing run.
    let mut vm = Vm::new(&program, &input);
    let mut aligner = Aligner::new(&program, &analysis, failure_dump.focus, &index);
    run_until(
        &mut vm,
        &mut DeterministicScheduler::new(),
        &mut aligner,
        1_000_000,
        |_| false,
    );
    let alignment = aligner.finish();
    println!(
        "aligned point: {:?} at step {} ({} index entries unmatched)",
        alignment.signal, alignment.step, alignment.remaining
    );

    // 5. Dump at the aligned point and compare.
    let mut replay = Vm::new(&program, &input);
    run_until(
        &mut replay,
        &mut DeterministicScheduler::new(),
        &mut NullObserver,
        1_000_000,
        |vm| vm.steps() > alignment.step,
    );
    let aligned_dump = CoreDump::capture(&replay, failure_dump.focus, DumpReason::Aligned);
    let diff = DumpDiff::compare(&failure_dump, &aligned_dump);
    println!(
        "compared {} variables ({} shared): {} diffs, {} CSVs",
        diff.compared,
        diff.shared_compared,
        diff.diff_count(),
        diff.csv_count()
    );
    for d in &diff.diffs {
        println!(
            "  {} : failing={:?} aligned={:?}{}",
            d.path.display(&program),
            d.a,
            d.b,
            if d.path.is_shared() { "  <- CSV" } else { "" }
        );
    }

    // The traversal itself is also inspectable.
    let vars = reachable_vars(&failure_dump, TraverseLimits::default());
    println!(
        "total reachable variables in the failure dump: {}",
        vars.len()
    );
    Ok(())
}
