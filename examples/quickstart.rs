//! Quickstart: reproduce a Heisenbug from nothing but a core dump.
//!
//! This walks the entire pipeline of the paper on its running example
//! (Fig. 1): a racy flag/pointer pair guarded by a lock that is released
//! too early.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mcr_core::{find_failure, passes_deterministically, ReproOptions, Reproducer};

/// The paper's Fig. 1, in MiniCC. `x` flags whether `p` is null; the
/// critical section ends before the flag is consulted, so T2's `x = 0`
/// can land between `x = 1` and `if (!x)`.
const FIG1: &str = r#"
    global x: int;
    global input: [int; 2];
    lock l;

    fn F(p) { p[0] = 1; }

    fn T1() {
        var i; var p;
        for (i = 0; i < 2; i = i + 1) {
            x = 0;
            p = alloc(2);
            acquire l;
            if (input[i] > 0) {
                x = 1;
                p = null;
            }
            release l;
            if (!x) { F(p); }        // should be inside the lock
        }
    }

    fn T2() { x = 0; }

    fn main() { spawn T1(); spawn T2(); }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = mcr_lang::compile(FIG1)?;
    let input = [0i64, 1];

    // The Heisenbug premise: the single-core canonical run passes.
    assert!(passes_deterministically(&program, &input, 1_000_000));
    println!("deterministic single-core run: passes");

    // Production: random multicore-style interleavings until it crashes.
    // All we keep is the core dump — no logs, no traces.
    let stress = find_failure(&program, &input, 0..1_000_000, 1_000_000)
        .expect("the race must eventually fire");
    println!(
        "stress run crashed with seed {}: {}",
        stress.seed,
        stress.dump.failure().unwrap()
    );

    // Debugging: dump -> index -> aligned point -> CSVs -> schedule.
    let reproducer = Reproducer::new(&program, ReproOptions::default());
    let report = reproducer.reproduce(&stress.dump, &input)?;

    let index = report.index.as_ref().expect("EI mode");
    println!(
        "reverse-engineered failure index ({} entries): {}",
        index.len(),
        index.display(&program)
    );
    println!(
        "aligned point: {:?} at step {}",
        report.alignment.signal, report.alignment.step
    );
    println!(
        "dump comparison: {} vars, {} diffs, {} shared, {} CSVs",
        report.vars,
        report.diffs,
        report.shared,
        report.csv_paths.len()
    );
    for path in &report.csv_paths {
        println!("  critical shared variable: {}", path.display(&program));
    }
    assert!(report.search.reproduced);
    println!(
        "failure reproduced after {} schedule tries; winning preemption(s):",
        report.search.tries
    );
    for pm in report.search.winning.as_ref().unwrap() {
        println!("  preempt {}", pm.point);
    }
    Ok(())
}
