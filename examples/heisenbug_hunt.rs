//! Run the whole bug suite through all three search algorithms — a
//! miniature of the paper's Table 4 — and print the scoreboard.
//!
//! ```text
//! cargo run --release --example heisenbug_hunt
//! ```

use mcr_core::{find_failure, ReproOptions, Reproducer};
use mcr_search::{Algorithm, SearchConfig};
use mcr_slice::Strategy;
use mcr_workloads::all_bugs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<10} {:>18} {:>18} {:>18}",
        "bug", "chess", "chessX+dep", "chessX+temporal"
    );
    for bug in all_bugs() {
        let program = bug.compile();
        let input = bug.default_input();
        let stress = find_failure(&program, &input, 0..2_000_000, bug.max_steps)
            .expect("stress exposes the bug");

        let mut cells = Vec::new();
        for (algorithm, strategy) in [
            (Algorithm::Chess, Strategy::Temporal),
            (Algorithm::ChessX, Strategy::Dependence),
            (Algorithm::ChessX, Strategy::Temporal),
        ] {
            let reproducer = Reproducer::new(
                &program,
                ReproOptions::builder()
                    .algorithm(algorithm)
                    .strategy(strategy)
                    .search(SearchConfig {
                        max_tries: 20_000,
                        ..Default::default()
                    })
                    .build(),
            );
            let report = reproducer.reproduce(&stress.dump, &input)?;
            cells.push(if report.search.reproduced {
                format!("{} tries", report.search.tries)
            } else {
                "cutoff".to_string()
            });
        }
        println!(
            "{:<10} {:>18} {:>18} {:>18}",
            bug.name, cells[0], cells[1], cells[2]
        );
    }
    Ok(())
}
