//! Checkpoint/resume walkthrough for the staged `ReproSession` API.
//!
//! Process-style step 1 runs the pipeline through the dump-diff phase and
//! serializes the session to bytes — exactly what a reproduction service
//! would persist before handing the job to another worker. Process-style
//! step 2 starts from nothing but the compiled program and those bytes,
//! resumes the session, and finishes the schedule search. The final
//! report is identical to an uninterrupted `Reproducer::reproduce` run.
//!
//! ```text
//! cargo run --release --example session_checkpoint
//! ```

use mcr_core::{find_failure, PhaseEvent, PhaseObserver, ReproOptions, ReproSession, Reproducer};
use mcr_testsupport::{FIG1, FIG1_INPUT};

/// Prints each phase as it completes — the `PhaseObserver` progress
/// channel a service would wire to its job-status endpoint.
struct Progress;

impl PhaseObserver for Progress {
    fn on_event(&mut self, event: &PhaseEvent) {
        match event {
            PhaseEvent::Started { phase } => println!("    {phase} phase ..."),
            PhaseEvent::Finished { phase, elapsed } => {
                println!("    {phase} phase done in {elapsed:?}");
            }
            PhaseEvent::Stage {
                phase,
                stage,
                elapsed,
            } => println!("      [{phase}] {stage}: {elapsed:?}"),
            PhaseEvent::Interrupted { phase } => println!("    {phase} phase interrupted"),
            PhaseEvent::CacheHit { phase } => {
                println!("    {phase} phase rehydrated from the artifact store");
            }
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = mcr_lang::compile(FIG1)?;
    let stress =
        find_failure(&program, &FIG1_INPUT, 0..2_000_000, 1_000_000).expect("stress exposes");
    println!("failure dump obtained (stress seed {})", stress.seed);

    // ---- Process-style step 1: index + align + diff, then checkpoint.
    let options = ReproOptions::builder().parallelism(1).build();
    let checkpoint = {
        let mut session =
            ReproSession::new(&program, stress.dump.clone(), &FIG1_INPUT, options.clone())?;
        session.set_observer(Box::new(Progress));
        let (csvs, trace_events) = {
            let delta = session.run_diff()?;
            (delta.csv_paths.len(), delta.trace.len())
        };
        println!(
            "  checkpointing after {:?}: {csvs} CSVs, {trace_events} trace events",
            session.completed().unwrap(),
        );
        session.checkpoint()
        // The session (and every in-memory intermediate) drops here; only
        // the bytes survive, as across a real process boundary.
    };
    println!("  checkpoint: {} bytes\n", checkpoint.len());

    // ---- Process-style step 2: resume from bytes, finish the search.
    let mut session = ReproSession::resume(&program, &checkpoint)?;
    session.set_observer(Box::new(Progress));
    println!(
        "resumed session (completed: {:?}, next: {:?})",
        session.completed().unwrap(),
        session.next_phase().unwrap(),
    );
    let resumed_report = session.run_to_end()?;
    println!(
        "  reproduced = {}, tries = {}\n",
        resumed_report.search.reproduced, resumed_report.search.tries
    );

    // ---- The resumed run matches the uninterrupted one exactly.
    let uninterrupted = Reproducer::new(&program, options).reproduce(&stress.dump, &FIG1_INPUT)?;
    assert_eq!(
        uninterrupted.search.reproduced,
        resumed_report.search.reproduced
    );
    assert_eq!(uninterrupted.search.tries, resumed_report.search.tries);
    assert_eq!(uninterrupted.csv_paths, resumed_report.csv_paths);
    println!("resumed report matches the uninterrupted pipeline run");
    Ok(())
}
