//! Dump-less triage: run the static race/lockset lint over the whole
//! workload corpus.
//!
//! Everything else in this repository starts from a core dump — the
//! paper's premise is that a failure already happened. The static lint
//! is the complementary surface: no dump, no failing input, no search.
//! It partitions every `(function, access site)` of a program into the
//! verdict lattice `Local < Solo < Guarded < Unknown < MayRace` and
//! prints the May-Race pairs and contended locks, which is exactly the
//! shortlist a triage engineer wants *before* any bug fires.
//!
//! ```text
//! cargo run --release --example static_lint
//! ```
//!
//! The run asserts the lint's headline property on the suite: every
//! seeded bug — including the TSO and fault-injection bugs that need a
//! non-default environment to crash at all — carries a statically
//! visible hazard (a May-Race pair or a contended lock).

use mcr_analysis::RaceAnalysis;

fn main() {
    let mut flagged = 0usize;
    let mut clean = 0usize;

    println!("== Table 2 suite ==");
    for bug in mcr_workloads::all_bugs() {
        let program = bug.compile();
        let analysis = RaceAnalysis::analyze(&program);
        let report = analysis.report();
        let hazards = report.findings.len() + report.contended.len();
        println!(
            "\n-- {} (threads: {}, class: {}) --",
            bug.name,
            bug.threads,
            bug.class.label()
        );
        print!("{}", report.render(&program));
        assert!(
            hazards > 0,
            "{}: seeded concurrency bug but the lint saw no hazard",
            bug.name
        );
        flagged += 1;
    }

    println!("\n== environment-gated suite ==");
    for bug in mcr_workloads::fault_bugs() {
        let program = bug.compile();
        let analysis = RaceAnalysis::analyze(&program);
        let report = analysis.report();
        let hazards = report.findings.len() + report.contended.len();
        println!("\n-- {} ({:?}) --", bug.name, bug.requires);
        print!("{}", report.render(&program));
        assert!(
            hazards > 0,
            "{}: env-gated bug but the lint saw no hazard",
            bug.name
        );
        flagged += 1;
    }

    // And the negative control: a correctly locked program comes back
    // hazard-free, so the lint is a signal, not a smoke detector.
    const CLEAN: &str = r#"
        global counter: int;
        lock m;
        fn worker() {
            acquire m;
            counter = counter + 1;
            release m;
        }
        fn main() {
            var a; var b;
            a = spawn worker();
            b = spawn worker();
            join a;
            join b;
        }
    "#;
    let program = mcr_lang::compile(CLEAN).expect("clean program compiles");
    let analysis = RaceAnalysis::analyze(&program);
    let report = analysis.report();
    println!("\n-- negative control (fully locked counter) --");
    print!("{}", report.render(&program));
    assert!(
        report.findings.is_empty(),
        "clean program must produce no May-Race findings"
    );
    clean += 1;

    println!("\nlint: {flagged} seeded bugs flagged, {clean} clean control(s) clean");
}
