//! The paper's §6 case study: apache bug 21285 (mod_mem_cache).
//!
//! A cached object is inserted in two separately-locked steps (default
//! size, then real size). Evicted in between, its removal subtracts its
//! size *again*; the unsigned byte count wraps to a huge value and the
//! next insertion's eviction loop underflows the object queue.
//!
//! ```text
//! cargo run --release --example cache_eviction_bug
//! ```

use mcr_core::{find_failure, ReproOptions, Reproducer};
use mcr_search::Algorithm;
use mcr_slice::Strategy;
use mcr_workloads::bug_by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bug = bug_by_name("apache-1").expect("workload registered");
    let program = bug.compile();
    let input = bug.default_input();
    println!(
        "bug {} (modeled on apache bug {}), {} worker threads, input length {}",
        bug.name,
        bug.bug_id,
        bug.threads,
        input.len()
    );

    let stress = find_failure(&program, &input, 0..2_000_000, bug.max_steps)
        .expect("stress exposes the eviction race");
    println!(
        "stress seed {} crashed after {} steps: {}",
        stress.seed,
        stress.steps,
        stress.dump.failure().unwrap()
    );

    // The case study uses the dependence-distance strategy ("In this
    // study, we only inspect the results of using the dependence distance
    // based strategy").
    let reproducer = Reproducer::new(
        &program,
        ReproOptions {
            strategy: Strategy::Dependence,
            algorithm: Algorithm::ChessX,
            ..Default::default()
        },
    );
    let report = reproducer.reproduce(&stress.dump, &input)?;

    println!(
        "CSVs found ({} of {} shared variables):",
        report.csv_paths.len(),
        report.shared
    );
    for path in &report.csv_paths {
        println!("  {}", path.display(&program));
    }

    assert!(report.search.reproduced, "case study must reproduce");
    let winning = report.search.winning.as_ref().unwrap();
    println!(
        "reproduced after {} tries with {} preemption(s):",
        report.search.tries,
        winning.len()
    );
    for pm in winning {
        println!(
            "  preempt {} (block touches {} CSV accesses)",
            pm.point,
            pm.accesses.len()
        );
    }
    println!(
        "analysis costs: parse {:?}, diff {:?}, slicing {:?}",
        report.timings.dump_parse, report.timings.diff, report.timings.slicing
    );
    Ok(())
}
