//! The batch-engine acceptance bar: for every bug in the suite, a cold
//! run, a warm (cache-hit) run, and a batched fleet run produce
//! identical `ReproReport`s; duplicate-heavy fleets show phase cache
//! hits and single-flight dedup.

use mcr_batch::{Fleet, FleetConfig, FleetJob};
use mcr_core::{
    program_fingerprint, ArtifactStore, BytesStore, CompiledPlanArtifact, FuncUnitStats,
    MemoryStore, Phase, PhaseEvent, ReproReport, ReproSession, Reproducer, ShardedStore, PHASES,
};
use mcr_search::Algorithm;
use mcr_slice::Strategy;
use mcr_testsupport::{
    assert_reports_equivalent as assert_reports_equal, repro_options as options, stress_bug,
};
use mcr_workloads::all_bugs;
use std::sync::Arc;

/// Bit-identity including timings (valid when `b` was rehydrated from
/// artifacts `a`'s run stored — cached artifacts embed the original
/// durations, so full `ReproReport` equality holds).
fn assert_reports_identical(a: &ReproReport, b: &ReproReport, context: &str) {
    assert_eq!(a, b, "{context}: bit-identity");
}

/// The acceptance bar, per bug: (1) a fleet of three duplicate jobs
/// computes one pipeline and dedupes the rest, (2) a warm session over
/// the fleet's store rehydrates everything without running a phase,
/// (3) cold, warm, and every fleet report agree.
#[test]
fn cold_warm_and_fleet_reports_agree_for_every_bug() {
    for bug in all_bugs() {
        let (program, sf) = stress_bug(&bug);
        let input = bug.default_input();
        let opts = options(Algorithm::ChessX, Strategy::Temporal);

        // Cold: the plain blocking pipeline, no store anywhere.
        let cold = Reproducer::new(&program, opts.clone())
            .reproduce(&sf.dump, &input)
            .unwrap_or_else(|e| panic!("{}: cold run failed: {e}", bug.name));

        // Fleet: three duplicate jobs sharing one executor and store.
        let config = FleetConfig::default();
        let store = Arc::clone(&config.store);
        let mut fleet = Fleet::new(config);
        for i in 0..3 {
            fleet.push(
                FleetJob::new(
                    format!("{}#{i}", bug.name),
                    &program,
                    sf.dump.clone(),
                    &input,
                )
                .with_options(opts.clone())
                .with_priority(i),
            );
        }
        let outcome = fleet.run();
        assert_eq!(outcome.summary.completed, 3, "{}", bug.name);
        assert_eq!(
            outcome.summary.computed, 5,
            "{}: one pipeline computes, duplicates rehydrate",
            bug.name
        );
        assert_eq!(outcome.summary.cache_hits, 10, "{}", bug.name);
        assert_eq!(outcome.summary.deduped_in_flight, 10, "{}", bug.name);
        assert!(outcome.summary.store.hits >= 10, "{}", bug.name);
        let fleet_reports: Vec<&ReproReport> = outcome
            .jobs
            .iter()
            .map(|j| j.result.as_ref().expect("completed"))
            .collect();
        for (i, report) in fleet_reports.iter().enumerate() {
            assert_reports_equal(report, &cold, &format!("{} fleet[{i}] vs cold", bug.name));
        }
        // Duplicates are bit-identical to each other (rehydrated bytes).
        assert_reports_identical(
            fleet_reports[1],
            fleet_reports[2],
            &format!("{} duplicates", bug.name),
        );

        // Warm: a fresh session over the fleet's store — every phase is
        // a cache hit, and the report is bit-identical to the fleet's.
        let mut warm_session =
            ReproSession::new(&program, sf.dump.clone(), &input, opts.clone()).unwrap();
        warm_session.set_store(Arc::clone(&store));
        let log = Arc::new(std::sync::Mutex::new(mcr_core::TimingLog::new()));
        warm_session.set_observer(Box::new(Arc::clone(&log)));
        let warm = warm_session
            .run_to_end()
            .unwrap_or_else(|e| panic!("{}: warm run failed: {e}", bug.name));
        assert_eq!(
            log.lock().unwrap().cache_hits(),
            PHASES,
            "{}: warm run must not compute anything",
            bug.name
        );
        assert_reports_equal(&warm, &cold, &format!("{} warm vs cold", bug.name));
        assert_reports_identical(
            &warm,
            fleet_reports[0],
            &format!("{} warm vs fleet", bug.name),
        );
    }
}

/// The sharded-store acceptance bar, per bug: a 4-shard store serves a
/// warm run entirely from cache, with a report bit-identical to the
/// single-`MemoryStore` warm run (equivalence, not wall time — CI has
/// one CPU). The sharded copy is populated by migrating the single
/// store's entries through the consistent-hash router, pinning that
/// partitioning never changes what a key returns.
#[test]
fn sharded_store_warm_runs_match_the_single_store_for_every_bug() {
    for bug in all_bugs() {
        let (program, sf) = stress_bug(&bug);
        let input = bug.default_input();
        let opts = options(Algorithm::ChessX, Strategy::Temporal);

        // Cold run populates a single unbounded MemoryStore.
        let single = Arc::new(MemoryStore::unbounded());
        let mut cold = ReproSession::new(&program, sf.dump.clone(), &input, opts.clone()).unwrap();
        cold.set_store(Arc::clone(&single) as Arc<dyn ArtifactStore>);
        cold.run_to_end()
            .unwrap_or_else(|e| panic!("{}: cold run failed: {e}", bug.name));

        // Migrate the warm entries into a 4-shard composite (the
        // re-partitioning path a scaling deployment takes) — streamed
        // entry by entry via `for_each_entry`, so the migration never
        // clones the whole store.
        let sharded = Arc::new(ShardedStore::with_memory_shards(4));
        single.for_each_entry(|key, bytes| sharded.put(key, bytes));
        assert_eq!(
            sharded.stats().entries,
            PHASES.len() + 2 * program.funcs.len(),
            "{}: five phase artifacts plus one compile and one analysis unit per function",
            bug.name
        );

        // Warm run against the single store…
        let mut warm_single =
            ReproSession::new(&program, sf.dump.clone(), &input, opts.clone()).unwrap();
        warm_single.set_store(Arc::clone(&single) as Arc<dyn ArtifactStore>);
        let log_single = Arc::new(std::sync::Mutex::new(mcr_core::TimingLog::new()));
        warm_single.set_observer(Box::new(Arc::clone(&log_single)));
        let report_single = warm_single.run_to_end().unwrap();
        assert_eq!(
            log_single.lock().unwrap().cache_hits(),
            PHASES,
            "{}: single-store warm run must be all hits",
            bug.name
        );

        // …and against the sharded store: all hits, bit-identical.
        let mut warm_sharded =
            ReproSession::new(&program, sf.dump.clone(), &input, opts.clone()).unwrap();
        warm_sharded.set_store(Arc::clone(&sharded) as Arc<dyn ArtifactStore>);
        let log_sharded = Arc::new(std::sync::Mutex::new(mcr_core::TimingLog::new()));
        warm_sharded.set_observer(Box::new(Arc::clone(&log_sharded)));
        let report_sharded = warm_sharded.run_to_end().unwrap();
        assert_eq!(
            log_sharded.lock().unwrap().cache_hits(),
            PHASES,
            "{}: sharded warm run must be all hits",
            bug.name
        );
        assert_reports_identical(
            &report_single,
            &report_sharded,
            &format!("{} sharded vs single warm", bug.name),
        );
        // Each key routed to exactly one shard; the shards together
        // served the five phase lookups plus the per-function plan-unit
        // rehydrations (a fully-warm run never resolves the analysis,
        // so its units are never fetched).
        let shard_hits: u64 = sharded.shards().iter().map(|s| s.stats().hits).sum();
        assert_eq!(
            shard_hits,
            (PHASES.len() + program.funcs.len()) as u64,
            "{}",
            bug.name
        );
    }
}

/// A warm cache survives a process hop: exporting the fleet's artifacts
/// through the `BytesStore` wire snapshot and importing them elsewhere
/// still serves every phase from cache.
#[test]
fn persisted_store_snapshot_keeps_serving_hits() {
    let bug = mcr_workloads::bug_by_name("mysql-3").unwrap();
    let (program, sf) = stress_bug(&bug);
    let input = bug.default_input();
    let opts = options(Algorithm::ChessX, Strategy::Temporal);

    // Populate a persistable store with one full run.
    let bytes_store = Arc::new(BytesStore::new());
    let mut session = ReproSession::new(&program, sf.dump.clone(), &input, opts.clone()).unwrap();
    session.set_store(bytes_store.clone());
    let original = session.run_to_end().unwrap();

    // Snapshot → bytes → fresh store, as a second triage worker would.
    let snapshot = bytes_store.to_bytes();
    let restored: Arc<dyn ArtifactStore> = Arc::new(BytesStore::from_bytes(&snapshot).unwrap());
    let mut warm = ReproSession::new(&program, sf.dump, &input, opts).unwrap();
    warm.set_store(restored);
    let log = Arc::new(std::sync::Mutex::new(mcr_core::TimingLog::new()));
    warm.set_observer(Box::new(Arc::clone(&log)));
    let rehydrated = warm.run_to_end().unwrap();
    assert_eq!(log.lock().unwrap().cache_hits(), PHASES);
    assert_reports_identical(&original, &rehydrated, "snapshot hop");
}

/// Distinct jobs in one fleet never cross-contaminate: different inputs
/// produce different phase keys and independently correct reports.
#[test]
fn fleet_mixing_distinct_bugs_matches_solo_runs() {
    let picks = ["apache-2", "mysql-1"];
    let mut programs = Vec::new();
    let mut prepared = Vec::new();
    for name in picks {
        let bug = mcr_workloads::bug_by_name(name).unwrap();
        let (program, sf) = stress_bug(&bug);
        programs.push(program);
        prepared.push((bug, sf));
    }
    let opts = options(Algorithm::ChessX, Strategy::Temporal);
    let mut solos = Vec::new();
    for (i, (bug, sf)) in prepared.iter().enumerate() {
        solos.push(
            Reproducer::new(&programs[i], opts.clone())
                .reproduce(&sf.dump, &bug.default_input())
                .unwrap(),
        );
    }

    let config = FleetConfig::default();
    let mut fleet = Fleet::new(config);
    for (i, (bug, sf)) in prepared.iter().enumerate() {
        fleet.push(
            FleetJob::new(
                bug.name,
                &programs[i],
                sf.dump.clone(),
                &bug.default_input(),
            )
            .with_options(opts.clone()),
        );
    }
    let outcome = fleet.run();
    assert_eq!(outcome.summary.completed, 2);
    // Nothing shared between distinct bugs: no dedup, no cache hits.
    assert_eq!(outcome.summary.deduped_in_flight, 0);
    assert_eq!(outcome.summary.cache_hits, 0);
    assert_eq!(outcome.summary.computed, 10);
    for (i, (bug, _)) in prepared.iter().enumerate() {
        let job = outcome.job(bug.name).expect("job present");
        assert_reports_equal(
            job.result.as_ref().unwrap(),
            &solos[i],
            &format!("{} fleet vs solo", bug.name),
        );
        // The per-job observer stream saw five executed phases.
        let finished = job
            .events
            .iter()
            .filter(|e| matches!(e, PhaseEvent::Finished { .. }))
            .count();
        assert_eq!(finished, 5, "{}", bug.name);
    }
}

/// `ReproOptions::store` plumbs caching through the one-call
/// `Reproducer` API too — a service does not need the session layer to
/// benefit.
#[test]
fn reproducer_with_store_caches_across_calls() {
    let bug = mcr_workloads::bug_by_name("mysql-5").unwrap();
    let (program, sf) = stress_bug(&bug);
    let input = bug.default_input();
    let store: Arc<dyn ArtifactStore> = Arc::new(MemoryStore::unbounded());
    let mut opts = options(Algorithm::ChessX, Strategy::Temporal);
    opts.store = Some(Arc::clone(&store));
    let reproducer = Reproducer::new(&program, opts);
    let first = reproducer.reproduce(&sf.dump, &input).unwrap();
    let before = store.stats();
    let cold_inserts = (5 + program.funcs.len()) as u64;
    assert_eq!(
        before.inserts, cold_inserts,
        "five phases plus one plan unit per function (the reproducer \
         seeds the analysis, so no analysis units are written)"
    );
    let second = reproducer.reproduce(&sf.dump, &input).unwrap();
    let after = store.stats();
    assert_eq!(after.inserts, cold_inserts, "second run inserted nothing");
    assert_eq!(
        after.hits,
        before.hits + cold_inserts,
        "second run was all hits"
    );
    assert_reports_identical(&first, &second, "reproducer warm");
}

/// The dispatch-plan cache (the `Phase::Compile` pre-phase): segmented
/// into per-function units keyed by function fingerprint, an identical
/// program rehydrates every unit bit-identically — and the assembled
/// plan equals a whole-program compile — while mutating one function
/// moves exactly that function's key and recompiles exactly one unit.
#[test]
fn dispatch_plan_cache_rehydrates_and_invalidates_by_fingerprint() {
    let (program, sf) = mcr_testsupport::fig1_failure();
    let input = mcr_testsupport::FIG1_INPUT;
    let opts = options(Algorithm::ChessX, Strategy::Temporal);
    let store: Arc<dyn ArtifactStore> = Arc::new(MemoryStore::unbounded());
    let funcs = program.funcs.len() as u64;

    // Cold: the pre-phase compiles and caches one plan unit per
    // function.
    let mut cold = ReproSession::new(&program, sf.dump.clone(), &input, opts.clone()).unwrap();
    cold.set_store(Arc::clone(&store));
    cold.run_phase(Phase::Compile).unwrap();
    let keys = cold.compile_unit_keys();
    assert_eq!(keys.len() as u64, funcs, "one unit key per function");
    assert_eq!(store.stats().phase(Phase::Compile).inserts, funcs);
    // The cached units rehydrate and assemble into exactly the bytes a
    // fresh whole-program compile serializes to.
    let units: Vec<mcr_vm::FunctionPlan> = keys
        .iter()
        .map(|key| {
            let artifact = CompiledPlanArtifact::from_bytes(&store.get(key).expect("unit cached"))
                .expect("artifact decodes");
            mcr_vm::FunctionPlan::from_bytes(&artifact.plan_bytes).expect("unit decodes")
        })
        .collect();
    assert_eq!(
        mcr_vm::DispatchPlan::assemble(&units).to_bytes(),
        mcr_vm::DispatchPlan::compile(&program).to_bytes(),
        "assembled units are bit-identical to a whole-program compile"
    );

    // Warm: an identical program in a fresh session rehydrates every
    // unit without recompiling, and the stored bytes are untouched.
    let mut warm = ReproSession::new(&program, sf.dump.clone(), &input, opts.clone()).unwrap();
    warm.set_store(Arc::clone(&store));
    warm.run_phase(Phase::Compile).unwrap();
    let compile_stats = store.stats().phase(Phase::Compile);
    assert_eq!(
        compile_stats.inserts, funcs,
        "identical program never recompiles"
    );
    assert!(
        compile_stats.hits >= funcs,
        "warm session rehydrated every unit"
    );
    assert_eq!(
        warm.function_unit_stats(),
        FuncUnitStats {
            compile_hits: funcs,
            ..FuncUnitStats::default()
        },
        "the warm session accounted one unit hit per function"
    );

    // Mutate one function: only its fingerprint (and key) move, so
    // exactly one unit is recompiled — the rest rehydrate.
    let mutated_src =
        mcr_testsupport::FIG1.replace("fn T2() { x = 0; }", "fn T2() { x = 0; x = 0; }");
    let mutated = mcr_lang::compile(&mutated_src).expect("mutated source compiles");
    assert_ne!(
        program_fingerprint(&program),
        program_fingerprint(&mutated),
        "one mutated function must change the program fingerprint"
    );
    let mut miss = ReproSession::new(&mutated, sf.dump.clone(), &input, opts).unwrap();
    miss.set_store(Arc::clone(&store));
    let mutated_keys = miss.compile_unit_keys();
    let moved: Vec<usize> = keys
        .iter()
        .zip(&mutated_keys)
        .enumerate()
        .filter(|(_, (a, b))| a != b)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(moved, vec![2], "only T2's unit key moves");
    miss.run_phase(Phase::Compile).unwrap();
    assert_eq!(
        store.stats().phase(Phase::Compile).inserts,
        funcs + 1,
        "the fingerprint miss recompiled exactly one unit"
    );
    assert_eq!(
        miss.function_unit_stats(),
        FuncUnitStats {
            compile_hits: funcs - 1,
            compile_computed: 1,
            ..FuncUnitStats::default()
        },
        "unedited functions rehydrated, the edited one recompiled"
    );
    let mutated_artifact =
        CompiledPlanArtifact::from_bytes(&store.get(&mutated_keys[2]).unwrap()).unwrap();
    assert_eq!(
        mcr_vm::FunctionPlan::from_bytes(&mutated_artifact.plan_bytes).unwrap(),
        mcr_vm::FunctionPlan::compile(&mutated.funcs[2]),
        "the recompiled unit is the mutated function's own"
    );
}
