//! PR 2's performance-engine contracts:
//!
//! * **Parallel ≡ serial.** The work-stealing search driver
//!   (`SearchConfig::parallelism` / `ReproOptions::parallelism`) and the
//!   parallel stress scan select deterministic winners (lowest worklist
//!   index, lowest seed), so `parallelism = 1` and `parallelism = 4`
//!   must produce the same `reproduced` flag, try count, and winning
//!   schedule for every bug in the suite — and that schedule must
//!   actually replay to the target failure.
//! * **COW checkpoints are isolated.** `Vm::clone` shares globals, heap,
//!   and frames copy-on-write; mutating either copy (stepping it mutates
//!   all three state classes) must never leak into the other.

use mcr_core::{find_failure, find_failure_par, ReproOptions, Reproducer};
use mcr_dump::{CoreDump, DumpReason};
use mcr_search::{Algorithm, Budget, Guidance, SearchConfig, SearchResult, TestRun};
use mcr_slice::Strategy;
use mcr_testsupport::{search_max_tries, stress_bug};
use mcr_vm::{run_until, DispatchPlan, Recorder, StressScheduler, ThreadId, Vm};
use mcr_workloads::all_bugs;
use proptest::prelude::*;

fn winning_points(r: &SearchResult) -> Option<Vec<mcr_search::PreemptionPoint>> {
    r.winning
        .as_ref()
        .map(|w| w.iter().map(|c| c.point).collect())
}

/// Satellite: for every bug in `mcr-workloads`, a 4-way-parallel guided
/// search reports exactly what the serial search reports, and the winning
/// schedule replays to the recorded failure.
#[test]
fn parallel_and_serial_reproduction_are_identical() {
    for bug in all_bugs() {
        let (program, sf) = stress_bug(&bug);
        let input = bug.default_input();
        let reproduce = |parallelism: usize| {
            let reproducer = Reproducer::new(
                &program,
                ReproOptions {
                    strategy: Strategy::Temporal,
                    algorithm: Algorithm::ChessX,
                    search: SearchConfig {
                        max_tries: search_max_tries(),
                        ..Default::default()
                    },
                    parallelism,
                    ..Default::default()
                },
            );
            reproducer
                .reproduce(&sf.dump, &input)
                .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", bug.name))
        };
        let serial = reproduce(1);
        let parallel = reproduce(4);

        assert_eq!(
            serial.search.reproduced, parallel.search.reproduced,
            "{}: reproduced flag diverged",
            bug.name
        );
        assert_eq!(
            serial.search.tries, parallel.search.tries,
            "{}: try counts diverged",
            bug.name
        );
        assert_eq!(
            serial.search.combinations_tested, parallel.search.combinations_tested,
            "{}: combination counts diverged",
            bug.name
        );
        assert_eq!(
            winning_points(&serial.search),
            winning_points(&parallel.search),
            "{}: winning schedules diverged",
            bug.name
        );
        assert!(
            parallel.search.reproduced,
            "{}: suite bug must reproduce",
            bug.name
        );

        // The (shared) winning schedule replays standalone to the same
        // failure — the reproduction is usable, not just reported.
        let winning = parallel.search.winning.expect("reproduced");
        let fresh = Vm::new(&program, &input);
        let replay = TestRun {
            fresh_vm: &fresh,
            preemptions: &winning,
            target: sf.dump.failure().unwrap(),
            guidance: Guidance::All,
            future: &Default::default(),
        };
        let mut budget = Budget::with_tries(1_000, bug.max_steps);
        assert!(
            replay.execute(&mut budget),
            "{}: winning schedule must replay",
            bug.name
        );
    }
}

/// The parallel stress scan finds the same (lowest) seed, dump, and
/// counters as the serial scan, for every bug.
#[test]
fn parallel_stress_scan_is_deterministic() {
    for bug in all_bugs() {
        let program = bug.compile();
        let input = bug.default_input();
        let cap = mcr_testsupport::stress_seed_cap();
        let serial = find_failure(&program, &input, 0..cap, bug.max_steps)
            .unwrap_or_else(|| panic!("{}: serial stress found nothing", bug.name));
        let parallel = find_failure_par(&program, &input, 0..cap, bug.max_steps, 4)
            .unwrap_or_else(|| panic!("{}: parallel stress found nothing", bug.name));
        assert_eq!(serial.seed, parallel.seed, "{}", bug.name);
        assert_eq!(serial.seeds_tried, parallel.seeds_tried, "{}", bug.name);
        assert_eq!(serial.steps, parallel.steps, "{}", bug.name);
        assert_eq!(serial.instrs, parallel.instrs, "{}", bug.name);
        assert_eq!(serial.dump, parallel.dump, "{}", bug.name);
    }
}

/// A program whose every step mutates checkpoint-shared state: global
/// scalars and arrays, heap objects (old and fresh), and call frames
/// (locals + recursion depth) across two racing threads.
const MUTATOR: &str = r#"
    global table: [int; 8];
    global total: int;
    global head: ptr;
    fn push(v, depth) {
        var node;
        if (depth > 0) {
            push(v + 1, depth - 1);
        }
        node = alloc(2);
        node[0] = v;
        node[1] = head;
        head = node;
        total = total + v;
    }
    fn churn(k) {
        var i;
        while (i < 12) {
            i = i + 1;
            table[(k + i) % 8] = table[(k + i) % 8] + i;
            if (head != null) {
                head[0] = head[0] + k;
            }
        }
    }
    fn worker() {
        var j;
        while (j < 3) {
            j = j + 1;
            push(j * 10, 1);
            churn(j);
        }
    }
    fn main() {
        var a; var b;
        a = spawn worker();
        b = spawn worker();
        push(1, 2);
        join a;
        join b;
    }
"#;

/// Deep snapshot of every COW-shared state class.
fn snapshot(vm: &Vm<'_>) -> CoreDump {
    CoreDump::capture(vm, ThreadId(0), DumpReason::Manual)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Satellite: extends `clone_checkpoints_are_independent` into a
    /// property — checkpoint a random prefix of a random interleaving,
    /// then mutate heap/globals/frames on *either* side of the fork and
    /// assert the other side is bit-identical to its snapshot.
    #[test]
    fn cow_checkpoints_are_fully_isolated(
        split in 1u64..120,
        extra in 1u64..300,
        pick in 0usize..64,
    ) {
        let program = mcr_lang::compile(MUTATOR).unwrap();
        let seeds = mcr_testsupport::seeds("cow-isolation", 64);
        let seed = seeds[pick];

        // Run a random interleaving for `split` steps, then checkpoint.
        let mut vm = Vm::new(&program, &[]);
        let mut sched = StressScheduler::new(seed);
        run_until(
            &mut vm,
            &mut sched,
            &mut mcr_vm::NullObserver,
            1_000_000,
            |vm| vm.steps() >= split,
        );
        let checkpoint = vm.clone();
        let checkpoint_snap = snapshot(&checkpoint);

        // Mutate the original past the fork: every step writes globals,
        // heap slots, or frame locals. The checkpoint must not move.
        run_until(
            &mut vm,
            &mut sched,
            &mut mcr_vm::NullObserver,
            1_000_000,
            |v| v.steps() >= split + extra,
        );
        prop_assert_eq!(&snapshot(&checkpoint), &checkpoint_snap);

        // Now mutate the checkpoint (different interleaving); the
        // original must not move either.
        let original_snap = snapshot(&vm);
        let mut forked = checkpoint;
        let mut sched2 = StressScheduler::new(seed ^ 0xD15EA5E);
        run_until(
            &mut forked,
            &mut sched2,
            &mut mcr_vm::NullObserver,
            1_000_000,
            |v| v.steps() >= split + extra,
        );
        prop_assert_eq!(&snapshot(&vm), &original_snap);
        // And the fork really did diverge from its own snapshot (the
        // mutations were not no-ops), unless it immediately finished.
        if forked.steps() > split {
            prop_assert_ne!(&snapshot(&forked), &checkpoint_snap);
        }
    }
}

/// The segmented dispatch plan is a pure refactoring of the whole-
/// program compile, for every bug in the suite: compiling each function
/// to its own `FunctionPlan` unit, round-tripping every unit through its
/// independent wire encoding, and assembling the rehydrated units yields
/// a plan whose serialized bytes are bit-identical to
/// `DispatchPlan::compile` — so a cache may mix rehydrated and freshly
/// compiled units freely without perturbing execution.
#[test]
fn segmented_plans_assemble_bit_identically_for_every_bug() {
    for bug in all_bugs() {
        let program = bug.compile();
        let whole = DispatchPlan::compile(&program).to_bytes();

        let units: Vec<mcr_vm::FunctionPlan> = program
            .funcs
            .iter()
            .map(|func| {
                let unit = mcr_vm::FunctionPlan::compile(func);
                let rehydrated = mcr_vm::FunctionPlan::from_bytes(&unit.to_bytes())
                    .unwrap_or_else(|| panic!("{}: unit decode failed", bug.name));
                assert_eq!(unit, rehydrated, "{}: unit round-trip", bug.name);
                rehydrated
            })
            .collect();
        assert_eq!(
            DispatchPlan::assemble(&units).to_bytes(),
            whole,
            "{}: assembled units must be bit-identical to the \
             whole-program compile",
            bug.name
        );

        // A mixed assembly — half fresh, half rehydrated — is the cache's
        // steady state; it must be indistinguishable too.
        let mixed: Vec<mcr_vm::FunctionPlan> = program
            .funcs
            .iter()
            .enumerate()
            .map(|(i, func)| {
                let unit = mcr_vm::FunctionPlan::compile(func);
                if i % 2 == 0 {
                    mcr_vm::FunctionPlan::from_bytes(&unit.to_bytes()).unwrap()
                } else {
                    unit
                }
            })
            .collect();
        assert_eq!(
            DispatchPlan::assemble(&mixed).to_bytes(),
            whole,
            "{}: mixed fresh/rehydrated assembly",
            bug.name
        );
    }
}

/// Tentpole: the direct-threaded dispatch plan executes bit-identically
/// to the legacy per-step interpreter for every bug in the suite — same
/// event stream, step/instruction counts, outputs, failure, and final
/// globals — under the canonical deterministic schedule and a spread of
/// stress schedules.
#[test]
fn threaded_dispatch_matches_legacy_interpreter_for_every_bug() {
    for bug in all_bugs() {
        let program = bug.compile();
        let input = bug.default_input();
        let plan = std::sync::Arc::new(DispatchPlan::compile(&program));
        let stats = plan.stats();
        assert!(stats.ops > 0, "{}: empty plan", bug.name);

        let mut schedules: Vec<Box<dyn FnMut() -> Box<dyn mcr_vm::Scheduler>>> =
            vec![Box::new(|| {
                Box::new(mcr_vm::DeterministicScheduler::new()) as Box<dyn mcr_vm::Scheduler>
            })];
        for seed in mcr_testsupport::seeds(bug.name, 4) {
            schedules.push(Box::new(move || {
                Box::new(StressScheduler::new(seed)) as Box<dyn mcr_vm::Scheduler>
            }));
        }

        for (si, make_sched) in schedules.iter_mut().enumerate() {
            let mut legacy = Vm::new(&program, &input);
            let mut legacy_rec = Recorder::default();
            let legacy_out = mcr_vm::run(
                &mut legacy,
                &mut *make_sched(),
                &mut legacy_rec,
                bug.max_steps,
            );

            let mut threaded = Vm::new(&program, &input).with_plan(std::sync::Arc::clone(&plan));
            let mut threaded_rec = Recorder::default();
            let threaded_out = mcr_vm::run(
                &mut threaded,
                &mut *make_sched(),
                &mut threaded_rec,
                bug.max_steps,
            );

            let ctx = format!("{} schedule #{si}", bug.name);
            assert_eq!(legacy_out, threaded_out, "{ctx}: outcome diverged");
            assert_eq!(
                legacy_rec.events, threaded_rec.events,
                "{ctx}: event stream diverged"
            );
            assert_eq!(legacy.steps(), threaded.steps(), "{ctx}: step count");
            assert_eq!(legacy.instrs(), threaded.instrs(), "{ctx}: instr count");
            assert_eq!(legacy.failure(), threaded.failure(), "{ctx}: failure");
            assert_eq!(legacy.outputs(), threaded.outputs(), "{ctx}: outputs");
            assert_eq!(legacy.globals(), threaded.globals(), "{ctx}: final globals");
        }
    }
}
