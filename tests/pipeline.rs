//! End-to-end integration tests: the full reproduction pipeline across
//! all crates, run on the complete bug suite.

use mcr_core::{passes_deterministically, Reproducer};
use mcr_search::Algorithm;
use mcr_slice::Strategy;
use mcr_testsupport::{repro_options as options, stress_bug};
use mcr_workloads::all_bugs;

/// The central claim of the paper, end to end: every bug in the suite is
/// a Heisenbug (passes deterministically), produces a failure dump under
/// stress, and is reproduced by the dump-directed search.
#[test]
fn every_bug_reproduces_with_chessx_temporal() {
    for bug in all_bugs() {
        let (program, sf) = stress_bug(&bug);
        let input = bug.default_input();
        assert!(
            passes_deterministically(&program, &input, bug.max_steps),
            "{}: not a Heisenbug",
            bug.name
        );
        let reproducer = Reproducer::new(&program, options(Algorithm::ChessX, Strategy::Temporal));
        let report = reproducer.reproduce(&sf.dump, &input).unwrap();
        assert!(
            report.search.reproduced,
            "{}: not reproduced (tries {})",
            bug.name, report.search.tries
        );
        // The winning schedule respects the paper's preemption bound.
        assert!(report.search.winning.as_ref().unwrap().len() <= 2);
    }
}

#[test]
fn every_bug_reproduces_with_chessx_dependence() {
    for bug in all_bugs() {
        let (program, sf) = stress_bug(&bug);
        let input = bug.default_input();
        let reproducer =
            Reproducer::new(&program, options(Algorithm::ChessX, Strategy::Dependence));
        let report = reproducer.reproduce(&sf.dump, &input).unwrap();
        assert!(
            report.search.reproduced,
            "{}: not reproduced with dependence strategy",
            bug.name
        );
    }
}

/// The paper's headline comparison on a representative subset: the
/// directed search needs no more tries than plain CHESS.
#[test]
fn directed_search_never_loses_to_plain_chess() {
    // Pinned to SC regardless of the MCR_TEST_MEMMODEL matrix: the
    // order-of-magnitude headline is a claim about the *directed*
    // search. Under TSO flush preemptions are deliberately unguided
    // (passing-run CSV sets under-approximate at flush anchors), so
    // the guided/plain gap legitimately narrows there. The stress
    // dump is built under SC too, so the whole comparison stays in
    // one environment.
    let sc = |algorithm| mcr_core::ReproOptions {
        mem_model: mcr_vm::MemModel::Sc,
        ..options(algorithm, Strategy::Temporal)
    };
    for name in ["apache-2", "mysql-1", "mysql-3"] {
        let bug = mcr_workloads::bug_by_name(name).unwrap();
        let program = bug.compile();
        let input = bug.default_input();
        let sf = mcr_core::find_failure(
            &program,
            &input,
            0..mcr_testsupport::stress_seed_cap(),
            bug.max_steps,
        )
        .unwrap();

        let guided = Reproducer::new(&program, sc(Algorithm::ChessX))
            .reproduce(&sf.dump, &input)
            .unwrap();
        let plain = Reproducer::new(&program, sc(Algorithm::Chess))
            .reproduce(&sf.dump, &input)
            .unwrap();
        assert!(guided.search.reproduced, "{name}: guided failed");
        assert!(
            guided.search.tries <= plain.search.tries,
            "{name}: guided {} > plain {}",
            guided.search.tries,
            plain.search.tries
        );
        // The reduction is substantial (order of magnitude on this subset).
        if plain.search.reproduced {
            assert!(
                guided.search.tries * 10 <= plain.search.tries.max(10),
                "{name}: guided {} vs plain {}",
                guided.search.tries,
                plain.search.tries
            );
        }
    }
}

/// The pipeline is deterministic end to end: same dump, same input, same
/// report (timings excluded).
#[test]
fn pipeline_is_deterministic() {
    let bug = mcr_workloads::bug_by_name("mysql-3").unwrap();
    let (program, sf) = stress_bug(&bug);
    let input = bug.default_input();
    let run = || {
        let reproducer = Reproducer::new(&program, options(Algorithm::ChessX, Strategy::Temporal));
        reproducer.reproduce(&sf.dump, &input).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.index, b.index);
    assert_eq!(a.alignment, b.alignment);
    assert_eq!(a.csv_paths, b.csv_paths);
    assert_eq!(a.search.tries, b.search.tries);
    assert_eq!(
        a.search.winning.as_ref().map(std::vec::Vec::len),
        b.search.winning.as_ref().map(std::vec::Vec::len)
    );
}

/// The spilled dependence trace changes residency, never results: a run
/// whose trace collector spills sealed frames into segmented containers
/// (an in-memory tail of 64 events against a trace window of millions)
/// agrees with the all-in-memory run on every observable, and the
/// artifacts it cached rehydrate an in-memory run bit-identically —
/// timings included. The smoke tier pins one representative bug; the
/// full tier sweeps the suite.
#[test]
fn spilled_trace_runs_match_in_memory_runs() {
    use mcr_core::{ArtifactStore, MemoryStore};
    use std::sync::Arc;

    let bugs = match mcr_testsupport::tier() {
        mcr_testsupport::Tier::Full => all_bugs(),
        mcr_testsupport::Tier::Smoke => vec![mcr_workloads::bug_by_name("mysql-3").unwrap()],
    };
    for bug in bugs {
        let (program, sf) = stress_bug(&bug);
        let input = bug.default_input();

        // The spilling run computes every artifact into a shared store.
        let store: Arc<dyn ArtifactStore> = Arc::new(MemoryStore::unbounded());
        let mut spill_opts = options(Algorithm::ChessX, Strategy::Temporal);
        spill_opts.store = Some(Arc::clone(&store));
        spill_opts.trace_spill = mcr_slice::TraceSpill::Segmented { frame_events: 64 };
        let spilled = Reproducer::new(&program, spill_opts)
            .reproduce(&sf.dump, &input)
            .unwrap_or_else(|e| panic!("{}: spilled run failed: {e}", bug.name));

        // An all-in-memory cold run agrees on every observable.
        let in_memory = Reproducer::new(&program, options(Algorithm::ChessX, Strategy::Temporal))
            .reproduce(&sf.dump, &input)
            .unwrap_or_else(|e| panic!("{}: in-memory run failed: {e}", bug.name));
        mcr_testsupport::assert_reports_equivalent(
            &spilled,
            &in_memory,
            &format!("{} spilled vs in-memory", bug.name),
        );

        // And an in-memory run over the spilled run's store rehydrates
        // bit-identically: the spilled trace produced byte-identical
        // downstream artifacts, not merely equivalent ones.
        let mut warm_opts = options(Algorithm::ChessX, Strategy::Temporal);
        warm_opts.store = Some(store);
        let warm = Reproducer::new(&program, warm_opts)
            .reproduce(&sf.dump, &input)
            .unwrap_or_else(|e| panic!("{}: warm run failed: {e}", bug.name));
        assert_eq!(
            warm, spilled,
            "{}: rehydrated report must be bit-identical to the spilling run",
            bug.name
        );
    }
}

/// The failure dump survives its on-disk round trip mid-pipeline: a dump
/// decoded from bytes drives the reproduction identically.
#[test]
fn reproduction_from_reparsed_dump() {
    let bug = mcr_workloads::bug_by_name("apache-2").unwrap();
    let (program, sf) = stress_bug(&bug);
    let input = bug.default_input();
    let bytes = mcr_dump::encode(&sf.dump);
    let reparsed = mcr_dump::decode(&bytes).unwrap();
    let reproducer = Reproducer::new(&program, options(Algorithm::ChessX, Strategy::Temporal));
    let report = reproducer.reproduce(&reparsed, &input).unwrap();
    assert!(report.search.reproduced);
}

/// The winning schedule, replayed standalone, crashes with the same bug —
/// reproduction really does hand the developer a usable schedule.
#[test]
fn winning_schedule_replays_to_the_same_failure() {
    use mcr_search::{Budget, Guidance, SyncLogger, TestRun};
    use mcr_vm::{run, DeterministicScheduler, Vm};

    let bug = mcr_workloads::bug_by_name("mysql-2").unwrap();
    let (program, sf) = stress_bug(&bug);
    let input = bug.default_input();
    let reproducer = Reproducer::new(&program, options(Algorithm::ChessX, Strategy::Temporal));
    let report = reproducer.reproduce(&sf.dump, &input).unwrap();
    let winning = report.search.winning.expect("reproduced");

    // The schedule was found in the matrix environment; the standalone
    // replay must run in the same one or the candidate anchors drift.
    let model = mcr_testsupport::test_mem_model();

    // Rebuild the future map (the replay needs only the schedule).
    let mut vm = Vm::new(&program, &input).with_mem_model(model);
    let mut log = SyncLogger::new();
    run(
        &mut vm,
        &mut DeterministicScheduler::new(),
        &mut log,
        bug.max_steps,
    );
    let info = log.finish();
    let (_, future) = mcr_search::annotate(&info, &Default::default(), &Default::default());

    let fresh = Vm::new(&program, &input).with_mem_model(model);
    let replay = TestRun {
        fresh_vm: &fresh,
        preemptions: &winning,
        target: sf.dump.failure().unwrap(),
        guidance: Guidance::All,
        future: &future,
    };
    let mut budget = Budget::with_tries(100, bug.max_steps);
    assert!(replay.execute(&mut budget), "winning schedule must replay");
}
