//! The staged `ReproSession` API: checkpoint/resume equivalence across
//! the whole bug suite, artifact codec round-trips, corruption handling,
//! cancellation, and the instruction-count single-run alignment.

use mcr_core::{
    AlignMode, CancelToken, Phase, PhaseEvent, PhaseObserver, ReproError, ReproOptions,
    ReproReport, ReproSession, Reproducer,
};
use mcr_search::{Algorithm, SyncLogger};
use mcr_slice::Strategy;
use mcr_testsupport::{repro_options as options, stress_bug, FIG1, FIG1_INPUT};
use mcr_vm::{run, DeterministicScheduler, Vm};
use mcr_workloads::all_bugs;
use proptest::prelude::*;

/// Everything observable about a report except wall-clock timings.
fn assert_reports_equal(a: &ReproReport, b: &ReproReport, context: &str) {
    assert_eq!(a.index, b.index, "{context}: index");
    assert_eq!(a.alignment, b.alignment, "{context}: alignment");
    assert_eq!(
        a.failure_dump_bytes, b.failure_dump_bytes,
        "{context}: failure dump size"
    );
    assert_eq!(
        a.aligned_dump_bytes, b.aligned_dump_bytes,
        "{context}: aligned dump size"
    );
    assert_eq!(a.vars, b.vars, "{context}: vars");
    assert_eq!(a.diffs, b.diffs, "{context}: diffs");
    assert_eq!(a.shared, b.shared, "{context}: shared");
    assert_eq!(a.csv_paths, b.csv_paths, "{context}: csv paths");
    assert_eq!(a.csv_locs, b.csv_locs, "{context}: csv locs");
    assert_eq!(
        a.deterministic_repro, b.deterministic_repro,
        "{context}: deterministic_repro"
    );
    assert_eq!(
        a.search.reproduced, b.search.reproduced,
        "{context}: reproduced"
    );
    assert_eq!(a.search.tries, b.search.tries, "{context}: tries");
    assert_eq!(
        a.search.combinations_tested, b.search.combinations_tested,
        "{context}: combinations"
    );
    assert_eq!(a.search.winning, b.search.winning, "{context}: winning");
    assert_eq!(a.search.cut_off, b.search.cut_off, "{context}: cut_off");
}

/// The acceptance bar: for every bug in the suite, a session that is
/// checkpointed to bytes and resumed in fresh state after *every* phase
/// finishes to a report identical to the uninterrupted
/// `Reproducer::reproduce` run.
#[test]
fn resumed_sessions_match_uninterrupted_for_every_bug() {
    for bug in all_bugs() {
        let (program, sf) = stress_bug(&bug);
        let input = bug.default_input();
        let opts = options(Algorithm::ChessX, Strategy::Temporal);

        let reproducer = Reproducer::new(&program, opts.clone());
        let uninterrupted = reproducer.reproduce(&sf.dump, &input).unwrap();

        // Staged run with a checkpoint → bytes → resume hop between every
        // pair of phases: each resume drops all in-memory state except
        // the program, exactly like a fresh process.
        let mut session = ReproSession::new(&program, sf.dump.clone(), &input, opts).unwrap();
        session.run_index().unwrap();
        let mut phase_hops = Vec::new();
        for expected in [Phase::Index, Phase::Align, Phase::Diff, Phase::Rank] {
            assert_eq!(session.completed(), Some(expected), "{}", bug.name);
            let bytes = session.checkpoint();
            drop(session);
            session = ReproSession::resume(&program, &bytes).unwrap();
            assert_eq!(session.completed(), Some(expected), "{}", bug.name);
            phase_hops.push(bytes.len());
            match expected {
                Phase::Index => session.run_align().map(|_| ()).unwrap(),
                Phase::Align => session.run_diff().map(|_| ()).unwrap(),
                Phase::Diff => session.run_rank().map(|_| ()).unwrap(),
                Phase::Rank => session.run_search().map(|_| ()).unwrap(),
                _ => unreachable!(),
            }
        }
        let resumed = session.report().expect("complete after search");
        assert_reports_equal(&uninterrupted, &resumed, bug.name);
        // Checkpoints monotonically accumulate artifacts.
        assert!(
            phase_hops.windows(2).all(|w| w[0] < w[1]),
            "{}: checkpoint sizes {phase_hops:?}",
            bug.name
        );
    }
}

/// A complete session's checkpoint also round-trips: resuming it yields
/// the report without re-running anything.
#[test]
fn completed_session_checkpoint_carries_the_report() {
    let bug = mcr_workloads::bug_by_name("apache-2").unwrap();
    let (program, sf) = stress_bug(&bug);
    let input = bug.default_input();
    let opts = options(Algorithm::ChessX, Strategy::Temporal);
    let mut session = ReproSession::new(&program, sf.dump, &input, opts).unwrap();
    let original = session.run_to_end().unwrap();
    let bytes = session.checkpoint();
    let restored = ReproSession::resume(&program, &bytes).unwrap();
    assert!(restored.is_complete());
    assert_reports_equal(&original, &restored.report().unwrap(), "apache-2");
}

/// Any strict prefix of a checkpoint fails to resume with a codec error
/// — never a panic, never a silently partial session.
#[test]
fn truncated_checkpoints_are_rejected() {
    let program = mcr_lang::compile(FIG1).unwrap();
    let sf = mcr_core::find_failure(&program, &FIG1_INPUT, 0..200_000, 1_000_000).unwrap();
    let mut session = ReproSession::new(
        &program,
        sf.dump,
        &FIG1_INPUT,
        options(Algorithm::ChessX, Strategy::Temporal),
    )
    .unwrap();
    session.run_diff().unwrap();
    let bytes = session.checkpoint();
    // Every cut in the first chunk (framing + options), then a stride
    // through the artifact payloads.
    let stride = (bytes.len() / 509).max(1);
    let cuts = (0..64.min(bytes.len())).chain((64..bytes.len()).step_by(stride));
    for cut in cuts {
        match ReproSession::resume(&program, &bytes[..cut]) {
            Err(ReproError::Codec(_)) => {}
            other => panic!(
                "resume of {cut}-byte prefix (of {}) must fail with Codec, got {:?}",
                bytes.len(),
                other.map(|s| format!("{s:?}"))
            ),
        }
    }
}

/// A corrupted artifact surfaces `ReproError::Codec` instead of
/// panicking (the old pipeline `expect("own codec")` calls are gone).
#[test]
fn corrupted_artifacts_surface_codec_errors() {
    let program = mcr_lang::compile(FIG1).unwrap();
    let sf = mcr_core::find_failure(&program, &FIG1_INPUT, 0..200_000, 1_000_000).unwrap();
    let mut session = ReproSession::new(
        &program,
        sf.dump,
        &FIG1_INPUT,
        options(Algorithm::ChessX, Strategy::Temporal),
    )
    .unwrap();
    session.run_index().unwrap();
    let art = session.index_artifact().unwrap().clone();
    let mut bytes = art.to_bytes();
    // Artifact-level corruption: a flipped magic byte.
    bytes[0] ^= 0xff;
    assert!(mcr_core::FailureIndexArtifact::from_bytes(&bytes).is_err());

    // Session-level corruption: break the embedded failure dump's own
    // magic ("MCRD") inside the checkpoint — resume must error, not
    // panic.
    let mut ckpt = session.checkpoint();
    let dump_offset = ckpt
        .windows(4)
        .position(|w| w == b"MCRD")
        .expect("embedded dump magic");
    ckpt[dump_offset] ^= 0xff;
    let result = ReproSession::resume(&program, &ckpt);
    assert!(
        matches!(result, Err(ReproError::Codec(_))),
        "corrupted checkpoint must fail with Codec, got ok={}",
        result.is_ok()
    );
}

/// Observer that fires the session's cancel token when a chosen phase
/// starts.
struct CancelAt {
    phase: Phase,
    token: CancelToken,
}

impl PhaseObserver for CancelAt {
    fn on_event(&mut self, event: &PhaseEvent) {
        if let PhaseEvent::Started { phase } = event {
            if *phase == self.phase {
                self.token.cancel();
            }
        }
    }
}

/// Cancellation mid-search returns a *partial report* (reproduced =
/// false, cancelled = true) instead of blocking or erroring.
#[test]
fn cancellation_mid_search_returns_partial_report() {
    let program = mcr_lang::compile(FIG1).unwrap();
    let sf = mcr_core::find_failure(&program, &FIG1_INPUT, 0..200_000, 1_000_000).unwrap();
    let mut session = ReproSession::new(
        &program,
        sf.dump,
        &FIG1_INPUT,
        options(Algorithm::ChessX, Strategy::Temporal),
    )
    .unwrap();
    let token = session.cancel_token();
    session.set_observer(Box::new(CancelAt {
        phase: Phase::Search,
        token,
    }));
    let report = session.run_to_end().expect("partial report, not an error");
    assert!(!report.search.reproduced);
    assert!(report.search.cancelled);
    assert!(report.search.cut_off);
    assert_eq!(report.search.tries, 0, "cancelled before the first try");
    // The pre-search artifacts are intact and still checkpointable.
    assert!(!report.csv_locs.is_empty());
    let bytes = session.checkpoint();
    assert!(ReproSession::resume(&program, &bytes).is_ok());
}

/// Cancellation inside the align loop errors with `Cancelled(Align)` but
/// keeps the completed index artifact.
#[test]
fn cancellation_mid_align_interrupts_and_preserves_progress() {
    let program = mcr_lang::compile(FIG1).unwrap();
    let sf = mcr_core::find_failure(&program, &FIG1_INPUT, 0..200_000, 1_000_000).unwrap();
    let mut session = ReproSession::new(
        &program,
        sf.dump,
        &FIG1_INPUT,
        options(Algorithm::ChessX, Strategy::Temporal),
    )
    .unwrap();
    let token = session.cancel_token();
    session.set_observer(Box::new(CancelAt {
        phase: Phase::Align,
        token,
    }));
    match session.run_to_end() {
        Err(ReproError::Cancelled(Phase::Align)) => {}
        other => panic!("expected Cancelled(Align): {:?}", other.is_ok()),
    }
    assert_eq!(session.completed(), Some(Phase::Index));
    // The checkpoint preserves the index artifact for a later resume.
    let bytes = session.checkpoint();
    let resumed = ReproSession::resume(&program, &bytes).unwrap();
    assert_eq!(resumed.completed(), Some(Phase::Index));
}

/// The instruction-count baseline logs its single full run: the
/// passing-run info inside the alignment artifact equals an explicitly
/// logged deterministic run (the old pipeline needed a second execution
/// to get this).
#[test]
fn instruction_count_alignment_logs_in_one_run() {
    let bug = mcr_workloads::bug_by_name("mysql-1").unwrap();
    let (program, sf) = stress_bug(&bug);
    let input = bug.default_input();
    let opts = ReproOptions {
        align_mode: AlignMode::InstructionCount,
        ..options(Algorithm::ChessX, Strategy::Temporal)
    };
    let mut session = ReproSession::new(&program, sf.dump, &input, opts).unwrap();
    let artifact = session.run_align().unwrap().clone();

    // The session follows the MCR_TEST_MEMMODEL matrix; the explicitly
    // logged run must execute under the same model or the flush
    // candidates diverge.
    let mut vm = Vm::new(&program, &input).with_mem_model(mcr_testsupport::test_mem_model());
    let mut logger = SyncLogger::new();
    run(
        &mut vm,
        &mut DeterministicScheduler::new(),
        &mut logger,
        bug.max_steps,
    );
    assert_eq!(artifact.passing_run, logger.finish());
    assert!(session.index_artifact().unwrap().index.is_none());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every phase artifact survives encode → decode → re-encode
    /// byte-identically, across strategies, alignment modes, and
    /// algorithms.
    #[test]
    fn artifacts_round_trip(
        dependence in proptest::bool::ANY,
        instruction_count in proptest::bool::ANY,
        plain_chess in proptest::bool::ANY,
    ) {
        let program = mcr_lang::compile(FIG1).unwrap();
        let sf = mcr_core::find_failure(&program, &FIG1_INPUT, 0..200_000, 1_000_000).unwrap();
        let opts = ReproOptions {
            strategy: if dependence { Strategy::Dependence } else { Strategy::Temporal },
            align_mode: if instruction_count {
                AlignMode::InstructionCount
            } else {
                AlignMode::ExecutionIndex
            },
            ..options(
                if plain_chess { Algorithm::Chess } else { Algorithm::ChessX },
                Strategy::Temporal,
            )
        };
        let mut session = ReproSession::new(&program, sf.dump, &FIG1_INPUT, opts).unwrap();
        session.run_to_end().unwrap();

        let index = session.index_artifact().unwrap();
        let back = mcr_core::FailureIndexArtifact::from_bytes(&index.to_bytes()).unwrap();
        prop_assert_eq!(index, &back);
        prop_assert_eq!(index.to_bytes(), back.to_bytes());

        let align = session.alignment_artifact().unwrap();
        let back = mcr_core::AlignmentArtifact::from_bytes(&align.to_bytes()).unwrap();
        prop_assert_eq!(align, &back);
        prop_assert_eq!(align.to_bytes(), back.to_bytes());

        let delta = session.delta_artifact().unwrap();
        let back = mcr_core::DumpDeltaArtifact::from_bytes(&delta.to_bytes()).unwrap();
        prop_assert_eq!(delta, &back);
        prop_assert_eq!(delta.to_bytes(), back.to_bytes());

        let ranked = session.ranked_artifact().unwrap();
        let back = mcr_core::RankedAccessesArtifact::from_bytes(&ranked.to_bytes()).unwrap();
        prop_assert_eq!(ranked, &back);
        prop_assert_eq!(ranked.to_bytes(), back.to_bytes());

        let search = session.search_artifact().unwrap();
        let back = mcr_core::SearchArtifact::from_bytes(&search.to_bytes()).unwrap();
        prop_assert_eq!(search, &back);
        prop_assert_eq!(search.to_bytes(), back.to_bytes());

        // And the whole-session checkpoint round-trips byte-identically.
        let ckpt = session.checkpoint();
        let resumed = ReproSession::resume(&program, &ckpt).unwrap();
        prop_assert_eq!(ckpt, resumed.checkpoint());
    }
}
