//! The triage-service acceptance bar: a long-running `TriageService`
//! fed jobs *incrementally* — including submissions while earlier waves
//! are executing — produces outcomes equal to the closed-list
//! `Fleet::run` baseline for every bug in the suite; admission edge
//! cases (saturation, shutdown, cancellation of queued tickets) are
//! typed and lossless; and a proptest interleaves submit/poll/wait
//! arbitrarily without ever changing a report.

use mcr_batch::{
    AdmissionPolicy, AdmitError, Fleet, FleetConfig, FleetJob, JobOutcome, TriageService,
};
use mcr_core::{find_failure, ArtifactStore, MemoryStore, ReproError, ReproReport};
use mcr_search::Algorithm;
use mcr_slice::Strategy;
use mcr_testsupport::{
    assert_reports_equivalent as assert_reports_equal, fig1_failure, repro_options, Phase, FIG1,
    FIG1_INPUT,
};
use mcr_vm::SplitMix64;
use mcr_workloads::all_bugs;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// One bug's prepared inputs: compiled program + stressed failure dump.
struct Fixture {
    name: &'static str,
    program: mcr_lang::Program,
    dump: mcr_dump::CoreDump,
    input: Vec<i64>,
}

/// The whole Table 2 suite, compiled and stressed once per process.
fn fixtures() -> &'static [Fixture] {
    static FIXTURES: OnceLock<Vec<Fixture>> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        all_bugs()
            .iter()
            .map(|bug| {
                let (program, sf) = mcr_testsupport::stress_bug(bug);
                Fixture {
                    name: bug.name,
                    program,
                    dump: sf.dump,
                    input: bug.default_input(),
                }
            })
            .collect()
    })
}

fn options() -> mcr_core::ReproOptions {
    repro_options(Algorithm::ChessX, Strategy::Temporal)
}

/// The closed-list baseline: one `Fleet::run` over every fixture, plus
/// the (now warm) store it populated. Computed once per process.
fn baseline() -> &'static (Vec<ReproReport>, Arc<dyn ArtifactStore>) {
    static BASELINE: OnceLock<(Vec<ReproReport>, Arc<dyn ArtifactStore>)> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let store: Arc<dyn ArtifactStore> = Arc::new(MemoryStore::unbounded());
        let mut fleet = Fleet::new(FleetConfig {
            store: Arc::clone(&store),
            ..FleetConfig::default()
        });
        for f in fixtures() {
            fleet.push(
                FleetJob::new(f.name, &f.program, f.dump.clone(), &f.input).with_options(options()),
            );
        }
        let outcome = fleet.run();
        let reports = outcome
            .jobs
            .into_iter()
            .map(|j| {
                j.result
                    .unwrap_or_else(|e| panic!("baseline job failed: {e}"))
            })
            .collect();
        (reports, store)
    })
}

/// The acceptance bar: jobs trickle into a service one at a time, with
/// a scheduling wave driven between admissions (so later submissions
/// genuinely land mid-run), on an *independent* store — every outcome
/// must equal the closed-list `Fleet::run` baseline.
#[test]
fn incremental_service_matches_the_closed_list_fleet_for_every_bug() {
    let (base_reports, _) = baseline();
    let service = TriageService::new(FleetConfig::default());
    let mut tickets = Vec::new();
    for f in fixtures() {
        tickets.push(
            service
                .submit(
                    FleetJob::new(f.name, &f.program, f.dump.clone(), &f.input)
                        .with_options(options()),
                )
                .expect("unbounded admission"),
        );
        // Drive one wave before the next submission: earlier jobs are
        // mid-pipeline when later jobs are admitted.
        service.poll();
    }
    service.drain();
    let summary = service.shutdown();
    assert_eq!(summary.completed, fixtures().len());
    assert_eq!(summary.failed, 0);
    for (ticket, (f, base)) in tickets.into_iter().zip(fixtures().iter().zip(base_reports)) {
        let outcome = ticket.wait();
        assert_eq!(outcome.name, f.name);
        let report = outcome
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("{}: service job failed: {e}", f.name));
        assert_reports_equal(report, base, &format!("{} incremental vs closed", f.name));
        // Distinct bugs on a fresh store: the service computed this
        // job's pipeline itself.
        assert_eq!(outcome.computed, 5, "{}", f.name);
        assert_eq!(outcome.cache_hits, 0, "{}", f.name);
    }
}

/// Submissions racing a draining thread: the service is `Sync`, and a
/// job admitted from another thread mid-drain completes with the same
/// report as the baseline.
#[test]
fn concurrent_submission_during_drain_is_admitted_and_correct() {
    let (base_reports, warm) = baseline();
    let service = TriageService::new(FleetConfig {
        store: Arc::clone(warm),
        ..FleetConfig::default()
    });
    let fx = fixtures();
    let (first, rest) = fx.split_first().expect("suite is non-empty");
    let first_ticket = service
        .submit(
            FleetJob::new(first.name, &first.program, first.dump.clone(), &first.input)
                .with_options(options()),
        )
        .unwrap();
    let (first_outcome, rest_outcomes) = std::thread::scope(|s| {
        let service = &service;
        let submitter = s.spawn(move || {
            rest.iter()
                .map(|f| {
                    service
                        .submit(
                            FleetJob::new(f.name, &f.program, f.dump.clone(), &f.input)
                                .with_options(options()),
                        )
                        .expect("unbounded admission")
                        .wait()
                })
                .collect::<Vec<JobOutcome>>()
        });
        let first_outcome = first_ticket.wait();
        service.drain();
        (first_outcome, submitter.join().expect("submitter panicked"))
    });
    let all: Vec<&JobOutcome> = std::iter::once(&first_outcome)
        .chain(&rest_outcomes)
        .collect();
    for (outcome, base) in all.iter().zip(base_reports) {
        let report = outcome
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("{}: concurrent job failed: {e}", outcome.name));
        assert_reports_equal(
            report,
            base,
            &format!("{} concurrent vs closed", outcome.name),
        );
    }
    assert_eq!(service.summary().failed, 0);
}

/// Admission edge cases: saturation is typed and recoverable, shutdown
/// closes admission with a typed error, and draining an empty service
/// returns immediately.
#[test]
fn admission_saturation_shutdown_and_empty_drain() {
    let (program, sf) = fig1_failure();
    let (_, warm) = baseline();

    // Reject policy: the bound is jobs-pending, tied to the worker
    // budget via `admission_per_worker`.
    let config = FleetConfig {
        workers: 1,
        store: Arc::clone(warm),
        ..FleetConfig::default()
    }
    .admission_per_worker(1);
    assert_eq!(config.admission, AdmissionPolicy::Reject { max_pending: 1 });
    let service = TriageService::new(config);
    // Empty drain: returns immediately, nothing counted.
    service.drain();
    assert_eq!(service.summary().jobs, 0);

    let ticket = service
        .submit(FleetJob::new(
            "first",
            &program,
            sf.dump.clone(),
            &FIG1_INPUT,
        ))
        .unwrap();
    let refused = service
        .submit(FleetJob::new(
            "second",
            &program,
            sf.dump.clone(),
            &FIG1_INPUT,
        ))
        .expect_err("bound is full");
    assert_eq!(
        refused.reason,
        AdmitError::Saturated {
            pending: 1,
            max_pending: 1,
        }
    );
    assert_eq!(refused.job.name, "second", "refused job handed back");
    assert!(ticket.wait().result.is_ok());

    // Shutdown: admission closes with a typed error; idempotent.
    let summary = service.shutdown();
    assert_eq!(summary.jobs, 1);
    assert!(service.is_closed());
    assert_eq!(
        service
            .submit(FleetJob::new(
                "late",
                &program,
                sf.dump.clone(),
                &FIG1_INPUT
            ))
            .expect_err("admission is closed")
            .reason,
        AdmitError::ShutDown
    );
    let again = service.shutdown();
    assert_eq!(again.jobs, 1);
}

/// The telemetry→admission loop end to end: a service whose hot store
/// churns sheds every later job to the warm cold shard, and each shed
/// job's report is bit-identical — timings included — to the
/// closed-list baseline that populated that shard. Shedding changes
/// cache placement, never results.
#[test]
fn adaptive_shed_jobs_rehydrate_bit_identically_from_the_cold_shard() {
    let (base_reports, warm) = baseline();
    let fx = fixtures();
    // A hot store far too small for one job's artifacts: every insert
    // evicts, so the churn telemetry trips after the first job.
    let hot: Arc<dyn ArtifactStore> = Arc::new(MemoryStore::with_capacity(64));
    let service = TriageService::new(FleetConfig {
        store: Arc::clone(&hot),
        cold_store: Some(Arc::clone(warm)),
        admission: AdmissionPolicy::Adaptive {
            max_pending: fx.len().max(1),
            churn_permille: 250,
        },
        ..FleetConfig::default()
    });

    // Cold start: no telemetry yet, so the first job computes against
    // the hot store — and churns it.
    let first = service
        .submit(
            FleetJob::new(fx[0].name, &fx[0].program, fx[0].dump.clone(), &fx[0].input)
                .with_options(options()),
        )
        .expect("within the adaptive bound")
        .wait();
    assert_reports_equal(
        first.result.as_ref().expect("first job completed"),
        &base_reports[0],
        &format!("{} hot vs closed", fx[0].name),
    );
    assert!(hot.stats().evictions > 0, "hot store must churn");

    // The loop closes: every later admission sheds to the cold shard
    // and rehydrates its entire pipeline from the baseline's artifacts.
    for (i, f) in fx.iter().enumerate().skip(1) {
        let outcome = service
            .submit(
                FleetJob::new(f.name, &f.program, f.dump.clone(), &f.input).with_options(options()),
            )
            .expect("within the adaptive bound")
            .wait();
        let report = outcome
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("{}: shed job failed: {e}", f.name));
        assert_eq!(
            report, &base_reports[i],
            "{}: shed run must be bit-identical to the baseline",
            f.name
        );
        assert_eq!(outcome.cache_hits, 5, "{}: all phases warm", f.name);
        assert_eq!(outcome.computed, 0, "{}: nothing recomputed", f.name);
    }
    let summary = service.shutdown();
    assert_eq!(
        summary.shed as usize,
        fx.len() - 1,
        "every job after the churny first one shed"
    );
}

/// Cancellation mid-run: a queued-but-unstarted ticket is marked
/// `Cancelled` (not lost), and the live job is interrupted — every
/// ticket resolves.
#[test]
fn cancellation_mid_wave_marks_queued_tickets_cancelled() {
    let (program, sf) = fig1_failure();
    let service = TriageService::new(FleetConfig::default());
    let live = service
        .submit(FleetJob::new(
            "live",
            &program,
            sf.dump.clone(),
            &FIG1_INPUT,
        ))
        .unwrap();
    // One wave: the first job opens and runs its index phase.
    service.poll();
    assert!(!live.is_ready());
    // A second job lands in the admission queue and never starts…
    let queued = service
        .submit(FleetJob::new(
            "queued",
            &program,
            sf.dump.clone(),
            &FIG1_INPUT,
        ))
        .unwrap();
    // …because the fleet-wide token fires before the next wave.
    service.cancel_token().cancel();
    service.drain();
    let queued_outcome = queued.wait();
    assert!(
        matches!(
            queued_outcome.result,
            Err(ReproError::Cancelled(Phase::Index))
        ),
        "queued ticket must resolve as cancelled, got {:?}",
        queued_outcome.result
    );
    assert!(queued_outcome.events.is_empty(), "never started a phase");
    let live_outcome = live.wait();
    assert!(
        matches!(live_outcome.result, Err(ReproError::Cancelled(_))),
        "live job interrupted, got {:?}",
        live_outcome.result
    );
    let summary = service.summary();
    assert_eq!(summary.failed, 2);
    assert_eq!(summary.completed, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Interleaving property: any sequence of submit / poll / wait over
    /// the bug suite — submission order shuffled, waits issued against
    /// arbitrary pending tickets mid-stream — yields outcomes equal to
    /// the serial closed-list `Fleet::run` baseline. Runs against the
    /// baseline's warm store, so the scheduler paths (admission queue,
    /// wave formation, helping waiters) are exercised without
    /// recomputing pipelines every case.
    #[test]
    fn interleaved_submit_and_wait_match_the_baseline(seed in proptest::num::u64::ANY) {
        let (base_reports, warm) = baseline();
        let fx = fixtures();
        let mut rng = SplitMix64::new(seed);
        let service = TriageService::new(FleetConfig {
            store: Arc::clone(warm),
            ..FleetConfig::default()
        });

        // Shuffled submission order.
        let mut order: Vec<usize> = (0..fx.len()).collect();
        for i in (1..order.len()).rev() {
            let j = rng.next_range(0, i as i64) as usize;
            order.swap(i, j);
        }

        let mut pending: Vec<(usize, mcr_batch::JobTicket<'_, '_>)> = Vec::new();
        let mut outcomes: Vec<(usize, JobOutcome)> = Vec::new();
        for &i in &order {
            let f = &fx[i];
            let ticket = service
                .submit(
                    FleetJob::new(f.name, &f.program, f.dump.clone(), &f.input)
                        .with_options(options()),
                )
                .expect("unbounded admission");
            pending.push((i, ticket));
            // Interleave: sometimes drive a wave, sometimes block on an
            // arbitrary pending ticket, sometimes just keep submitting.
            match rng.next_range(0, 2) {
                0 => {
                    service.poll();
                }
                1 => {
                    let k = rng.next_range(0, pending.len() as i64 - 1) as usize;
                    let (idx, ticket) = pending.swap_remove(k);
                    outcomes.push((idx, ticket.wait()));
                }
                _ => {}
            }
        }
        service.drain();
        for (idx, ticket) in pending {
            outcomes.push((idx, ticket.wait()));
        }
        prop_assert_eq!(outcomes.len(), fx.len());
        for (idx, outcome) in &outcomes {
            let report = outcome
                .result
                .as_ref()
                .unwrap_or_else(|e| panic!("{}: job failed: {e}", fx[*idx].name));
            assert_reports_equal(
                report,
                &base_reports[*idx],
                &format!("{} interleaved (seed {seed})", fx[*idx].name),
            );
        }
    }
}

/// The dispatch-plan pre-phase under a fleet of near-duplicate jobs:
/// one compile per *distinct function* fleet-wide (duplicates rehydrate
/// the shared per-function plan units), and a program with one mutated
/// function is a fingerprint miss for exactly that unit — the other
/// functions' units are shared with the original program.
#[test]
fn fleet_compiles_each_distinct_program_once() {
    let (program, sf) = fig1_failure();
    // Prepare the mutant up front (it must outlive the service): one
    // function body changed, same observable race.
    let mutated_src = FIG1.replace("fn T2() { x = 0; }", "fn T2() { x = 0; x = 0; }");
    let mutated = mcr_lang::compile(&mutated_src).expect("mutated source compiles");
    let msf = find_failure(
        &mutated,
        &FIG1_INPUT,
        0..mcr_testsupport::stress_seed_cap(),
        mcr_testsupport::FIXTURE_MAX_STEPS,
    )
    .expect("mutated race still fires under stress");

    let store: Arc<dyn ArtifactStore> = Arc::new(MemoryStore::unbounded());
    let service = TriageService::new(FleetConfig {
        store: Arc::clone(&store),
        ..FleetConfig::default()
    });
    let tickets: Vec<_> = (0..3)
        .map(|i| {
            service
                .submit(FleetJob::new(
                    format!("dup#{i}"),
                    &program,
                    sf.dump.clone(),
                    &FIG1_INPUT,
                ))
                .expect("unbounded admission")
        })
        .collect();
    service.drain();
    for ticket in tickets {
        assert!(ticket.wait().result.is_ok());
    }
    let funcs = program.funcs.len() as u64;
    let compile = store.stats().phase(Phase::Compile);
    assert_eq!(
        compile.inserts, funcs,
        "one plan unit per distinct function"
    );
    assert!(
        compile.hits >= funcs,
        "duplicate jobs rehydrated the shared plan units"
    );

    let mutant_ticket = service
        .submit(FleetJob::new("mutant", &mutated, msf.dump, &FIG1_INPUT))
        .expect("unbounded admission");
    service.drain();
    assert!(mutant_ticket.wait().result.is_ok());
    let compile = store.stats().phase(Phase::Compile);
    assert_eq!(
        compile.inserts,
        funcs + 1,
        "only the mutated function recompiles — its siblings' units are \
         shared with the original program"
    );
}
