//! Ablation studies called out in DESIGN.md §5: what each ingredient of
//! the technique buys, measured on the bug suite.

use mcr_core::{find_failure, AlignMode, ReproOptions, Reproducer};
use mcr_search::Algorithm;
use mcr_slice::Strategy;
use mcr_testsupport::{repro_options, stress_bug as stress, stress_seed_cap};

fn reproduce(
    program: &mcr_lang::Program,
    bug: &mcr_workloads::BugSpec,
    sf: &mcr_core::StressFailure,
    opts: ReproOptions,
) -> mcr_core::ReproReport {
    let input = bug.default_input();
    Reproducer::new(program, opts)
        .reproduce(&sf.dump, &input)
        .unwrap()
}

fn with(algorithm: Algorithm, strategy: Strategy, align: AlignMode) -> ReproOptions {
    ReproOptions {
        align_mode: align,
        ..repro_options(algorithm, strategy)
    }
}

/// Ablation 1 — prioritization strategy. The two heuristics are
/// incomparable (the paper reports dep winning on 2/7): dependence wins
/// where recent-but-irrelevant accesses mislead the temporal ranking
/// (apache-1), temporal wins where the slice under-approximates
/// (mysql-4); on the simple bugs they tie.
#[test]
fn ablation_prioritization_strategies() {
    let apache1 = mcr_workloads::bug_by_name("apache-1").unwrap();
    let (program, sf) = stress(&apache1);
    let dep = reproduce(
        &program,
        &apache1,
        &sf,
        with(
            Algorithm::ChessX,
            Strategy::Dependence,
            AlignMode::ExecutionIndex,
        ),
    );
    let temporal = reproduce(
        &program,
        &apache1,
        &sf,
        with(
            Algorithm::ChessX,
            Strategy::Temporal,
            AlignMode::ExecutionIndex,
        ),
    );
    assert!(dep.search.reproduced && temporal.search.reproduced);
    assert!(
        dep.search.tries * 5 < temporal.search.tries,
        "apache-1: dep {} vs temporal {} — slicing must exclude the warmup churn",
        dep.search.tries,
        temporal.search.tries
    );

    let mysql4 = mcr_workloads::bug_by_name("mysql-4").unwrap();
    let (program, sf) = stress(&mysql4);
    let dep = reproduce(
        &program,
        &mysql4,
        &sf,
        with(
            Algorithm::ChessX,
            Strategy::Dependence,
            AlignMode::ExecutionIndex,
        ),
    );
    let temporal = reproduce(
        &program,
        &mysql4,
        &sf,
        with(
            Algorithm::ChessX,
            Strategy::Temporal,
            AlignMode::ExecutionIndex,
        ),
    );
    assert!(dep.search.reproduced && temporal.search.reproduced);
    assert!(
        temporal.search.tries < dep.search.tries,
        "mysql-4: temporal {} vs dep {}",
        temporal.search.tries,
        dep.search.tries
    );
}

/// Ablation 2 — execution-index vs instruction-count alignment
/// (Table 5). On mysql-5 the count-aligned dump produces a larger,
/// noisier CSV set and an order-of-magnitude search penalty.
#[test]
fn ablation_alignment_mode() {
    let bug = mcr_workloads::bug_by_name("mysql-5").unwrap();
    let (program, sf) = stress(&bug);
    let ei = reproduce(
        &program,
        &bug,
        &sf,
        with(
            Algorithm::ChessX,
            Strategy::Temporal,
            AlignMode::ExecutionIndex,
        ),
    );
    let ic = reproduce(
        &program,
        &bug,
        &sf,
        with(
            Algorithm::ChessX,
            Strategy::Temporal,
            AlignMode::InstructionCount,
        ),
    );
    assert!(ei.search.reproduced);
    // The count-aligned comparison sees a different (larger) diff.
    assert!(
        ic.diffs >= ei.diffs,
        "count alignment should not see fewer diffs: {} vs {}",
        ic.diffs,
        ei.diffs
    );
    // And pays for it in the search (when it succeeds at all).
    if ic.search.reproduced {
        assert!(
            ei.search.tries * 5 <= ic.search.tries,
            "mysql-5: EI {} vs instruction-count {}",
            ei.search.tries,
            ic.search.tries
        );
    }
}

/// Ablation 3 — guided preempt() thread selection. With identical
/// worklists (same strategy), the guided selection explores no more
/// executions than exhaustive selection on every bug.
#[test]
fn ablation_guided_thread_selection() {
    for name in ["apache-2", "mysql-2", "mysql-3"] {
        let bug = mcr_workloads::bug_by_name(name).unwrap();
        let (program, sf) = stress(&bug);
        let guided = reproduce(
            &program,
            &bug,
            &sf,
            with(
                Algorithm::ChessX,
                Strategy::Temporal,
                AlignMode::ExecutionIndex,
            ),
        );
        let plain = reproduce(
            &program,
            &bug,
            &sf,
            with(
                Algorithm::Chess,
                Strategy::Temporal,
                AlignMode::ExecutionIndex,
            ),
        );
        assert!(guided.search.reproduced, "{name}");
        assert!(
            guided.search.tries <= plain.search.tries,
            "{name}: guided {} vs unguided {}",
            guided.search.tries,
            plain.search.tries
        );
    }
}

/// Ablation 4 — preemption bound. With k = 1 the single-preemption bugs
/// still reproduce; the worklist is linear instead of quadratic.
#[test]
fn ablation_preemption_bound() {
    let bug = mcr_workloads::bug_by_name("mysql-3").unwrap();
    let (program, sf) = stress(&bug);
    let input = bug.default_input();
    let mut opts = with(
        Algorithm::ChessX,
        Strategy::Temporal,
        AlignMode::ExecutionIndex,
    );
    opts.search.preemption_bound = 1;
    let report = Reproducer::new(&program, opts)
        .reproduce(&sf.dump, &input)
        .unwrap();
    assert!(report.search.reproduced, "k=1 suffices for mysql-3");
    assert_eq!(report.search.winning.unwrap().len(), 1);
}

/// Ablation 5 — lengthened inputs grow the candidate space (the reason
/// plain CHESS degrades) without changing the directed search's cost.
#[test]
fn ablation_input_lengthening() {
    let bug = mcr_workloads::bug_by_name("apache-2").unwrap();
    let program = bug.compile();

    // Pinned to SC regardless of the MCR_TEST_MEMMODEL matrix: the
    // flat-cost claim is about the *directed* search, whose candidate
    // count is sync-anchored. Under TSO every warmup-loop sync with a
    // non-empty store buffer adds an (unguided) flush candidate, so the
    // cost legitimately scales with input length there.
    let sc = |algorithm, strategy| ReproOptions {
        mem_model: mcr_vm::MemModel::Sc,
        ..with(algorithm, strategy, AlignMode::ExecutionIndex)
    };
    let mut tries = Vec::new();
    for warmup in [20usize, 150] {
        let input = bug.lengthened_input(warmup, 42);
        let sf = find_failure(&program, &input, 0..stress_seed_cap(), bug.max_steps).unwrap();
        let guided = Reproducer::new(&program, sc(Algorithm::ChessX, Strategy::Temporal))
            .reproduce(&sf.dump, &input)
            .unwrap();
        let plain = Reproducer::new(&program, sc(Algorithm::Chess, Strategy::Temporal))
            .reproduce(&sf.dump, &input)
            .unwrap();
        assert!(guided.search.reproduced);
        tries.push((guided.search.tries, plain.search.tries));
    }
    let (g_short, p_short) = tries[0];
    let (g_long, p_long) = tries[1];
    // Plain CHESS pays for the longer run; the directed search does not.
    assert!(p_long > p_short, "plain: {p_short} -> {p_long}");
    assert!(
        g_long <= g_short + 2,
        "guided: {g_short} -> {g_long} should stay flat"
    );
}
