//! Property-based tests (proptest) over the core invariants:
//!
//! * reverse-engineered failure indices equal the online-EI ground truth,
//! * the dump codec round-trips and rejects corruption,
//! * dump diffing is reflexive and symmetric,
//! * schedulers are deterministic per seed,
//! * generated corpora always validate and census percentages total 100.

use mcr_analysis::ProgramAnalysis;
use mcr_dump::{CoreDump, DumpDiff, DumpReason};
use mcr_index::{reverse_index, Aligner, OnlineIndexer};
use mcr_vm::{
    run, run_until, DeterministicScheduler, NullObserver, Outcome, Scheduler, StressScheduler,
    ThreadId, Vm,
};
use proptest::prelude::*;

/// A parameterized single-threaded program with nested loops,
/// conditionals and a call chain, crashing at a chosen (i, j) iteration.
/// Covers every non-lossy case of Algorithm 1.
fn crash_program() -> &'static str {
    r#"
    global input: [int; 4];
    global acc: int;
    fn boom(p, d) {
        if (d > 0) {
            boom(p, d - 1);
        } else {
            p[0] = 1;
        }
    }
    fn main() {
        var i; var j; var p;
        while (i < input[0]) {
            i = i + 1;
            j = 0;
            while (j < input[1]) {
                j = j + 1;
                acc = acc + i * j;
                if (i == input[2]) {
                    if (j == input[3]) {
                        boom(null, 3);
                    }
                }
            }
        }
    }
    "#
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Algorithm 1 == online EI: the index reverse-engineered from the
    /// dump alone (PC + call stack + loop counters) equals the index the
    /// instrumented runtime maintained.
    #[test]
    fn reversed_index_equals_online_index(
        outer in 1i64..6,
        inner in 1i64..6,
        ci in 1i64..6,
        cj in 1i64..6,
    ) {
        prop_assume!(ci <= outer && cj <= inner);
        let program = mcr_lang::compile(crash_program()).unwrap();
        let analysis = ProgramAnalysis::analyze(&program);
        let input = [outer, inner, ci, cj];

        let mut vm = Vm::new(&program, &input);
        let mut indexer = OnlineIndexer::new(&program, &analysis);
        let mut sched = DeterministicScheduler::new();
        let outcome = run(&mut vm, &mut sched, &mut indexer, 1_000_000);
        prop_assert!(matches!(outcome, Outcome::Crashed(_)), "must crash: {outcome:?}");

        let online = indexer.current_index(ThreadId(0));
        let dump = CoreDump::capture_failure(&vm).unwrap();
        let reversed = reverse_index(&program, &analysis, &dump).unwrap();
        prop_assert_eq!(
            online.entries, reversed.entries,
            "online vs reversed for input {:?}", input
        );
    }

    /// The dump codec round-trips every state a run can produce.
    #[test]
    fn dump_codec_round_trip(
        vals in proptest::collection::vec(-100i64..100, 0..8),
        crash in proptest::bool::ANY,
    ) {
        let src = r#"
            global input: [int; 8];
            global input_len: int;
            global q: ptr;
            global sum: int;
            fn main() {
                var i; var p;
                p = alloc(4);
                while (i < input_len) {
                    sum = sum + input[i];
                    p[i % 4] = input[i];
                    i = i + 1;
                }
                q = p;
                if (sum > 1000000) { p = null; p[0] = 1; }
            }
        "#;
        let program = mcr_lang::compile(src).unwrap();
        let mut input = vals.clone();
        if crash && !input.is_empty() {
            input[0] = 2_000_000; // force the crash branch
        }
        let mut vm = Vm::new(&program, &input);
        run(&mut vm, &mut DeterministicScheduler::new(), &mut NullObserver, 100_000);
        let dump = match CoreDump::capture_failure(&vm) {
            Some(d) => d,
            None => CoreDump::capture(&vm, ThreadId(0), DumpReason::Manual),
        };
        let bytes = mcr_dump::encode(&dump);
        let decoded = mcr_dump::decode(&bytes).unwrap();
        prop_assert_eq!(&decoded, &dump);

        // Self-diff is empty, and diff against a different-input dump is
        // symmetric in counts.
        let diff = DumpDiff::compare(&dump, &dump);
        prop_assert_eq!(diff.diff_count(), 0);
        prop_assert_eq!(diff.csv_count(), 0);
    }

    /// Corrupting any single byte of an encoded dump either fails to
    /// decode or decodes to a different dump (the encoding is canonical).
    #[test]
    fn dump_codec_detects_corruption(flip in 5usize..200, bit in 0u8..8) {
        let src = "global a: [int; 6]; global q: ptr; fn main() { var i; for (i = 0; i < 6; i = i + 1) { a[i] = i * 7; } q = alloc(3); }";
        let program = mcr_lang::compile(src).unwrap();
        let mut vm = Vm::new(&program, &[]);
        run(&mut vm, &mut DeterministicScheduler::new(), &mut NullObserver, 100_000);
        let dump = CoreDump::capture(&vm, ThreadId(0), DumpReason::Manual);
        let mut bytes = mcr_dump::encode(&dump);
        prop_assume!(flip < bytes.len());
        bytes[flip] ^= 1 << bit;
        match mcr_dump::decode(&bytes) {
            Err(_) => {}
            Ok(decoded) => prop_assert_ne!(decoded, dump),
        }
    }

    /// Execution indices are structural, not temporal (§3's central
    /// claim): the same program crashing under two *different*
    /// interleavings yields the same reverse-engineered failure index,
    /// and that index aligns to the same point of the canonical passing
    /// run either way.
    #[test]
    fn failure_index_is_schedule_independent(
        k in 1i64..8,
        pair in 0usize..64,
    ) {
        let src = r#"
            global input: [int; 1];
            global noise: int;
            fn crashy() {
                var i; var p;
                while (i < 8) {
                    i = i + 1;
                    if (i == input[0]) { p = null; p[0] = 1; }
                }
            }
            fn churn() {
                var j;
                while (j < 6) { j = j + 1; noise = noise + j; }
            }
            fn main() { spawn crashy(); spawn churn(); }
        "#;
        let program = mcr_lang::compile(src).unwrap();
        let analysis = ProgramAnalysis::analyze(&program);
        let schedule_seeds = mcr_testsupport::seeds("schedule-independence", 128);
        let (seed_a, seed_b) = (schedule_seeds[2 * pair], schedule_seeds[2 * pair + 1]);

        let index_of = |seed: u64| {
            let mut vm = Vm::new(&program, &[k]);
            let mut sched = StressScheduler::new(seed);
            run(&mut vm, &mut sched, &mut NullObserver, 1_000_000);
            let dump = CoreDump::capture_failure(&vm)
                .expect("the crash is thread-local: it fires under every schedule");
            let index = reverse_index(&program, &analysis, &dump).unwrap();
            (dump.focus, index)
        };
        let (focus_a, index_a) = index_of(seed_a);
        let (focus_b, index_b) = index_of(seed_b);
        prop_assert_eq!(focus_a, focus_b);
        prop_assert_eq!(&index_a.entries, &index_b.entries, "seeds {} vs {}", seed_a, seed_b);

        // Both indices align the canonical passing run identically.
        let align_with = |index: &mcr_index::ExecutionIndex, focus| {
            let mut vm = Vm::new(&program, &[99]);
            let mut aligner = Aligner::new(&program, &analysis, focus, index);
            run_until(
                &mut vm,
                &mut DeterministicScheduler::new(),
                &mut aligner,
                1_000_000,
                |_| false,
            );
            aligner.finish()
        };
        prop_assert_eq!(align_with(&index_a, focus_a), align_with(&index_b, focus_b));
    }

    /// Stress schedules are pure functions of the seed.
    #[test]
    fn stress_scheduler_is_deterministic(seed in proptest::num::u64::ANY) {
        let src = r#"
            global x: int;
            fn t1() { x = x + 1; x = x + 2; }
            fn t2() { x = x * 2; }
            fn main() { spawn t1(); spawn t2(); }
        "#;
        let program = mcr_lang::compile(src).unwrap();
        let run_once = || {
            let mut vm = Vm::new(&program, &[]);
            let mut sched = StressScheduler::new(seed);
            run(&mut vm, &mut sched, &mut NullObserver, 100_000);
            (vm.steps(), vm.instrs(), format!("{:?}", vm.globals()))
        };
        prop_assert_eq!(run_once(), run_once());
    }

    /// Every generated corpus validates, analyzes, and its census
    /// percentages sum to 100.
    #[test]
    fn corpora_always_validate(seed in 0u64..1_000) {
        let profile = &mcr_workloads::small_profiles(600)[(seed % 3) as usize];
        let program = mcr_workloads::generate(profile, seed);
        prop_assert!(program.validate().is_ok());
        let analysis = ProgramAnalysis::analyze(&program);
        let census = analysis.census(&program);
        let sum = census.pct_one_cd()
            + census.pct_aggr_to_one()
            + census.pct_not_aggr()
            + census.pct_loop();
        prop_assert!((sum - 100.0).abs() < 1e-6, "sum = {sum}");
    }

    /// The deterministic scheduler always picks the same thread given the
    /// same runnable set (regression guard for the canonical-order
    /// property the search relies on).
    #[test]
    fn deterministic_scheduler_policy(ids in proptest::collection::vec(0u32..8, 1..6)) {
        let src = "global x: int; fn main() { x = 1; }";
        let program = mcr_lang::compile(src).unwrap();
        let vm = Vm::new(&program, &[]);
        let mut sched = DeterministicScheduler::new();
        let mut sorted: Vec<ThreadId> = ids.iter().map(|&i| ThreadId(i)).collect();
        sorted.sort();
        sorted.dedup();
        let first = sched.pick(&vm, &sorted);
        // Fresh scheduler picks the lowest id.
        prop_assert_eq!(first, sorted[0]);
        // And sticks with it while it remains runnable.
        let again = sched.pick(&vm, &sorted);
        prop_assert_eq!(again, first);
    }
}

/// A small multi-function program parameterized by one constant per
/// function — the unit of "editing function i" in the function-granular
/// caching properties below.
fn multi_fn_source(consts: &[i64]) -> String {
    let mut s = String::from("global x: int;\nglobal y: int;\n");
    for (i, c) in consts.iter().enumerate() {
        s.push_str(&format!(
            "fn f{i}() {{ x = x + {c}; if (x > {c}) {{ y = y - 1; }} }}\n"
        ));
    }
    s.push_str("fn main() { ");
    for i in 0..consts.len() {
        s.push_str(&format!("f{i}(); "));
    }
    s.push_str("}\n");
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single-function-edit isolation: editing one function moves
    /// exactly that function's fingerprint, compile-unit bytes, and
    /// function-scoped phase keys — every other function's identity is
    /// bit-stable — while the program's Merkle root always moves.
    #[test]
    fn single_function_edit_isolates_its_own_units(
        n in 2usize..6,
        edit in 0usize..6,
        delta in 1i64..500,
    ) {
        let edit = edit % n;
        let base_consts: Vec<i64> = (0..n as i64).map(|i| i + 1).collect();
        let mut edited_consts = base_consts.clone();
        edited_consts[edit] += delta;

        let base = mcr_lang::compile(&multi_fn_source(&base_consts)).unwrap();
        let edited = mcr_lang::compile(&multi_fn_source(&edited_consts)).unwrap();
        // The Merkle root must always move.
        prop_assert_ne!(
            mcr_lang::program_fingerprint(&base),
            mcr_lang::program_fingerprint(&edited)
        );

        for (i, (bf, ef)) in base.funcs.iter().zip(&edited.funcs).enumerate() {
            let same = i != edit;
            prop_assert_eq!(
                mcr_lang::function_fingerprint(bf) == mcr_lang::function_fingerprint(ef),
                same,
                "function {} fingerprint stability",
                i
            );
            prop_assert_eq!(
                mcr_vm::FunctionPlan::compile(bf).to_bytes()
                    == mcr_vm::FunctionPlan::compile(ef).to_bytes(),
                same,
                "function {} unit bytes stability",
                i
            );
            for phase in [mcr_core::Phase::Compile, mcr_core::Phase::Index] {
                let bk = mcr_core::PhaseKey::derive_for_function(
                    mcr_core::function_fingerprint(bf),
                    phase,
                );
                let ek = mcr_core::PhaseKey::derive_for_function(
                    mcr_core::function_fingerprint(ef),
                    phase,
                );
                prop_assert_eq!(
                    bk == ek,
                    same,
                    "function {} {:?} key stability",
                    i,
                    phase
                );
            }
        }
    }

    /// Segmented-plan rehydration: for arbitrary multi-function
    /// programs, serializing every function's plan unit, decoding it
    /// back, and assembling the rehydrated units is bit-identical to
    /// the whole-program compile.
    #[test]
    fn segmented_plan_rehydration_is_bit_identical(
        consts in proptest::collection::vec(0i64..1_000, 1..8),
    ) {
        let program = mcr_lang::compile(&multi_fn_source(&consts)).unwrap();
        let units: Vec<mcr_vm::FunctionPlan> = program
            .funcs
            .iter()
            .map(|f| {
                let unit = mcr_vm::FunctionPlan::compile(f);
                let bytes = unit.to_bytes();
                let rehydrated =
                    mcr_vm::FunctionPlan::from_bytes(&bytes).expect("unit decodes");
                assert_eq!(unit, rehydrated, "unit round-trip");
                rehydrated
            })
            .collect();
        prop_assert_eq!(
            mcr_vm::DispatchPlan::assemble(&units).to_bytes(),
            mcr_vm::DispatchPlan::compile(&program).to_bytes(),
            "assembled rehydrated units must equal the whole-program compile"
        );
    }
}

/// Lengthened inputs never change the bug-triggering tail (plain test —
/// exercised across all bugs and several seeds).
#[test]
fn lengthening_preserves_tails() {
    for bug in mcr_workloads::all_bugs() {
        for seed in 0..5 {
            for extra in [0usize, 3, 17] {
                let v = bug.lengthened_input(extra, seed);
                assert_eq!(&v[extra..], bug.base_input, "{}", bug.name);
            }
        }
    }
}

/// Soundness contract of the static race pruning (the tentpole claim):
/// enabling `static_race` must leave every bug's winning schedule
/// *bit-identical* — pruning only removes preemption candidates that
/// are provably no-ops (statically Solo anchors, where only thread 0
/// exists), so the search walks an order-preserving subsequence of the
/// same worklist. Checked three ways per bug:
///
/// 1. the pruned and unpruned reproductions agree on `reproduced` and
///    on the exact winning preemption points;
/// 2. no candidate of the *unpruned* winner would have been pruned
///    (Solo anchors never appear in a winner: preempting them is a
///    no-op, and any failing combination containing one implies a
///    smaller, earlier-sorted combination without it);
/// 3. pruning actually removed something (the warmup loops churn locks
///    before the first spawn, so every bug has Solo candidates) — a
///    vacuous prune would make this whole test meaningless.
///
/// Runs in the suite-wide memory model (`MCR_TEST_MEMMODEL=tso` drives
/// the same check through TSO flush candidates).
#[test]
fn static_race_pruning_preserves_winning_schedules() {
    use mcr_analysis::RaceAnalysis;
    use mcr_search::CandidateKind;
    use mcr_testsupport::{repro_options, stress_bug};

    let mut pruned_something = false;
    for bug in mcr_workloads::all_bugs() {
        let (program, sf) = stress_bug(&bug);
        let input = bug.default_input();
        let reproduce = |static_race: bool| {
            let mut options =
                repro_options(mcr_search::Algorithm::ChessX, mcr_slice::Strategy::Temporal);
            options.static_race = static_race;
            mcr_core::Reproducer::new(&program, options)
                .reproduce(&sf.dump, &input)
                .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", bug.name))
        };
        let unpruned = reproduce(false);
        let pruned = reproduce(true);
        assert_eq!(
            unpruned.search.reproduced, pruned.search.reproduced,
            "{}: pruning changed reproducibility",
            bug.name
        );
        let points = |r: &mcr_core::ReproReport| {
            r.search
                .winning
                .as_ref()
                .map(|w| w.iter().map(|c| c.point).collect::<Vec<_>>())
        };
        assert_eq!(
            points(&unpruned),
            points(&pruned),
            "{}: pruning changed the winning schedule",
            bug.name
        );

        // No unpruned winner contains a candidate pruning would drop.
        let verdicts = RaceAnalysis::analyze(&program);
        let verdicts = verdicts.verdicts();
        if let Some(winning) = &unpruned.search.winning {
            for c in winning {
                let droppable = !matches!(
                    c.point.kind,
                    CandidateKind::ThreadStart | CandidateKind::AfterSpawn
                ) && c.point.pc.is_some_and(|pc| verdicts.is_solo(pc));
                assert!(
                    !droppable,
                    "{}: winning candidate {} anchors at a statically Solo pc",
                    bug.name, c.point
                );
            }
        }
        if verdicts.solo_count() > 0 {
            pruned_something = true;
        }
    }
    assert!(
        pruned_something,
        "no bug had any Solo candidate — the prune never fired"
    );
}

/// The same contract through the environment-gated suite: the TSO bugs
/// run with pruning live (their fault plans are empty), and the
/// fault-injection bugs prove the automatic disable — a non-empty fault
/// plan voids the static execution model, so `static_race = true` must
/// be a no-op there, not a wrong prune.
#[test]
fn static_race_pruning_preserves_env_gated_winners() {
    use mcr_testsupport::{repro_options_env, stress_fault_bug};

    for bug in mcr_workloads::fault_bugs() {
        let (program, sf) = stress_fault_bug(&bug);
        let reproduce = |static_race: bool| {
            let mut options = repro_options_env(
                mcr_search::Algorithm::ChessX,
                mcr_slice::Strategy::Temporal,
                &bug,
            );
            options.static_race = static_race;
            mcr_core::Reproducer::new(&program, options)
                .reproduce(&sf.dump, bug.input)
                .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", bug.name))
        };
        let unpruned = reproduce(false);
        let pruned = reproduce(true);
        mcr_testsupport::assert_reports_equivalent(
            &unpruned,
            &pruned,
            &format!("{}: static_race on vs off", bug.name),
        );
    }
}
