//! The paper's worked examples, §2–§5, executed end to end.
//!
//! Each test follows one numbered walkthrough of the paper and asserts
//! the artifacts the prose describes: the Fig. 3 index tree shape, the
//! §3.3 alignment examples, the Fig. 9 annotation/priority structure,
//! and the overview reproduction of Fig. 2(c).

use mcr_analysis::ProgramAnalysis;
use mcr_core::{passes_deterministically, ReproOptions, Reproducer};
use mcr_dump::CoreDump;
use mcr_index::{reverse_index, AlignSignal, Aligner, IndexEntry};
use mcr_search::CandidateKind;
use mcr_testsupport::{fig1_failure, FIG1, FIG1_INPUT};
use mcr_vm::{run, run_until, DeterministicScheduler, NullObserver, ThreadId, Vm};

/// §2 overview, Fig. 2(a): the failure occurs in T1's *second* loop
/// iteration, inside F — and the failure index records exactly that
/// nesting (Fig. 3's shaded path: T1 -> 2T -> 2T -> 11T/12 -> F -> 17).
#[test]
fn fig3_failure_index_tree_path() {
    let (program, sf) = fig1_failure();
    let analysis = ProgramAnalysis::analyze(&program);
    let index = reverse_index(&program, &analysis, &sf.dump).unwrap();

    let t1 = program.func_by_name("T1").unwrap();
    let f = program.func_by_name("F").unwrap();
    let loop_header = program.func(t1).loops[0].header;

    // Two copies of the loop-predicate entry: the crash is in iteration 2.
    let loop_entries = index
        .entries
        .iter()
        .filter(|e| {
            matches!(e, IndexEntry::Branch { func, key, .. }
            if *func == t1 && *key == mcr_analysis::PredKey::Stmt(loop_header))
        })
        .count();
    assert_eq!(loop_entries, 2, "index: {}", index.display(&program));

    // Function nesting: T1's thread root, then F.
    let funcs: Vec<_> = index
        .entries
        .iter()
        .filter_map(|e| match e {
            IndexEntry::Func(fid) => Some(*fid),
            _ => None,
        })
        .collect();
    assert_eq!(funcs, vec![t1, f], "index: {}", index.display(&program));

    // The leaf is the crash statement inside F.
    assert_eq!(index.leaf().unwrap().func, f);
}

/// §2 / §3.3: the failure point does not occur in the passing run — the
/// runs diverge at the `!x` predicate in iteration 2 (the paper's F̄
/// point), which is the *closest* alignment.
#[test]
fn fig2b_closest_alignment_at_the_flag_predicate() {
    let (program, sf) = fig1_failure();
    let analysis = ProgramAnalysis::analyze(&program);
    let index = reverse_index(&program, &analysis, &sf.dump).unwrap();

    let mut vm = Vm::new(&program, &FIG1_INPUT);
    let mut aligner = Aligner::new(&program, &analysis, sf.dump.focus, &index);
    run_until(
        &mut vm,
        &mut DeterministicScheduler::new(),
        &mut aligner,
        1_000_000,
        |_| false,
    );
    let alignment = aligner.finish();
    assert_eq!(alignment.signal, AlignSignal::Closest);

    // Replay to the aligned point: the diverging statement is T1's
    // `if (!x)` branch (the predicate reading the flag).
    let mut replay = Vm::new(&program, &FIG1_INPUT);
    run_until(
        &mut replay,
        &mut DeterministicScheduler::new(),
        &mut NullObserver,
        1_000_000,
        |vm| vm.steps() > alignment.step,
    );
    let t1 = program.func_by_name("T1").unwrap();
    let focus = replay.thread(sf.dump.focus);
    assert_eq!(focus.pc().map(|pc| pc.func), Some(t1));
}

/// §2 / §4: "the salient value difference is on x" — the dump comparison
/// finds exactly the flag variable as the CSV.
#[test]
fn fig2_core_dump_comparison_finds_x() {
    let (program, sf) = fig1_failure();
    let reproducer = Reproducer::new(&program, ReproOptions::default());
    let report = reproducer.reproduce(&sf.dump, &FIG1_INPUT).unwrap();
    let x = program.global_by_name("x").unwrap();
    assert_eq!(report.csv_paths.len(), 1, "csvs: {:?}", report.csv_paths);
    assert_eq!(report.csv_paths[0].root, mcr_dump::PathRoot::Global(x));
}

/// §5 / Fig. 2(c): the winning schedule preempts T1 right after the
/// second lock release (the paper's Ē point) so T2's `x = 0` lands
/// before the `!x` check; one preemption suffices.
#[test]
fn fig2c_reproduction_via_release_preemption() {
    let (program, sf) = fig1_failure();
    let reproducer = Reproducer::new(&program, ReproOptions::default());
    let report = reproducer.reproduce(&sf.dump, &FIG1_INPUT).unwrap();
    assert!(report.search.reproduced);
    let winning = report.search.winning.unwrap();
    assert_eq!(winning.len(), 1);
    let pm = &winning[0].point;
    assert_eq!(pm.kind, CandidateKind::AfterRelease);
    assert_eq!(pm.tid, ThreadId(1), "T1 is preempted");
    // The second release: T1's sync ops are acquire(0) release(1)
    // acquire(2) release(3).
    assert_eq!(pm.sync_seq, 3);
    // And it is found essentially immediately.
    assert!(report.search.tries <= 3, "tries = {}", report.search.tries);
}

/// §2's precision argument: in the first iteration the call to F has the
/// same calling context (main -> T1 -> F) as the failure, but a
/// different index. Executing with input that calls F in iteration 1 and
/// crashes in iteration 2 still aligns exactly at iteration 2.
#[test]
fn calling_context_aliases_are_distinguished() {
    // input[0] = 0 makes iteration 1 call F with a valid pointer (the
    // paper's benign first-iteration call); crash in iteration 2 needs
    // the race, so instead force it deterministically via a variant
    // program where iteration 2's flag is cleared by T1 itself.
    let src = FIG1.replace("fn T2() { x = 0; }", "fn T2() { }").replace(
        "release l;\n            if (!x) { F(p); }",
        "release l;\n            x = 0;\n            if (!x) { F(p); }",
    );
    let program = mcr_lang::compile(&src).unwrap();
    let analysis = ProgramAnalysis::analyze(&program);
    // Deterministic crash: iteration 2 nulls p and x is reset.
    let mut vm = Vm::new(&program, &FIG1_INPUT);
    run(
        &mut vm,
        &mut DeterministicScheduler::new(),
        &mut NullObserver,
        1_000_000,
    );
    let dump = CoreDump::capture_failure(&vm).expect("deterministic crash");
    let index = reverse_index(&program, &analysis, &dump).unwrap();

    // Align against an identical re-execution: exact, in iteration 2 —
    // even though iteration 1 entered F with the same calling context.
    let mut vm2 = Vm::new(&program, &FIG1_INPUT);
    let mut aligner = Aligner::new(&program, &analysis, dump.focus, &index);
    run_until(
        &mut vm2,
        &mut DeterministicScheduler::new(),
        &mut aligner,
        1_000_000,
        |_| false,
    );
    let alignment = aligner.finish();
    assert_eq!(alignment.signal, AlignSignal::Exact);
    // The aligned step is the crash step of the original run.
    assert_eq!(alignment.step + 1, vm.steps());
}

/// The Heisenbug premise of the whole §2 overview, for the record.
#[test]
fn fig1_is_a_heisenbug() {
    let (program, _sf) = fig1_failure();
    assert!(passes_deterministically(
        &program,
        &FIG1_INPUT,
        mcr_testsupport::FIXTURE_MAX_STEPS
    ));
}
