//! End-to-end reproduction under non-default execution environments:
//! the TSO store-buffer bugs (SC-unreachable by construction) and the
//! fault-injection bugs (dead code without their fault plan), each
//! driven through the full dump → diff → rank → search pipeline in the
//! environment where the bug lives.

use mcr_core::{
    find_failure, find_failure_cfg, passes_deterministically_cfg, ReproOptions, Reproducer,
};
use mcr_search::Algorithm;
use mcr_slice::Strategy;
use mcr_testsupport::{
    fault_bug_env, repro_options_env, stress_fault_bug, stress_seed_cap, FIG1, FIG1_INPUT,
    FIXTURE_MAX_STEPS,
};
use mcr_vm::MemModel;
use mcr_workloads::{fault_bug_by_name, fault_bugs, EnvRequirement};

/// The weak-memory half of the paper's story, end to end: each TSO bug
/// passes deterministically even under TSO, crashes under stressed TSO
/// interleavings, and the dump-directed search reproduces it — all in
/// the same session environment.
#[test]
fn tso_bugs_reproduce_end_to_end() {
    for bug in fault_bugs() {
        if bug.requires != EnvRequirement::WeakMemory {
            continue;
        }
        let (program, sf) = stress_fault_bug(&bug);
        assert!(
            passes_deterministically_cfg(&program, bug.input, bug.max_steps, &fault_bug_env(&bug)),
            "{}: not a Heisenbug under TSO",
            bug.name
        );
        let reproducer = Reproducer::new(
            &program,
            repro_options_env(Algorithm::ChessX, Strategy::Temporal, &bug),
        );
        let report = reproducer.reproduce(&sf.dump, bug.input).unwrap();
        assert!(
            report.search.reproduced,
            "{}: not reproduced (tries {})",
            bug.name, report.search.tries
        );
        assert!(report.search.winning.as_ref().unwrap().len() <= 2);
    }
}

/// The winning TSO schedule is deterministic: reproducing twice from
/// the same dump yields the identical schedule and counts.
#[test]
fn tso_reproduction_is_deterministic() {
    let bug = fault_bug_by_name("tso-sb").unwrap();
    let (program, sf) = stress_fault_bug(&bug);
    let mk = || {
        Reproducer::new(
            &program,
            repro_options_env(Algorithm::ChessX, Strategy::Temporal, &bug),
        )
        .reproduce(&sf.dump, bug.input)
        .unwrap()
    };
    let a = mk();
    let b = mk();
    mcr_testsupport::assert_reports_equivalent(&a, &b, "tso-sb");
}

/// SC provably cannot reach the TSO failures: the same stress budget
/// that exposes each bug under TSO finds nothing under SC.
#[test]
fn tso_failures_are_unreachable_under_sc() {
    for bug in fault_bugs() {
        if bug.requires != EnvRequirement::WeakMemory {
            continue;
        }
        let program = bug.compile();
        // Under TSO the crash appears within the tier budget...
        let tso = find_failure_cfg(
            &program,
            bug.input,
            0..stress_seed_cap(),
            bug.max_steps,
            &fault_bug_env(&bug),
        );
        assert!(tso.is_some(), "{}: no TSO failure", bug.name);
        // ...and under SC the identical seed range stays silent.
        let sc = find_failure(&program, bug.input, 0..stress_seed_cap(), bug.max_steps);
        assert!(sc.is_none(), "{}: crashed under SC", bug.name);
    }
}

/// The fault-injection bugs complete the same pipeline: injected
/// allocation failures / lock timeouts crash under stress, the failure
/// carries its fault tag through the dump, and the search reproduces it
/// with the fault plan armed.
#[test]
fn fault_bugs_reproduce_end_to_end() {
    for bug in fault_bugs() {
        if bug.requires != EnvRequirement::FaultInjection {
            continue;
        }
        let (program, sf) = stress_fault_bug(&bug);
        assert!(
            passes_deterministically_cfg(&program, bug.input, bug.max_steps, &fault_bug_env(&bug)),
            "{}: not a Heisenbug with the fault plan armed",
            bug.name
        );
        // The failure dump remembers the injected fault.
        let failure = sf.dump.failure().expect("failure dump");
        assert!(
            failure.fault.is_some(),
            "{}: failure lost its fault tag",
            bug.name
        );
        let reproducer = Reproducer::new(
            &program,
            repro_options_env(Algorithm::ChessX, Strategy::Temporal, &bug),
        );
        let report = reproducer.reproduce(&sf.dump, bug.input).unwrap();
        assert!(
            report.search.reproduced,
            "{}: not reproduced (tries {})",
            bug.name, report.search.tries
        );
    }
}

/// Without the fault plan, the fault bugs never crash — the recovery
/// paths are dead code, under either memory model.
#[test]
fn fault_bugs_need_their_fault_plan() {
    for bug in fault_bugs() {
        if bug.requires != EnvRequirement::FaultInjection {
            continue;
        }
        let program = bug.compile();
        let unarmed = mcr_core::RunConfig {
            mem_model: bug.mem_model,
            faults: Vec::new(),
        };
        let sc = find_failure_cfg(
            &program,
            bug.input,
            0..stress_seed_cap(),
            bug.max_steps,
            &unarmed,
        );
        assert!(sc.is_none(), "{}: crashed without faults", bug.name);
    }
}

/// SC is a pure superset: the default options are SC + no faults, and a
/// session explicitly configured that way is observably identical to
/// one using the defaults — the memory-model machinery costs SC nothing
/// in behavior.
#[test]
fn explicit_sc_session_matches_default() {
    let program = mcr_lang::compile(FIG1).unwrap();
    let sf = find_failure(
        &program,
        &FIG1_INPUT,
        0..stress_seed_cap(),
        FIXTURE_MAX_STEPS,
    )
    .expect("fig1 race fires under stress");

    let defaults = ReproOptions::default();
    assert_eq!(defaults.mem_model, MemModel::Sc);
    assert!(defaults.faults.is_empty());

    // Built from struct defaults (not the testsupport helper, whose
    // memory model follows the MCR_TEST_MEMMODEL matrix): this test is
    // *about* SC being the default, so it pins its own environment.
    let opts = ReproOptions {
        algorithm: Algorithm::ChessX,
        strategy: Strategy::Temporal,
        search: mcr_search::SearchConfig {
            max_tries: mcr_testsupport::search_max_tries(),
            ..Default::default()
        },
        ..Default::default()
    };
    let explicit = ReproOptions {
        mem_model: MemModel::Sc,
        faults: Vec::new(),
        ..opts.clone()
    };
    let a = Reproducer::new(&program, opts)
        .reproduce(&sf.dump, &FIG1_INPUT)
        .unwrap();
    let b = Reproducer::new(&program, explicit)
        .reproduce(&sf.dump, &FIG1_INPUT)
        .unwrap();
    mcr_testsupport::assert_reports_equivalent(&a, &b, "explicit SC");
}

/// A TSO failure dump decodes back to the exact capture (the v2 codec
/// carries the frozen store buffers), and the decoded dump drives the
/// reproduction just like the live one.
#[test]
fn tso_reproduction_from_reparsed_dump() {
    let bug = fault_bug_by_name("tso-dekker").unwrap();
    let (program, sf) = stress_fault_bug(&bug);
    let bytes = mcr_dump::encode(&sf.dump);
    let reparsed = mcr_dump::decode(&bytes).unwrap();
    assert_eq!(reparsed, sf.dump);
    let report = Reproducer::new(
        &program,
        repro_options_env(Algorithm::ChessX, Strategy::Temporal, &bug),
    )
    .reproduce(&reparsed, bug.input)
    .unwrap();
    assert!(report.search.reproduced, "tso-dekker via reparsed dump");
}
