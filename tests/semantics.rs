//! Cross-crate semantic edge cases: interpreter corner behavior the
//! pipeline depends on, and preemption anchors beyond acquire/release.

use mcr_vm::{
    run, DeterministicScheduler, FailureKind, GSlot, NullObserver, Outcome, Recorder,
    StressScheduler, ThreadId, Value, Vm,
};

fn run_det(src: &str, input: &[i64]) -> (mcr_lang::Program, Outcome, Vec<(u64, mcr_vm::Event)>) {
    let program = mcr_lang::compile(src).unwrap();
    let mut vm = Vm::new(&program, input);
    let mut rec = Recorder::default();
    let outcome = run(
        &mut vm,
        &mut DeterministicScheduler::new(),
        &mut rec,
        1_000_000,
    );
    (program, outcome, rec.events)
}

#[test]
fn join_by_stored_thread_id() {
    let src = r#"
        global x: int;
        fn w(v) { x = v; }
        fn main() {
            var t1; var t2;
            t1 = spawn w(5);
            t2 = spawn w(9);
            join t2;
            join t1;
            x = x + 100;
        }
    "#;
    let (program, outcome, _) = run_det(src, &[]);
    assert_eq!(outcome, Outcome::Completed);
    let _ = program;
}

#[test]
fn join_on_garbage_id_crashes() {
    let (_p, outcome, _) = run_det("fn main() { join 42; }", &[]);
    assert_eq!(
        outcome.failure().map(|f| f.kind),
        Some(FailureKind::JoinInvalid)
    );
}

#[test]
fn alloc_zero_then_oob() {
    let (_p, outcome, _) = run_det("fn main() { var p; p = alloc(0); p[0] = 1; }", &[]);
    assert_eq!(
        outcome.failure().map(|f| f.kind),
        Some(FailureKind::OutOfBounds)
    );
}

#[test]
fn negative_alloc_rejected() {
    let (_p, outcome, _) = run_det("fn main() { var p; p = alloc(0 - 3); }", &[]);
    assert_eq!(
        outcome.failure().map(|f| f.kind),
        Some(FailureKind::AllocTooLarge)
    );
}

#[test]
fn negative_heap_index_is_oob() {
    let (_p, outcome, _) = run_det(
        "fn main() { var p; var i; p = alloc(4); i = 0 - 1; p[i] = 7; }",
        &[],
    );
    assert_eq!(
        outcome.failure().map(|f| f.kind),
        Some(FailureKind::OutOfBounds)
    );
}

#[test]
fn pointers_stored_in_global_arrays() {
    // The apache-1 cache queue relies on dynamically-typed global array
    // slots holding pointers.
    let src = r#"
        global q: [int; 3];
        global out: int;
        fn main() {
            var p;
            p = alloc(1);
            p[0] = 77;
            q[1] = p;
            var r;
            r = q[1];
            out = r[0];
        }
    "#;
    let (program, outcome, _) = run_det(src, &[]);
    assert_eq!(outcome, Outcome::Completed);
    let g = program.global_by_name("out").unwrap();
    // Reconstruct the final value through a fresh run for inspection.
    let mut vm = Vm::new(&program, &[]);
    run(
        &mut vm,
        &mut DeterministicScheduler::new(),
        &mut NullObserver,
        1_000_000,
    );
    assert_eq!(vm.globals()[g.0 as usize], GSlot::Scalar(Value::Int(77)));
}

#[test]
fn arithmetic_on_pointer_is_type_confusion() {
    let (_p, outcome, _) = run_det(
        "global x: int; fn main() { var p; p = alloc(1); x = p + 1; }",
        &[],
    );
    assert_eq!(
        outcome.failure().map(|f| f.kind),
        Some(FailureKind::TypeConfusion)
    );
}

#[test]
fn output_events_preserve_cross_thread_order() {
    let src = r#"
        fn a() { output(1); output(2); }
        fn b() { output(3); }
        fn main() { var t; t = spawn a(); join t; spawn b(); }
    "#;
    let (_p, outcome, events) = run_det(src, &[]);
    assert_eq!(outcome, Outcome::Completed);
    let outs: Vec<i64> = events
        .iter()
        .filter_map(|(_, e)| match e {
            mcr_vm::Event::Output {
                value: Value::Int(v),
                ..
            } => Some(*v),
            _ => None,
        })
        .collect();
    assert_eq!(outs, vec![1, 2, 3]);
}

#[test]
fn spawn_and_join_candidates_are_preemption_anchors() {
    use mcr_search::{CandidateKind, SyncLogger};
    let src = r#"
        global x: int;
        fn w() { x = 1; }
        fn main() { var t; t = spawn w(); join t; x = 2; }
    "#;
    let program = mcr_lang::compile(src).unwrap();
    let mut vm = Vm::new(&program, &[]);
    let mut log = SyncLogger::new();
    run(
        &mut vm,
        &mut DeterministicScheduler::new(),
        &mut log,
        1_000_000,
    );
    let info = log.finish();
    let kinds: Vec<CandidateKind> = info.candidates.iter().map(|c| c.kind).collect();
    assert!(kinds.contains(&CandidateKind::AfterSpawn));
    assert!(kinds.contains(&CandidateKind::BeforeJoin));
    assert!(kinds.contains(&CandidateKind::ThreadStart));
}

#[test]
fn stress_and_deterministic_agree_on_race_free_programs() {
    // A fully locked program is schedule-insensitive: every seed produces
    // the same final state as the canonical run.
    let src = r#"
        global x: int;
        lock l;
        fn bump() { acquire l; x = x + 1; release l; }
        fn w1() { bump(); bump(); }
        fn w2() { bump(); bump(); bump(); }
        fn main() { var a; var b; a = spawn w1(); b = spawn w2(); join a; join b; }
    "#;
    let program = mcr_lang::compile(src).unwrap();
    let g = program.global_by_name("x").unwrap();
    let final_x = |seed: Option<u64>| {
        let mut vm = Vm::new(&program, &[]);
        match seed {
            Some(s) => {
                let mut sched = StressScheduler::new(s);
                run(&mut vm, &mut sched, &mut NullObserver, 1_000_000);
            }
            None => {
                let mut sched = DeterministicScheduler::new();
                run(&mut vm, &mut sched, &mut NullObserver, 1_000_000);
            }
        }
        vm.globals()[g.0 as usize].clone()
    };
    let canonical = final_x(None);
    assert_eq!(canonical, GSlot::Scalar(Value::Int(5)));
    for seed in mcr_testsupport::seeds("race-free-agreement", 50) {
        assert_eq!(final_x(Some(seed)), canonical, "seed {seed}");
    }
}

#[test]
fn deadlocked_thread_never_counts_as_done() {
    let src = r#"
        lock a;
        fn w() { acquire a; }
        fn main() { acquire a; spawn w(); }
    "#;
    let program = mcr_lang::compile(src).unwrap();
    let mut vm = Vm::new(&program, &[]);
    let outcome = run(
        &mut vm,
        &mut DeterministicScheduler::new(),
        &mut NullObserver,
        10_000,
    );
    assert_eq!(outcome, Outcome::Deadlock);
    assert!(!vm.all_done());
    assert!(!vm.runnable(ThreadId(1)));
}
