//! # mcr-testsupport — shared fixtures for the reproduction suite
//!
//! The top-level integration tests (`tests/`) and examples all need the
//! same scaffolding: the paper's Fig. 1 program, stress failures for the
//! Table 2 bug suite, canned core dumps with interesting heap shapes, a
//! deterministic seed source, and consistent search budgets. This crate
//! centralizes those so each test file states only what it asserts.
//!
//! ## Test tiers
//!
//! Budgets are env-gated so the default `cargo test -q` stays CI-friendly
//! while a nightly/full run can spend more:
//!
//! * **smoke** (default) — reduced stress-seed and search-try caps;
//! * **full** — set `MCR_TEST_TIER=full` for the paper-scale budgets.
//!
//! Every test runs in both tiers; the tier changes only how hard the
//! stress loop and the schedule search are allowed to work.
//!
//! ## Memory-model matrix
//!
//! Orthogonally, `MCR_TEST_MEMMODEL=tso` re-runs every fixture-driven
//! test under the TSO store-buffer mode (`mcr_vm::MemModel::Tso`):
//! [`stress_bug`], [`fig1_failure`], and [`repro_options`] then stress,
//! align, replay, and search in that environment, exercising the whole
//! pipeline over buffered stores and flush scheduling points. Unset (or
//! any other value) is sequential consistency.

#![warn(missing_docs)]

use mcr_core::{ReproOptions, StressFailure};

// Facade re-exports: the staged session API, so tests and examples can
// take everything from one crate.
pub use mcr_core::{
    AlignmentArtifact, CancelToken, DumpDeltaArtifact, FailureIndexArtifact, Phase, PhaseBudget,
    PhaseBudgets, PhaseEvent, PhaseObserver, RankedAccessesArtifact, ReproSession, SearchArtifact,
    TimingLog,
};
use mcr_dump::{CoreDump, DumpReason};
use mcr_search::{Algorithm, SearchConfig};
use mcr_slice::Strategy;
use mcr_vm::{run, DeterministicScheduler, NullObserver, SplitMix64, ThreadId, Vm};
use mcr_workloads::BugSpec;

/// Which budget tier the suite is running under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Reduced budgets; the default for `cargo test -q`.
    Smoke,
    /// Paper-scale budgets; enabled with `MCR_TEST_TIER=full`.
    Full,
}

/// Returns the active tier (`MCR_TEST_TIER=full` selects [`Tier::Full`]).
pub fn tier() -> Tier {
    match std::env::var("MCR_TEST_TIER") {
        Ok(v) if v.eq_ignore_ascii_case("full") => Tier::Full,
        _ => Tier::Smoke,
    }
}

/// Upper bound on stress seeds to scan when hunting a failure dump.
pub fn stress_seed_cap() -> u64 {
    match tier() {
        Tier::Smoke => 200_000,
        Tier::Full => 2_000_000,
    }
}

/// Memory model the suite-wide fixtures execute under. The CI matrix
/// sets `MCR_TEST_MEMMODEL=tso` to drive the tier-1 suite through the
/// TSO store-buffer mode end to end (stress, alignment, replay, and
/// search all run in the same environment); unset — or any other value
/// — is sequential consistency, the default.
pub fn test_mem_model() -> mcr_vm::MemModel {
    match std::env::var("MCR_TEST_MEMMODEL") {
        Ok(v) if v.eq_ignore_ascii_case("tso") => mcr_vm::MemModel::tso(),
        _ => mcr_vm::MemModel::Sc,
    }
}

/// The suite-wide stress environment derived from `MCR_TEST_MEMMODEL`
/// (no fault plan — faults are always opted into per bug).
pub fn test_run_config() -> mcr_core::RunConfig {
    mcr_core::RunConfig {
        mem_model: test_mem_model(),
        faults: Vec::new(),
    }
}

/// Try cap for schedule searches driven through [`ReproOptions`].
pub fn search_max_tries() -> u64 {
    match tier() {
        Tier::Smoke => 10_000,
        Tier::Full => 20_000,
    }
}

/// Standard reproduction options at the active tier's search budget and
/// the suite-wide memory model (see [`test_mem_model`]).
pub fn repro_options(algorithm: Algorithm, strategy: Strategy) -> ReproOptions {
    ReproOptions {
        algorithm,
        strategy,
        mem_model: test_mem_model(),
        search: SearchConfig {
            max_tries: search_max_tries(),
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Asserts that two reports agree on every observable field *except*
/// wall-clock timings — the equivalence the batch/triage suites pin
/// between cold, warm, fleet, and service runs (timings legitimately
/// differ unless one report was rehydrated from the other's cached
/// artifacts; for that, compare with `assert_eq!` directly —
/// `ReproReport` is `PartialEq` including timings).
///
/// Centralized here so the field list cannot drift between test files:
/// when `ReproReport` grows an observable field, extend this one
/// function.
pub fn assert_reports_equivalent(
    a: &mcr_core::ReproReport,
    b: &mcr_core::ReproReport,
    context: &str,
) {
    assert_eq!(a.index, b.index, "{context}: index");
    assert_eq!(a.alignment, b.alignment, "{context}: alignment");
    assert_eq!(
        a.failure_dump_bytes, b.failure_dump_bytes,
        "{context}: failure dump size"
    );
    assert_eq!(
        a.aligned_dump_bytes, b.aligned_dump_bytes,
        "{context}: aligned dump size"
    );
    assert_eq!(a.vars, b.vars, "{context}: vars");
    assert_eq!(a.diffs, b.diffs, "{context}: diffs");
    assert_eq!(a.shared, b.shared, "{context}: shared");
    assert_eq!(a.csv_paths, b.csv_paths, "{context}: csv paths");
    assert_eq!(a.csv_locs, b.csv_locs, "{context}: csv locs");
    assert_eq!(
        a.deterministic_repro, b.deterministic_repro,
        "{context}: deterministic_repro"
    );
    assert_eq!(
        a.search.reproduced, b.search.reproduced,
        "{context}: reproduced"
    );
    assert_eq!(a.search.tries, b.search.tries, "{context}: tries");
    assert_eq!(
        a.search.combinations_tested, b.search.combinations_tested,
        "{context}: combinations"
    );
    assert_eq!(a.search.winning, b.search.winning, "{context}: winning");
    assert_eq!(a.search.cut_off, b.search.cut_off, "{context}: cut_off");
}

/// Compiles `bug` and stresses it to a failure dump at the active tier's
/// seed budget, returning the compiled program alongside (callers always
/// need both, and compiling twice is wasted work).
pub fn stress_bug(bug: &BugSpec) -> (mcr_lang::Program, StressFailure) {
    let program = bug.compile();
    let input = bug.default_input();
    let sf = mcr_core::find_failure_cfg(
        &program,
        &input,
        0..stress_seed_cap(),
        bug.max_steps,
        &test_run_config(),
    )
    .unwrap_or_else(|| panic!("{}: stress found no failure", bug.name));
    (program, sf)
}

/// The execution environment ([`mcr_core::RunConfig`]) of an
/// environment-gated seeded bug.
pub fn fault_bug_env(bug: &mcr_workloads::FaultBugSpec) -> mcr_core::RunConfig {
    mcr_core::RunConfig {
        mem_model: bug.mem_model,
        faults: bug.faults.clone(),
    }
}

/// Like [`stress_bug`] for the environment-gated suite: stresses `bug`
/// *in its own environment* (TSO and/or fault plan) to a failure dump.
pub fn stress_fault_bug(bug: &mcr_workloads::FaultBugSpec) -> (mcr_lang::Program, StressFailure) {
    let program = bug.compile();
    let sf = mcr_core::find_failure_cfg(
        &program,
        bug.input,
        0..stress_seed_cap(),
        bug.max_steps,
        &fault_bug_env(bug),
    )
    .unwrap_or_else(|| panic!("{}: stress found no failure", bug.name));
    (program, sf)
}

/// [`repro_options`] with the environment of an environment-gated bug
/// applied (memory model + fault plan), so the whole session — passing
/// run, alignment, replay, and search — executes where the bug lives.
pub fn repro_options_env(
    algorithm: Algorithm,
    strategy: Strategy,
    bug: &mcr_workloads::FaultBugSpec,
) -> ReproOptions {
    ReproOptions {
        mem_model: bug.mem_model,
        faults: bug.faults.clone(),
        ..repro_options(algorithm, strategy)
    }
}

/// The paper's Fig. 1 program. `input[i]` plays the role of `a[i]`.
pub const FIG1: &str = r#"
    global x: int;
    global input: [int; 2];
    lock l;
    fn F(p) { p[0] = 1; }
    fn T1() {
        var i; var p;
        for (i = 0; i < 2; i = i + 1) {
            x = 0;
            p = alloc(2);
            acquire l;
            if (input[i] > 0) {
                x = 1;
                p = null;
            }
            release l;
            if (!x) { F(p); }
        }
    }
    fn T2() { x = 0; }
    fn main() { spawn T1(); spawn T2(); }
"#;

/// The input that arms Fig. 1's race in the second loop iteration.
pub const FIG1_INPUT: [i64; 2] = [0, 1];

/// Step budget ample for every fixture program in this crate.
pub const FIXTURE_MAX_STEPS: u64 = 1_000_000;

/// Compiles Fig. 1 and stresses it to its failure dump.
pub fn fig1_failure() -> (mcr_lang::Program, StressFailure) {
    let program = mcr_lang::compile(FIG1).expect("FIG1 compiles");
    let sf = mcr_core::find_failure_cfg(
        &program,
        &FIG1_INPUT,
        0..stress_seed_cap(),
        FIXTURE_MAX_STEPS,
        &test_run_config(),
    )
    .expect("fig1 race fires under stress");
    (program, sf)
}

/// A program whose completed state exercises every dump feature: scalar
/// and array globals, locks, and a heap with pointer chains (so refpath
/// traversal has multi-hop paths to walk).
pub const HEAP_RICH: &str = r#"
    global head: ptr;
    global table: [int; 4];
    global count: int;
    lock l;
    fn push(v) {
        var node;
        node = alloc(2);
        node[0] = v;
        node[1] = head;
        head = node;
        count = count + 1;
    }
    fn main() {
        var i;
        acquire l;
        for (i = 0; i < 4; i = i + 1) {
            push(i * 10);
            table[i] = head;
        }
        release l;
    }
"#;

/// Runs [`HEAP_RICH`] to completion and captures a canned core dump with
/// heap reference paths (a linked list threaded through global arrays).
pub fn canned_heap_dump() -> (mcr_lang::Program, CoreDump) {
    let program = mcr_lang::compile(HEAP_RICH).expect("HEAP_RICH compiles");
    let mut vm = Vm::new(&program, &[]);
    let outcome = run(
        &mut vm,
        &mut DeterministicScheduler::new(),
        &mut NullObserver,
        FIXTURE_MAX_STEPS,
    );
    assert_eq!(outcome, mcr_vm::Outcome::Completed, "fixture must complete");
    let dump = CoreDump::capture(&vm, ThreadId(0), DumpReason::Manual);
    (program, dump)
}

/// Deterministic seed sequence for tests that iterate over schedules:
/// same `label` → same seeds, across runs and platforms.
pub fn seeds(label: &str, n: usize) -> Vec<u64> {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = SplitMix64::new(h);
    (0..n).map(|_| rng.next_u64()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tier_is_smoke() {
        // The suite must never depend on the full tier being active.
        if std::env::var("MCR_TEST_TIER").is_err() {
            assert_eq!(tier(), Tier::Smoke);
        }
        assert!(stress_seed_cap() >= 200_000);
        assert!(search_max_tries() >= 10_000);
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        let a = seeds("alpha", 16);
        let b = seeds("alpha", 16);
        let c = seeds("beta", 16);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let distinct: std::collections::HashSet<u64> = a.iter().copied().collect();
        assert_eq!(distinct.len(), a.len());
    }

    #[test]
    fn canned_heap_dump_has_refpaths() {
        let (_program, dump) = canned_heap_dump();
        let vars = mcr_dump::reachable_vars(&dump, mcr_dump::TraverseLimits::default());
        // The linked list must be reachable through multi-hop paths.
        assert!(
            vars.keys().any(|path| path.steps.len() >= 3),
            "expected a multi-hop heap refpath"
        );
    }
}
