//! # mcr-analysis — static control-flow analysis for dump reverse engineering
//!
//! This crate supplies the static facts the paper's core-dump analysis
//! consumes (§3.2):
//!
//! * per-function control-flow graphs and immediate post-dominators
//!   ([`mod@cfg`]),
//! * Ferrante–Ottenstein–Warren control dependences, aggregation of
//!   short-circuit predicate clusters, the closest-common-ancestor fallback
//!   for non-aggregatable dependences, and transitive control-dependence
//!   queries ([`cd`]),
//! * the per-statement classification census of the paper's Table 1
//!   ([`census`]).
//!
//! # Examples
//!
//! ```
//! use mcr_analysis::ProgramAnalysis;
//!
//! let program = mcr_lang::compile(
//!     "global x: int; fn main() { if (x > 0) { x = 1; } }",
//! )?;
//! let analysis = ProgramAnalysis::analyze(&program);
//! let census = analysis.census(&program);
//! assert_eq!(census.total, program.stmt_count());
//! # Ok::<(), mcr_lang::LangError>(())
//! ```

#![warn(missing_docs)]

pub mod cd;
pub mod census;
pub mod cfg;

pub use cd::{CdClass, FuncAnalysis, ParentStep, PredEvent, PredKey};
pub use census::CdCensus;
pub use cfg::Cfg;

use mcr_lang::{FuncId, Program};

/// Static analysis results for every function of a program.
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    funcs: Vec<FuncAnalysis>,
}

impl ProgramAnalysis {
    /// Analyzes every function of `program`.
    pub fn analyze(program: &Program) -> ProgramAnalysis {
        ProgramAnalysis {
            funcs: program.funcs.iter().map(FuncAnalysis::new).collect(),
        }
    }

    /// Analysis of one function.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of bounds for the analyzed program.
    pub fn func(&self, f: FuncId) -> &FuncAnalysis {
        &self.funcs[f.0 as usize]
    }

    /// All per-function analyses, indexed by [`FuncId`].
    pub fn funcs(&self) -> &[FuncAnalysis] {
        &self.funcs
    }

    /// Runs the Table 1 census over the whole program.
    pub fn census(&self, program: &Program) -> CdCensus {
        CdCensus::of_program(program, &self.funcs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_whole_program() {
        let p = mcr_lang::compile("global x: int; fn helper() { x = 1; } fn main() { helper(); }")
            .unwrap();
        let a = ProgramAnalysis::analyze(&p);
        assert_eq!(a.funcs().len(), 2);
        assert_eq!(a.census(&p).total, p.stmt_count());
    }
}
