//! # mcr-analysis — static control-flow analysis for dump reverse engineering
//!
//! This crate supplies the static facts the paper's core-dump analysis
//! consumes (§3.2):
//!
//! * per-function control-flow graphs and immediate post-dominators
//!   ([`mod@cfg`]),
//! * Ferrante–Ottenstein–Warren control dependences, aggregation of
//!   short-circuit predicate clusters, the closest-common-ancestor fallback
//!   for non-aggregatable dependences, and transitive control-dependence
//!   queries ([`cd`]),
//! * the per-statement classification census of the paper's Table 1
//!   ([`census`]).
//!
//! # Examples
//!
//! ```
//! use mcr_analysis::ProgramAnalysis;
//!
//! let program = mcr_lang::compile(
//!     "global x: int; fn main() { if (x > 0) { x = 1; } }",
//! )?;
//! let analysis = ProgramAnalysis::analyze(&program);
//! let census = analysis.census(&program);
//! assert_eq!(census.total, program.stmt_count());
//! # Ok::<(), mcr_lang::LangError>(())
//! ```

#![warn(missing_docs)]

pub mod cd;
pub mod census;
pub mod cfg;
pub mod race;

pub use cd::{CdClass, FuncAnalysis, ParentStep, PredEvent, PredKey};
pub use census::CdCensus;
pub use cfg::Cfg;
pub use race::{
    AccessSite, AccessTarget, ContendedLock, FuncRaceSummary, RaceAnalysis, RaceFinding,
    RaceReport, RaceVerdict, RaceVerdicts,
};

use mcr_lang::{FuncId, Program};

/// Static analysis results for every function of a program.
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    funcs: Vec<FuncAnalysis>,
}

impl ProgramAnalysis {
    /// Analyzes every function of `program`.
    pub fn analyze(program: &Program) -> ProgramAnalysis {
        ProgramAnalysis {
            funcs: program.funcs.iter().map(FuncAnalysis::new).collect(),
        }
    }

    /// Assembles a program analysis from per-function analyses (one per
    /// function, in [`FuncId`] order) — the cache-rehydration companion
    /// of [`FuncAnalysis::from_parts`].
    pub fn from_funcs(funcs: Vec<FuncAnalysis>) -> ProgramAnalysis {
        ProgramAnalysis { funcs }
    }

    /// Analysis of one function.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of bounds for the analyzed program.
    pub fn func(&self, f: FuncId) -> &FuncAnalysis {
        &self.funcs[f.0 as usize]
    }

    /// All per-function analyses, indexed by [`FuncId`].
    pub fn funcs(&self) -> &[FuncAnalysis] {
        &self.funcs
    }

    /// Runs the Table 1 census over the whole program.
    pub fn census(&self, program: &Program) -> CdCensus {
        CdCensus::of_program(program, &self.funcs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_whole_program() {
        let p = mcr_lang::compile("global x: int; fn helper() { x = 1; } fn main() { helper(); }")
            .unwrap();
        let a = ProgramAnalysis::analyze(&p);
        assert_eq!(a.funcs().len(), 2);
        assert_eq!(a.census(&p).total, p.stmt_count());
    }

    #[test]
    fn from_parts_reproduces_fresh_analysis() {
        let p = mcr_lang::compile(
            "global x: int; fn main() { if (x > 0 && x < 9) { x = 1; } while (x) { x = x - 1; } }",
        )
        .unwrap();
        let fresh = ProgramAnalysis::analyze(&p);
        let rebuilt = ProgramAnalysis::from_funcs(
            p.funcs
                .iter()
                .zip(fresh.funcs())
                .map(|(func, fa)| {
                    let n = fa.cfg().stmt_count();
                    let cds = (0..n)
                        .map(|s| fa.raw_cds(mcr_lang::StmtId(s as u32)).to_vec())
                        .collect();
                    FuncAnalysis::from_parts(
                        func,
                        fa.ipdoms().to_vec(),
                        cds,
                        fa.cluster_memberships().to_vec(),
                    )
                    .expect("parts fit the function they came from")
                })
                .collect(),
        );
        for (fa, fb) in fresh.funcs().iter().zip(rebuilt.funcs()) {
            assert_eq!(fa.ipdoms(), fb.ipdoms());
            assert_eq!(fa.cluster_memberships(), fb.cluster_memberships());
            for s in 0..fa.cfg().stmt_count() {
                assert_eq!(
                    fa.raw_cds(mcr_lang::StmtId(s as u32)),
                    fb.raw_cds(mcr_lang::StmtId(s as u32))
                );
            }
        }
        assert_eq!(fresh.census(&p).total, rebuilt.census(&p).total);
        // Mismatched parts are rejected, not silently accepted.
        let other = mcr_lang::compile("fn main() { x0 = 0; }").unwrap_or_else(|_| {
            mcr_lang::compile("global x0: int; fn main() { x0 = 0; }").unwrap()
        });
        let fa = &fresh.funcs()[0];
        let n = fa.cfg().stmt_count();
        let cds: Vec<_> = (0..n)
            .map(|s| fa.raw_cds(mcr_lang::StmtId(s as u32)).to_vec())
            .collect();
        assert!(FuncAnalysis::from_parts(
            &other.funcs[0],
            fa.ipdoms().to_vec(),
            cds,
            fa.cluster_memberships().to_vec(),
        )
        .is_none());
    }
}
