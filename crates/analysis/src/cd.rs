//! Control dependence and index-parent resolution.
//!
//! This module implements the static machinery behind the paper's §3.2:
//!
//! * Ferrante–Ottenstein–Warren control dependence via post-dominators,
//! * aggregation of short-circuit predicate groups into one "complex
//!   predicate" (Fig. 5b),
//! * the *closest common single-control-dependence ancestor* used for
//!   non-aggregatable multiple dependences (Fig. 6),
//! * the per-statement classification that the paper's Table 1 reports,
//! * transitive control-dependence queries used by the alignment rules
//!   (Fig. 7, condition ③).

use crate::cfg::{immediate_dominators, Cfg, Node};
use mcr_lang::{CondGroupId, Function, StmtId};
use std::collections::HashSet;

/// Identifies a predicate region in an execution index: either a plain
/// branch statement, or a whole short-circuit group treated as one complex
/// predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PredKey {
    /// A single branch statement.
    Stmt(StmtId),
    /// An aggregated short-circuit condition group.
    Cluster(CondGroupId),
}

/// How a dynamically executed branch relates to index regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredEvent {
    /// A plain predicate took `outcome`.
    Simple {
        /// The branch statement.
        stmt: StmtId,
        /// The outcome taken.
        outcome: bool,
    },
    /// A member of a short-circuit group continued evaluating the
    /// condition; no region is entered or resolved yet.
    ClusterInternal {
        /// The group.
        group: CondGroupId,
    },
    /// A short-circuit group resolved to `side` (the source-level branch).
    ClusterResolved {
        /// The group.
        group: CondGroupId,
        /// Which source-level side was taken.
        side: bool,
    },
}

/// The statically reverse-engineered index parent of a statement — one step
/// of the paper's Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParentStep {
    /// The statement nests directly in the method body; the call stack
    /// supplies the parent (Algorithm 1, lines 2–6).
    MethodBody,
    /// The statement nests directly in a loop; the loop counter supplies
    /// the multiplicity (Algorithm 1, lines 7–13).
    Loop {
        /// The loop-header branch.
        header: StmtId,
    },
    /// The statement nests in a predicate region (Algorithm 1, lines 15–24).
    Pred {
        /// The region's predicate.
        key: PredKey,
        /// The branch side of the region.
        outcome: bool,
        /// True when this was recovered through the lossy
        /// common-ancestor fallback for non-aggregatable dependences.
        lossy: bool,
    },
}

/// Classification of a statement's control dependences (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CdClass {
    /// The statement is itself a loop predicate.
    LoopPred,
    /// Exactly one (aggregated) control dependence.
    OneCd,
    /// Multiple control dependences aggregatable to one complex predicate.
    AggrToOne,
    /// Multiple, non-aggregatable control dependences (e.g. `goto` joins).
    NotAggr,
    /// No intra-procedural control dependence: directly nests in the
    /// method body.
    MethodBody,
}

/// Static analysis results for one function.
#[derive(Debug, Clone)]
pub struct FuncAnalysis {
    cfg: Cfg,
    /// Immediate post-dominator per node (node-indexed; exit maps to self).
    ipdom: Vec<Node>,
    /// Raw control dependences per statement.
    cds: Vec<Vec<(StmtId, bool)>>,
    /// Cluster membership per statement.
    member_of: Vec<Option<CondGroupId>>,
}

impl FuncAnalysis {
    /// Analyzes one function.
    pub fn new(func: &Function) -> FuncAnalysis {
        let cfg = Cfg::build(func);
        let n = cfg.stmt_count() + 1;
        let exit = cfg.exit();
        let ipdom = immediate_dominators(
            n,
            exit,
            |v| cfg.preds(v).to_vec(),
            |v| cfg.succs(v).iter().map(|&(s, _)| s).collect(),
        );

        // Ferrante–Ottenstein–Warren: for each labeled edge (u, v, b) with
        // v != ipdom(u), statements from v up to (exclusive) ipdom(u) are
        // control dependent on (u, b).
        let mut cds: Vec<Vec<(StmtId, bool)>> = vec![Vec::new(); cfg.stmt_count()];
        for (u, v, label) in cfg.edges() {
            let Some(b) = label else { continue };
            let stop = ipdom[u];
            let mut w = v;
            let mut guard = 0usize;
            while w != stop && w != exit {
                if let Some(s) = cfg.as_stmt(w) {
                    let entry = (StmtId(u as u32), b);
                    if !cds[s.0 as usize].contains(&entry) {
                        cds[s.0 as usize].push(entry);
                    }
                }
                w = ipdom[w];
                guard += 1;
                if guard > n {
                    break; // defensive: malformed post-dominator chain
                }
            }
        }

        let mut member_of = vec![None; cfg.stmt_count()];
        for (gi, g) in func.cond_groups.iter().enumerate() {
            for m in &g.members {
                member_of[m.0 as usize] = Some(CondGroupId(gi as u32));
            }
        }

        FuncAnalysis {
            cfg,
            ipdom,
            cds,
            member_of,
        }
    }

    /// Rebuilds an analysis from previously computed parts, recomputing
    /// only the (cheap, deterministic) CFG locally.
    ///
    /// This is the cache-rehydration path: the expensive post-dominator
    /// and control-dependence results are stored per function, keyed by
    /// the function's content fingerprint, and stitched back onto a
    /// freshly built [`Cfg`]. Returns `None` when the parts do not fit
    /// `func` (wrong statement counts) — callers treat that as a cache
    /// miss and fall back to [`FuncAnalysis::new`].
    pub fn from_parts(
        func: &Function,
        ipdom: Vec<Node>,
        cds: Vec<Vec<(StmtId, bool)>>,
        member_of: Vec<Option<CondGroupId>>,
    ) -> Option<FuncAnalysis> {
        let cfg = Cfg::build(func);
        let n = cfg.stmt_count();
        if ipdom.len() != n + 1 || cds.len() != n || member_of.len() != n {
            return None;
        }
        Some(FuncAnalysis {
            cfg,
            ipdom,
            cds,
            member_of,
        })
    }

    /// The function's CFG.
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// Immediate post-dominator per node (exit node included) — one of
    /// the parts a per-function cache serializes for
    /// [`FuncAnalysis::from_parts`].
    pub fn ipdoms(&self) -> &[Node] {
        &self.ipdom
    }

    /// Per-statement short-circuit cluster membership — one of the parts
    /// a per-function cache serializes for [`FuncAnalysis::from_parts`].
    pub fn cluster_memberships(&self) -> &[Option<CondGroupId>] {
        &self.member_of
    }

    /// Raw (unaggregated) static control dependences of a statement.
    pub fn raw_cds(&self, s: StmtId) -> &[(StmtId, bool)] {
        &self.cds[s.0 as usize]
    }

    /// Immediate post-dominator of a statement (`None` when it is the
    /// virtual exit).
    pub fn ipdom_stmt(&self, s: StmtId) -> Option<StmtId> {
        self.cfg.as_stmt(self.ipdom[s.0 as usize])
    }

    /// The statement at which an index region opened by `key` is popped:
    /// the immediate post-dominator of the (cluster root) predicate.
    pub fn region_pop_stmt(&self, func: &Function, key: PredKey) -> Option<StmtId> {
        let rep = self.rep_stmt(func, key);
        self.ipdom_stmt(rep)
    }

    /// The representative statement of a predicate key (cluster root or the
    /// branch itself).
    pub fn rep_stmt(&self, func: &Function, key: PredKey) -> StmtId {
        match key {
            PredKey::Stmt(s) => s,
            PredKey::Cluster(g) => func.cond_groups[g.0 as usize].root(),
        }
    }

    /// Interprets a dynamically executed branch for the indexing runtime.
    pub fn pred_event(&self, func: &Function, stmt: StmtId, outcome: bool) -> PredEvent {
        match self.member_of[stmt.0 as usize] {
            None => PredEvent::Simple { stmt, outcome },
            Some(g) => {
                let group = &func.cond_groups[g.0 as usize];
                match group.resolve(stmt, outcome) {
                    None => PredEvent::ClusterInternal { group: g },
                    Some(side) => PredEvent::ClusterResolved { group: g, side },
                }
            }
        }
    }

    /// Effective (aggregated) control dependences of a statement:
    /// cluster-internal members inherit the root's dependences, self-loops
    /// of loop headers are dropped, and dependences on cluster members are
    /// mapped to the cluster with the resolved side.
    fn effective_cds(&self, func: &Function, s: StmtId) -> Vec<(PredKey, bool)> {
        // Cluster members take the dependences of the whole cluster (its
        // root); this also means asking for the parent of a mid-cluster
        // predicate skips to the cluster's own parent.
        let base = match self.member_of[s.0 as usize] {
            Some(g) => func.cond_groups[g.0 as usize].root(),
            None => s,
        };
        let mut out: Vec<(PredKey, bool)> = Vec::new();
        for &(p, b) in self.raw_cds(base) {
            if p == base || p == s {
                continue; // loop-header self dependence
            }
            let mapped = match self.member_of[p.0 as usize] {
                Some(g) => {
                    let group = &func.cond_groups[g.0 as usize];
                    if Some(g) == self.member_of[base.0 as usize] {
                        continue; // dependence within our own cluster
                    }
                    match group.resolve(p, b) {
                        Some(side) => (PredKey::Cluster(g), side),
                        // A goto that targets the middle of a condition
                        // evaluation; keep the raw dependence (it will fall
                        // into the non-aggregatable path).
                        None => (PredKey::Stmt(p), b),
                    }
                }
                None => (PredKey::Stmt(p), b),
            };
            if !out.contains(&mapped) {
                out.push(mapped);
            }
        }
        out
    }

    /// One step of static index-parent resolution (Algorithm 1's dispatch).
    pub fn index_parent(&self, func: &Function, s: StmtId) -> ParentStep {
        let cds = self.effective_cds(func, s);
        if cds.is_empty() {
            return ParentStep::MethodBody;
        }
        // Loop case takes priority (Algorithm 1 line 7).
        for &(key, _outcome) in &cds {
            if let PredKey::Stmt(p) = key {
                if func.loop_header(p).is_some() {
                    return ParentStep::Loop { header: p };
                }
            }
        }
        if cds.len() == 1 {
            let (key, outcome) = cds[0];
            return ParentStep::Pred {
                key,
                outcome,
                lossy: false,
            };
        }
        // Non-aggregatable: closest common single-CD ancestor (Fig. 6).
        match self.common_ancestor(func, &cds) {
            Some((key, outcome)) => ParentStep::Pred {
                key,
                outcome,
                lossy: true,
            },
            None => ParentStep::MethodBody,
        }
    }

    /// The upward chain of (predicate, outcome) regions enclosing `entry`,
    /// starting with `entry` itself. Loop regions appear once (statically).
    fn ancestor_chain(
        &self,
        func: &Function,
        entry: (PredKey, bool),
        depth: usize,
    ) -> Vec<(PredKey, bool)> {
        let mut chain = vec![entry];
        let mut cur = self.rep_stmt(func, entry.0);
        let mut seen: HashSet<StmtId> = HashSet::new();
        seen.insert(cur);
        for _ in 0..depth {
            match self.index_parent(func, cur) {
                ParentStep::MethodBody => break,
                ParentStep::Loop { header } => {
                    if !seen.insert(header) {
                        break;
                    }
                    chain.push((PredKey::Stmt(header), true));
                    cur = header;
                }
                ParentStep::Pred { key, outcome, .. } => {
                    let rep = self.rep_stmt(func, key);
                    if !seen.insert(rep) {
                        break;
                    }
                    chain.push((key, outcome));
                    cur = rep;
                }
            }
        }
        chain
    }

    /// Closest common single-control-dependence ancestor of a set of
    /// dependences (paper Fig. 6): the first entry of the first chain that
    /// occurs in all other chains.
    fn common_ancestor(&self, func: &Function, cds: &[(PredKey, bool)]) -> Option<(PredKey, bool)> {
        const DEPTH: usize = 64;
        let chains: Vec<Vec<(PredKey, bool)>> = cds
            .iter()
            .map(|&e| self.ancestor_chain(func, e, DEPTH))
            .collect();
        let (first, rest) = chains.split_first()?;
        // A common ancestor must match on both region and side: in the
        // paper's Fig. 6 example the chains through 22T and through
        // 25T→22F meet only at 21T — statement 22 appears in both chains
        // but with different sides, so it is not a common nesting region.
        'cand: for &entry in first {
            for other in rest {
                if !other.contains(&entry) {
                    continue 'cand;
                }
            }
            return Some(entry);
        }
        None
    }

    /// Whether `x` can still execute once the branch `(p, taken)` has been
    /// taken: plain CFG reachability from the taken successor. Used to
    /// qualify the `controlDep` test of Fig. 7 condition ③ — a statement
    /// with multiple (non-aggregatable) control dependences is transitively
    /// control dependent on branches whose opposite side still reaches it,
    /// so control dependence alone would misreport divergence on the
    /// paper's own Fig. 6 example.
    pub fn reachable_after_branch(&self, p: StmtId, taken: bool, x: StmtId) -> bool {
        let Some(&(start, _)) = self
            .cfg
            .succs(p.0 as usize)
            .iter()
            .find(|&&(_, l)| l == Some(taken))
        else {
            return true; // not a branch: be conservative
        };
        let target = x.0 as usize;
        let mut visited = vec![false; self.cfg.stmt_count() + 1];
        let mut stack = vec![start];
        while let Some(v) = stack.pop() {
            if v == target {
                return true;
            }
            if v >= visited.len() || visited[v] {
                continue;
            }
            visited[v] = true;
            for &(s, _) in self.cfg.succs(v) {
                stack.push(s);
            }
        }
        false
    }

    /// Whether `x` is transitively control dependent on `(p, b)` — the
    /// `controlDep` oracle of the paper's Fig. 7, condition ③.
    pub fn transitively_control_dependent(&self, x: StmtId, p: StmtId, b: bool) -> bool {
        let mut visited: HashSet<StmtId> = HashSet::new();
        let mut stack = vec![x];
        while let Some(v) = stack.pop() {
            if !visited.insert(v) {
                continue;
            }
            for &(q, c) in self.raw_cds(v) {
                if q == p && c == b {
                    return true;
                }
                if !visited.contains(&q) {
                    stack.push(q);
                }
            }
        }
        false
    }

    /// Classifies one statement for the Table 1 census. Returns `None` for
    /// synthetic loop-counter instructions (not real statements).
    pub fn classify(&self, func: &Function, s: StmtId) -> Option<CdClass> {
        let inst = func.inst(s);
        if inst.is_synthetic() {
            return None;
        }
        if func.loop_header(s).is_some() {
            return Some(CdClass::LoopPred);
        }
        let raw = self.raw_cds(s);
        let raw_nontrivial: Vec<_> = raw.iter().filter(|&&(p, _)| p != s).collect();
        if raw_nontrivial.is_empty() {
            return Some(CdClass::MethodBody);
        }
        if raw_nontrivial.len() == 1 {
            return Some(CdClass::OneCd);
        }
        // Multiple raw dependences: aggregatable when the effective view
        // collapses them to a single region.
        let eff = self.effective_cds(func, s);
        if eff.len() <= 1 {
            Some(CdClass::AggrToOne)
        } else {
            Some(CdClass::NotAggr)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_lang::{compile, Inst};

    fn analyze(src: &str) -> (mcr_lang::Program, Vec<FuncAnalysis>) {
        let p = compile(src).unwrap();
        let fa = p.funcs.iter().map(FuncAnalysis::new).collect();
        (p, fa)
    }

    /// Finds the single statement satisfying a predicate.
    fn find_stmt(f: &mcr_lang::Function, pred: impl Fn(&Inst) -> bool) -> StmtId {
        let hits: Vec<_> = f
            .body
            .iter()
            .enumerate()
            .filter(|(_, i)| pred(i))
            .map(|(i, _)| StmtId(i as u32))
            .collect();
        assert_eq!(hits.len(), 1, "expected exactly one matching statement");
        hits[0]
    }

    #[test]
    fn one_cd_inside_if() {
        // Paper Fig. 5a: statement in a plain then-branch has one CD.
        let (p, fa) = analyze("global x: int; fn main() { if (x > 0) { x = 7; } }");
        let f = p.func(p.main);
        let a = &fa[p.main.0 as usize];
        let s = find_stmt(f, |i| {
            matches!(
                i,
                Inst::Assign {
                    src: mcr_lang::Expr::Const(7),
                    ..
                }
            )
        });
        assert_eq!(a.raw_cds(s).len(), 1);
        assert_eq!(a.classify(f, s), Some(CdClass::OneCd));
        match a.index_parent(f, s) {
            ParentStep::Pred {
                key,
                outcome,
                lossy,
            } => {
                assert!(matches!(key, PredKey::Stmt(_)));
                assert!(outcome);
                assert!(!lossy);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aggregatable_or_condition() {
        // Paper Fig. 5b: `if (p1 || p2) s1;` — s1 has two CDs aggregatable
        // into one complex predicate.
        let (p, fa) =
            analyze("global a: int; global b: int; fn main() { if (a > 0 || b > 0) { a = 7; } }");
        let f = p.func(p.main);
        let an = &fa[p.main.0 as usize];
        let s = find_stmt(f, |i| {
            matches!(
                i,
                Inst::Assign {
                    src: mcr_lang::Expr::Const(7),
                    ..
                }
            )
        });
        assert_eq!(an.raw_cds(s).len(), 2);
        assert_eq!(an.classify(f, s), Some(CdClass::AggrToOne));
        match an.index_parent(f, s) {
            ParentStep::Pred {
                key: PredKey::Cluster(_),
                outcome: true,
                lossy: false,
            } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn non_aggregatable_goto() {
        // Paper Fig. 6, statement numbering preserved in the constants:
        // 26 is reachable both through `goto` (22T) and through 25T, so it
        // has two non-aggregatable control dependences whose closest
        // common single-CD ancestor is 21T.
        let src = r#"
            global a: int; global b: int; global c: int;
            fn main() {
                if (a > 0) {
                    if (b > 0) { goto s2; }
                    c = 1;
                    if (c > 1) {
                        label s2:
                        c = 26;
                    } else {
                        c = 3;
                    }
                }
                c = 30;
            }
        "#;
        let (p, fa) = analyze(src);
        let f = p.func(p.main);
        let an = &fa[p.main.0 as usize];
        let s = find_stmt(f, |i| {
            matches!(
                i,
                Inst::Assign {
                    src: mcr_lang::Expr::Const(26),
                    ..
                }
            )
        });
        assert!(an.raw_cds(s).len() >= 2, "cds: {:?}", an.raw_cds(s));
        assert_eq!(an.classify(f, s), Some(CdClass::NotAggr));
        // The common ancestor must be the outer `a > 0` branch, true side.
        match an.index_parent(f, s) {
            ParentStep::Pred {
                key: PredKey::Stmt(q),
                outcome: true,
                lossy: true,
            } => {
                // q must be the outermost branch (smallest branch stmt id).
                let outer = f.body.iter().position(mcr_lang::Inst::is_branch).unwrap();
                assert_eq!(q.0 as usize, outer);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn loop_nesting_parent() {
        let (p, fa) =
            analyze("global n: int; fn main() { var i; for (i = 0; i < n; i = i + 1) { n = 9; } }");
        let f = p.func(p.main);
        let an = &fa[p.main.0 as usize];
        let s = find_stmt(f, |i| {
            matches!(
                i,
                Inst::Assign {
                    src: mcr_lang::Expr::Const(9),
                    ..
                }
            )
        });
        match an.index_parent(f, s) {
            ParentStep::Loop { header } => {
                assert!(f.loop_header(header).is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn loop_header_classified_as_loop_pred() {
        let (p, fa) = analyze("global n: int; fn main() { while (n > 0) { n = n - 1; } }");
        let f = p.func(p.main);
        let an = &fa[p.main.0 as usize];
        let header = f.loops[0].header;
        assert_eq!(an.classify(f, header), Some(CdClass::LoopPred));
        // The loop header at top level nests in the method body.
        assert_eq!(an.index_parent(f, header), ParentStep::MethodBody);
    }

    #[test]
    fn nested_loop_header_parent_is_outer_loop() {
        let (p, fa) = analyze(
            "global n: int; fn main() { var i; var j; while (i < n) { i = i + 1; while (j < n) { j = j + 1; } } }",
        );
        let f = p.func(p.main);
        let an = &fa[p.main.0 as usize];
        let inner = f.loops[1].header;
        match an.index_parent(f, inner) {
            ParentStep::Loop { header } => assert_eq!(header, f.loops[0].header),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn method_body_statements_have_no_cd() {
        let (p, fa) = analyze("global x: int; fn main() { x = 1; x = 2; }");
        let f = p.func(p.main);
        let an = &fa[p.main.0 as usize];
        assert_eq!(an.classify(f, StmtId(0)), Some(CdClass::MethodBody));
        assert_eq!(an.index_parent(f, StmtId(0)), ParentStep::MethodBody);
    }

    #[test]
    fn transitive_control_dependence() {
        let (p, fa) = analyze(
            "global a: int; global b: int; fn main() { if (a > 0) { if (b > 0) { b = 5; } } }",
        );
        let f = p.func(p.main);
        let an = &fa[p.main.0 as usize];
        let inner_assign = find_stmt(f, |i| {
            matches!(
                i,
                Inst::Assign {
                    src: mcr_lang::Expr::Const(5),
                    ..
                }
            )
        });
        let outer = StmtId(f.body.iter().position(mcr_lang::Inst::is_branch).unwrap() as u32);
        assert!(an.transitively_control_dependent(inner_assign, outer, true));
        assert!(!an.transitively_control_dependent(inner_assign, outer, false));
    }

    #[test]
    fn else_branch_outcome_is_false() {
        let (p, fa) =
            analyze("global x: int; fn main() { if (x > 0) { x = 1; } else { x = 22; } }");
        let f = p.func(p.main);
        let an = &fa[p.main.0 as usize];
        let s = find_stmt(f, |i| {
            matches!(
                i,
                Inst::Assign {
                    src: mcr_lang::Expr::Const(22),
                    ..
                }
            )
        });
        match an.index_parent(f, s) {
            ParentStep::Pred { outcome, .. } => assert!(!outcome),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cluster_member_parent_skips_to_cluster_parent() {
        // The second predicate of `a || b` nests (statically) in the first's
        // false edge, but as a cluster member its index parent is the
        // cluster's parent — here the enclosing if.
        let (p, fa) = analyze(
            "global a: int; global b: int; global c: int; fn main() { if (c > 0) { if (a > 0 || b > 0) { a = 7; } } }",
        );
        let f = p.func(p.main);
        let an = &fa[p.main.0 as usize];
        let g = &f.cond_groups[0];
        let second = g.members[1];
        match an.index_parent(f, second) {
            ParentStep::Pred {
                key: PredKey::Stmt(q),
                outcome: true,
                ..
            } => {
                // q is the outer `c > 0` branch.
                let outer = f.body.iter().position(mcr_lang::Inst::is_branch).unwrap();
                assert_eq!(q.0 as usize, outer);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pred_event_resolution() {
        let (p, fa) =
            analyze("global a: int; global b: int; fn main() { if (a > 0 || b > 0) { a = 7; } }");
        let f = p.func(p.main);
        let an = &fa[p.main.0 as usize];
        let g = &f.cond_groups[0];
        let root = g.root();
        let second = g.members[1];
        assert!(matches!(
            an.pred_event(f, root, true),
            PredEvent::ClusterResolved { side: true, .. }
        ));
        assert!(matches!(
            an.pred_event(f, root, false),
            PredEvent::ClusterInternal { .. }
        ));
        assert!(matches!(
            an.pred_event(f, second, false),
            PredEvent::ClusterResolved { side: false, .. }
        ));
    }

    #[test]
    fn statements_after_if_are_method_body() {
        let (p, fa) = analyze("global x: int; fn main() { if (x > 0) { x = 1; } x = 33; }");
        let f = p.func(p.main);
        let an = &fa[p.main.0 as usize];
        let s = find_stmt(f, |i| {
            matches!(
                i,
                Inst::Assign {
                    src: mcr_lang::Expr::Const(33),
                    ..
                }
            )
        });
        assert_eq!(an.classify(f, s), Some(CdClass::MethodBody));
    }
}
