//! Interprocedural static race / lockset analysis over the IR.
//!
//! The pass proves, before any schedule is ever run, that most memory
//! accesses in a program cannot participate in a data race — they are
//! thread-local ([`RaceVerdict::Local`]), execute while only one thread
//! exists ([`RaceVerdict::Solo`]), or every conflicting concurrent
//! access shares a must-held lock ([`RaceVerdict::Guarded`]). The
//! remaining sites are flagged [`RaceVerdict::MayRace`] (with a witness
//! pair) or [`RaceVerdict::Unknown`] (lock identity untrackable).
//!
//! The analysis is split exactly like the compile/analysis caches:
//!
//! * [`FuncRaceSummary::of`] computes a **content-local** per-function
//!   summary — escape-classified access sites, a must-lockset forward
//!   dataflow on the [`Cfg`], spawn/call/acquire site lists, and
//!   "may a spawn / call have happened before this statement" facts.
//!   The summary depends only on the function body, so Merkle-cached
//!   units are shared across programs and fleets.
//! * [`RaceAnalysis::compose`] combines the summaries bottom-up with a
//!   cheap interprocedural algebra (call-closure of spawn/release
//!   effects, a decreasing `entry_solo` fixpoint, thread-root
//!   reachability) and assigns every access site its verdict.
//!
//! Soundness contract (what the search pruning relies on): a statement
//! is reported *Solo* only if on **every** path reaching it no spawn
//! can have executed — i.e. thread 0 is provably the only live thread.
//! Locksets are must-sets (under-approximations), so losing precision
//! pushes verdicts toward `MayRace`/`Unknown`, never toward a false
//! "race-free".

use crate::cfg::Cfg;
use mcr_lang::{Expr, FuncId, Function, GlobalId, Inst, LockId, Pc, Place, Program, StmtId};
use std::collections::BTreeSet;

/// Locks with an id `>= 64` overflow the bitmask locksets; functions
/// touching them get `lock_top` and their sites degrade to `Unknown`.
pub const LOCK_MASK_BITS: u32 = 64;

// ---------------------------------------------------------------------
// Per-function summary.

/// What a classified access may touch, coarsened to the granularity the
/// dynamic pipeline also uses (`CoarseLoc`): whole globals and "the
/// heap". Heap objects reachable only through an unescaped private
/// local are split off as `PrivateHeap` — provably thread-local.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessTarget {
    /// A scalar global or any element of a global array.
    Global(GlobalId),
    /// Heap storage that may be published to other threads.
    SharedHeap,
    /// Heap storage reachable only through a private local pointer.
    PrivateHeap,
}

/// One classified memory access inside a function body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessSite {
    /// The statement performing the access.
    pub stmt: StmtId,
    /// What it touches.
    pub target: AccessTarget,
    /// True for stores.
    pub is_write: bool,
}

/// The verdict lattice, ordered from provably-safe to definitely
/// suspicious. Pruning only ever trusts `Solo`; the lint and candidate
/// ranking use the rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RaceVerdict {
    /// Thread-local (private heap) or dead code — cannot race.
    Local,
    /// Executes while only one thread exists (pre-spawn) — cannot race.
    Solo,
    /// Shared and concurrent, but every conflicting concurrent
    /// counterpart shares a must-held lock (or none exists).
    Guarded,
    /// Lock identity untrackable (`lock_top`) — no claim either way.
    Unknown,
    /// A conflicting concurrent counterpart exists with a provably
    /// disjoint must-lockset: a candidate data race.
    MayRace,
}

impl RaceVerdict {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            RaceVerdict::Local => "local",
            RaceVerdict::Solo => "solo",
            RaceVerdict::Guarded => "guarded",
            RaceVerdict::Unknown => "unknown",
            RaceVerdict::MayRace => "may-race",
        }
    }
}

/// Content-local static concurrency summary of one function. Every
/// field is derivable from the function body alone, so the summary is
/// cacheable under the function's content fingerprint and composes
/// bottom-up across programs that share the function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncRaceSummary {
    /// Number of body statements (rehydration fit check).
    pub stmt_count: u32,
    /// True when the function references a lock id `>= 64`; its
    /// lockset masks are then under-approximate beyond repair and the
    /// composer degrades its sites to [`RaceVerdict::Unknown`].
    pub lock_top: bool,
    /// Must-held lock mask at each statement's *entry* (bit `l` set ⇔
    /// lock `l` is held on every path). Unreachable statements keep
    /// the dataflow top `u64::MAX`.
    pub locksets: Vec<u64>,
    /// May-analysis: a `Spawn` in *this* function may have executed
    /// before entering the statement.
    pub spawn_before: Vec<bool>,
    /// May-analysis: direct callees whose call may have completed (or
    /// started) before entering the statement, deduplicated.
    pub callees_before: Vec<Vec<FuncId>>,
    /// Classified memory accesses.
    pub accesses: Vec<AccessSite>,
    /// Mask of locks this function directly releases.
    pub releases: u64,
    /// Direct call sites.
    pub call_sites: Vec<(StmtId, FuncId)>,
    /// Direct spawn sites; the flag is true when the statement can
    /// re-execute (it reaches itself in the CFG).
    pub spawn_sites: Vec<(StmtId, FuncId, bool)>,
    /// Direct acquire sites (for contended-lock detection).
    pub acquire_sites: Vec<(StmtId, LockId)>,
}

/// Locals that never escape: defined only by `Alloc`/`= null`, never a
/// parameter, and used only as the direct pointer of a heap access or
/// under a logical `!` (null test). A heap access through such a local
/// touches memory no other thread can name.
fn private_locals(func: &Function) -> Vec<bool> {
    let n = func.local_names.len();
    let mut private = vec![true; n];
    for slot in private.iter_mut().take(func.params as usize) {
        *slot = false;
    }
    let mark = |private: &mut Vec<bool>, l: mcr_lang::LocalId| {
        if let Some(p) = private.get_mut(l.0 as usize) {
            *p = false;
        }
    };
    // A use of `Local(l)` anywhere except the allowed positions
    // disqualifies l. `scan` walks an expression in "value position".
    fn scan(e: &Expr, private: &mut Vec<bool>) {
        match e {
            Expr::Const(_) | Expr::Null | Expr::Global(_) => {}
            Expr::Local(l) => {
                if let Some(p) = private.get_mut(l.0 as usize) {
                    *p = false;
                }
            }
            Expr::GlobalElem(_, idx) => scan(idx, private),
            Expr::HeapLoad { ptr, idx } => {
                // A bare private local as the pointer is the allowed
                // use; any other pointer shape is scanned normally.
                if !matches!(ptr.as_ref(), Expr::Local(_)) {
                    scan(ptr, private);
                }
                scan(idx, private);
            }
            Expr::Unary(op, inner) => {
                // `!p` yields 0/1 — the pointer cannot be recovered.
                // Every other unary could launder the pointer value.
                if *op == mcr_lang::UnOp::Not && matches!(inner.as_ref(), Expr::Local(_)) {
                    return;
                }
                scan(inner, private);
            }
            Expr::Binary(_, a, b) => {
                scan(a, private);
                scan(b, private);
            }
        }
    }
    let scan_place = |p: &Place, private: &mut Vec<bool>| match p {
        Place::Local(_) | Place::Global(_) => {}
        Place::GlobalElem(_, idx) => scan(idx, private),
        Place::HeapStore { ptr, idx } => {
            if !matches!(ptr, Expr::Local(_)) {
                scan(ptr, private);
            }
            scan(idx, private);
        }
    };
    for inst in &func.body {
        match inst {
            Inst::Assign { dst, src } => {
                if let Place::Local(l) = dst {
                    // Only `l = null` keeps l private; any other
                    // assigned value could be a shared pointer.
                    if !matches!(src, Expr::Null) {
                        mark(&mut private, *l);
                    }
                } else {
                    scan_place(dst, &mut private);
                }
                scan(src, &mut private);
            }
            Inst::Alloc { dst, len } => {
                // `Alloc` into a local is the canonical private def;
                // into any other place the object is published.
                if !matches!(dst, Place::Local(_)) {
                    scan_place(dst, &mut private);
                }
                scan(len, &mut private);
            }
            Inst::Branch { cond, .. } | Inst::Assert { cond } => scan(cond, &mut private),
            Inst::Call { args, dst, .. } | Inst::Spawn { args, dst, .. } => {
                for a in args {
                    scan(a, &mut private);
                }
                if let Some(d) = dst {
                    if let Place::Local(l) = d {
                        mark(&mut private, *l);
                    } else {
                        scan_place(d, &mut private);
                    }
                }
            }
            Inst::Return { value: Some(v) } | Inst::Output { value: v } => {
                scan(v, &mut private);
            }
            Inst::Join { thread } => scan(thread, &mut private),
            Inst::Return { value: None }
            | Inst::Acquire { .. }
            | Inst::Release { .. }
            | Inst::Jump { .. }
            | Inst::LoopEnter { .. }
            | Inst::LoopIter { .. }
            | Inst::Nop
            | Inst::Fence => {}
        }
    }
    private
}

/// Collects the classified accesses of one statement.
fn collect_accesses(stmt: StmtId, inst: &Inst, private: &[bool], out: &mut Vec<AccessSite>) {
    fn heap_target(ptr: &Expr, private: &[bool]) -> AccessTarget {
        match ptr {
            Expr::Local(l) if private.get(l.0 as usize).copied().unwrap_or(false) => {
                AccessTarget::PrivateHeap
            }
            _ => AccessTarget::SharedHeap,
        }
    }
    fn scan_expr(e: &Expr, stmt: StmtId, private: &[bool], out: &mut Vec<AccessSite>) {
        match e {
            Expr::Const(_) | Expr::Null | Expr::Local(_) => {}
            Expr::Global(g) => out.push(AccessSite {
                stmt,
                target: AccessTarget::Global(*g),
                is_write: false,
            }),
            Expr::GlobalElem(g, idx) => {
                out.push(AccessSite {
                    stmt,
                    target: AccessTarget::Global(*g),
                    is_write: false,
                });
                scan_expr(idx, stmt, private, out);
            }
            Expr::HeapLoad { ptr, idx } => {
                out.push(AccessSite {
                    stmt,
                    target: heap_target(ptr, private),
                    is_write: false,
                });
                scan_expr(ptr, stmt, private, out);
                scan_expr(idx, stmt, private, out);
            }
            Expr::Unary(_, inner) => scan_expr(inner, stmt, private, out),
            Expr::Binary(_, a, b) => {
                scan_expr(a, stmt, private, out);
                scan_expr(b, stmt, private, out);
            }
        }
    }
    let scan_place = |p: &Place, out: &mut Vec<AccessSite>| match p {
        Place::Local(_) => {}
        Place::Global(g) => out.push(AccessSite {
            stmt,
            target: AccessTarget::Global(*g),
            is_write: true,
        }),
        Place::GlobalElem(g, idx) => {
            out.push(AccessSite {
                stmt,
                target: AccessTarget::Global(*g),
                is_write: true,
            });
            scan_expr(idx, stmt, private, out);
        }
        Place::HeapStore { ptr, idx } => {
            out.push(AccessSite {
                stmt,
                target: heap_target(ptr, private),
                is_write: true,
            });
            scan_expr(ptr, stmt, private, out);
            scan_expr(idx, stmt, private, out);
        }
    };
    match inst {
        Inst::Assign { dst, src } => {
            scan_place(dst, out);
            scan_expr(src, stmt, private, out);
        }
        Inst::Alloc { dst, len } => {
            scan_place(dst, out);
            scan_expr(len, stmt, private, out);
        }
        Inst::Branch { cond, .. } | Inst::Assert { cond } => scan_expr(cond, stmt, private, out),
        Inst::Call { args, dst, .. } | Inst::Spawn { args, dst, .. } => {
            for a in args {
                scan_expr(a, stmt, private, out);
            }
            if let Some(d) = dst {
                scan_place(d, out);
            }
        }
        Inst::Return { value: Some(v) } | Inst::Output { value: v } => {
            scan_expr(v, stmt, private, out);
        }
        Inst::Join { thread } => scan_expr(thread, stmt, private, out),
        Inst::Return { value: None }
        | Inst::Acquire { .. }
        | Inst::Release { .. }
        | Inst::Jump { .. }
        | Inst::LoopEnter { .. }
        | Inst::LoopIter { .. }
        | Inst::Nop
        | Inst::Fence => {}
    }
}

impl FuncRaceSummary {
    /// Computes the summary of one function body.
    pub fn of(func: &Function) -> FuncRaceSummary {
        let n = func.body.len();
        let cfg = Cfg::build(func);
        let private = private_locals(func);

        let mut lock_top = false;
        let mut releases = 0u64;
        let mut call_sites = Vec::new();
        let mut spawn_sites = Vec::new();
        let mut acquire_sites = Vec::new();
        let mut accesses = Vec::new();
        for (i, inst) in func.body.iter().enumerate() {
            let stmt = StmtId(i as u32);
            match inst {
                Inst::Acquire { lock } => {
                    if lock.0 >= LOCK_MASK_BITS {
                        lock_top = true;
                    }
                    acquire_sites.push((stmt, *lock));
                }
                Inst::Release { lock } => {
                    if lock.0 >= LOCK_MASK_BITS {
                        lock_top = true;
                    } else {
                        releases |= 1u64 << lock.0;
                    }
                }
                Inst::Call { callee, .. } => call_sites.push((stmt, *callee)),
                Inst::Spawn { callee, .. } => {
                    spawn_sites.push((stmt, *callee, self_reachable(&cfg, i)));
                }
                _ => {}
            }
            collect_accesses(stmt, inst, &private, &mut accesses);
        }

        // Forward fixpoint over the CFG for the three entry facts. All
        // three move monotonically (mask shrinks, bools/sets grow), so
        // one shared worklist converges.
        let mut locksets = vec![u64::MAX; n];
        let mut spawn_before = vec![false; n];
        let mut callees_before: Vec<BTreeSet<FuncId>> = vec![BTreeSet::new(); n];
        if n > 0 {
            locksets[0] = 0;
            let mut work: Vec<usize> = vec![0];
            let mut queued = vec![false; n];
            queued[0] = true;
            while let Some(s) = work.pop() {
                queued[s] = false;
                // Transfer through statement s.
                let mut mask = locksets[s];
                let mut spawned = spawn_before[s];
                let mut callees = callees_before[s].clone();
                match &func.body[s] {
                    Inst::Acquire { lock } if lock.0 < LOCK_MASK_BITS => mask |= 1u64 << lock.0,
                    Inst::Release { lock } if lock.0 < LOCK_MASK_BITS => mask &= !(1u64 << lock.0),
                    Inst::Spawn { .. } => spawned = true,
                    Inst::Call { callee, .. } => {
                        callees.insert(*callee);
                    }
                    _ => {}
                }
                for &(succ, _) in cfg.succs(s) {
                    if succ >= n {
                        continue; // virtual exit
                    }
                    let merged_mask = locksets[succ] & mask;
                    let merged_spawn = spawn_before[succ] || spawned;
                    let callee_growth = !callees.is_subset(&callees_before[succ]);
                    if merged_mask != locksets[succ]
                        || merged_spawn != spawn_before[succ]
                        || callee_growth
                    {
                        locksets[succ] = merged_mask;
                        spawn_before[succ] = merged_spawn;
                        if callee_growth {
                            callees_before[succ].extend(callees.iter().copied());
                        }
                        if !queued[succ] {
                            queued[succ] = true;
                            work.push(succ);
                        }
                    }
                }
            }
        }

        FuncRaceSummary {
            stmt_count: n as u32,
            lock_top,
            locksets,
            spawn_before,
            callees_before: callees_before
                .into_iter()
                .map(|s| s.into_iter().collect())
                .collect(),
            accesses,
            releases,
            call_sites,
            spawn_sites,
            acquire_sites,
        }
    }

    /// True when the summary's shape matches `func` (rehydration fit
    /// check — a content-hash collision or corrupted cache fails it).
    pub fn fits(&self, func: &Function) -> bool {
        self.stmt_count as usize == func.body.len()
            && self.locksets.len() == func.body.len()
            && self.spawn_before.len() == func.body.len()
            && self.callees_before.len() == func.body.len()
    }
}

/// True when statement `s` can re-execute: it reaches itself in the CFG.
fn self_reachable(cfg: &Cfg, s: usize) -> bool {
    let n = cfg.stmt_count();
    let mut seen = vec![false; n + 1];
    let mut stack: Vec<usize> = cfg.succs(s).iter().map(|&(v, _)| v).collect();
    while let Some(v) = stack.pop() {
        if v >= n || seen[v] {
            continue;
        }
        if v == s {
            return true;
        }
        seen[v] = true;
        stack.extend(cfg.succs(v).iter().map(|&(v2, _)| v2));
    }
    false
}

// ---------------------------------------------------------------------
// Program-level composition.

/// Per-statement query surface the search consumes. Out-of-range PCs
/// conservatively answer "not solo" / "no may-race".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceVerdicts {
    solo: Vec<Vec<bool>>,
    may_race: Vec<Vec<bool>>,
}

impl RaceVerdicts {
    /// True when the statement provably executes while thread 0 is the
    /// only live thread. Preempting there is a no-op, so candidates
    /// anchored at solo statements can be pruned without losing any
    /// schedule the search could distinguish.
    pub fn is_solo(&self, pc: Pc) -> bool {
        self.solo
            .get(pc.func.0 as usize)
            .and_then(|f| f.get(pc.stmt.0 as usize))
            .copied()
            .unwrap_or(false)
    }

    /// True when some access at the statement drew a May-Race verdict.
    pub fn has_may_race(&self, pc: Pc) -> bool {
        self.may_race
            .get(pc.func.0 as usize)
            .and_then(|f| f.get(pc.stmt.0 as usize))
            .copied()
            .unwrap_or(false)
    }

    /// Number of statements flagged solo (for reporting).
    pub fn solo_count(&self) -> usize {
        self.solo.iter().flatten().filter(|&&b| b).count()
    }
}

/// One May-Race witness: two conflicting concurrent accesses with
/// disjoint must-locksets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceFinding {
    /// First access (function, site).
    pub a: (FuncId, AccessSite),
    /// Second access.
    pub b: (FuncId, AccessSite),
    /// The contested target.
    pub target: AccessTarget,
}

/// A lock acquired by two concurrent live sites — a contention point
/// worth surfacing even when it makes accesses `Guarded`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContendedLock {
    /// The lock.
    pub lock: LockId,
    /// Two acquire sites that can contend.
    pub a: (FuncId, StmtId),
    /// Second site.
    pub b: (FuncId, StmtId),
}

/// The dump-less lint report: per-verdict counts, May-Race witnesses,
/// and contended locks.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RaceReport {
    /// Access-site count per verdict, indexed by `RaceVerdict` order
    /// (local, solo, guarded, unknown, may-race).
    pub counts: [usize; 5],
    /// Deduplicated May-Race witnesses.
    pub findings: Vec<RaceFinding>,
    /// Locks acquired from two concurrent sites.
    pub contended: Vec<ContendedLock>,
}

impl RaceReport {
    /// Total classified access sites.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Renders the report with program names resolved.
    pub fn render(&self, program: &Program) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "static race lint: {} access sites — {} local, {} solo, {} guarded, \
             {} unknown, {} may-race",
            self.total(),
            self.counts[0],
            self.counts[1],
            self.counts[2],
            self.counts[3],
            self.counts[4],
        );
        let target_name = |t: AccessTarget| match t {
            AccessTarget::Global(g) => program
                .globals
                .get(g.0 as usize)
                .map_or_else(|| format!("g{}", g.0), |d| d.name.clone()),
            AccessTarget::SharedHeap => "<heap>".to_string(),
            AccessTarget::PrivateHeap => "<private heap>".to_string(),
        };
        let fname = |f: FuncId| {
            program
                .funcs
                .get(f.0 as usize)
                .map_or("?", |x| x.name.as_str())
        };
        let rw = |w: bool| if w { "write" } else { "read" };
        for fnd in &self.findings {
            let _ = writeln!(
                out,
                "  may-race on {}: {} {}:{} vs {} {}:{}",
                target_name(fnd.target),
                rw(fnd.a.1.is_write),
                fname(fnd.a.0),
                fnd.a.1.stmt.0,
                rw(fnd.b.1.is_write),
                fname(fnd.b.0),
                fnd.b.1.stmt.0,
            );
        }
        for c in &self.contended {
            let lock = program
                .locks
                .get(c.lock.0 as usize)
                .map_or("?", String::as_str);
            let _ = writeln!(
                out,
                "  contended lock {}: {}:{} vs {}:{}",
                lock,
                fname(c.a.0),
                c.a.1 .0,
                fname(c.b.0),
                c.b.1 .0,
            );
        }
        out
    }
}

/// The composed program-level analysis.
#[derive(Debug, Clone)]
pub struct RaceAnalysis {
    /// The per-function summaries the composition consumed.
    summaries: Vec<FuncRaceSummary>,
    /// Per-(function, access index) verdicts, parallel to
    /// `summaries[f].accesses`.
    verdicts: Vec<Vec<RaceVerdict>>,
    /// The compact per-statement query surface.
    stmt_verdicts: RaceVerdicts,
    /// May-Race witness per MayRace site (first found).
    findings: Vec<RaceFinding>,
    /// Contended locks.
    contended: Vec<ContendedLock>,
}

impl RaceAnalysis {
    /// Summarizes every function and composes the result.
    pub fn analyze(program: &Program) -> RaceAnalysis {
        let summaries = program.funcs.iter().map(FuncRaceSummary::of).collect();
        RaceAnalysis::compose(program, summaries)
    }

    /// Composes precomputed (possibly cache-rehydrated) summaries.
    /// `summaries[i]` must correspond to `program.funcs[i]`.
    pub fn compose(program: &Program, summaries: Vec<FuncRaceSummary>) -> RaceAnalysis {
        let nf = summaries.len();
        let main = program.main.0 as usize;

        // Call-closure effects: may this function (transitively through
        // calls) spawn a thread / release each lock?
        let mut may_spawn: Vec<bool> = summaries
            .iter()
            .map(|s| !s.spawn_sites.is_empty())
            .collect();
        let mut may_release: Vec<u64> = summaries.iter().map(|s| s.releases).collect();
        loop {
            let mut changed = false;
            for f in 0..nf {
                for &(_, callee) in &summaries[f].call_sites {
                    let c = callee.0 as usize;
                    if c >= nf {
                        continue;
                    }
                    if may_spawn[c] && !may_spawn[f] {
                        may_spawn[f] = true;
                        changed = true;
                    }
                    let merged = may_release[f] | may_release[c];
                    if merged != may_release[f] {
                        may_release[f] = merged;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // spawn_before composed through calls: a spawn may precede
        // statement s if this function spawned, or some callee that may
        // spawn was (possibly) invoked before s.
        let spawn_before_comp: Vec<Vec<bool>> = summaries
            .iter()
            .map(|s| {
                (0..s.stmt_count as usize)
                    .map(|i| {
                        s.spawn_before[i]
                            || s.callees_before[i]
                                .iter()
                                .any(|c| may_spawn.get(c.0 as usize).copied().unwrap_or(true))
                    })
                    .collect()
            })
            .collect();

        // entry_solo: decreasing fixpoint. A function enters solo only
        // if every caller reaches the call site solo; spawn targets
        // never enter solo (their parent is alive, or at least was).
        let mut entry_solo = vec![true; nf];
        for s in &summaries {
            for &(_, target, _) in &s.spawn_sites {
                if let Some(e) = entry_solo.get_mut(target.0 as usize) {
                    *e = false;
                }
            }
        }
        loop {
            let mut changed = false;
            for f in 0..nf {
                for &(site, callee) in &summaries[f].call_sites {
                    let c = callee.0 as usize;
                    if c >= nf {
                        continue;
                    }
                    let at_site = entry_solo[f] && !spawn_before_comp[f][site.0 as usize];
                    if !at_site && entry_solo[c] {
                        entry_solo[c] = false;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        let solo: Vec<Vec<bool>> = (0..nf)
            .map(|f| {
                (0..summaries[f].stmt_count as usize)
                    .map(|i| entry_solo[f] && !spawn_before_comp[f][i])
                    .collect()
            })
            .collect();

        // Thread roots and reachability: which root entry functions can
        // (transitively through calls) execute each function?
        let mut roots: Vec<usize> = vec![main.min(nf.saturating_sub(1))];
        if nf == 0 {
            roots.clear();
        }
        for s in &summaries {
            for &(_, target, _) in &s.spawn_sites {
                let t = target.0 as usize;
                if t < nf && !roots.contains(&t) {
                    roots.push(t);
                }
            }
        }
        let nroots = roots.len();
        // reach[r][f]: root r can reach function f through calls.
        let mut reach = vec![vec![false; nf]; nroots];
        for (ri, &r) in roots.iter().enumerate() {
            let mut stack = vec![r];
            while let Some(f) = stack.pop() {
                if reach[ri][f] {
                    continue;
                }
                reach[ri][f] = true;
                for &(_, callee) in &summaries[f].call_sites {
                    let c = callee.0 as usize;
                    if c < nf && !reach[ri][c] {
                        stack.push(c);
                    }
                }
            }
        }
        let roots_of: Vec<Vec<usize>> = (0..nf)
            .map(|f| (0..nroots).filter(|&ri| reach[ri][f]).collect())
            .collect();

        // single_instance(root): at most one dynamic thread ever runs
        // this root. main qualifies unless something calls or spawns it
        // re-entrantly; other roots need exactly one spawn site, not
        // re-executable, sitting in main itself.
        let main_reentered = summaries.iter().any(|s| {
            s.call_sites.iter().any(|&(_, c)| c.0 as usize == main)
                || s.spawn_sites.iter().any(|&(_, t, _)| t.0 as usize == main)
        });
        let single_instance: Vec<bool> = roots
            .iter()
            .map(|&r| {
                if r == main {
                    return !main_reentered;
                }
                let sites: Vec<(usize, bool)> = summaries
                    .iter()
                    .enumerate()
                    .flat_map(|(f, s)| {
                        s.spawn_sites
                            .iter()
                            .filter(|&&(_, t, _)| t.0 as usize == r)
                            .map(move |&(_, _, in_loop)| (f, in_loop))
                    })
                    .collect();
                !main_reentered && sites.len() == 1 && !sites[0].1 && sites[0].0 == main
            })
            .collect();

        // concurrent(f1, f2): can two distinct threads run f1 and f2?
        let concurrent = |f1: usize, f2: usize| -> bool {
            for &r1 in &roots_of[f1] {
                for &r2 in &roots_of[f2] {
                    if r1 != r2 || !single_instance[r1] {
                        return true;
                    }
                }
            }
            false
        };

        // CFG reachability inside each function: dead statements keep
        // the lockset top u64::MAX and are classified Local.
        let stmt_live: Vec<Vec<bool>> = program
            .funcs
            .iter()
            .map(|func| {
                let cfg = Cfg::build(func);
                let n = cfg.stmt_count();
                let mut live = vec![false; n + 1];
                if n > 0 {
                    let mut stack = vec![0usize];
                    while let Some(v) = stack.pop() {
                        if live[v] {
                            continue;
                        }
                        live[v] = true;
                        stack.extend(cfg.succs(v).iter().map(|&(s, _)| s));
                    }
                }
                live.truncate(n);
                live
            })
            .collect();

        // Effective must-lockset at a site: locks held at entry minus
        // anything a callee that may have run before could release.
        let site_lockset = |f: usize, s: usize| -> u64 {
            let sum = &summaries[f];
            let mut mask = sum.locksets[s];
            for c in &sum.callees_before[s] {
                if let Some(&rel) = may_release.get(c.0 as usize) {
                    mask &= !rel;
                }
            }
            mask
        };

        // Live shared sites eligible for pairwise conflict checks.
        struct LiveSite {
            func: usize,
            access: AccessSite,
            lockset: u64,
            lock_top: bool,
        }
        let mut live_sites: Vec<LiveSite> = Vec::new();
        for (f, sum) in summaries.iter().enumerate() {
            if roots_of[f].is_empty() {
                continue;
            }
            for &a in &sum.accesses {
                let s = a.stmt.0 as usize;
                if a.target == AccessTarget::PrivateHeap
                    || !stmt_live
                        .get(f)
                        .and_then(|v| v.get(s))
                        .copied()
                        .unwrap_or(false)
                    || solo[f][s]
                {
                    continue;
                }
                live_sites.push(LiveSite {
                    func: f,
                    access: a,
                    lockset: site_lockset(f, s),
                    lock_top: sum.lock_top,
                });
            }
        }

        // Verdicts per (function, access index).
        let mut verdicts: Vec<Vec<RaceVerdict>> = Vec::with_capacity(nf);
        let mut findings: Vec<RaceFinding> = Vec::new();
        let mut finding_keys: BTreeSet<(usize, u32, usize, u32)> = BTreeSet::new();
        for (f, sum) in summaries.iter().enumerate() {
            let mut per = Vec::with_capacity(sum.accesses.len());
            for &a in &sum.accesses {
                let s = a.stmt.0 as usize;
                let dead = !stmt_live
                    .get(f)
                    .and_then(|v| v.get(s))
                    .copied()
                    .unwrap_or(false);
                let v = if a.target == AccessTarget::PrivateHeap || roots_of[f].is_empty() || dead {
                    RaceVerdict::Local
                } else if solo[f][s] {
                    RaceVerdict::Solo
                } else {
                    let my_lockset = site_lockset(f, s);
                    let my_top = sum.lock_top;
                    let mut verdict = RaceVerdict::Guarded;
                    for other in &live_sites {
                        let same_target = other.access.target == a.target
                            || matches!(
                                (other.access.target, a.target),
                                (AccessTarget::Global(g1), AccessTarget::Global(g2)) if g1 == g2
                            );
                        if !same_target
                            || !(other.access.is_write || a.is_write)
                            || !concurrent(f, other.func)
                        {
                            continue;
                        }
                        // Exclude the site racing with itself unless a
                        // second dynamic instance can run it.
                        if other.func == f && other.access == a && !concurrent(f, f) {
                            continue;
                        }
                        if my_top || other.lock_top {
                            verdict = verdict.max(RaceVerdict::Unknown);
                        } else if my_lockset & other.lockset == 0 {
                            verdict = RaceVerdict::MayRace;
                            let key = ordered_key((f, a.stmt.0), (other.func, other.access.stmt.0));
                            if finding_keys.insert(key) {
                                findings.push(RaceFinding {
                                    a: (FuncId(f as u32), a),
                                    b: (FuncId(other.func as u32), other.access),
                                    target: a.target,
                                });
                            }
                            break;
                        }
                    }
                    verdict
                };
                per.push(v);
            }
            verdicts.push(per);
        }

        // Contended locks: two concurrent live non-solo acquire sites.
        let mut contended: Vec<ContendedLock> = Vec::new();
        let mut contended_seen: BTreeSet<u32> = BTreeSet::new();
        let mut acquire_live: Vec<(usize, StmtId, LockId)> = Vec::new();
        for (f, sum) in summaries.iter().enumerate() {
            if roots_of[f].is_empty() {
                continue;
            }
            for &(stmt, lock) in &sum.acquire_sites {
                let s = stmt.0 as usize;
                let is_live = stmt_live
                    .get(f)
                    .and_then(|v| v.get(s))
                    .copied()
                    .unwrap_or(false);
                if is_live && !solo[f][s] {
                    acquire_live.push((f, stmt, lock));
                }
            }
        }
        for (i, &(f1, s1, l1)) in acquire_live.iter().enumerate() {
            if contended_seen.contains(&l1.0) {
                continue;
            }
            for &(f2, s2, l2) in &acquire_live[i..] {
                if l1 != l2 || !concurrent(f1, f2) {
                    continue;
                }
                // The same site contending with itself needs a second
                // dynamic instance.
                if f1 == f2 && s1 == s2 && !concurrent(f1, f1) {
                    continue;
                }
                contended_seen.insert(l1.0);
                contended.push(ContendedLock {
                    lock: l1,
                    a: (FuncId(f1 as u32), s1),
                    b: (FuncId(f2 as u32), s2),
                });
                break;
            }
        }

        // Compact per-statement surface.
        let solo_stmts = solo;
        let may_race_stmts: Vec<Vec<bool>> = (0..nf)
            .map(|f| {
                let mut v = vec![false; summaries[f].stmt_count as usize];
                for (ai, &a) in summaries[f].accesses.iter().enumerate() {
                    if verdicts[f][ai] == RaceVerdict::MayRace {
                        v[a.stmt.0 as usize] = true;
                    }
                }
                v
            })
            .collect();

        RaceAnalysis {
            summaries,
            verdicts,
            stmt_verdicts: RaceVerdicts {
                solo: solo_stmts,
                may_race: may_race_stmts,
            },
            findings,
            contended,
        }
    }

    /// The per-function summaries the composition consumed.
    pub fn summaries(&self) -> &[FuncRaceSummary] {
        &self.summaries
    }

    /// The verdict of each access site, parallel to
    /// `summaries()[f].accesses`.
    pub fn site_verdicts(&self, f: FuncId) -> &[RaceVerdict] {
        &self.verdicts[f.0 as usize]
    }

    /// The compact per-statement query surface the search consumes.
    pub fn verdicts(&self) -> &RaceVerdicts {
        &self.stmt_verdicts
    }

    /// Builds the dump-less lint report.
    pub fn report(&self) -> RaceReport {
        let mut counts = [0usize; 5];
        for per in &self.verdicts {
            for &v in per {
                counts[v as usize] += 1;
            }
        }
        RaceReport {
            counts,
            findings: self.findings.clone(),
            contended: self.contended.clone(),
        }
    }
}

fn ordered_key(a: (usize, u32), b: (usize, u32)) -> (usize, u32, usize, u32) {
    if (a.0, a.1) <= (b.0, b.1) {
        (a.0, a.1, b.0, b.1)
    } else {
        (b.0, b.1, a.0, a.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_lang::compile;

    fn analyze(src: &str) -> (Program, RaceAnalysis) {
        let p = compile(src).unwrap();
        let a = RaceAnalysis::analyze(&p);
        (p, a)
    }

    fn verdict_for_global(p: &Program, a: &RaceAnalysis, func: &str, g: &str) -> Vec<RaceVerdict> {
        let f = p.funcs.iter().position(|x| x.name == func).unwrap();
        let gid = p.globals.iter().position(|x| x.name == g).unwrap() as u32;
        a.summaries()[f]
            .accesses
            .iter()
            .zip(a.site_verdicts(FuncId(f as u32)))
            .filter(|(s, _)| s.target == AccessTarget::Global(GlobalId(gid)))
            .map(|(_, &v)| v)
            .collect()
    }

    #[test]
    fn unguarded_concurrent_writes_may_race() {
        let (p, a) = analyze(
            "global x: int;\n\
             fn worker() { x = x + 1; }\n\
             fn main() { var t; t = spawn worker(); x = x + 1; join t; }",
        );
        assert!(
            verdict_for_global(&p, &a, "worker", "x").contains(&RaceVerdict::MayRace),
            "worker's unguarded write must be may-race"
        );
        let report = a.report();
        assert!(!report.findings.is_empty());
    }

    #[test]
    fn consistent_lock_is_guarded() {
        let (p, a) = analyze(
            "global x: int; lock m;\n\
             fn worker() { acquire m; x = x + 1; release m; }\n\
             fn main() { var t; t = spawn worker(); acquire m; x = x + 1; release m; join t; }",
        );
        for v in verdict_for_global(&p, &a, "worker", "x") {
            assert_eq!(v, RaceVerdict::Guarded);
        }
        // The lock itself is flagged contended.
        assert_eq!(a.report().contended.len(), 1);
    }

    #[test]
    fn pre_spawn_accesses_are_solo() {
        let (p, a) = analyze(
            "global x: int;\n\
             fn worker() { x = 2; }\n\
             fn main() { var t; x = 1; t = spawn worker(); x = 3; join t; }",
        );
        let verdicts = verdict_for_global(&p, &a, "main", "x");
        assert_eq!(verdicts[0], RaceVerdict::Solo, "pre-spawn write is solo");
        assert_ne!(
            verdicts[verdicts.len() - 1],
            RaceVerdict::Solo,
            "post-spawn write is not solo"
        );
    }

    #[test]
    fn solo_join_does_not_extend_after_spawn() {
        // After the spawn, nothing is solo again — the analysis does
        // not model join-back (conservative).
        let (p, a) = analyze(
            "global x: int;\n\
             fn worker() { x = 2; }\n\
             fn main() { var t; t = spawn worker(); join t; x = 3; }",
        );
        let verdicts = verdict_for_global(&p, &a, "main", "x");
        assert!(verdicts.iter().all(|&v| v != RaceVerdict::Solo));
    }

    #[test]
    fn private_heap_is_local() {
        let (p, a) = analyze(
            "global x: int;\n\
             fn worker() { x = 1; }\n\
             fn main() { var t; t = alloc(2); spawn worker(); t[0] = 5; x = t[0]; }",
        );
        let f = p.funcs.iter().position(|x| x.name == "main").unwrap();
        let heap: Vec<RaceVerdict> = a.summaries()[f]
            .accesses
            .iter()
            .zip(a.site_verdicts(FuncId(f as u32)))
            .filter(|(s, _)| s.target == AccessTarget::PrivateHeap)
            .map(|(_, &v)| v)
            .collect();
        assert!(
            !heap.is_empty(),
            "alloc'd local heap accesses classified private"
        );
        assert!(heap.iter().all(|&v| v == RaceVerdict::Local));
    }

    #[test]
    fn published_heap_is_shared() {
        let (p, a) = analyze(
            "global p: ptr;\n\
             fn worker() { p[0] = 2; }\n\
             fn main() { p = alloc(2); spawn worker(); p[0] = 1; }",
        );
        let f = p.funcs.iter().position(|x| x.name == "main").unwrap();
        let has_shared_heap = a.summaries()[f]
            .accesses
            .iter()
            .any(|s| s.target == AccessTarget::SharedHeap);
        assert!(has_shared_heap, "global-pointer heap store is shared");
        let worker_heap: Vec<RaceVerdict> = {
            let wf = p.funcs.iter().position(|x| x.name == "worker").unwrap();
            a.summaries()[wf]
                .accesses
                .iter()
                .zip(a.site_verdicts(FuncId(wf as u32)))
                .filter(|(s, _)| s.target == AccessTarget::SharedHeap)
                .map(|(_, &v)| v)
                .collect()
        };
        assert!(worker_heap.contains(&RaceVerdict::MayRace));
    }

    #[test]
    fn spawn_through_callee_kills_solo() {
        let (p, a) = analyze(
            "global x: int;\n\
             fn worker() { x = 2; }\n\
             fn helper() { spawn worker(); }\n\
             fn main() { x = 1; helper(); x = 3; }",
        );
        let verdicts = verdict_for_global(&p, &a, "main", "x");
        assert_eq!(verdicts[0], RaceVerdict::Solo);
        assert_ne!(verdicts[verdicts.len() - 1], RaceVerdict::Solo);
    }

    #[test]
    fn two_spawns_of_same_root_race_with_itself() {
        let (p, a) = analyze(
            "global x: int;\n\
             fn worker() { x = x + 1; }\n\
             fn main() { var a; var b; a = spawn worker(); b = spawn worker(); join a; join b; }",
        );
        let verdicts = verdict_for_global(&p, &a, "worker", "x");
        assert!(verdicts.contains(&RaceVerdict::MayRace));
    }

    #[test]
    fn single_spawn_worker_does_not_self_race() {
        let (p, a) = analyze(
            "global x: int;\n\
             fn worker() { x = x + 1; }\n\
             fn main() { var t; t = spawn worker(); join t; }",
        );
        // Only worker touches x post-spawn; one worker instance, main
        // never writes x concurrently — no counterpart.
        let verdicts = verdict_for_global(&p, &a, "worker", "x");
        assert!(verdicts.iter().all(|&v| v == RaceVerdict::Guarded));
    }

    #[test]
    fn spawn_in_loop_races_with_itself() {
        let (p, a) = analyze(
            "global x: int; global i: int;\n\
             fn worker() { x = x + 1; }\n\
             fn main() { i = 0; while (i < 2) { spawn worker(); i = i + 1; } }",
        );
        let verdicts = verdict_for_global(&p, &a, "worker", "x");
        assert!(verdicts.contains(&RaceVerdict::MayRace));
    }

    #[test]
    fn release_through_callee_weakens_lockset() {
        let (p, a) = analyze(
            "global x: int; lock m;\n\
             fn unlocker() { release m; }\n\
             fn worker() { acquire m; x = x + 1; release m; }\n\
             fn main() { var t; t = spawn worker(); acquire m; unlocker(); x = x + 1; join t; }",
        );
        // main's post-call access can no longer claim m is held.
        let verdicts = verdict_for_global(&p, &a, "main", "x");
        assert!(verdicts.contains(&RaceVerdict::MayRace));
    }

    #[test]
    fn summary_fits_and_composes() {
        let p = compile(
            "global x: int;\n\
             fn worker() { x = 1; }\n\
             fn main() { var t; t = spawn worker(); x = 2; join t; }",
        )
        .unwrap();
        let summaries: Vec<FuncRaceSummary> = p.funcs.iter().map(FuncRaceSummary::of).collect();
        for (f, s) in p.funcs.iter().zip(&summaries) {
            assert!(s.fits(f));
        }
        assert!(!summaries[0].fits(&p.funcs[1]) || p.funcs[0].body.len() == p.funcs[1].body.len());
        let composed = RaceAnalysis::compose(&p, summaries.clone());
        let direct = RaceAnalysis::analyze(&p);
        assert_eq!(composed.verdicts, direct.verdicts);
        assert_eq!(composed.stmt_verdicts, direct.stmt_verdicts);
    }

    #[test]
    fn verdict_surface_answers_out_of_range_conservatively() {
        let (_, a) = analyze("fn main() { }");
        let pc = Pc::new(FuncId(99), StmtId(99));
        assert!(!a.verdicts().is_solo(pc));
        assert!(!a.verdicts().has_may_race(pc));
    }

    #[test]
    fn report_renders_names() {
        let (p, a) = analyze(
            "global counter: int;\n\
             fn worker() { counter = counter + 1; }\n\
             fn main() { var t; t = spawn worker(); counter = counter + 1; join t; }",
        );
        let text = a.report().render(&p);
        assert!(text.contains("may-race"), "{text}");
        assert!(text.contains("counter"), "{text}");
    }
}
