//! The control-dependence census of the paper's Table 1.
//!
//! The paper reports, for apache/mysql/postgresql, what fraction of
//! statements fall into each reverse-engineering class: single control
//! dependence, multiple-but-aggregatable, multiple non-aggregatable, and
//! loop predicates. The same census over our MiniCC corpora regenerates the
//! table.
//!
//! Statements with *no* intra-procedural control dependence nest directly
//! in their method body — one nesting region, recovered from the call
//! stack — so, following the paper's accounting (whose four columns sum to
//! 100%), they are folded into the "one CD" column. The detailed breakdown
//! is still available via [`CdCensus::method_body`].

use crate::cd::{CdClass, FuncAnalysis};
use mcr_lang::{Program, StmtId};

/// Aggregate census counts over a set of programs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CdCensus {
    /// Statements with exactly one control dependence.
    pub one_cd: usize,
    /// Statements whose multiple dependences aggregate to one.
    pub aggr_to_one: usize,
    /// Statements with non-aggregatable multiple dependences.
    pub not_aggr: usize,
    /// Loop predicates.
    pub loop_pred: usize,
    /// Statements nesting directly in the method body (subset counted
    /// inside [`Self::pct_one_cd`], reported separately for transparency).
    pub method_body: usize,
    /// Total statements classified.
    pub total: usize,
}

impl CdCensus {
    /// Census of one program.
    pub fn of_program(program: &Program, analyses: &[FuncAnalysis]) -> CdCensus {
        let mut c = CdCensus::default();
        for (fi, func) in program.funcs.iter().enumerate() {
            let an = &analyses[fi];
            for si in 0..func.body.len() {
                let Some(class) = an.classify(func, StmtId(si as u32)) else {
                    continue;
                };
                c.total += 1;
                match class {
                    CdClass::OneCd => c.one_cd += 1,
                    CdClass::AggrToOne => c.aggr_to_one += 1,
                    CdClass::NotAggr => c.not_aggr += 1,
                    CdClass::LoopPred => c.loop_pred += 1,
                    CdClass::MethodBody => {
                        c.method_body += 1;
                        c.one_cd += 1; // paper-style accounting
                    }
                }
            }
        }
        c
    }

    /// Merges another census into this one.
    pub fn merge(&mut self, other: &CdCensus) {
        self.one_cd += other.one_cd;
        self.aggr_to_one += other.aggr_to_one;
        self.not_aggr += other.not_aggr;
        self.loop_pred += other.loop_pred;
        self.method_body += other.method_body;
        self.total += other.total;
    }

    fn pct(&self, v: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * v as f64 / self.total as f64
        }
    }

    /// Percentage of single-control-dependence statements ("one CD").
    pub fn pct_one_cd(&self) -> f64 {
        self.pct(self.one_cd)
    }

    /// Percentage of aggregatable-to-one statements.
    pub fn pct_aggr_to_one(&self) -> f64 {
        self.pct(self.aggr_to_one)
    }

    /// Percentage of non-aggregatable statements.
    pub fn pct_not_aggr(&self) -> f64 {
        self.pct(self.not_aggr)
    }

    /// Percentage of loop predicates.
    pub fn pct_loop(&self) -> f64 {
        self.pct(self.loop_pred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cd::FuncAnalysis;
    use mcr_lang::compile;

    fn census(src: &str) -> CdCensus {
        let p = compile(src).unwrap();
        let fa: Vec<_> = p.funcs.iter().map(FuncAnalysis::new).collect();
        CdCensus::of_program(&p, &fa)
    }

    #[test]
    fn percentages_sum_to_100() {
        let c = census(
            r#"
            global a: int; global b: int; global n: int;
            fn main() {
                var i;
                if (a > 0) { a = 1; }
                if (a > 0 || b > 0) { b = 1; }
                for (i = 0; i < n; i = i + 1) { a = a + 1; }
                if (a > 1) {
                    if (b > 1) { goto x; }
                    b = 2;
                    if (b > 2) { label x: b = 3; } else { b = 4; }
                }
            }
            "#,
        );
        let sum = c.pct_one_cd() + c.pct_aggr_to_one() + c.pct_not_aggr() + c.pct_loop();
        assert!((sum - 100.0).abs() < 1e-9, "sum={sum}");
        assert!(c.aggr_to_one >= 1);
        assert!(c.not_aggr >= 1);
        assert!(c.loop_pred >= 1);
    }

    #[test]
    fn merge_adds_counts() {
        let a = census("global x: int; fn main() { x = 1; }");
        let mut b = census("global y: int; fn main() { y = 2; y = 3; }");
        let total = a.total + b.total;
        b.merge(&a);
        assert_eq!(b.total, total);
    }

    #[test]
    fn empty_census_percentages_are_zero() {
        let c = CdCensus::default();
        assert_eq!(c.pct_one_cd(), 0.0);
    }
}
