//! Intra-procedural control-flow graphs over IR statements.
//!
//! Nodes are statement indices plus one virtual `EXIT` node. Every
//! [`Inst::Return`] edge targets `EXIT`; statements that cannot reach `EXIT`
//! (e.g. infinite loops without `break`) receive a virtual exit edge so that
//! post-dominance stays total — the standard trick for making control
//! dependence well defined on non-terminating code.

use mcr_lang::{Function, Inst, StmtId};

/// Node index inside a [`Cfg`]; `n` (the statement count) is the virtual
/// exit node.
pub type Node = usize;

/// A control-flow edge label: `Some(outcome)` on branch edges, `None` on
/// fallthrough/jump edges.
pub type EdgeLabel = Option<bool>;

/// Control-flow graph of one function.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successor lists with edge labels.
    succs: Vec<Vec<(Node, EdgeLabel)>>,
    /// Predecessor lists (labels live on the successor side).
    preds: Vec<Vec<Node>>,
    /// Number of real statements (the exit node is `stmts`).
    stmts: usize,
}

impl Cfg {
    /// Builds the CFG of a function body.
    pub fn build(func: &Function) -> Cfg {
        let n = func.body.len();
        let exit = n;
        let mut succs: Vec<Vec<(Node, EdgeLabel)>> = vec![Vec::new(); n + 1];
        for (i, inst) in func.body.iter().enumerate() {
            match inst {
                Inst::Branch {
                    then_to, else_to, ..
                } => {
                    succs[i].push((then_to.0 as usize, Some(true)));
                    succs[i].push((else_to.0 as usize, Some(false)));
                }
                Inst::Jump { to } => succs[i].push((to.0 as usize, None)),
                Inst::Return { .. } => succs[i].push((exit, None)),
                _ => {
                    // Fallthrough; a trailing non-control statement exits.
                    if i + 1 < n {
                        succs[i].push((i + 1, None));
                    } else {
                        succs[i].push((exit, None));
                    }
                }
            }
        }

        // Give exit-unreachable statements a virtual exit edge so that
        // post-dominance is total. Compute reachability-to-exit on the
        // reverse graph first.
        let mut reaches_exit = vec![false; n + 1];
        {
            let mut rpreds: Vec<Vec<Node>> = vec![Vec::new(); n + 1];
            for (u, ss) in succs.iter().enumerate() {
                for &(v, _) in ss {
                    rpreds[v].push(u);
                }
            }
            let mut stack = vec![exit];
            reaches_exit[exit] = true;
            while let Some(v) = stack.pop() {
                for &u in &rpreds[v] {
                    if !reaches_exit[u] {
                        reaches_exit[u] = true;
                        stack.push(u);
                    }
                }
            }
        }
        for (u, r) in reaches_exit.iter().enumerate().take(n) {
            if !r {
                succs[u].push((exit, None));
            }
        }

        let mut preds: Vec<Vec<Node>> = vec![Vec::new(); n + 1];
        for (u, ss) in succs.iter().enumerate() {
            for &(v, _) in ss {
                preds[v].push(u);
            }
        }
        Cfg {
            succs,
            preds,
            stmts: n,
        }
    }

    /// Number of real statements.
    pub fn stmt_count(&self) -> usize {
        self.stmts
    }

    /// The virtual exit node.
    pub fn exit(&self) -> Node {
        self.stmts
    }

    /// Labeled successors of a node.
    pub fn succs(&self, v: Node) -> &[(Node, EdgeLabel)] {
        &self.succs[v]
    }

    /// Predecessors of a node.
    pub fn preds(&self, v: Node) -> &[Node] {
        &self.preds[v]
    }

    /// Iterates over all `(from, to, label)` edges.
    pub fn edges(&self) -> impl Iterator<Item = (Node, Node, EdgeLabel)> + '_ {
        self.succs
            .iter()
            .enumerate()
            .flat_map(|(u, ss)| ss.iter().map(move |&(v, l)| (u, v, l)))
    }

    /// Converts a node to a statement id (`None` for the exit node).
    pub fn as_stmt(&self, v: Node) -> Option<StmtId> {
        (v < self.stmts).then_some(StmtId(v as u32))
    }
}

/// Computes immediate dominators of `graph` rooted at `root` using the
/// Cooper–Harvey–Kennedy iterative algorithm.
///
/// `succs`/`preds` describe the graph in the direction of domination (pass
/// the *reverse* CFG with the exit as root to obtain post-dominators).
/// Returns `idom[v]`, with `idom[root] == root` and unreachable nodes
/// mapped to `usize::MAX`.
pub fn immediate_dominators(
    n: usize,
    root: Node,
    succs: impl Fn(Node) -> Vec<Node>,
    preds: impl Fn(Node) -> Vec<Node>,
) -> Vec<Node> {
    const UNDEF: Node = usize::MAX;
    // Reverse postorder from root.
    let mut order = Vec::with_capacity(n);
    let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
    let mut stack = vec![(root, 0usize)];
    state[root] = 1;
    while let Some(&mut (v, ref mut i)) = stack.last_mut() {
        let ss = succs(v);
        if *i < ss.len() {
            let w = ss[*i];
            *i += 1;
            if state[w] == 0 {
                state[w] = 1;
                stack.push((w, 0));
            }
        } else {
            state[v] = 2;
            order.push(v);
            stack.pop();
        }
    }
    order.reverse(); // reverse postorder

    let mut rpo_num = vec![UNDEF; n];
    for (i, &v) in order.iter().enumerate() {
        rpo_num[v] = i;
    }

    let mut idom = vec![UNDEF; n];
    idom[root] = root;
    let intersect = |idom: &[Node], rpo: &[Node], mut a: Node, mut b: Node| -> Node {
        while a != b {
            while rpo[a] > rpo[b] {
                a = idom[a];
            }
            while rpo[b] > rpo[a] {
                b = idom[b];
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &v in order.iter().skip(1) {
            let mut new_idom = UNDEF;
            for p in preds(v) {
                if idom.get(p).copied().unwrap_or(UNDEF) == UNDEF {
                    continue;
                }
                new_idom = if new_idom == UNDEF {
                    p
                } else {
                    intersect(&idom, &rpo_num, new_idom, p)
                };
            }
            if new_idom != UNDEF && idom[v] != new_idom {
                idom[v] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_lang::compile;

    #[test]
    fn straight_line_cfg() {
        let p = compile("global x: int; fn main() { x = 1; x = 2; }").unwrap();
        let cfg = Cfg::build(p.func(p.main));
        assert_eq!(cfg.stmt_count(), 3); // two assigns + implicit return
        assert_eq!(cfg.succs(0), &[(1, None)]);
        assert_eq!(cfg.succs(2), &[(cfg.exit(), None)]);
    }

    #[test]
    fn branch_edges_labeled() {
        let p = compile("global x: int; fn main() { if (x > 0) { x = 1; } }").unwrap();
        let cfg = Cfg::build(p.func(p.main));
        let branch = (0..cfg.stmt_count())
            .find(|&i| cfg.succs(i).len() == 2)
            .expect("one branch");
        let labels: Vec<_> = cfg.succs(branch).iter().map(|&(_, l)| l).collect();
        assert_eq!(labels, vec![Some(true), Some(false)]);
    }

    #[test]
    fn infinite_loop_gets_virtual_exit_edge() {
        let p = compile("global x: int; fn main() { while (1) { x = x + 1; } }").unwrap();
        let cfg = Cfg::build(p.func(p.main));
        // Some node inside the loop must have a virtual edge to exit.
        let has_exit_edge =
            (0..cfg.stmt_count()).any(|i| cfg.succs(i).iter().any(|&(v, _)| v == cfg.exit()));
        assert!(has_exit_edge);
    }

    #[test]
    fn dominators_of_diamond() {
        // 0 -> 1 -> {2,3} -> 4
        let succs: [Vec<usize>; 5] = [vec![1], vec![2, 3], vec![4], vec![4], vec![]];
        let mut preds = vec![Vec::new(); 5];
        for (u, ss) in succs.iter().enumerate() {
            for &v in ss {
                preds[v].push(u);
            }
        }
        let idom = immediate_dominators(5, 0, |v| succs[v].clone(), |v| preds[v].clone());
        assert_eq!(idom[1], 0);
        assert_eq!(idom[2], 1);
        assert_eq!(idom[3], 1);
        assert_eq!(idom[4], 1);
    }

    #[test]
    fn postdominators_of_if() {
        let p =
            compile("global x: int; fn main() { if (x > 0) { x = 1; } else { x = 2; } x = 3; }")
                .unwrap();
        let cfg = Cfg::build(p.func(p.main));
        let n = cfg.stmt_count() + 1;
        let ipdom = immediate_dominators(
            n,
            cfg.exit(),
            |v| cfg.preds(v).to_vec(),
            |v| cfg.succs(v).iter().map(|&(s, _)| s).collect(),
        );
        // The branch's immediate postdominator is the merge statement x = 3.
        let branch = (0..cfg.stmt_count())
            .find(|&i| cfg.succs(i).len() == 2)
            .unwrap();
        let f = p.func(p.main);
        let merge = ipdom[branch];
        match &f.body[merge] {
            mcr_lang::Inst::Assign { src, .. } => {
                assert_eq!(src, &mcr_lang::Expr::Const(3));
            }
            other => panic!("unexpected ipdom {other:?}"),
        }
    }
}
