//! Criterion micro-benchmarks of the analysis kernels behind the tables.
//!
//! * `instrumentation/*` — the overhead story of the paper's §3.2: plain
//!   execution vs. loop counters vs. full online execution indexing (the
//!   paper's 1.6% vs 42% motivation).
//! * `dump/*` — encode/decode/traverse/diff (Tables 3 and 6).
//! * `index/*` — failure-index reverse engineering and alignment.
//! * `slice/*` — dependence trace + backward slice (Table 6).
//! * `search/*` — one end-to-end directed search per algorithm (Table 4).
//! * `segment_seek/*` — segmented-artifact rehydration: a random range
//!   read from a checksummed `SegmentedBytes` container (the `SegStore`
//!   cache-miss path) vs decoding the whole blob to serve the same
//!   range (the materialized baseline).
//! * `search_hotpath/*` — the search engine's cost model in isolation:
//!   checkpoint (`Vm::clone`) cost on a heap-rich state, stepping
//!   throughput, one test execution (a "try"), and a guided vs plain
//!   search on a fixed candidate set. `tables -- bench-json` records the
//!   same metrics to `BENCH_search.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mcr_analysis::ProgramAnalysis;
use mcr_core::{find_failure, ReproOptions, Reproducer};
use mcr_dump::{reachable_vars, CoreDump, DumpDiff, DumpReason, TraverseLimits};
use mcr_index::{reverse_index, Aligner, OnlineIndexer};
use mcr_search::Algorithm;
use mcr_slice::{backward_slice, Strategy, TraceCollector};
use mcr_vm::{run, run_until, DeterministicScheduler, NullObserver, ThreadId, Vm};

const LOOPY: &str = r#"
    global n: int;
    global acc: int;
    fn work(k) {
        var i; var v;
        v = k;
        while (i < 40) {
            i = i + 1;
            v = (v * 31 + i) % 1009;
        }
        return v;
    }
    fn main() {
        var r; var j;
        for (j = 0; j < 50; j = j + 1) {
            r = work(j);
            acc = acc + r;
        }
    }
"#;

fn bench_instrumentation(c: &mut Criterion) {
    let program = mcr_lang::compile(LOOPY).unwrap();
    let analysis = ProgramAnalysis::analyze(&program);
    let mut g = c.benchmark_group("instrumentation");
    g.bench_function("plain", |b| {
        b.iter(|| {
            let mut vm = Vm::new(&program, &[]);
            vm.set_count_loop_instr(false);
            run(
                &mut vm,
                &mut DeterministicScheduler::new(),
                &mut NullObserver,
                1_000_000,
            );
            black_box(vm.instrs())
        });
    });
    g.bench_function("loop_counters", |b| {
        b.iter(|| {
            let mut vm = Vm::new(&program, &[]);
            vm.set_count_loop_instr(true);
            run(
                &mut vm,
                &mut DeterministicScheduler::new(),
                &mut NullObserver,
                1_000_000,
            );
            black_box(vm.instrs())
        });
    });
    g.bench_function("online_ei", |b| {
        b.iter(|| {
            let mut vm = Vm::new(&program, &[]);
            let mut indexer = OnlineIndexer::new(&program, &analysis);
            run(
                &mut vm,
                &mut DeterministicScheduler::new(),
                &mut indexer,
                1_000_000,
            );
            black_box(indexer.ops())
        });
    });
    g.finish();
}

const HEAPY: &str = r#"
    global roots: [int; 32];
    global n: int;
    fn main() {
        var i; var p;
        for (i = 0; i < 32; i = i + 1) {
            p = alloc(16);
            p[0] = i;
            p[1] = alloc(4);
            roots[i] = p;
        }
        n = 32;
    }
"#;

fn medium_dump() -> (mcr_lang::Program, CoreDump) {
    let program = mcr_lang::compile(HEAPY).unwrap();
    let mut vm = Vm::new(&program, &[]);
    run(
        &mut vm,
        &mut DeterministicScheduler::new(),
        &mut NullObserver,
        1_000_000,
    );
    let dump = CoreDump::capture(&vm, ThreadId(0), DumpReason::Manual);
    (program, dump)
}

fn bench_dump(c: &mut Criterion) {
    let (_program, dump) = medium_dump();
    let bytes = mcr_dump::encode(&dump);
    let vars = reachable_vars(&dump, TraverseLimits::default());
    let mut g = c.benchmark_group("dump");
    g.bench_function("encode", |b| b.iter(|| black_box(mcr_dump::encode(&dump))));
    g.bench_function("decode", |b| {
        b.iter(|| black_box(mcr_dump::decode(&bytes).unwrap()));
    });
    g.bench_function("traverse", |b| {
        b.iter(|| black_box(reachable_vars(&dump, TraverseLimits::default())));
    });
    g.bench_function("diff", |b| {
        b.iter(|| black_box(DumpDiff::compare_maps(&vars, &vars)));
    });
    g.finish();
}

const CRASHER: &str = r#"
    global input: [int; 1];
    fn deep(p, d) {
        if (d > 0) {
            deep(p, d - 1);
        } else {
            p[0] = 1;
        }
    }
    fn main() {
        var i; var p;
        while (i < 20) {
            i = i + 1;
            if (i == input[0]) { deep(null, 6); }
        }
    }
"#;

fn bench_index(c: &mut Criterion) {
    let program = mcr_lang::compile(CRASHER).unwrap();
    let analysis = ProgramAnalysis::analyze(&program);
    let mut vm = Vm::new(&program, &[13]);
    run(
        &mut vm,
        &mut DeterministicScheduler::new(),
        &mut NullObserver,
        1_000_000,
    );
    let dump = CoreDump::capture_failure(&vm).expect("crash");
    let index = reverse_index(&program, &analysis, &dump).unwrap();

    let mut g = c.benchmark_group("index");
    g.bench_function("reverse_engineer", |b| {
        b.iter(|| black_box(reverse_index(&program, &analysis, &dump).unwrap()));
    });
    g.bench_function("alignment_scan", |b| {
        b.iter(|| {
            let mut vm = Vm::new(&program, &[99]);
            let mut aligner = Aligner::new(&program, &analysis, dump.focus, &index);
            run_until(
                &mut vm,
                &mut DeterministicScheduler::new(),
                &mut aligner,
                1_000_000,
                |_| false,
            );
            black_box(aligner.finish())
        });
    });
    g.finish();
}

fn bench_slice(c: &mut Criterion) {
    let program = mcr_lang::compile(LOOPY).unwrap();
    let analysis = ProgramAnalysis::analyze(&program);
    let mut vm = Vm::new(&program, &[]);
    let mut collector = TraceCollector::new(&program, &analysis, 1_000_000);
    run(
        &mut vm,
        &mut DeterministicScheduler::new(),
        &mut collector,
        1_000_000,
    );
    let trace = collector.finish();
    let criterion = trace.last().unwrap().serial;

    let mut g = c.benchmark_group("slice");
    g.bench_function("collect_trace", |b| {
        b.iter(|| {
            let mut vm = Vm::new(&program, &[]);
            let mut tc = TraceCollector::new(&program, &analysis, 1_000_000);
            run(
                &mut vm,
                &mut DeterministicScheduler::new(),
                &mut tc,
                1_000_000,
            );
            black_box(tc.finish().len())
        });
    });
    g.bench_function("backward_slice", |b| {
        b.iter(|| black_box(backward_slice(&trace, &[criterion]).len()));
    });
    g.finish();
}

fn bench_search(c: &mut Criterion) {
    // A small fig1-scale bug so each iteration is an entire pipeline.
    let bug = mcr_workloads::bug_by_name("mysql-3").unwrap();
    let program = bug.compile();
    let input = bug.lengthened_input(10, 42);
    let sf = find_failure(&program, &input, 0..200_000, bug.max_steps).expect("stress");

    let mut g = c.benchmark_group("search");
    g.sample_size(10);
    for (name, algorithm, strategy) in [
        ("chessx_temporal", Algorithm::ChessX, Strategy::Temporal),
        ("chessx_dep", Algorithm::ChessX, Strategy::Dependence),
        ("chess", Algorithm::Chess, Strategy::Temporal),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let reproducer = Reproducer::new(
                    &program,
                    ReproOptions {
                        algorithm,
                        strategy,
                        ..Default::default()
                    },
                );
                let report = reproducer.reproduce(&sf.dump, &input).unwrap();
                assert!(report.search.reproduced);
                black_box(report.search.tries)
            });
        });
    }
    g.finish();
}

fn bench_segment_seek(c: &mut Criterion) {
    use mcr_bench::hotpath::segment_fixture;

    let (seg, ranges) = segment_fixture();
    let total = seg.total_len() as usize;
    let mut g = c.benchmark_group("segment_seek");
    g.bench_function("random_range", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (off, len) = ranges[i % ranges.len()];
            i += 1;
            black_box(seg.read_range(off, len).expect("fixture range"))
        });
    });
    g.bench_function("whole_blob", |b| {
        b.iter(|| black_box(seg.read_range(0, total).expect("whole blob")));
    });
    g.finish();
}

fn bench_search_hotpath(c: &mut Criterion) {
    use mcr_bench::hotpath::{checkpoint_fixture_program, checkpoint_fixture_vm, SearchFixture};

    let program = checkpoint_fixture_program();
    let vm = checkpoint_fixture_vm(&program);
    let fixture = SearchFixture::prepare();

    let mut g = c.benchmark_group("search_hotpath");
    g.bench_function("checkpoint_clone", |b| b.iter(|| black_box(vm.clone())));
    g.bench_function("step_throughput", |b| {
        b.iter(|| {
            let mut vm = Vm::new(&program, &[]);
            run(
                &mut vm,
                &mut DeterministicScheduler::new(),
                &mut NullObserver,
                10_000_000,
            );
            black_box(vm.steps())
        });
    });
    g.sample_size(10);
    g.bench_function("guided_search", |b| {
        b.iter(|| black_box(fixture.search(Algorithm::ChessX, 1).tries));
    });
    g.bench_function("plain_search", |b| {
        b.iter(|| black_box(fixture.search(Algorithm::Chess, 1).tries));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_instrumentation,
    bench_dump,
    bench_index,
    bench_slice,
    bench_search,
    bench_segment_seek,
    bench_search_hotpath
);
criterion_main!(benches);
