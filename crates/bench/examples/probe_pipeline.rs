use mcr_core::{find_failure, ReproOptions, Reproducer};
use mcr_search::Algorithm;
use mcr_slice::Strategy;

fn main() {
    for bug in mcr_workloads::all_bugs() {
        let p = bug.compile();
        let input = bug.default_input();
        let t0 = std::time::Instant::now();
        let sf = find_failure(&p, &input, 0..500_000, bug.max_steps).expect("stress");
        let stress_t = t0.elapsed();
        for (label, strategy, algo) in [
            ("chessX+temporal", Strategy::Temporal, Algorithm::ChessX),
            ("chessX+dep", Strategy::Dependence, Algorithm::ChessX),
            ("chess", Strategy::Temporal, Algorithm::Chess),
        ] {
            let opts = ReproOptions {
                strategy,
                algorithm: algo,
                ..Default::default()
            };
            let r = Reproducer::new(&p, opts);
            let t1 = std::time::Instant::now();
            match r.reproduce(&sf.dump, &input) {
                Ok(rep) => println!(
                    "{:9} {:16} repro={} tries={:5} combos={:4} csvs={:2} idx={:?} align={:?} vars={} shared={} diffs={} ({:?}, stress {:?})",
                    bug.name, label, rep.search.reproduced, rep.search.tries,
                    rep.search.combinations_tested,
                    rep.csv_locs.len(), rep.index.as_ref().map(mcr_index::index::ExecutionIndex::len),
                    rep.alignment.signal, rep.vars, rep.shared, rep.diffs, t1.elapsed(), stress_t
                ),
                Err(e) => println!("{:9} {:16} ERROR: {e}", bug.name, label),
            }
        }
    }
}
