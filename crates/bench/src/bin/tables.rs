//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p mcr-bench --bin tables -- all
//! cargo run --release -p mcr-bench --bin tables -- table1 [--full-scale]
//! cargo run --release -p mcr-bench --bin tables -- table2 | table3 | table4
//! cargo run --release -p mcr-bench --bin tables -- table5 | table6 | fig10
//! cargo run --release -p mcr-bench --bin tables -- steps
//! cargo run --release -p mcr-bench --bin tables -- race-lint
//! cargo run --release -p mcr-bench --bin tables -- bench-json [PATH]
//! cargo run --release -p mcr-bench --bin tables -- batch-json [PATH]
//! ```
//!
//! `bench-json` runs the `search_hotpath` measurements (checkpoint
//! clone, steps/sec, tries/sec, guided vs plain, parallel-vs-serial over
//! the bug suite) and writes them to `PATH` (default
//! `BENCH_search.json`), printing the JSON to stdout as well.
//!
//! `race-lint` runs the static race/lockset lint over the whole
//! workload corpus — no dump, no failing input — and fails if any
//! seeded bug comes back without a statically visible hazard.
//!
//! `batch-json` measures the `mcr-batch` fleet engine on a
//! duplicate-heavy job mix (throughput, cache-hit rate, single-flight
//! dedup, serial-equivalence) and writes `PATH` (default
//! `BENCH_batch.json`).
//!
//! Both JSON writers validate the report against the crate's required
//! key lists (`steps_per_sec`, `parallel.speedup`, the compile-phase
//! store row, …) and refuse to write a report that drops a column.
//!
//! `table1 --full-scale` generates corpora at the paper's statement
//! counts (105K/892K/521K — takes a few minutes); the default scale is
//! 40K statements per corpus.

use mcr_bench::experiments::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map_or("all", String::as_str);
    let full_scale = args.iter().any(|a| a == "--full-scale");
    let t1_scale = if full_scale { None } else { Some(40_000) };

    let run_one = |name: &str| match name {
        "table1" => {
            println!("== Table 1: distribution of control dependences ==");
            println!("{}", render_table1(&table1(t1_scale)));
        }
        "table2" => {
            println!("== Table 2: concurrency bugs studied ==");
            println!("{}", render_table2(&table2()));
        }
        "table3" => {
            println!("== Table 3: core dump analysis ==");
            println!("{}", render_table3(&table3()));
        }
        "table4" => {
            println!("== Table 4: failure-inducing schedule production ==");
            println!("{}", render_table4(&table4()));
        }
        "table5" => {
            println!("== Table 5: chessX+temporal using instruction counts ==");
            println!("{}", render_table5(&table5()));
        }
        "table6" => {
            println!("== Table 6: other costs ==");
            println!("{}", render_table6(&table6()));
        }
        "fig10" => {
            println!("== Fig. 10: runtime overhead on production systems ==");
            println!("{}", render_fig10(&fig10()));
        }
        "race-lint" => {
            println!("== static race lint: dump-less triage of the workload corpus ==");
            let rows = mcr_bench::lint::race_lint_corpus();
            let mut missed = Vec::new();
            for row in &rows {
                println!("\n-- {} --", row.name);
                print!("{}", row.rendered);
                if !row.flagged() {
                    missed.push(row.name.clone());
                }
            }
            assert!(
                missed.is_empty(),
                "seeded bugs with no static hazard: {missed:?}"
            );
            println!(
                "\nrace-lint: {} workloads triaged, all flagged, no dump needed",
                rows.len()
            );
        }
        "bench-json" => {
            let path = args
                .iter()
                .skip(1)
                .find(|a| !a.starts_with("--"))
                .map_or("BENCH_search.json", String::as_str);
            eprintln!("running search_hotpath measurements (stress + search over the bug suite)…");
            let report = mcr_bench::hotpath::bench_report();
            assert!(
                report.static_race.identical_winners,
                "static-race pruning changed a winning schedule"
            );
            assert!(
                report.static_race.reduction() >= 1.3,
                "static-race candidate reduction {:.2}x fell below the 1.3x gate \
                 (unpruned {} vs pruned {})",
                report.static_race.reduction(),
                report.static_race.unpruned_candidates,
                report.static_race.pruned_candidates
            );
            let json = report.to_json();
            mcr_bench::hotpath::check_bench_json_schema(&json)
                .unwrap_or_else(|e| panic!("refusing to write {path}: {e}"));
            std::fs::write(path, format!("{json}\n"))
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            println!("{json}");
            eprintln!("wrote {path}");
        }
        "steps" => {
            let stats = mcr_bench::hotpath::stepper_plan_stats();
            println!(
                "dispatch plan: {} ops, {} fused, {} slow",
                stats.ops, stats.fused, stats.slow
            );
            println!(
                "steps_per_sec (threaded): {:.0}",
                mcr_bench::hotpath::measure_steps_per_sec()
            );
            println!(
                "steps_per_sec (legacy):   {:.0}",
                mcr_bench::hotpath::measure_steps_per_sec_legacy()
            );
        }
        "batch-json" => {
            let path = args
                .iter()
                .skip(1)
                .find(|a| !a.starts_with("--"))
                .map_or("BENCH_batch.json", String::as_str);
            eprintln!("running batch measurements (duplicate-heavy fleet vs serial baseline)…");
            let report = mcr_bench::batch::batch_report();
            assert!(
                report.identical_results,
                "fleet reports diverged from the serial baseline"
            );
            assert!(
                report.cache_hits > 0,
                "duplicate-heavy mix produced no cache hits"
            );
            assert!(
                report.recompile.identical_results,
                "recompile stream: store-backed reports diverged from cold runs"
            );
            assert!(
                report.recompile.function_hit_rate >= 0.85,
                "recompile stream: function-level hit rate {:.3} fell below 0.85",
                report.recompile.function_hit_rate
            );
            assert!(
                (report.recompile.recomputed_per_edit
                    - 2.0 * report.recompile.edits_per_rev as f64)
                    .abs()
                    < f64::EPSILON,
                "recompile stream: expected exactly 2 recomputed units per edit, got {:.2}",
                report.recompile.recomputed_per_edit
            );
            assert!(
                report.streaming.identical_results,
                "adaptive fleet: shed reports diverged from the plain fleet"
            );
            assert!(
                report.streaming.peak_reduction >= 1.5,
                "streaming: peak resident bytes reduction {:.2}x fell below the 1.5x gate \
                 (materialized {} vs segmented {})",
                report.streaming.peak_reduction,
                report.streaming.peak_materialized_bytes,
                report.streaming.peak_segmented_bytes
            );
            let json = report.to_json();
            mcr_bench::batch::check_batch_json_schema(&json)
                .unwrap_or_else(|e| panic!("refusing to write {path}: {e}"));
            std::fs::write(path, format!("{json}\n"))
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            println!("{json}");
            eprintln!("wrote {path}");
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!(
                "usage: tables [all|table1|table2|table3|table4|table5|table6|fig10|steps|\
                 race-lint|bench-json|batch-json] [--full-scale]"
            );
            std::process::exit(2);
        }
    };

    if which == "all" {
        for name in [
            "table1", "table2", "table3", "table4", "table5", "table6", "fig10",
        ] {
            run_one(name);
        }
    } else {
        run_one(which);
    }
}
