//! # mcr-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation section
//! over the `mcr-workloads` suite; see [`experiments`] for one function
//! per table and the `tables` binary for the command-line driver:
//!
//! ```text
//! cargo run --release -p mcr-bench --bin tables -- all
//! ```
//!
//! Criterion micro-benchmarks of the hot analysis kernels live under
//! `benches/` (`cargo bench -p mcr-bench`), and [`hotpath`] measures the
//! search engine's cost model (checkpoint cost, steps/sec, tries/sec,
//! guided vs plain, parallel speedup), writing `BENCH_search.json` via:
//!
//! ```text
//! cargo run --release -p mcr-bench --bin tables -- bench-json
//! ```
//!
//! [`batch`] measures the `mcr-batch` fleet engine — throughput and
//! cache-hit rate on a duplicate-heavy job mix — writing
//! `BENCH_batch.json` via:
//!
//! ```text
//! cargo run --release -p mcr-bench --bin tables -- batch-json
//! ```
//!
//! [`lint`] is the dump-less surface: the static race/lockset lint over
//! the whole workload corpus, via:
//!
//! ```text
//! cargo run --release -p mcr-bench --bin tables -- race-lint
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod experiments;
pub mod hotpath;
pub mod lint;
