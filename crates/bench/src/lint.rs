//! The dump-less triage surface: the static race/lockset lint
//! (`mcr_analysis::race`) run over the whole workload corpus.
//!
//! Everything else in this crate measures the dump-directed pipeline —
//! a failure already happened and the question is how fast it
//! reproduces. The lint answers the *pre-failure* question: which
//! `(function, access site)` pairs of a program can race at all. It
//! needs no dump, no failing input, and no schedule search, so it
//! triages the entire corpus in milliseconds.

use mcr_analysis::RaceAnalysis;

/// One program's lint outcome.
#[derive(Debug, Clone)]
pub struct LintRow {
    /// Workload name ("apache-1", "tso-sb", …).
    pub name: String,
    /// May-Race pairs found.
    pub findings: usize,
    /// Contended locks found.
    pub contended: usize,
    /// The rendered report.
    pub rendered: String,
}

impl LintRow {
    /// Whether the lint flagged any hazard (a May-Race pair or a
    /// contended lock).
    pub fn flagged(&self) -> bool {
        self.findings + self.contended > 0
    }
}

fn lint(name: &str, program: &mcr_lang::Program) -> LintRow {
    let analysis = RaceAnalysis::analyze(program);
    let report = analysis.report();
    LintRow {
        name: name.to_string(),
        findings: report.findings.len(),
        contended: report.contended.len(),
        rendered: report.render(program),
    }
}

/// Lints every workload — the Table 2 suite and the environment-gated
/// suite — with no dump and no failing input.
pub fn race_lint_corpus() -> Vec<LintRow> {
    let mut rows = Vec::new();
    for bug in mcr_workloads::all_bugs() {
        rows.push(lint(bug.name, &bug.compile()));
    }
    for bug in mcr_workloads::fault_bugs() {
        rows.push(lint(bug.name, &bug.compile()));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_seeded_bug_is_flagged() {
        let rows = race_lint_corpus();
        assert_eq!(
            rows.len(),
            mcr_workloads::all_bugs().len() + mcr_workloads::fault_bugs().len()
        );
        for row in &rows {
            assert!(
                row.flagged(),
                "{}: seeded concurrency bug but no static hazard\n{}",
                row.name,
                row.rendered
            );
        }
    }
}
