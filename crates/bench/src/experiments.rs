//! The evaluation harness: one function per table/figure of the paper.
//!
//! Each function returns structured rows and renders the same columns the
//! paper reports. Absolute numbers differ from the paper (its substrate
//! was a 2010 testbed with GDB/Valgrind; ours is a deterministic
//! simulator), but each table's *shape* — who wins, by what order of
//! magnitude, which baseline fails — is the reproduction target. See
//! EXPERIMENTS.md for the recorded comparison.

use mcr_core::{find_failure, AlignMode, ReproOptions, ReproReport, Reproducer, StressFailure};
use mcr_search::{Algorithm, SearchConfig};
use mcr_slice::Strategy;
use mcr_workloads::{all_bugs, overhead_workloads, BugSpec};
use std::fmt::Write as _;
use std::time::Duration;

/// Search cutoff used as the equivalent of the paper's 18-hour budget.
pub const CUTOFF_TRIES: u64 = 20_000;

/// Stress seed range used to obtain failure dumps.
pub const STRESS_SEEDS: std::ops::Range<u64> = 0..2_000_000;

/// Runs stress testing for one bug and returns its failure dump.
///
/// # Panics
///
/// Panics if no seed in [`STRESS_SEEDS`] exposes the failure (would mean
/// a broken workload; covered by tests).
pub fn stress_bug(bug: &BugSpec, input: &[i64]) -> StressFailure {
    let program = bug.compile();
    find_failure(&program, input, STRESS_SEEDS, bug.max_steps)
        .unwrap_or_else(|| panic!("{}: stress did not expose the bug", bug.name))
}

/// Options for one pipeline run of the harness.
#[derive(Debug, Clone, Copy)]
pub struct HarnessOptions {
    /// Prioritization strategy.
    pub strategy: Strategy,
    /// Search algorithm.
    pub algorithm: Algorithm,
    /// Aligned-point location method.
    pub align_mode: AlignMode,
    /// Search cutoff in tries (0 = skip the search).
    pub max_tries: u64,
    /// Optional wall-clock budget for the search.
    pub time_budget: Option<Duration>,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            strategy: Strategy::Temporal,
            algorithm: Algorithm::ChessX,
            align_mode: AlignMode::ExecutionIndex,
            max_tries: CUTOFF_TRIES,
            time_budget: None,
        }
    }
}

/// Runs the full reproduction pipeline for one bug.
pub fn run_pipeline(bug: &BugSpec, sf: &StressFailure, opts: HarnessOptions) -> ReproReport {
    let program = bug.compile();
    let input = bug.default_input();
    let options = ReproOptions {
        strategy: opts.strategy,
        algorithm: opts.algorithm,
        align_mode: opts.align_mode,
        search: SearchConfig {
            max_tries: opts.max_tries,
            time_budget: opts.time_budget,
            ..Default::default()
        },
        ..Default::default()
    };
    let reproducer = Reproducer::new(&program, options);
    reproducer
        .reproduce(&sf.dump, &input)
        .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", bug.name))
}

// ---------------------------------------------------------------------
// Table 1 — distribution of control dependences
// ---------------------------------------------------------------------

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Corpus name.
    pub name: String,
    /// % single control dependence.
    pub one_cd: f64,
    /// % aggregatable to one.
    pub aggr_to_one: f64,
    /// % non-aggregatable.
    pub not_aggr: f64,
    /// % loop predicates.
    pub loop_pred: f64,
    /// Total statements.
    pub total: usize,
}

/// Regenerates Table 1 at `scale` statements per corpus (pass `None` for
/// the paper's full sizes: 105K / 892K / 521K).
pub fn table1(scale: Option<usize>) -> Vec<Table1Row> {
    use mcr_analysis::ProgramAnalysis;
    let profiles = match scale {
        Some(n) => mcr_workloads::small_profiles(n),
        None => mcr_workloads::paper_profiles(),
    };
    profiles
        .iter()
        .enumerate()
        .map(|(i, profile)| {
            let program = mcr_workloads::generate(profile, 0xA11CE + i as u64);
            let analysis = ProgramAnalysis::analyze(&program);
            let census = analysis.census(&program);
            Table1Row {
                name: profile.name.to_string(),
                one_cd: census.pct_one_cd(),
                aggr_to_one: census.pct_aggr_to_one(),
                not_aggr: census.pct_not_aggr(),
                loop_pred: census.pct_loop(),
                total: census.total,
            }
        })
        .collect()
}

/// Renders Table 1.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<16} {:>8} {:>12} {:>10} {:>7} {:>9}",
        "benchmark", "one CD", "aggr. to one", "not aggr.", "loop", "total"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<16} {:>8.2} {:>12.2} {:>10.2} {:>7.2} {:>9}",
            r.name, r.one_cd, r.aggr_to_one, r.not_aggr, r.loop_pred, r.total
        );
    }
    s
}

// ---------------------------------------------------------------------
// Table 2 — the bugs studied
// ---------------------------------------------------------------------

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Bug name.
    pub name: String,
    /// Modeled upstream bug id.
    pub id: String,
    /// Bug class label.
    pub class: &'static str,
    /// Steps of the failing (stress) execution.
    pub exec_steps: u64,
    /// Instructions of the failing execution.
    pub exec_instrs: u64,
    /// Worker threads.
    pub threads: u32,
}

/// Regenerates Table 2 (descriptions plus measured execution lengths).
pub fn table2() -> Vec<Table2Row> {
    all_bugs()
        .iter()
        .map(|bug| {
            let input = bug.default_input();
            let sf = stress_bug(bug, &input);
            Table2Row {
                name: bug.name.to_string(),
                id: bug.bug_id.to_string(),
                class: bug.class.label(),
                exec_steps: sf.steps,
                exec_instrs: sf.instrs,
                threads: bug.threads,
            }
        })
        .collect()
}

/// Renders Table 2.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<10} {:>6} {:>6} {:>12} {:>12} {:>8}",
        "bugs", "id", "descr", "exec steps", "exec instrs", "threads"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<10} {:>6} {:>6} {:>12} {:>12} {:>8}",
            r.name, r.id, r.class, r.exec_steps, r.exec_instrs, r.threads
        );
    }
    s
}

// ---------------------------------------------------------------------
// Table 3 — core dump analysis
// ---------------------------------------------------------------------

/// One row of Table 3.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Bug name.
    pub name: String,
    /// Failure dump size in bytes.
    pub fail_bytes: usize,
    /// Aligned dump size in bytes.
    pub pass_bytes: usize,
    /// Variables reachable from the failing thread.
    pub vars: usize,
    /// Variables with differing values.
    pub diffs: usize,
    /// Shared variables compared.
    pub shared: usize,
    /// Critical shared variables.
    pub csv: usize,
    /// Length of the reverse-engineered failure index.
    pub index_len: usize,
}

/// Regenerates Table 3 (analysis only; the search is skipped).
pub fn table3() -> Vec<Table3Row> {
    all_bugs()
        .iter()
        .map(|bug| {
            let input = bug.default_input();
            let sf = stress_bug(bug, &input);
            let report = run_pipeline(
                bug,
                &sf,
                HarnessOptions {
                    max_tries: 0,
                    ..Default::default()
                },
            );
            Table3Row {
                name: bug.name.to_string(),
                fail_bytes: report.failure_dump_bytes,
                pass_bytes: report.aligned_dump_bytes,
                vars: report.vars,
                diffs: report.diffs,
                shared: report.shared,
                csv: report.csv_paths.len(),
                index_len: report
                    .index
                    .as_ref()
                    .map_or(0, mcr_index::index::ExecutionIndex::len),
            }
        })
        .collect()
}

/// Renders Table 3.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<10} {:>16} {:>12} {:>12} {:>11}",
        "bugs", "core dump (F+P)", "vars/diffs", "shared/CSV", "len(index)"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<10} {:>7}B/{:>7}B {:>7}/{:<4} {:>7}/{:<4} {:>11}",
            r.name, r.fail_bytes, r.pass_bytes, r.vars, r.diffs, r.shared, r.csv, r.index_len
        );
    }
    s
}

// ---------------------------------------------------------------------
// Table 4 — failure-inducing schedule production
// ---------------------------------------------------------------------

/// Result of one algorithm on one bug.
#[derive(Debug, Clone)]
pub struct SearchCell {
    /// Tries used.
    pub tries: u64,
    /// Wall time of the schedule search.
    pub time: Duration,
    /// Whether the bug was reproduced within the cutoff.
    pub reproduced: bool,
}

/// One row of Table 4.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Bug name.
    pub name: String,
    /// Plain CHESS.
    pub chess: SearchCell,
    /// Enhanced, dependence-distance prioritization.
    pub chessx_dep: SearchCell,
    /// Enhanced, temporal-distance prioritization.
    pub chessx_temporal: SearchCell,
}

/// Regenerates Table 4.
pub fn table4() -> Vec<Table4Row> {
    all_bugs()
        .iter()
        .map(|bug| {
            let input = bug.default_input();
            let sf = stress_bug(bug, &input);
            let cell = |strategy, algorithm| {
                let report = run_pipeline(
                    bug,
                    &sf,
                    HarnessOptions {
                        strategy,
                        algorithm,
                        ..Default::default()
                    },
                );
                SearchCell {
                    tries: report.search.tries,
                    time: report.search.wall_time,
                    reproduced: report.search.reproduced,
                }
            };
            Table4Row {
                name: bug.name.to_string(),
                chess: cell(Strategy::Temporal, Algorithm::Chess),
                chessx_dep: cell(Strategy::Dependence, Algorithm::ChessX),
                chessx_temporal: cell(Strategy::Temporal, Algorithm::ChessX),
            }
        })
        .collect()
}

fn cell_str(c: &SearchCell) -> String {
    if c.reproduced {
        format!("{:>6} {:>9.1?}", c.tries, c.time)
    } else {
        format!("{:>6} {:>9}", format!("{}*", c.tries), "cutoff")
    }
}

/// Renders Table 4.
pub fn render_table4(rows: &[Table4Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<10} | {:^16} | {:^16} | {:^16}",
        "bug", "chess", "chessX+dep", "chessX+temporal"
    );
    let _ = writeln!(
        s,
        "{:<10} | {:>6} {:>9} | {:>6} {:>9} | {:>6} {:>9}",
        "", "tries", "time", "tries", "time", "tries", "time"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<10} | {} | {} | {}",
            r.name,
            cell_str(&r.chess),
            cell_str(&r.chessx_dep),
            cell_str(&r.chessx_temporal)
        );
    }
    let _ = writeln!(s, "(* = cut off after {CUTOFF_TRIES} tries)");
    s
}

// ---------------------------------------------------------------------
// Table 5 — instruction-count alignment baseline
// ---------------------------------------------------------------------

/// One row of Table 5.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Bug name.
    pub name: String,
    /// Thread-local instruction count of the failing thread at failure.
    pub instrs: u64,
    /// Variables reachable / differing under this alignment.
    pub vars: usize,
    /// Differing variables.
    pub diffs: usize,
    /// Shared compared / CSVs under this alignment.
    pub shared: usize,
    /// CSVs.
    pub csv: usize,
    /// Search result (chessX+temporal, as in the paper).
    pub search: SearchCell,
}

/// Regenerates Table 5.
pub fn table5() -> Vec<Table5Row> {
    all_bugs()
        .iter()
        .map(|bug| {
            let input = bug.default_input();
            let sf = stress_bug(bug, &input);
            let report = run_pipeline(
                bug,
                &sf,
                HarnessOptions {
                    align_mode: AlignMode::InstructionCount,
                    ..Default::default()
                },
            );
            Table5Row {
                name: bug.name.to_string(),
                instrs: sf.dump.focus_thread().instrs,
                vars: report.vars,
                diffs: report.diffs,
                shared: report.shared,
                csv: report.csv_paths.len(),
                search: SearchCell {
                    tries: report.search.tries,
                    time: report.search.wall_time,
                    reproduced: report.search.reproduced,
                },
            }
        })
        .collect()
}

/// Renders Table 5.
pub fn render_table5(rows: &[Table5Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<10} {:>10} {:>12} {:>12} {:>18}",
        "bugs", "instrs", "vars/diffs", "shared/CSV", "chessX+temporal"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<10} {:>10} {:>7}/{:<4} {:>7}/{:<4} {} {}",
            r.name,
            r.instrs,
            r.vars,
            r.diffs,
            r.shared,
            r.csv,
            cell_str(&r.search),
            if r.search.reproduced {
                "(reproduced)"
            } else {
                ""
            },
        );
    }
    s
}

// ---------------------------------------------------------------------
// Table 6 — other costs
// ---------------------------------------------------------------------

/// One row of Table 6.
#[derive(Debug, Clone)]
pub struct Table6Row {
    /// Bug name.
    pub name: String,
    /// Dump encode/decode/traverse cost ("parsing").
    pub dump_parse: Duration,
    /// Variable-map comparison cost ("diff").
    pub diff: Duration,
    /// Slicing cost.
    pub slicing: Duration,
    /// Passing run + replay cost.
    pub reexecution: Duration,
}

/// Regenerates Table 6 (with the dependence strategy, which slices).
pub fn table6() -> Vec<Table6Row> {
    all_bugs()
        .iter()
        .map(|bug| {
            let input = bug.default_input();
            let sf = stress_bug(bug, &input);
            let report = run_pipeline(
                bug,
                &sf,
                HarnessOptions {
                    strategy: Strategy::Dependence,
                    max_tries: 0,
                    ..Default::default()
                },
            );
            Table6Row {
                name: bug.name.to_string(),
                dump_parse: report.timings.dump_parse,
                diff: report.timings.diff,
                slicing: report.timings.slicing,
                reexecution: report.timings.passing_run + report.timings.replay,
            }
        })
        .collect()
}

/// Renders Table 6.
pub fn render_table6(rows: &[Table6Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<10} {:>14} {:>12} {:>12} {:>14}",
        "bugs", "dump parsing", "diff", "slicing", "re-execution"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<10} {:>14.1?} {:>12.1?} {:>12.1?} {:>14.1?}",
            r.name, r.dump_parse, r.diff, r.slicing, r.reexecution
        );
    }
    s
}

// ---------------------------------------------------------------------
// Fig. 10 — runtime overhead on production systems
// ---------------------------------------------------------------------

/// One bar of Fig. 10.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Workload name.
    pub name: String,
    /// Instrumented / plain instruction ratio.
    pub ratio: f64,
}

/// Regenerates Fig. 10.
pub fn fig10() -> Vec<Fig10Row> {
    overhead_workloads()
        .iter()
        .map(|w| {
            let r = mcr_workloads::measure_overhead(w);
            Fig10Row {
                name: w.name.to_string(),
                ratio: r.ratio(),
            }
        })
        .collect()
}

/// Renders Fig. 10 as an ASCII bar chart.
pub fn render_fig10(rows: &[Fig10Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{:<8} {:>8}  overhead", "bench", "ratio");
    for r in rows {
        let pct = (r.ratio - 1.0) * 100.0;
        let bars = "#".repeat((pct * 10.0).round().max(0.0) as usize);
        let _ = writeln!(s, "{:<8} {:>8.4}  {}", r.name, r.ratio, bars);
    }
    let avg: f64 = rows.iter().map(|r| (r.ratio - 1.0) * 100.0).sum::<f64>() / rows.len() as f64;
    let _ = writeln!(s, "average overhead: {avg:.2}%");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_small_scale_shape() {
        let rows = table1(Some(4000));
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.one_cd > 70.0, "{}: {}", r.name, r.one_cd);
            assert!(r.total >= 4000);
        }
        let rendered = render_table1(&rows);
        assert!(rendered.contains("apache"), "{rendered}");
    }

    #[test]
    fn fig10_shape() {
        let rows = fig10();
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.ratio >= 1.0 && r.ratio < 1.08, "{}: {}", r.name, r.ratio);
        }
        let rendered = render_fig10(&rows);
        assert!(rendered.contains("average overhead"));
    }

    #[test]
    fn table3_single_bug_columns() {
        // One bug end-to-end keeps the test fast; the full table runs in
        // the tables binary and integration tests.
        let bug = mcr_workloads::bug_by_name("mysql-3").unwrap();
        let input = bug.default_input();
        let sf = stress_bug(&bug, &input);
        let report = run_pipeline(
            &bug,
            &sf,
            HarnessOptions {
                max_tries: 0,
                ..Default::default()
            },
        );
        assert!(report.failure_dump_bytes > 0);
        assert!(report.vars > 0);
        assert!(report.shared <= report.vars);
        assert!(report.csv_paths.len() <= report.diffs);
    }
}
