//! Hot-path measurements of the search engine and the
//! `BENCH_search.json` writer.
//!
//! The schedule search's cost model is `checkpoint cost × tries` (paper
//! Table 4: every `preempt()` branch forks the execution, every try
//! replays the program), so this module tracks exactly those numbers:
//!
//! * **checkpoint_clone** — one `Vm::clone` on a heap-rich completed
//!   state (the copy-on-write fast path this repo's PR 2 introduced;
//!   the pre-COW deep clone measured ~57,500 ns on the same fixture),
//! * **steps_per_sec** — interpreter throughput with the pre-decoded
//!   dispatch plan attached (the execution path every pipeline phase
//!   uses since the compile pre-phase landed), next to
//!   **steps_per_sec_legacy** for the per-step `match` decoder it
//!   replaced,
//! * **tries_per_sec** — completed test executions per second inside a
//!   plain CHESS search,
//! * **guided vs plain** — tries and wall time of ChessX vs CHESS,
//! * **parallel** — end-to-end guided search over the full
//!   `mcr-workloads` bug suite at `parallelism = 1` vs all cores, with a
//!   result-equality check (the deterministic lowest-index-wins
//!   protocol must make both runs identical).
//!
//! `tables -- bench-json` serializes a [`BenchReport`] to
//! `BENCH_search.json` so successive PRs leave a measurable trajectory.

use mcr_core::{find_failure_cfg, find_failure_par, ReproOptions, Reproducer, RunConfig};
use mcr_search::{find_schedule, worklist_size, Algorithm, SearchConfig, SearchResult};
use mcr_slice::Strategy;
use mcr_vm::{
    run, DeterministicScheduler, DispatchPlan, MemModel, NullObserver, Outcome, PlanStats, Vm,
};
use mcr_workloads::{all_bugs, fault_bugs, EnvRequirement};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Heap-rich checkpoint fixture: 256 live objects of 64 slots each,
/// rooted in a global array — the state a search-phase checkpoint has to
/// preserve. (The canned `HEAP_RICH` dump fixture of `mcr-testsupport`
/// has the same shape; this one is bigger so the clone cost is squarely
/// heap-dominated.)
pub const CHECKPOINT_FIXTURE: &str = r#"
    global roots: [int; 256];
    fn main() {
        var i; var j; var p;
        for (i = 0; i < 256; i = i + 1) {
            p = alloc(64);
            for (j = 0; j < 64; j = j + 1) {
                p[j] = i * 64 + j;
            }
            roots[i] = p;
        }
    }
"#;

/// A compute-heavy single-thread program for raw stepping throughput.
const STEPPER: &str = r#"
    global acc: int;
    fn work(k) {
        var i; var v;
        v = k;
        while (i < 40) {
            i = i + 1;
            v = (v * 31 + i) % 1009;
        }
        return v;
    }
    fn main() {
        var r; var j;
        for (j = 0; j < 50; j = j + 1) {
            r = work(j);
            acc = acc + r;
        }
    }
"#;

/// Runs `CHECKPOINT_FIXTURE` to completion, returning the heap-rich VM.
///
/// # Panics
///
/// Panics if the fixture fails to compile or complete (a bug here).
pub fn checkpoint_fixture_vm(program: &mcr_lang::Program) -> Vm<'_> {
    let mut vm = Vm::new(program, &[]);
    let outcome = run(
        &mut vm,
        &mut DeterministicScheduler::new(),
        &mut NullObserver,
        10_000_000,
    );
    assert_eq!(outcome, Outcome::Completed, "fixture must complete");
    vm
}

/// Compiles [`CHECKPOINT_FIXTURE`].
pub fn checkpoint_fixture_program() -> mcr_lang::Program {
    mcr_lang::compile(CHECKPOINT_FIXTURE).expect("fixture compiles")
}

/// Median-of-samples timing helper.
fn median_ns(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Size of the segment-seek fixture payload (a paper-scale trace/dump
/// blob: large enough that whole-blob decode visits hundreds of
/// segments while a range read touches one or two).
pub const SEGMENT_FIXTURE_BYTES: usize = 1 << 20;

/// Bytes per random range read in the segment-seek measurement (an
/// artifact-sized slice: one trace frame / one store entry).
pub const SEGMENT_SEEK_RANGE: usize = 512;

/// Builds the segment-seek fixture: a deterministic 1 MiB payload
/// sealed into 4 KiB [`SegmentedBytes`](mcr_dump::SegmentedBytes)
/// frames, plus 256 pseudorandom `(start, len)` ranges to rehydrate.
pub fn segment_fixture() -> (mcr_dump::SegmentedBytes, Vec<(usize, usize)>) {
    let mut rng = mcr_vm::SplitMix64::new(0x5365_6753_6565_6B21); // "SegSeek!"
    let mut payload = vec![0u8; SEGMENT_FIXTURE_BYTES];
    for chunk in payload.chunks_mut(8) {
        let v = rng.next_u64().to_le_bytes();
        let n = chunk.len();
        chunk.copy_from_slice(&v[..n]);
    }
    let seg = mcr_dump::SegmentedBytes::from_payload(&payload, 4096);
    let ranges: Vec<(usize, usize)> = (0..256)
        .map(|_| {
            let start = (rng.next_u64() as usize) % (SEGMENT_FIXTURE_BYTES - SEGMENT_SEEK_RANGE);
            (start, SEGMENT_SEEK_RANGE)
        })
        .collect();
    (seg, ranges)
}

/// Measures one random-range rehydration from the segmented container
/// (checksum-verifying the one or two segments it touches), in
/// nanoseconds — the `SegStore` cache-miss path.
pub fn measure_segment_seek_ns() -> f64 {
    let (seg, ranges) = segment_fixture();
    let mut samples = Vec::new();
    for _ in 0..9 {
        let start = Instant::now();
        for &(off, len) in &ranges {
            std::hint::black_box(seg.read_range(off, len).expect("fixture range"));
        }
        samples.push(start.elapsed().as_nanos() as f64 / ranges.len() as f64);
    }
    median_ns(&mut samples)
}

/// Measures decoding the whole blob to serve the same range — the
/// materialized baseline every range read paid before segmentation —
/// in nanoseconds.
pub fn measure_whole_blob_decode_ns() -> f64 {
    let (seg, _) = segment_fixture();
    let total = seg.total_len() as usize;
    let mut samples = Vec::new();
    for _ in 0..9 {
        let iters = 8u32;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(seg.read_range(0, total).expect("whole blob"));
        }
        samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    median_ns(&mut samples)
}

/// Measures one checkpoint (`Vm::clone`) on the heap-rich fixture, in
/// nanoseconds.
pub fn measure_checkpoint_clone_ns() -> f64 {
    let program = checkpoint_fixture_program();
    let vm = checkpoint_fixture_vm(&program);
    let mut samples = Vec::new();
    for _ in 0..9 {
        let iters = 2_000u32;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(vm.clone());
        }
        samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    median_ns(&mut samples)
}

/// Shared stepper-throughput driver: statements per second with or
/// without the pre-decoded dispatch plan attached.
fn measure_stepper(threaded: bool) -> f64 {
    let program = mcr_lang::compile(STEPPER).expect("stepper compiles");
    let plan = threaded.then(|| std::sync::Arc::new(DispatchPlan::compile(&program)));
    let make_vm = || {
        let vm = Vm::new(&program, &[]);
        match &plan {
            Some(plan) => vm.with_plan(std::sync::Arc::clone(plan)),
            None => vm,
        }
    };
    // Warm once to learn the run length.
    let mut vm = make_vm();
    run(
        &mut vm,
        &mut DeterministicScheduler::new(),
        &mut NullObserver,
        10_000_000,
    );
    let steps_per_run = vm.steps();
    let mut samples = Vec::new();
    for _ in 0..9 {
        let mut total_steps = 0u64;
        let start = Instant::now();
        while start.elapsed() < Duration::from_millis(30) {
            let mut vm = make_vm();
            run(
                &mut vm,
                &mut DeterministicScheduler::new(),
                &mut NullObserver,
                10_000_000,
            );
            total_steps += steps_per_run;
        }
        samples.push(total_steps as f64 / start.elapsed().as_secs_f64());
    }
    median_ns(&mut samples)
}

/// Measures interpreter throughput (statements per second) on the
/// threaded-dispatch path — a compiled [`DispatchPlan`] attached, as
/// every pipeline phase runs since the compile pre-phase landed.
pub fn measure_steps_per_sec() -> f64 {
    measure_stepper(true)
}

/// Measures interpreter throughput of the legacy per-step `match`
/// decoder (no dispatch plan), kept as the comparison baseline.
pub fn measure_steps_per_sec_legacy() -> f64 {
    measure_stepper(false)
}

/// Dispatch-plan shape of the stepper benchmark program (decoded op
/// count, fused superinstructions, slow-path residue).
pub fn stepper_plan_stats() -> PlanStats {
    let program = mcr_lang::compile(STEPPER).expect("stepper compiles");
    DispatchPlan::compile(&program).stats()
}

/// A fig1-scale search setup shared by the tries/guided/plain
/// measurements: program, fresh VM inputs, candidates, future map,
/// target failure.
pub struct SearchFixture {
    program: mcr_lang::Program,
    input: Vec<i64>,
    candidates: Vec<mcr_search::AnnotatedCandidate>,
    future: mcr_search::FutureCsvMap,
    failure: mcr_vm::Failure,
}

impl SearchFixture {
    /// Builds the fixture from the `mysql-3` workload (small enough to
    /// iterate quickly, real enough to have a preemption-candidate
    /// space).
    ///
    /// # Panics
    ///
    /// Panics if stress or the pipeline phases fail (covered by the
    /// repository test suite).
    pub fn prepare() -> SearchFixture {
        let bug = mcr_workloads::bug_by_name("mysql-3").expect("workload exists");
        let program = bug.compile();
        let input = bug.lengthened_input(10, 42);
        let sf = find_failure_par(
            &program,
            &input,
            0..200_000,
            bug.max_steps,
            minipool::available_parallelism(),
        )
        .expect("stress exposes mysql-3");
        // Reuse the pipeline for candidate extraction (search skipped).
        let reproducer = Reproducer::new(
            &program,
            ReproOptions {
                search: SearchConfig {
                    max_tries: 0,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let report = reproducer.reproduce(&sf.dump, &input).expect("pipeline");
        let csv_set: std::collections::HashSet<mcr_vm::MemLoc> =
            report.csv_locs.iter().copied().collect();
        let mut vm = Vm::new(&program, &input);
        let mut logger = mcr_search::SyncLogger::new();
        run(
            &mut vm,
            &mut DeterministicScheduler::new(),
            &mut logger,
            bug.max_steps,
        );
        let (candidates, future) = mcr_search::annotate(
            &logger.finish(),
            &csv_set,
            &std::collections::HashMap::new(),
        );
        SearchFixture {
            program,
            input,
            candidates,
            future,
            failure: sf.dump.failure().expect("failure dump"),
        }
    }

    /// Runs one search with the given algorithm and parallelism.
    pub fn search(&self, algorithm: Algorithm, parallelism: usize) -> SearchResult {
        let fresh = Vm::new(&self.program, &self.input);
        let config = SearchConfig {
            parallelism,
            ..Default::default()
        };
        find_schedule(
            &fresh,
            &self.candidates,
            &self.future,
            self.failure,
            algorithm,
            &config,
        )
    }
}

/// Guided-vs-plain cell of the report.
#[derive(Debug, Clone, Copy)]
pub struct AlgoCell {
    /// Tries used until reproduction (or cutoff).
    pub tries: u64,
    /// Wall time of the search.
    pub wall: Duration,
    /// Whether the failure was reproduced.
    pub reproduced: bool,
}

/// End-to-end parallel-vs-serial comparison over the full bug suite.
#[derive(Debug, Clone)]
pub struct ParallelCell {
    /// Worker threads used for the parallel leg.
    pub parallelism: usize,
    /// Bugs measured.
    pub bugs: usize,
    /// Sum of search wall times at `parallelism = 1`.
    pub serial_search: Duration,
    /// Sum of search wall times at `parallelism = N`.
    pub parallel_search: Duration,
    /// Whether every bug's `reproduced`/`tries`/`winning` matched
    /// between the two legs (the determinism contract).
    pub identical_results: bool,
    /// Bugs reproduced (same count in both legs when
    /// `identical_results`).
    pub reproduced: usize,
}

/// Worklist growth under TSO: the store-buffer flush points become
/// CHESS preemption candidates, so the same program's worklist is
/// strictly larger than under SC. Sums are over the `WeakMemory` bugs
/// of the env-gated `mcr-workloads` fault suite, each also reproduced
/// end to end in its TSO environment.
#[derive(Debug, Clone, Copy)]
pub struct MemModelCell {
    /// TSO-only seeded bugs measured.
    pub tso_bugs: usize,
    /// How many of them the guided search reproduced end to end.
    pub reproduced: usize,
    /// Passing-run preemption candidates under `MemModel::Sc`.
    pub sc_candidates: usize,
    /// Passing-run preemption candidates under `MemModel::Tso` (the
    /// extra entries are `BeforeFlush` points).
    pub tso_candidates: usize,
    /// Worklist combinations under SC (at the default bound/pool).
    pub sc_worklist: usize,
    /// Worklist combinations under TSO.
    pub tso_worklist: usize,
}

/// Measures [`MemModelCell`]: candidate/worklist sizes of each TSO
/// bug's deterministic passing run under both memory models, plus the
/// end-to-end guided reproduction in the bug's own environment.
pub fn measure_memmodel() -> MemModelCell {
    let cfg = SearchConfig::default();
    let mut cell = MemModelCell {
        tso_bugs: 0,
        reproduced: 0,
        sc_candidates: 0,
        tso_candidates: 0,
        sc_worklist: 0,
        tso_worklist: 0,
    };
    for bug in fault_bugs() {
        if bug.requires != EnvRequirement::WeakMemory {
            continue;
        }
        cell.tso_bugs += 1;
        let program = bug.compile();
        let candidates = |model: MemModel| {
            let mut vm = Vm::new(&program, bug.input).with_mem_model(model);
            let mut log = mcr_search::SyncLogger::new();
            run(
                &mut vm,
                &mut DeterministicScheduler::new(),
                &mut log,
                bug.max_steps,
            );
            log.finish().candidates.len()
        };
        let sc = candidates(MemModel::Sc);
        let tso = candidates(bug.mem_model);
        cell.sc_candidates += sc;
        cell.tso_candidates += tso;
        cell.sc_worklist += worklist_size(sc, cfg.preemption_bound, cfg.pair_pool);
        cell.tso_worklist += worklist_size(tso, cfg.preemption_bound, cfg.pair_pool);
        let env = RunConfig {
            mem_model: bug.mem_model,
            faults: bug.faults.clone(),
        };
        let sf = find_failure_cfg(
            &program,
            bug.input,
            0..stress_seed_cap(),
            bug.max_steps,
            &env,
        )
        .unwrap_or_else(|| panic!("{}: stress found no TSO failure", bug.name));
        let report = Reproducer::new(
            &program,
            ReproOptions {
                strategy: Strategy::Temporal,
                algorithm: Algorithm::ChessX,
                mem_model: bug.mem_model,
                faults: bug.faults.clone(),
                ..Default::default()
            },
        )
        .reproduce(&sf.dump, bug.input)
        .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", bug.name));
        if report.search.reproduced {
            cell.reproduced += 1;
        }
    }
    cell
}

/// Candidate-space reduction from the static race/lockset pruning
/// (`ReproOptions::static_race`), summed over the Table 2 suite. The
/// warmup loops of every bug churn locks *before* the first spawn, so
/// their acquire/release candidates are statically Solo and pruning
/// drops them; `identical_winners` pins the soundness contract — the
/// pruned search must reproduce every bug with a bit-identical winning
/// schedule.
#[derive(Debug, Clone, Copy)]
pub struct StaticRaceCell {
    /// Bugs measured (the whole Table 2 suite).
    pub bugs: usize,
    /// How many the pruned search reproduced end to end.
    pub reproduced: usize,
    /// Passing-run preemption candidates without pruning.
    pub unpruned_candidates: usize,
    /// Candidates surviving the static-race prune.
    pub pruned_candidates: usize,
    /// Worklist combinations without pruning (default bound/pool).
    pub unpruned_worklist: usize,
    /// Worklist combinations after pruning.
    pub pruned_worklist: usize,
    /// Whether every bug's winning schedule was bit-identical between
    /// the pruned and unpruned reproductions.
    pub identical_winners: bool,
}

impl StaticRaceCell {
    /// Candidate-count reduction factor (unpruned / pruned).
    pub fn reduction(&self) -> f64 {
        if self.pruned_candidates > 0 {
            self.unpruned_candidates as f64 / self.pruned_candidates as f64
        } else {
            0.0
        }
    }
}

/// Measures [`StaticRaceCell`]: per-bug candidate counts of the
/// deterministic passing run with and without the static-race prune,
/// plus a full pruned-vs-unpruned reproduction of each bug comparing
/// the winning preemption points.
pub fn measure_static_race() -> StaticRaceCell {
    use mcr_analysis::RaceAnalysis;
    use std::collections::{HashMap, HashSet};

    let cfg = SearchConfig::default();
    let mut cell = StaticRaceCell {
        bugs: 0,
        reproduced: 0,
        unpruned_candidates: 0,
        pruned_candidates: 0,
        unpruned_worklist: 0,
        pruned_worklist: 0,
        identical_winners: true,
    };
    for bug in all_bugs() {
        cell.bugs += 1;
        let program = bug.compile();
        let input = bug.default_input();

        // Candidate counts from the deterministic passing run (the same
        // run the align phase replays), with no CSV context: the prune
        // is purely static, so dump-free counts are the honest measure.
        let mut vm = Vm::new(&program, &input);
        let mut log = mcr_search::SyncLogger::new();
        run(
            &mut vm,
            &mut DeterministicScheduler::new(),
            &mut log,
            bug.max_steps,
        );
        let info = log.finish();
        let race = RaceAnalysis::analyze(&program);
        let (unpruned, _) = mcr_search::annotate(&info, &HashSet::new(), &HashMap::new());
        let (pruned, _) = mcr_search::annotate_with_race(
            &info,
            &HashSet::new(),
            &HashMap::new(),
            Some(race.verdicts()),
        );
        cell.unpruned_candidates += unpruned.len();
        cell.pruned_candidates += pruned.len();
        cell.unpruned_worklist +=
            worklist_size(unpruned.len(), cfg.preemption_bound, cfg.pair_pool);
        cell.pruned_worklist += worklist_size(pruned.len(), cfg.preemption_bound, cfg.pair_pool);

        // End-to-end winner identity: the same stress dump reproduced
        // with the knob off and on.
        let sf = find_failure_par(
            &program,
            &input,
            0..stress_seed_cap(),
            bug.max_steps,
            minipool::available_parallelism(),
        )
        .unwrap_or_else(|| panic!("{}: stress found no failure", bug.name));
        let reproduce = |static_race: bool| {
            Reproducer::new(
                &program,
                ReproOptions {
                    strategy: Strategy::Temporal,
                    algorithm: Algorithm::ChessX,
                    static_race,
                    ..Default::default()
                },
            )
            .reproduce(&sf.dump, &input)
            .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", bug.name))
        };
        let off = reproduce(false);
        let on = reproduce(true);
        let points = |r: &mcr_core::ReproReport| {
            r.search
                .winning
                .as_ref()
                .map(|w| w.iter().map(|c| c.point).collect::<Vec<_>>())
        };
        if off.search.reproduced != on.search.reproduced || points(&off) != points(&on) {
            cell.identical_winners = false;
        }
        if on.search.reproduced {
            cell.reproduced += 1;
        }
    }
    cell
}

/// The full `search_hotpath` report serialized to `BENCH_search.json`.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// One checkpoint on the heap-rich fixture, nanoseconds.
    pub checkpoint_clone_ns: f64,
    /// Interpreter throughput with the dispatch plan attached,
    /// statements/second.
    pub steps_per_sec: f64,
    /// Legacy per-step `match` decoder throughput, statements/second.
    pub steps_per_sec_legacy: f64,
    /// Dispatch-plan shape of the stepper program.
    pub dispatch: PlanStats,
    /// Completed test executions per second (plain CHESS on the search
    /// fixture).
    pub tries_per_sec: f64,
    /// ChessX on the search fixture.
    pub guided: AlgoCell,
    /// Plain CHESS on the search fixture.
    pub plain: AlgoCell,
    /// TSO worklist growth and env-gated reproduction.
    pub memmodel: MemModelCell,
    /// Bug-suite parallel comparison.
    pub parallel: ParallelCell,
    /// Static race pruning: candidate reduction + winner identity.
    pub static_race: StaticRaceCell,
}

fn algo_cell(r: &SearchResult) -> AlgoCell {
    AlgoCell {
        tries: r.tries,
        wall: r.wall_time,
        reproduced: r.reproduced,
    }
}

/// Stress-seed cap for the suite measurement, mirroring the
/// `MCR_TEST_TIER` tiers of `mcr-testsupport` (smoke by default so the
/// CI bench step stays fast; `MCR_TEST_TIER=full` restores paper scale).
fn stress_seed_cap() -> u64 {
    match std::env::var("MCR_TEST_TIER") {
        Ok(v) if v.eq_ignore_ascii_case("full") => 2_000_000,
        _ => 200_000,
    }
}

/// Runs the guided search over every `mcr-workloads` bug at
/// `parallelism = 1` and `parallelism = n`, comparing wall time and
/// asserting result equality.
pub fn measure_parallel_suite(parallelism: usize) -> ParallelCell {
    let bugs = all_bugs();
    let mut serial_search = Duration::ZERO;
    let mut parallel_search = Duration::ZERO;
    let mut identical = true;
    let mut reproduced = 0usize;
    for bug in &bugs {
        let program = bug.compile();
        let input = bug.default_input();
        let sf = find_failure_par(
            &program,
            &input,
            0..stress_seed_cap(),
            bug.max_steps,
            parallelism,
        )
        .unwrap_or_else(|| panic!("{}: stress found no failure", bug.name));
        let reproduce = |par: usize| {
            let reproducer = Reproducer::new(
                &program,
                ReproOptions {
                    strategy: Strategy::Temporal,
                    algorithm: Algorithm::ChessX,
                    parallelism: par,
                    ..Default::default()
                },
            );
            reproducer
                .reproduce(&sf.dump, &input)
                .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", bug.name))
        };
        // Two alternating rounds per leg, best wall time kept: the legs
        // run identical search code when the fan-out clamps to one core,
        // so single-sample scheduling noise must not be read as a
        // parallel regression (or a win).
        let serial = reproduce(1);
        let par = reproduce(parallelism);
        let serial_wall = serial.search.wall_time.min(reproduce(1).search.wall_time);
        let par_wall = par
            .search
            .wall_time
            .min(reproduce(parallelism).search.wall_time);
        serial_search += serial_wall;
        parallel_search += par_wall;
        let points = |r: &SearchResult| {
            r.winning
                .as_ref()
                .map(|w| w.iter().map(|c| c.point).collect::<Vec<_>>())
        };
        if serial.search.reproduced != par.search.reproduced
            || serial.search.tries != par.search.tries
            || points(&serial.search) != points(&par.search)
        {
            identical = false;
        }
        if par.search.reproduced {
            reproduced += 1;
        }
    }
    ParallelCell {
        parallelism,
        bugs: bugs.len(),
        serial_search,
        parallel_search,
        identical_results: identical,
        reproduced,
    }
}

/// Produces the full report: stresses and reproduces the whole bug
/// suite twice (a couple of minutes at the default smoke-tier stress
/// budget; `MCR_TEST_TIER=full` raises it to paper scale).
pub fn bench_report() -> BenchReport {
    let checkpoint_clone_ns = measure_checkpoint_clone_ns();
    let steps_per_sec = measure_steps_per_sec();
    let steps_per_sec_legacy = measure_steps_per_sec_legacy();
    let dispatch = stepper_plan_stats();
    let fixture = SearchFixture::prepare();
    let plain_result = fixture.search(Algorithm::Chess, 1);
    let guided_result = fixture.search(Algorithm::ChessX, 1);
    let tries_per_sec = if plain_result.wall_time.as_secs_f64() > 0.0 {
        plain_result.tries as f64 / plain_result.wall_time.as_secs_f64()
    } else {
        0.0
    };
    // At least two workers even on single-core machines, so the recorded
    // artifact always exercises (and equivalence-checks) the parallel
    // engine; the speedup column is only meaningful with real cores.
    let memmodel = measure_memmodel();
    let parallel = measure_parallel_suite(minipool::available_parallelism().max(2));
    let static_race = measure_static_race();
    BenchReport {
        checkpoint_clone_ns,
        steps_per_sec,
        steps_per_sec_legacy,
        dispatch,
        tries_per_sec,
        guided: algo_cell(&guided_result),
        plain: algo_cell(&plain_result),
        memmodel,
        parallel,
        static_race,
    }
}

impl BenchReport {
    /// Serializes the report as pretty-printed JSON (hand-rolled: the
    /// environment has no serde).
    pub fn to_json(&self) -> String {
        let speedup = if self.parallel.parallel_search.as_secs_f64() > 0.0 {
            self.parallel.serial_search.as_secs_f64() / self.parallel.parallel_search.as_secs_f64()
        } else {
            0.0
        };
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema\": \"mcr-bench/search_hotpath/v1\",");
        let _ = writeln!(
            s,
            "  \"checkpoint_clone_ns\": {:.1},",
            self.checkpoint_clone_ns
        );
        let _ = writeln!(
            s,
            "  \"checkpoint_fixture\": \"256 heap objects x 64 slots\","
        );
        let _ = writeln!(s, "  \"steps_per_sec\": {:.0},", self.steps_per_sec);
        let _ = writeln!(
            s,
            "  \"steps_per_sec_legacy\": {:.0},",
            self.steps_per_sec_legacy
        );
        let _ = writeln!(
            s,
            "  \"dispatch\": {{\"ops\": {}, \"fused\": {}, \"slow\": {}}},",
            self.dispatch.ops, self.dispatch.fused, self.dispatch.slow
        );
        let _ = writeln!(s, "  \"tries_per_sec\": {:.1},", self.tries_per_sec);
        let _ = writeln!(
            s,
            "  \"guided\": {{\"tries\": {}, \"wall_ms\": {:.3}, \"reproduced\": {}}},",
            self.guided.tries,
            self.guided.wall.as_secs_f64() * 1e3,
            self.guided.reproduced
        );
        let _ = writeln!(
            s,
            "  \"plain\": {{\"tries\": {}, \"wall_ms\": {:.3}, \"reproduced\": {}}},",
            self.plain.tries,
            self.plain.wall.as_secs_f64() * 1e3,
            self.plain.reproduced
        );
        let growth = if self.memmodel.sc_worklist > 0 {
            self.memmodel.tso_worklist as f64 / self.memmodel.sc_worklist as f64
        } else {
            0.0
        };
        let _ = writeln!(s, "  \"memmodel\": {{");
        let _ = writeln!(s, "    \"tso_bugs\": {},", self.memmodel.tso_bugs);
        let _ = writeln!(s, "    \"reproduced\": {},", self.memmodel.reproduced);
        let _ = writeln!(s, "    \"sc_candidates\": {},", self.memmodel.sc_candidates);
        let _ = writeln!(
            s,
            "    \"tso_candidates\": {},",
            self.memmodel.tso_candidates
        );
        let _ = writeln!(s, "    \"sc_worklist\": {},", self.memmodel.sc_worklist);
        let _ = writeln!(s, "    \"tso_worklist\": {},", self.memmodel.tso_worklist);
        let _ = writeln!(s, "    \"worklist_growth\": {growth:.2}");
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"parallel\": {{");
        let _ = writeln!(s, "    \"parallelism\": {},", self.parallel.parallelism);
        let _ = writeln!(s, "    \"bugs\": {},", self.parallel.bugs);
        let _ = writeln!(s, "    \"reproduced\": {},", self.parallel.reproduced);
        let _ = writeln!(
            s,
            "    \"serial_search_ms\": {:.3},",
            self.parallel.serial_search.as_secs_f64() * 1e3
        );
        let _ = writeln!(
            s,
            "    \"parallel_search_ms\": {:.3},",
            self.parallel.parallel_search.as_secs_f64() * 1e3
        );
        let _ = writeln!(s, "    \"speedup\": {speedup:.2},");
        let _ = writeln!(
            s,
            "    \"identical_results\": {}",
            self.parallel.identical_results
        );
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"static_race\": {{");
        let _ = writeln!(s, "    \"bugs\": {},", self.static_race.bugs);
        let _ = writeln!(s, "    \"reproduced\": {},", self.static_race.reproduced);
        let _ = writeln!(
            s,
            "    \"unpruned_candidates\": {},",
            self.static_race.unpruned_candidates
        );
        let _ = writeln!(
            s,
            "    \"pruned_candidates\": {},",
            self.static_race.pruned_candidates
        );
        let _ = writeln!(
            s,
            "    \"unpruned_worklist\": {},",
            self.static_race.unpruned_worklist
        );
        let _ = writeln!(
            s,
            "    \"pruned_worklist\": {},",
            self.static_race.pruned_worklist
        );
        let _ = writeln!(
            s,
            "    \"candidate_reduction\": {:.2},",
            self.static_race.reduction()
        );
        let _ = writeln!(
            s,
            "    \"identical_winners\": {}",
            self.static_race.identical_winners
        );
        let _ = writeln!(s, "  }}");
        let _ = write!(s, "}}");
        s
    }
}

/// Keys every `BENCH_search.json` must carry; `tables -- bench-json`
/// refuses to write a report that drops one, so downstream trend
/// tooling never silently loses a column.
pub const BENCH_JSON_REQUIRED: &[&str] = &[
    "\"steps_per_sec\"",
    "\"steps_per_sec_legacy\"",
    "\"dispatch\"",
    "\"memmodel\"",
    "\"tso_worklist\"",
    "\"worklist_growth\"",
    "\"speedup\"",
    "\"identical_results\"",
    "\"static_race\"",
    "\"candidate_reduction\"",
    "\"identical_winners\"",
];

/// Validates the serialized search bench report against
/// [`BENCH_JSON_REQUIRED`].
///
/// # Errors
///
/// Returns the first missing key.
pub fn check_bench_json_schema(json: &str) -> Result<(), String> {
    for key in BENCH_JSON_REQUIRED {
        if !json.contains(key) {
            return Err(format!("BENCH_search.json schema: missing {key}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_clone_is_cow_fast() {
        // The acceptance bar for this PR: >= 5x faster than the ~57.5 us
        // deep clone the seed performed on this fixture. COW clones are
        // orders of magnitude below that; 11.5 us leaves slack for slow
        // CI machines while still proving the 5x.
        let ns = measure_checkpoint_clone_ns();
        assert!(ns < 11_500.0, "checkpoint clone too slow: {ns} ns");
    }

    #[test]
    fn report_json_shape() {
        let report = BenchReport {
            checkpoint_clone_ns: 74.0,
            steps_per_sec: 2e7,
            steps_per_sec_legacy: 1e7,
            dispatch: PlanStats {
                ops: 40,
                fused: 6,
                slow: 2,
            },
            tries_per_sec: 1e3,
            guided: AlgoCell {
                tries: 3,
                wall: Duration::from_millis(2),
                reproduced: true,
            },
            plain: AlgoCell {
                tries: 40,
                wall: Duration::from_millis(20),
                reproduced: true,
            },
            memmodel: MemModelCell {
                tso_bugs: 2,
                reproduced: 2,
                sc_candidates: 12,
                tso_candidates: 16,
                sc_worklist: 78,
                tso_worklist: 136,
            },
            parallel: ParallelCell {
                parallelism: 8,
                bugs: 7,
                serial_search: Duration::from_millis(700),
                parallel_search: Duration::from_millis(200),
                identical_results: true,
                reproduced: 7,
            },
            static_race: StaticRaceCell {
                bugs: 7,
                reproduced: 7,
                unpruned_candidates: 4200,
                pruned_candidates: 2100,
                unpruned_worklist: 90_000,
                pruned_worklist: 40_000,
                identical_winners: true,
            },
        };
        let json = report.to_json();
        for key in [
            "\"checkpoint_clone_ns\"",
            "\"steps_per_sec\"",
            "\"steps_per_sec_legacy\"",
            "\"dispatch\"",
            "\"tries_per_sec\"",
            "\"guided\"",
            "\"plain\"",
            "\"memmodel\"",
            "\"tso_worklist\": 136",
            "\"worklist_growth\": 1.74",
            "\"parallelism\"",
            "\"speedup\"",
            "\"identical_results\": true",
            "\"static_race\"",
            "\"candidate_reduction\": 2.00",
            "\"identical_winners\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        check_bench_json_schema(&json).expect("full report passes the schema check");
    }

    #[test]
    fn schema_check_rejects_dropped_keys() {
        let err = check_bench_json_schema("{\"schema\": \"mcr-bench/search_hotpath/v1\"}")
            .expect_err("gutted report must fail");
        assert!(
            err.contains("steps_per_sec"),
            "first missing key named: {err}"
        );
    }
}
