//! Batch-engine measurements and the `BENCH_batch.json` writer.
//!
//! The fleet scheduler's value proposition is *work elimination*, not
//! raw parallel speedup (which `BENCH_search.json` already tracks): a
//! duplicate-heavy job mix should cost one pipeline per *distinct* job,
//! fleet-wide, with every duplicate served from the content-addressed
//! artifact store. This module measures exactly that over a
//! [`mcr_workloads::fleet_mix`] corpus:
//!
//! * **serial baseline** — every job reproduced independently through
//!   [`Reproducer`] with no store (what a naive service would do),
//! * **fleet run** — the same jobs through [`mcr_batch::Fleet`] with one
//!   shared executor and store,
//! * **equivalence** — every fleet report must match its serial
//!   counterpart (the determinism contract of the phase layer),
//! * **cache accounting** — phase units computed vs rehydrated vs
//!   single-flighted, plus the store's own counters *sliced by phase
//!   kind* ([`StoreStats::per_phase`]),
//! * **churn simulation** — the warm artifacts replayed through a
//!   capacity-bounded LRU to record which phase kinds evict first (the
//!   cache-sizing signal; see [`BatchReport::churn`]).
//!
//! `tables -- batch-json` serializes a [`BatchReport`] to
//! `BENCH_batch.json` so successive PRs leave a measurable trajectory
//! alongside `BENCH_search.json`.

use mcr_batch::{AdmissionPolicy, Fleet, FleetConfig, FleetJob, TriageService};
use mcr_core::{
    find_failure_par, measured_frame_size, ArtifactStore, CorpusManifest, FuncUnitStats,
    ManifestStats, MemoryStore, PhaseStats, ReproOptions, ReproReport, ReproSession, Reproducer,
    SegStore, StoreStats, PHASE_KINDS,
};
use mcr_workloads::{all_bugs, bug_by_name, fleet_mix, fleet_recompile, FleetSpec};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Stress-seed cap, mirroring the `MCR_TEST_TIER` tiers of
/// `mcr-testsupport` (smoke by default so the CI bench step stays fast;
/// `MCR_TEST_TIER=full` restores paper scale).
fn stress_seed_cap() -> u64 {
    match std::env::var("MCR_TEST_TIER") {
        Ok(v) if v.eq_ignore_ascii_case("full") => 2_000_000,
        _ => 200_000,
    }
}

/// The corpus the batch bench runs: a duplicate-heavy mix over a
/// three-bug subset (smoke-sized; the fleet's caching behavior is
/// identical on the full suite, which `tests/batch.rs` covers).
pub fn bench_corpus() -> Vec<FleetSpec> {
    let bugs = all_bugs();
    let subset: Vec<_> = bugs
        .into_iter()
        .filter(|b| matches!(b.name, "mysql-3" | "apache-2" | "mysql-1"))
        .collect();
    fleet_mix(&subset, 2, 11)
}

/// One job's identity and results across the two legs.
struct PreparedJob {
    spec: FleetSpec,
    program_idx: usize,
    dump: mcr_dump::CoreDump,
    input: Vec<i64>,
}

/// The full batch report serialized to `BENCH_batch.json`.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Jobs in the corpus.
    pub jobs: usize,
    /// Distinct work units among them (dedup keys).
    pub distinct_jobs: usize,
    /// Worker budget the fleet ran with.
    pub workers: usize,
    /// Wall time of the independent serial baseline.
    pub serial_wall: Duration,
    /// Wall time of the fleet run.
    pub fleet_wall: Duration,
    /// Fleet throughput, jobs per second.
    pub jobs_per_sec: f64,
    /// Phase units scheduled by the fleet.
    pub phase_units: u64,
    /// Phase units actually computed.
    pub computed: u64,
    /// Phase units rehydrated from the shared store.
    pub cache_hits: u64,
    /// Phase units deduplicated while in flight.
    pub deduped_in_flight: u64,
    /// `cache_hits / phase_units` (the acceptance metric: > 0 on any
    /// duplicate-carrying mix).
    pub cache_hit_rate: f64,
    /// Whether every fleet report matched its serial counterpart.
    pub identical_results: bool,
    /// Jobs whose failure was reproduced (same in both legs when
    /// `identical_results`).
    pub reproduced: usize,
    /// Store counters at the end of the fleet run (the per-phase
    /// histograms live in [`StoreStats::per_phase`]).
    pub store: StoreStats,
    /// Function-granular recompile measurement over a revision stream
    /// (see [`recompile_report`]).
    pub recompile: RecompileReport,
    /// Streaming-artifacts measurement: peak resident bytes of the
    /// materialized vs. segmented churn replay, segment-level access
    /// counters, and the adaptive-admission shed count (see
    /// [`StreamingReport`]).
    pub streaming: StreamingReport,
    /// Byte capacity of the churn probe (see [`BatchReport::churn`]).
    pub churn_capacity: usize,
    /// Cache-churn simulation: the fleet's warm artifacts replayed, in
    /// deterministic key order, through an LRU [`MemoryStore`] bounded
    /// just below the measured warm footprint (see
    /// [`churn_probe_capacity`]). The per-phase eviction rows show
    /// *which* phase kinds fall out first under memory pressure — the
    /// capacity-planning signal an unbounded hit rate cannot show.
    pub churn: [PhaseStats; 7],
}

/// Everything observable about a report except wall-clock timings.
fn reports_equal(a: &ReproReport, b: &ReproReport) -> bool {
    a.index == b.index
        && a.alignment == b.alignment
        && a.failure_dump_bytes == b.failure_dump_bytes
        && a.aligned_dump_bytes == b.aligned_dump_bytes
        && a.vars == b.vars
        && a.diffs == b.diffs
        && a.shared == b.shared
        && a.csv_paths == b.csv_paths
        && a.csv_locs == b.csv_locs
        && a.deterministic_repro == b.deterministic_repro
        && a.search.reproduced == b.search.reproduced
        && a.search.tries == b.search.tries
        && a.search.combinations_tested == b.search.combinations_tested
        && a.search.winning == b.search.winning
        && a.search.cut_off == b.search.cut_off
}

/// Runs the batch measurement: stress each distinct job once, reproduce
/// every job serially (no store), then run the whole corpus as one
/// fleet and compare.
pub fn batch_report() -> BatchReport {
    let corpus = bench_corpus();
    let workers = minipool::available_parallelism().max(2);

    // Compile each program once; stress each distinct work unit once
    // (duplicates share the dump — exactly how a triage queue receives
    // repeated crashes of the same bug).
    let mut programs: Vec<mcr_lang::Program> = Vec::new();
    let mut program_of: HashMap<String, usize> = HashMap::new();
    let mut dump_of: HashMap<(String, usize, u64), mcr_dump::CoreDump> = HashMap::new();
    let mut prepared: Vec<PreparedJob> = Vec::new();
    for spec in corpus {
        let program_idx = *program_of
            .entry(spec.bug.name.to_string())
            .or_insert_with(|| {
                programs.push(spec.bug.compile());
                programs.len() - 1
            });
        let input = spec.input();
        let dump = dump_of
            .entry(spec.dedup_key())
            .or_insert_with(|| {
                find_failure_par(
                    &programs[program_idx],
                    &input,
                    0..stress_seed_cap(),
                    spec.bug.max_steps,
                    minipool::available_parallelism(),
                )
                .unwrap_or_else(|| panic!("{}: stress found no failure", spec.name))
                .dump
            })
            .clone();
        prepared.push(PreparedJob {
            spec,
            program_idx,
            dump,
            input,
        });
    }
    let jobs = prepared.len();
    let distinct_jobs = dump_of.len();

    // Serial baseline: every job independently, no store.
    let t0 = Instant::now();
    let serial_reports: Vec<ReproReport> = prepared
        .iter()
        .map(|job| {
            Reproducer::new(&programs[job.program_idx], ReproOptions::default())
                .reproduce(&job.dump, &job.input)
                .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", job.spec.name))
        })
        .collect();
    let serial_wall = t0.elapsed();

    // Fleet run: shared executor + shared store (typed handle kept so
    // the churn probe can replay the warm entries afterwards).
    let mem_store = Arc::new(MemoryStore::unbounded());
    let config = FleetConfig {
        workers,
        store: Arc::clone(&mem_store) as Arc<dyn ArtifactStore>,
        ..Default::default()
    };
    let store = Arc::clone(&config.store);
    let mut fleet = Fleet::new(config);
    for job in &prepared {
        fleet.push(
            FleetJob::new(
                job.spec.name.clone(),
                &programs[job.program_idx],
                job.dump.clone(),
                &job.input,
            )
            .with_priority(job.spec.priority),
        );
    }
    let t0 = Instant::now();
    let outcome = fleet.run();
    let fleet_wall = t0.elapsed();

    let mut identical = outcome.summary.failed == 0;
    let mut reproduced = 0usize;
    for (job_outcome, serial) in outcome.jobs.iter().zip(&serial_reports) {
        match &job_outcome.result {
            Ok(report) => {
                if !reports_equal(report, serial) {
                    identical = false;
                }
                if report.search.reproduced {
                    reproduced += 1;
                }
            }
            Err(_) => identical = false,
        }
    }

    // Churn probe: replay the warm cache through an LRU bounded just
    // below the measured footprint and record which phase kinds get
    // evicted. One put pass in key order (deterministic, streamed
    // borrowed — no materialized clone), then one full get scan over
    // the same keys — the misses show what the pressure pushed out.
    let entry_sizes: Vec<usize> = mem_store.entry_sizes().iter().map(|(_, n)| *n).collect();
    let churn_capacity = churn_probe_capacity(&entry_sizes);
    let probe = MemoryStore::with_capacity(churn_capacity);
    mem_store.for_each_entry(|key, bytes| probe.put(key, bytes));
    mem_store.for_each_entry(|key, _| {
        let _ = probe.get(key);
    });
    let churn = probe.stats().per_phase;

    // Snapshot the fleet-run counters before the streaming legs replay
    // (and the adaptive fleet rehydrates) against the same warm store.
    let store_stats = store.stats();

    let fleet_reports: Vec<Option<&ReproReport>> = outcome
        .jobs
        .iter()
        .map(|j| j.result.as_ref().ok())
        .collect();
    let streaming = streaming_report(
        &mem_store,
        &store,
        &prepared,
        &programs,
        &fleet_reports,
        workers,
    );

    let recompile = recompile_report();

    let s = outcome.summary;
    BatchReport {
        jobs,
        distinct_jobs,
        workers,
        serial_wall,
        fleet_wall,
        jobs_per_sec: if fleet_wall.as_secs_f64() > 0.0 {
            jobs as f64 / fleet_wall.as_secs_f64()
        } else {
            0.0
        },
        phase_units: s.phase_units,
        computed: s.computed,
        cache_hits: s.cache_hits,
        deduped_in_flight: s.deduped_in_flight,
        cache_hit_rate: if s.phase_units > 0 {
            s.cache_hits as f64 / s.phase_units as f64
        } else {
            0.0
        },
        identical_results: identical,
        reproduced,
        store: store_stats,
        recompile,
        streaming,
        churn_capacity,
        churn,
    }
}

/// Results of the streaming-artifacts measurement: the fleet's warm
/// store replayed through a *half-footprint* churn workload via both
/// artifact paths, plus a segment-rehydration scan and a small
/// adaptive-admission fleet.
///
/// * **materialized leg** — the historical path: `entries()` clones
///   every warm artifact up front, then replays them through a
///   capacity-bounded LRU. Peak residency ≈ full clone + probe.
/// * **segmented leg** — the streaming path: the same artifacts
///   rehydrated one at a time, by byte range, from a [`SegStore`]
///   container snapshot. Peak residency ≈ probe + one entry.
///
/// `peak_reduction` (materialized / segmented) is the acceptance
/// metric: `tables -- batch-json` refuses to write a report below
/// 1.5×.
#[derive(Debug, Clone, Copy)]
pub struct StreamingReport {
    /// Total warm artifact bytes replayed.
    pub footprint_bytes: usize,
    /// Probe LRU capacity: half the footprint (floored at the largest
    /// single entry so every artifact stays admissible).
    pub capacity_bytes: usize,
    /// Peak resident bytes of the materialized replay (clone +
    /// probe).
    pub peak_materialized_bytes: usize,
    /// Peak resident bytes of the segmented replay (probe + one
    /// rehydrated entry).
    pub peak_segmented_bytes: usize,
    /// `peak_materialized_bytes / peak_segmented_bytes` — gated ≥ 1.5.
    pub peak_reduction: f64,
    /// Physical size of the [`SegStore`] container the segmented leg
    /// read from.
    pub container_bytes: usize,
    /// Frame size the container was built with — derived from the warm
    /// store's measured per-phase residency histogram
    /// ([`mcr_core::measured_frame_size`]), not a fixed constant.
    pub frame_bytes: usize,
    /// Segments touched rehydrating entries (with repetition).
    pub segment_touches: u64,
    /// Touches that verified a segment checksum for the first time.
    pub segment_verified: u64,
    /// Fraction of touches that found the segment already verified
    /// (see [`mcr_core::SegAccessStats::hit_rate`]).
    pub segment_hit_rate: f64,
    /// Jobs the adaptive-admission fleet shed to the cold store.
    pub shed_jobs: u64,
    /// Whether every adaptive-fleet report matched its plain-fleet
    /// counterpart (shedding must never change results).
    pub identical_results: bool,
}

/// Runs the streaming measurement against the fleet's warm store (see
/// [`StreamingReport`]). `fleet_reports` are the plain fleet's reports
/// in `prepared` order — the baseline the adaptive fleet must match.
fn streaming_report(
    warm: &MemoryStore,
    warm_dyn: &Arc<dyn ArtifactStore>,
    prepared: &[PreparedJob],
    programs: &[mcr_lang::Program],
    fleet_reports: &[Option<&ReproReport>],
    workers: usize,
) -> StreamingReport {
    let sizes = warm.entry_sizes();
    let footprint: usize = sizes.iter().map(|(_, n)| n).sum();
    let largest = sizes.iter().map(|(_, n)| *n).max().unwrap_or(0);
    let capacity = (footprint / 2).max(largest).max(1);

    // Materialized leg: the full clone is held for the whole replay.
    let entries = warm.entries();
    let probe = MemoryStore::with_capacity(capacity);
    let mut peak_materialized = footprint;
    for (key, bytes) in &entries {
        probe.put(key, bytes);
        peak_materialized = peak_materialized.max(footprint + probe.stats().bytes);
    }
    drop(entries);

    // Segmented leg: rehydrate each entry by byte range from the
    // container; only the probe and one in-flight entry are resident.
    // The container is framed at the size the warm store's own
    // per-phase residency histogram measured, not a fixed constant.
    let frame_bytes = measured_frame_size(&warm.stats());
    let seg = SegStore::from_bytes(SegStore::snapshot(warm, frame_bytes))
        .expect("snapshot of a live store parses");
    let probe = MemoryStore::with_capacity(capacity);
    let mut peak_segmented = 0usize;
    for (key, _) in &sizes {
        let bytes = seg.get(key).expect("snapshot holds every warm entry");
        probe.put(key, &bytes);
        peak_segmented = peak_segmented.max(probe.stats().bytes + bytes.len());
    }
    // A second full scan: every segment is verified now, so re-reads
    // are pure hits — the steady-state access profile.
    for (key, _) in &sizes {
        let _ = seg.get(key);
    }
    let access = seg.access_stats();

    // Adaptive-admission leg: the same job mix against a hot store far
    // too small for its artifacts, with the warm store as the cold
    // shard. Once the first job's churn trips the telemetry, admission
    // sheds the rest cold — where they rehydrate bit-identically.
    let service = TriageService::new(FleetConfig {
        workers,
        store: Arc::new(MemoryStore::with_capacity(64)),
        cold_store: Some(Arc::clone(warm_dyn)),
        admission: AdmissionPolicy::Adaptive {
            max_pending: 2,
            churn_permille: 250,
        },
        ..Default::default()
    });
    let mut identical = true;
    for (job, baseline) in prepared.iter().zip(fleet_reports) {
        let outcome = service
            .submit(
                FleetJob::new(
                    job.spec.name.clone(),
                    &programs[job.program_idx],
                    job.dump.clone(),
                    &job.input,
                )
                .with_priority(job.spec.priority),
            )
            .unwrap_or_else(|e| panic!("adaptive admission blocks, never rejects: {e}"))
            .wait();
        match (&outcome.result, baseline) {
            (Ok(report), Some(base)) => {
                if !reports_equal(report, base) {
                    identical = false;
                }
            }
            _ => identical = false,
        }
    }
    let summary = service.shutdown();

    StreamingReport {
        footprint_bytes: footprint,
        capacity_bytes: capacity,
        peak_materialized_bytes: peak_materialized,
        peak_segmented_bytes: peak_segmented,
        peak_reduction: if peak_segmented > 0 {
            peak_materialized as f64 / peak_segmented as f64
        } else {
            0.0
        },
        container_bytes: seg.container_len(),
        frame_bytes,
        segment_touches: access.touches,
        segment_verified: access.verified,
        segment_hit_rate: access.hit_rate(),
        shed_jobs: summary.shed,
        identical_results: identical,
    }
}

/// Results of the function-granular recompile measurement: a revision
/// stream ([`mcr_workloads::fleet_recompile`]) replayed against one
/// shared store, where each revision edits `edits_per_rev` functions and
/// leaves the rest byte-identical. A function-granular cache should
/// serve every unedited function's compile and analysis units from the
/// store and recompute exactly `2 × edits_per_rev` units per revision.
#[derive(Debug, Clone, Copy)]
pub struct RecompileReport {
    /// Revisions in the stream (including the cold base revision).
    pub revisions: usize,
    /// Functions per revision (base program plus helpers).
    pub functions: usize,
    /// Functions edited per revision after the base.
    pub edits_per_rev: usize,
    /// Per-function unit lookups served from the store across the warm
    /// revisions (compile + analysis units).
    pub unit_hits: u64,
    /// Per-function units recomputed across the warm revisions.
    pub unit_computed: u64,
    /// `unit_hits / (unit_hits + unit_computed)` over the warm
    /// revisions — the acceptance metric (≥ 0.85 on this stream; the
    /// expected value is `(functions − edits) / functions`).
    pub function_hit_rate: f64,
    /// Units recomputed per revision edit (expected: exactly 2 — one
    /// compile unit and one analysis unit per edited function).
    pub recomputed_per_edit: f64,
    /// Whether every store-backed revision report was bit-identical to
    /// its cold (store-less) counterpart.
    pub identical_results: bool,
    /// Cross-program dedup counters from the [`CorpusManifest`] the
    /// stream was recorded into.
    pub manifest: ManifestStats,
}

/// Runs the recompile measurement: stress the base revision once, then
/// reproduce every revision twice — cold (no store) and against one
/// shared [`CorpusManifest`]-wrapped store — and account the
/// function-granular unit traffic of the store-backed leg.
///
/// The revision edits touch only uncalled helper functions, so the one
/// base-revision dump is a valid failure dump for every revision and the
/// cold reports pin the store-backed ones bit-for-bit.
pub fn recompile_report() -> RecompileReport {
    const HELPERS: usize = 8;
    const REVISIONS: usize = 6;
    const EDITS_PER_REV: usize = 1;

    let base = bug_by_name("mysql-3").expect("suite bug");
    let revs = fleet_recompile(HELPERS, REVISIONS, EDITS_PER_REV, 11);
    let programs: Vec<mcr_lang::Program> = revs
        .iter()
        .map(|r| mcr_lang::compile(&r.source).unwrap_or_else(|e| panic!("{}: {e}", r.name)))
        .collect();
    let functions = programs[0].funcs.len();
    let input = base.default_input();
    let dump = find_failure_par(
        &programs[0],
        &input,
        0..stress_seed_cap(),
        base.max_steps,
        minipool::available_parallelism(),
    )
    .expect("recompile base: stress found no failure")
    .dump;

    let store = Arc::new(CorpusManifest::new(Arc::new(MemoryStore::unbounded())));
    let mut warm = FuncUnitStats::default();
    let mut identical = true;
    for (rev, program) in revs.iter().zip(&programs) {
        store.record_program(program);
        let cold = ReproSession::new(program, dump.clone(), &input, ReproOptions::default())
            .and_then(|mut s| s.run_to_end())
            .unwrap_or_else(|e| panic!("{} cold: {e}", rev.name));
        let mut session = ReproSession::new(program, dump.clone(), &input, ReproOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", rev.name));
        session.set_store(Arc::clone(&store) as Arc<dyn ArtifactStore>);
        let report = session
            .run_to_end()
            .unwrap_or_else(|e| panic!("{} cached: {e}", rev.name));
        if !reports_equal(&report, &cold) {
            identical = false;
        }
        if rev.revision > 0 {
            warm.absorb(&session.function_unit_stats());
        }
    }

    let edits = ((REVISIONS - 1) * EDITS_PER_REV) as f64;
    RecompileReport {
        revisions: REVISIONS,
        functions,
        edits_per_rev: EDITS_PER_REV,
        unit_hits: warm.compile_hits + warm.analysis_hits,
        unit_computed: warm.compile_computed + warm.analysis_computed,
        function_hit_rate: warm.hit_rate(),
        recomputed_per_edit: if edits > 0.0 {
            warm.recomputed() as f64 / edits
        } else {
            0.0
        },
        identical_results: identical,
        manifest: store.manifest_stats(),
    }
}

impl BatchReport {
    /// Serializes the report as pretty-printed JSON (hand-rolled: the
    /// environment has no serde).
    pub fn to_json(&self) -> String {
        let speedup = if self.fleet_wall.as_secs_f64() > 0.0 {
            self.serial_wall.as_secs_f64() / self.fleet_wall.as_secs_f64()
        } else {
            0.0
        };
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema\": \"mcr-bench/batch/v1\",");
        let _ = writeln!(s, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(s, "  \"distinct_jobs\": {},", self.distinct_jobs);
        let _ = writeln!(s, "  \"workers\": {},", self.workers);
        let _ = writeln!(s, "  \"reproduced\": {},", self.reproduced);
        let _ = writeln!(
            s,
            "  \"serial_wall_ms\": {:.3},",
            self.serial_wall.as_secs_f64() * 1e3
        );
        let _ = writeln!(
            s,
            "  \"fleet_wall_ms\": {:.3},",
            self.fleet_wall.as_secs_f64() * 1e3
        );
        let _ = writeln!(s, "  \"speedup_vs_serial\": {speedup:.2},");
        let _ = writeln!(s, "  \"jobs_per_sec\": {:.2},", self.jobs_per_sec);
        let _ = writeln!(s, "  \"phase_units\": {},", self.phase_units);
        let _ = writeln!(s, "  \"computed\": {},", self.computed);
        let _ = writeln!(s, "  \"cache_hits\": {},", self.cache_hits);
        let _ = writeln!(s, "  \"deduped_in_flight\": {},", self.deduped_in_flight);
        let _ = writeln!(s, "  \"cache_hit_rate\": {:.3},", self.cache_hit_rate);
        let _ = writeln!(s, "  \"identical_results\": {},", self.identical_results);
        let _ = writeln!(s, "  \"store\": {{");
        let _ = writeln!(s, "    \"entries\": {},", self.store.entries);
        let _ = writeln!(s, "    \"bytes\": {},", self.store.bytes);
        let _ = writeln!(s, "    \"hits\": {},", self.store.hits);
        let _ = writeln!(s, "    \"misses\": {},", self.store.misses);
        let _ = writeln!(s, "    \"evictions\": {},", self.store.evictions);
        let _ = writeln!(s, "    \"per_phase\": {{");
        write_phase_rows(&mut s, "      ", &self.store.per_phase);
        let _ = writeln!(s, "    }}");
        let _ = writeln!(s, "  }},");
        let r = &self.recompile;
        let _ = writeln!(s, "  \"recompile\": {{");
        let _ = writeln!(s, "    \"revisions\": {},", r.revisions);
        let _ = writeln!(s, "    \"functions\": {},", r.functions);
        let _ = writeln!(s, "    \"edits_per_rev\": {},", r.edits_per_rev);
        let _ = writeln!(s, "    \"unit_hits\": {},", r.unit_hits);
        let _ = writeln!(s, "    \"unit_computed\": {},", r.unit_computed);
        let _ = writeln!(s, "    \"function_hit_rate\": {:.3},", r.function_hit_rate);
        let _ = writeln!(
            s,
            "    \"recomputed_per_edit\": {:.2},",
            r.recomputed_per_edit
        );
        let _ = writeln!(s, "    \"identical_results\": {},", r.identical_results);
        let _ = writeln!(s, "    \"manifest\": {{");
        let _ = writeln!(s, "      \"programs\": {},", r.manifest.programs);
        let _ = writeln!(s, "      \"function_refs\": {},", r.manifest.function_refs);
        let _ = writeln!(
            s,
            "      \"distinct_functions\": {},",
            r.manifest.distinct_functions
        );
        let _ = writeln!(
            s,
            "      \"shared_functions\": {},",
            r.manifest.shared_functions
        );
        let _ = writeln!(s, "      \"dedup_ratio\": {:.3}", r.manifest.dedup_ratio());
        let _ = writeln!(s, "    }}");
        let _ = writeln!(s, "  }},");
        let st = &self.streaming;
        let _ = writeln!(s, "  \"streaming\": {{");
        let _ = writeln!(s, "    \"footprint_bytes\": {},", st.footprint_bytes);
        let _ = writeln!(s, "    \"capacity_bytes\": {},", st.capacity_bytes);
        let _ = writeln!(
            s,
            "    \"peak_materialized_bytes\": {},",
            st.peak_materialized_bytes
        );
        let _ = writeln!(
            s,
            "    \"peak_segmented_bytes\": {},",
            st.peak_segmented_bytes
        );
        let _ = writeln!(s, "    \"peak_reduction\": {:.2},", st.peak_reduction);
        let _ = writeln!(s, "    \"container_bytes\": {},", st.container_bytes);
        let _ = writeln!(s, "    \"frame_bytes\": {},", st.frame_bytes);
        let _ = writeln!(s, "    \"segment_touches\": {},", st.segment_touches);
        let _ = writeln!(s, "    \"segment_verified\": {},", st.segment_verified);
        let _ = writeln!(s, "    \"segment_hit_rate\": {:.3},", st.segment_hit_rate);
        let _ = writeln!(s, "    \"shed_jobs\": {},", st.shed_jobs);
        let _ = writeln!(s, "    \"identical_results\": {}", st.identical_results);
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"churn\": {{");
        let _ = writeln!(s, "    \"probe_capacity_bytes\": {},", self.churn_capacity);
        let _ = writeln!(s, "    \"per_phase\": {{");
        write_phase_rows(&mut s, "      ", &self.churn);
        let _ = writeln!(s, "    }}");
        let _ = writeln!(s, "  }}");
        let _ = write!(s, "}}");
        s
    }
}

/// The churn probe's byte capacity, derived from the measured warm
/// footprint rather than a hard-coded fraction: the footprint minus the
/// single largest entry, floored at that largest entry. This guarantees
/// real pressure (the working set cannot all fit) while keeping every
/// individual artifact admissible — a hard-coded "half the footprint"
/// either under- or over-pressures as the artifact mix shifts between
/// PRs, producing all-evicted or no-evicted probes with no signal.
pub fn churn_probe_capacity(entry_sizes: &[usize]) -> usize {
    let footprint: usize = entry_sizes.iter().sum();
    let largest = entry_sizes.iter().copied().max().unwrap_or(0);
    footprint.saturating_sub(largest).max(largest).max(1)
}

/// Writes the six phase-kind rows of a [`PhaseStats`] histogram as JSON
/// object members (the five pipeline phases plus the compile pre-phase).
fn write_phase_rows(s: &mut String, indent: &str, rows: &[PhaseStats; 7]) {
    for (i, phase) in PHASE_KINDS.iter().enumerate() {
        let row = &rows[phase.index()];
        let comma = if i + 1 < PHASE_KINDS.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "{indent}\"{phase}\": {{\"hits\": {}, \"misses\": {}, \"inserts\": {}, \
             \"evictions\": {}, \"entries\": {}, \"bytes\": {}}}{comma}",
            row.hits, row.misses, row.inserts, row.evictions, row.entries, row.bytes
        );
    }
}

/// Keys every `BENCH_batch.json` must carry; `tables -- batch-json`
/// refuses to write a report that drops one. `"compile"` pins the
/// compile-pre-phase row of the store histogram — the column that shows
/// duplicate-program fleet jobs sharing one dispatch plan — and the
/// `"recompile"` trio pins the function-granular revision-stream
/// section (see [`RecompileReport`]).
pub const BATCH_JSON_REQUIRED: &[&str] = &[
    "\"compile\"",
    "\"probe_capacity_bytes\"",
    "\"cache_hit_rate\"",
    "\"speedup_vs_serial\"",
    "\"identical_results\"",
    "\"recompile\"",
    "\"function_hit_rate\"",
    "\"recomputed_per_edit\"",
    "\"streaming\"",
    "\"peak_materialized_bytes\"",
    "\"peak_segmented_bytes\"",
    "\"peak_reduction\"",
    "\"frame_bytes\"",
    "\"segment_hit_rate\"",
    "\"shed_jobs\"",
];

/// Validates the serialized batch bench report against
/// [`BATCH_JSON_REQUIRED`].
///
/// # Errors
///
/// Returns the first missing key.
pub fn check_batch_json_schema(json: &str) -> Result<(), String> {
    for key in BATCH_JSON_REQUIRED {
        if !json.contains(key) {
            return Err(format!("BENCH_batch.json schema: missing {key}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_duplicate_heavy() {
        let corpus = bench_corpus();
        // 3 bugs x (2 dups + 1 variant).
        assert_eq!(corpus.len(), 9);
        let distinct: std::collections::HashSet<_> = corpus
            .iter()
            .map(mcr_workloads::FleetSpec::dedup_key)
            .collect();
        assert_eq!(distinct.len(), 6);
    }

    #[test]
    fn report_json_shape() {
        let report = BatchReport {
            jobs: 9,
            distinct_jobs: 6,
            workers: 4,
            serial_wall: Duration::from_millis(900),
            fleet_wall: Duration::from_millis(500),
            jobs_per_sec: 18.0,
            phase_units: 45,
            computed: 30,
            cache_hits: 15,
            deduped_in_flight: 15,
            cache_hit_rate: 15.0 / 45.0,
            identical_results: true,
            reproduced: 9,
            store: StoreStats {
                hits: 15,
                misses: 30,
                inserts: 30,
                evictions: 0,
                entries: 30,
                bytes: 123_456,
                ..StoreStats::default()
            },
            recompile: RecompileReport {
                revisions: 6,
                functions: 12,
                edits_per_rev: 1,
                unit_hits: 110,
                unit_computed: 10,
                function_hit_rate: 110.0 / 120.0,
                recomputed_per_edit: 2.0,
                identical_results: true,
                manifest: ManifestStats {
                    programs: 6,
                    function_refs: 72,
                    distinct_functions: 17,
                    shared_functions: 12,
                },
            },
            streaming: StreamingReport {
                footprint_bytes: 123_456,
                capacity_bytes: 61_728,
                peak_materialized_bytes: 185_184,
                peak_segmented_bytes: 65_824,
                peak_reduction: 185_184.0 / 65_824.0,
                container_bytes: 124_000,
                frame_bytes: 1715,
                segment_touches: 96,
                segment_verified: 31,
                segment_hit_rate: (96.0 - 31.0) / 96.0,
                shed_jobs: 8,
                identical_results: true,
            },
            churn_capacity: 61_728,
            churn: [PhaseStats::default(); 7],
        };
        let json = report.to_json();
        for key in [
            "\"schema\": \"mcr-bench/batch/v1\"",
            "\"jobs\": 9",
            "\"distinct_jobs\": 6",
            "\"cache_hits\": 15",
            "\"deduped_in_flight\": 15",
            "\"cache_hit_rate\": 0.333",
            "\"identical_results\": true",
            "\"speedup_vs_serial\"",
            "\"store\"",
            "\"per_phase\"",
            "\"index\": {\"hits\": 0",
            "\"search\": {\"hits\": 0",
            "\"compile\": {\"hits\": 0",
            "\"churn\"",
            "\"probe_capacity_bytes\": 61728",
            "\"recompile\"",
            "\"function_hit_rate\": 0.917",
            "\"recomputed_per_edit\": 2.00",
            "\"dedup_ratio\": 0.764",
            "\"streaming\"",
            "\"peak_materialized_bytes\": 185184",
            "\"peak_segmented_bytes\": 65824",
            "\"peak_reduction\": 2.81",
            "\"frame_bytes\": 1715",
            "\"segment_hit_rate\": 0.677",
            "\"shed_jobs\": 8",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        check_batch_json_schema(&json).expect("shape report satisfies its own schema");
    }

    #[test]
    fn churn_capacity_tracks_the_measured_footprint() {
        // Uniform mix: capacity is the footprint minus one entry —
        // guaranteed pressure, every entry still admissible.
        assert_eq!(churn_probe_capacity(&[100, 100, 100, 100]), 300);
        // Skewed mix: one dominant artifact must still fit.
        assert_eq!(churn_probe_capacity(&[1000, 10, 10]), 1000);
        // Degenerate inputs stay sane.
        assert_eq!(churn_probe_capacity(&[]), 1);
        assert_eq!(churn_probe_capacity(&[7]), 7);
    }
}
