//! Binary encoding of core dumps.
//!
//! Dumps are serialized to a compact varint-based format so that the
//! evaluation can report real dump *sizes* (paper Table 3) and *parsing
//! costs* (paper Table 6 — where GDB-based parsing dominated the paper's
//! analysis time). The format is versioned and self-contained; no external
//! serialization crate is used so the byte layout is stable by
//! construction.

use crate::dump::{CoreDump, DumpReason, FrameImage, ThreadImage};
use crate::wire::{Reader, SegmentedBytes, Writer};
use mcr_lang::{FuncId, StmtId};
use mcr_vm::{BufferedStore, GSlot, ThreadId, ThreadState};
use std::error::Error;
use std::fmt;

const MAGIC: &[u8; 4] = b"MCRD";
// v2: per-thread store-buffer images (TSO mode). v1 dumps (no buffer
// field) are rejected rather than read as empty-buffered — a frozen
// buffer is part of the failure state and silence would be a lie.
const VERSION: u8 = 2;

/// Decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset of the problem.
    pub offset: usize,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dump decode error at byte {}: {}", self.offset, self.msg)
    }
}

impl Error for DecodeError {}

/// Serializes a dump to bytes. The returned length is the "core dump
/// size" reported in the Table 3 reproduction.
pub fn encode(dump: &CoreDump) -> Vec<u8> {
    let mut w = Writer::new();
    w.raw(MAGIC);
    w.u8(VERSION);

    match dump.reason {
        DumpReason::Manual => w.u8(0),
        DumpReason::Aligned => w.u8(1),
        DumpReason::Failure(f) => {
            w.u8(2);
            w.failure(f);
        }
    }
    w.uvarint(dump.focus.0 as u64);
    w.uvarint(dump.steps);

    w.uvarint(dump.globals.len() as u64);
    for g in &dump.globals {
        match g {
            GSlot::Scalar(v) => {
                w.u8(0);
                w.value(*v);
            }
            GSlot::Array(slots) => {
                w.u8(1);
                w.uvarint(slots.len() as u64);
                for v in slots {
                    w.value(*v);
                }
            }
        }
    }

    w.uvarint(dump.heap.len() as u64);
    for obj in &dump.heap {
        match obj {
            None => w.u8(0),
            Some(slots) => {
                w.u8(1);
                w.uvarint(slots.len() as u64);
                for v in slots {
                    w.value(*v);
                }
            }
        }
    }

    w.uvarint(dump.threads.len() as u64);
    for t in &dump.threads {
        w.uvarint(t.id.0 as u64);
        w.uvarint(t.entry.0 as u64);
        w.u8(match t.state {
            ThreadState::Ready => 0,
            ThreadState::Done => 1,
            ThreadState::Crashed => 2,
        });
        w.uvarint(t.instrs);
        w.value(t.last_value);
        w.uvarint(t.sync_seq as u64);
        w.uvarint(t.store_buffer.len() as u64);
        for b in &t.store_buffer {
            w.memloc(b.loc);
            w.value(b.value);
            w.pc(b.pc);
        }
        w.uvarint(t.frames.len() as u64);
        for f in &t.frames {
            w.uvarint(f.func.0 as u64);
            w.uvarint(f.pc.0 as u64);
            w.uvarint(f.locals.len() as u64);
            for v in &f.locals {
                w.value(*v);
            }
            w.uvarint(f.loop_counters.len() as u64);
            for c in &f.loop_counters {
                w.ivarint(*c);
            }
        }
    }

    w.uvarint(dump.locks.len() as u64);
    for l in &dump.locks {
        match l {
            None => w.u8(0),
            Some(t) => {
                w.u8(1);
                w.uvarint(t.0 as u64);
            }
        }
    }
    w.into_bytes()
}

/// Default frame size for segmented dump payloads: small enough that a
/// range read over one thread image touches a handful of frames, large
/// enough that framing overhead (varint length + 8-byte checksum per
/// segment) stays well under 1%.
pub const DUMP_FRAME_SIZE: usize = 4096;

/// Serializes a dump straight into a [`SegmentedBytes`] container: the
/// shippable snapshot representation. The encoded stream is identical to
/// [`encode`]'s, but packaged in checksummed fixed-size frames with a
/// footer index, so a receiving process can validate framing in O(1),
/// rehydrate byte ranges on demand, and forward the container without a
/// decode→re-encode round trip.
pub fn encode_segmented(dump: &CoreDump, frame_size: usize) -> SegmentedBytes {
    SegmentedBytes::from_payload(&encode(dump), frame_size)
}

/// Parses a dump from a segmented container, verifying only the
/// segments actually decoded (which for a full dump parse is all of
/// them — the laziness pays off for consumers that stop early or only
/// need ranges).
///
/// # Errors
///
/// Returns [`DecodeError`] on corrupt framing or a malformed payload.
pub fn decode_segmented(seg: &SegmentedBytes) -> Result<CoreDump, DecodeError> {
    let payload = seg.read_range(0, seg.total_len() as usize)?;
    decode(&payload)
}

/// Parses a dump from bytes.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated or malformed input.
pub fn decode(bytes: &[u8]) -> Result<CoreDump, DecodeError> {
    let mut r = Reader::new(bytes);
    r.expect_magic(MAGIC)?;
    let version = r.u8()?;
    if version != VERSION {
        return r.err(format!("unsupported version {version}"));
    }

    let reason = match r.u8()? {
        0 => DumpReason::Manual,
        1 => DumpReason::Aligned,
        2 => DumpReason::Failure(r.failure()?),
        t => return r.err(format!("bad reason tag {t}")),
    };
    let focus = ThreadId(r.uvarint()? as u32);
    let steps = r.uvarint()?;

    let nglobals = r.len("globals")?;
    let mut globals = Vec::with_capacity(nglobals.min(4096));
    for _ in 0..nglobals {
        globals.push(match r.u8()? {
            0 => GSlot::Scalar(r.value()?),
            1 => {
                let n = r.len("array")?;
                let mut slots = Vec::with_capacity(n.min(65536));
                for _ in 0..n {
                    slots.push(r.value()?);
                }
                GSlot::Array(slots)
            }
            t => return r.err(format!("bad global tag {t}")),
        });
    }

    let nheap = r.len("heap")?;
    let mut heap = Vec::with_capacity(nheap.min(65536));
    for _ in 0..nheap {
        heap.push(match r.u8()? {
            0 => None,
            1 => {
                let n = r.len("object")?;
                let mut slots = Vec::with_capacity(n.min(65536));
                for _ in 0..n {
                    slots.push(r.value()?);
                }
                Some(slots)
            }
            t => return r.err(format!("bad object tag {t}")),
        });
    }

    let nthreads = r.len("threads")?;
    let mut threads = Vec::with_capacity(nthreads.min(1024));
    for _ in 0..nthreads {
        let id = ThreadId(r.uvarint()? as u32);
        let entry = FuncId(r.uvarint()? as u32);
        let state = match r.u8()? {
            0 => ThreadState::Ready,
            1 => ThreadState::Done,
            2 => ThreadState::Crashed,
            t => return r.err(format!("bad thread state {t}")),
        };
        let instrs = r.uvarint()?;
        let last_value = r.value()?;
        let sync_seq = r.uvarint()? as u32;
        let nbuf = r.len("store buffer")?;
        let mut store_buffer = Vec::with_capacity(nbuf.min(1024));
        for _ in 0..nbuf {
            let loc = r.memloc()?;
            let value = r.value()?;
            let pc = r.pc()?;
            store_buffer.push(BufferedStore { loc, value, pc });
        }
        let nframes = r.len("frames")?;
        let mut frames = Vec::with_capacity(nframes.min(1024));
        for _ in 0..nframes {
            let func = FuncId(r.uvarint()? as u32);
            let pc = StmtId(r.uvarint()? as u32);
            let nlocals = r.len("locals")?;
            let mut locals = Vec::with_capacity(nlocals.min(65536));
            for _ in 0..nlocals {
                locals.push(r.value()?);
            }
            let nctrs = r.len("loop counters")?;
            let mut loop_counters = Vec::with_capacity(nctrs.min(65536));
            for _ in 0..nctrs {
                loop_counters.push(r.ivarint()?);
            }
            frames.push(FrameImage {
                func,
                pc,
                locals,
                loop_counters,
            });
        }
        threads.push(ThreadImage {
            id,
            entry,
            state,
            frames,
            instrs,
            last_value,
            sync_seq,
            store_buffer,
        });
    }

    let nlocks = r.len("locks")?;
    let mut locks = Vec::with_capacity(nlocks.min(4096));
    for _ in 0..nlocks {
        locks.push(match r.u8()? {
            0 => None,
            1 => Some(ThreadId(r.uvarint()? as u32)),
            t => return r.err(format!("bad lock tag {t}")),
        });
    }

    if focus.0 as usize >= threads.len() {
        return r.err("focus thread out of range");
    }

    Ok(CoreDump {
        reason,
        focus,
        globals,
        heap,
        threads,
        locks,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dump::{CoreDump, DumpReason};
    use mcr_vm::{run, DeterministicScheduler, NullObserver, Vm};

    fn sample_dump(src: &str) -> CoreDump {
        let p = mcr_lang::compile(src).unwrap();
        let mut vm = Vm::new(&p, &[1, 2, 3]);
        let mut s = DeterministicScheduler::new();
        run(&mut vm, &mut s, &mut NullObserver, 100_000);
        match CoreDump::capture_failure(&vm) {
            Some(d) => d,
            None => CoreDump::capture(&vm, ThreadId(0), DumpReason::Manual),
        }
    }

    #[test]
    fn round_trip_completed_run() {
        let d = sample_dump(
            "global x: int; global a: [int; 5]; global q: ptr; lock l;
             fn main() { var p; x = -7; a[2] = 9; p = alloc(3); p[1] = 11; q = p; acquire l; release l; }",
        );
        let bytes = encode(&d);
        let d2 = decode(&bytes).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn round_trip_failure_dump() {
        let d = sample_dump(
            "fn deep(p) { p[0] = 1; } fn main() { var i; while (i < 4) { i = i + 1; } deep(null); }",
        );
        assert!(d.failure().is_some());
        let bytes = encode(&d);
        let d2 = decode(&bytes).unwrap();
        assert_eq!(d, d2);
        assert_eq!(d2.failure(), d.failure());
        assert_eq!(d2.focus_thread().frames[0].loop_counters, vec![4]);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(decode(b"XXXX\x01").is_err());
    }

    #[test]
    fn segmented_encoding_round_trips_and_ships() {
        let d = sample_dump(
            "global x: int; global a: [int; 64]; fn main() { var i; for (i = 0; i < 64; i = i + 1) { a[i] = i * 3; } x = 7; }",
        );
        let seg = encode_segmented(&d, 128);
        assert_eq!(seg.total_len() as usize, encode(&d).len());
        assert!(seg.segment_count() >= 2, "fixture must span frames");
        assert_eq!(decode_segmented(&seg).unwrap(), d);
        // Shipping: the container bytes parse back on the other side
        // without re-encoding, and still decode to the same dump.
        let shipped = SegmentedBytes::parse(seg.as_bytes().to_vec()).unwrap();
        assert_eq!(decode_segmented(&shipped).unwrap(), d);
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let d = sample_dump("global x: int; fn main() { x = 3; }");
        let bytes = encode(&d);
        for cut in 0..bytes.len() {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "decode succeeded on {cut}-byte prefix"
            );
        }
    }

    #[test]
    fn rejects_bad_version() {
        let d = sample_dump("fn main() { }");
        let mut bytes = encode(&d);
        bytes[4] = 99;
        let err = decode(&bytes).unwrap_err();
        assert!(err.msg.contains("version"), "{err}");
    }

    #[test]
    fn size_grows_with_state() {
        let small = encode(&sample_dump("global a: [int; 4]; fn main() { }"));
        let big = encode(&sample_dump(
            "global a: [int; 4000]; fn main() { var i; for (i = 0; i < 4000; i = i + 1) { a[i] = i; } }",
        ));
        assert!(
            big.len() > small.len() * 10,
            "small={}, big={}",
            small.len(),
            big.len()
        );
    }

    #[test]
    fn zigzag_negative_values() {
        let d = sample_dump("global x: int; fn main() { x = 0 - 123456789; }");
        let d2 = decode(&encode(&d)).unwrap();
        assert_eq!(d, d2);
    }
}
