//! Reference paths — cross-run identities for memory variables.
//!
//! Raw heap addresses (our [`mcr_vm::ObjId`]s) are allocation-order
//! dependent and meaningless across runs, so the paper identifies a memory
//! variable by *"the path leading from a register, a global pointer or a
//! local stack pointer to \[the\] variable"* (§4), following Boehm-style
//! reachability. Aliased objects yield multiple paths and are deliberately
//! treated as multiple variables, one per path.

use crate::dump::CoreDump;
use mcr_lang::{GlobalId, LocalId, Program};
use mcr_vm::{GSlot, ObjId, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Where a reference path starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PathRoot {
    /// A global scalar slot.
    Global(GlobalId),
    /// An element of a global array.
    GlobalElem(GlobalId, u32),
    /// A local slot of the focus thread's *current* stack frame (the paper
    /// compares "the local variables on the current stack frame of the
    /// failing thread").
    FocusLocal(LocalId),
    /// The focus thread's register file (its last computed value).
    Register,
}

/// A reference path: a root plus a sequence of slot indices followed
/// through heap objects.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RefPath {
    /// The root.
    pub root: PathRoot,
    /// Slot indices through successive heap objects.
    pub steps: Vec<u32>,
}

impl RefPath {
    /// A path consisting of just a root.
    pub fn root(root: PathRoot) -> RefPath {
        RefPath {
            root,
            steps: Vec::new(),
        }
    }

    /// Whether the variable is shared state: rooted in a global (directly
    /// or through the heap). Locals and registers of the failing thread
    /// are private.
    pub fn is_shared(&self) -> bool {
        matches!(self.root, PathRoot::Global(_) | PathRoot::GlobalElem(..))
    }

    /// Renders the path with source-level names.
    pub fn display<'a>(&'a self, program: &'a Program) -> RefPathDisplay<'a> {
        RefPathDisplay {
            path: self,
            program,
        }
    }
}

/// Pretty-printer for [`RefPath`] (named after the program's globals).
#[derive(Debug, Clone, Copy)]
pub struct RefPathDisplay<'a> {
    path: &'a RefPath,
    program: &'a Program,
}

impl fmt::Display for RefPathDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.path.root {
            PathRoot::Global(g) => write!(f, "{}", self.program.globals[g.0 as usize].name)?,
            PathRoot::GlobalElem(g, i) => {
                write!(f, "{}[{}]", self.program.globals[g.0 as usize].name, i)?;
            }
            PathRoot::FocusLocal(l) => write!(f, "local{}", l.0)?,
            PathRoot::Register => write!(f, "reg")?,
        }
        for s in &self.path.steps {
            write!(f, "->[{s}]")?;
        }
        Ok(())
    }
}

/// The comparable value at the end of a reference path.
///
/// Integers compare by value; pointers compare by null-ness only (their
/// object identity is captured by the path structure itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathValue {
    /// A primitive integer.
    Int(i64),
    /// A pointer; `true` when null.
    PtrNull(bool),
}

impl PathValue {
    fn of(v: Value) -> PathValue {
        match v {
            Value::Int(i) => PathValue::Int(i),
            Value::Ptr(p) => PathValue::PtrNull(p.is_none()),
        }
    }
}

/// Traversal limits: maximum pointer-chain depth and maximum number of
/// paths enumerated (aliasing can blow up combinatorially; the paper's
/// GC-style traversal has the same bound implicitly through memory size).
#[derive(Debug, Clone, Copy)]
pub struct TraverseLimits {
    /// Maximum number of heap hops.
    pub max_depth: usize,
    /// Maximum number of paths produced.
    pub max_paths: usize,
}

impl Default for TraverseLimits {
    fn default() -> Self {
        TraverseLimits {
            max_depth: 24,
            max_paths: 500_000,
        }
    }
}

/// The variable map of one dump: every reachable primitive-or-pointer slot
/// keyed by its reference path. `BTreeMap` keeps iteration deterministic.
pub type VarMap = BTreeMap<RefPath, PathValue>;

/// Enumerates every variable reachable from the dump's roots (globals,
/// the focus thread's current frame locals, registers), following
/// pointers through the heap, Boehm-style.
pub fn reachable_vars(dump: &CoreDump, limits: TraverseLimits) -> VarMap {
    let mut out = VarMap::new();
    let visit = |root: PathRoot, v: Value, out: &mut VarMap| {
        descend(dump, RefPath::root(root), v, limits, &mut Vec::new(), out);
    };

    for (gi, slot) in dump.globals.iter().enumerate() {
        let g = GlobalId(gi as u32);
        match slot {
            GSlot::Scalar(v) => visit(PathRoot::Global(g), *v, &mut out),
            GSlot::Array(slots) => {
                for (i, v) in slots.iter().enumerate() {
                    visit(PathRoot::GlobalElem(g, i as u32), *v, &mut out);
                }
            }
        }
    }
    if let Some(frame) = dump.focus_thread().top() {
        for (li, v) in frame.locals.iter().enumerate() {
            visit(PathRoot::FocusLocal(LocalId(li as u32)), *v, &mut out);
        }
    }
    visit(PathRoot::Register, dump.focus_thread().last_value, &mut out);
    out
}

fn descend(
    dump: &CoreDump,
    path: RefPath,
    v: Value,
    limits: TraverseLimits,
    on_path: &mut Vec<ObjId>,
    out: &mut VarMap,
) {
    if out.len() >= limits.max_paths {
        return;
    }
    out.insert(path.clone(), PathValue::of(v));
    let Value::Ptr(Some(obj)) = v else { return };
    if on_path.contains(&obj) || on_path.len() >= limits.max_depth {
        return; // cycle along this path, or too deep
    }
    let Some(slots) = dump.heap.get(obj.0 as usize).and_then(|o| o.as_ref()) else {
        return;
    };
    on_path.push(obj);
    for (i, sv) in slots.iter().enumerate() {
        let mut p = path.clone();
        p.steps.push(i as u32);
        descend(dump, p, *sv, limits, on_path, out);
    }
    on_path.pop();
}

/// Resolves a reference path against a dump, returning the heap location
/// it denotes (`None` when the path no longer resolves, e.g. a pointer
/// became null). Used to map CSVs back to concrete locations in the run
/// the dump was taken from.
pub fn resolve_loc(dump: &CoreDump, path: &RefPath) -> Option<ResolvedVar> {
    let mut v = match path.root {
        PathRoot::Global(g) => match dump.globals.get(g.0 as usize)? {
            GSlot::Scalar(v) => *v,
            GSlot::Array(_) => return None,
        },
        PathRoot::GlobalElem(g, i) => match dump.globals.get(g.0 as usize)? {
            GSlot::Array(slots) => *slots.get(i as usize)?,
            GSlot::Scalar(_) => return None,
        },
        PathRoot::FocusLocal(l) => *dump.focus_thread().top()?.locals.get(l.0 as usize)?,
        PathRoot::Register => dump.focus_thread().last_value,
    };
    if path.steps.is_empty() {
        return Some(match path.root {
            PathRoot::Global(g) => ResolvedVar::Global(g),
            PathRoot::GlobalElem(g, i) => ResolvedVar::GlobalElem(g, i),
            PathRoot::FocusLocal(l) => ResolvedVar::FocusLocal(l),
            PathRoot::Register => ResolvedVar::Register,
        });
    }
    let mut loc = None;
    for &step in &path.steps {
        let obj = v.as_ptr()??;
        let slots = dump.heap.get(obj.0 as usize)?.as_ref()?;
        v = *slots.get(step as usize)?;
        loc = Some(ResolvedVar::Heap(obj, step));
    }
    loc
}

/// A concrete location a reference path resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResolvedVar {
    /// Global scalar.
    Global(GlobalId),
    /// Global array element.
    GlobalElem(GlobalId, u32),
    /// Heap object slot.
    Heap(ObjId, u32),
    /// Focus-frame local.
    FocusLocal(LocalId),
    /// Focus thread register.
    Register,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dump::{CoreDump, DumpReason};
    use mcr_vm::{run, DeterministicScheduler, NullObserver, ThreadId, Vm};

    fn dump_of(src: &str) -> (mcr_lang::Program, CoreDump) {
        let p = mcr_lang::compile(src).unwrap();
        let mut vm = Vm::new(&p, &[]);
        let mut s = DeterministicScheduler::new();
        run(&mut vm, &mut s, &mut NullObserver, 100_000);
        let focus = vm.failure().map_or(ThreadId(0), |f| f.thread);
        let reason = vm.failure().map_or(DumpReason::Manual, DumpReason::Failure);
        let d = CoreDump::capture(&vm, focus, reason);
        (p, d)
    }

    #[test]
    fn globals_and_heap_reachable() {
        let (p, d) = dump_of(
            "global x: int; global q: ptr; fn main() { x = 5; var p; p = alloc(2); p[0] = 7; q = p; }",
        );
        let vars = reachable_vars(&d, TraverseLimits::default());
        let x = p.global_by_name("x").unwrap();
        assert_eq!(
            vars.get(&RefPath::root(PathRoot::Global(x))),
            Some(&PathValue::Int(5))
        );
        // q -> [0] holds 7.
        let q = p.global_by_name("q").unwrap();
        let path = RefPath {
            root: PathRoot::Global(q),
            steps: vec![0],
        };
        assert_eq!(vars.get(&path), Some(&PathValue::Int(7)));
        assert!(path.is_shared());
    }

    #[test]
    fn cycles_terminate() {
        let (_p, d) = dump_of(
            "global q: ptr; fn main() { var a; var b; a = alloc(1); b = alloc(1); a[0] = b; b[0] = a; q = a; }",
        );
        let vars = reachable_vars(&d, TraverseLimits::default());
        // Path q, q->[0], q->[0]->[0] exist, the cycle stops there.
        assert!(vars.len() < 20, "cycle not bounded: {}", vars.len());
    }

    #[test]
    fn focus_locals_are_roots_but_not_shared() {
        let (_p, d) = dump_of("fn main() { var v; v = 9; assert(v == 0); }");
        // Crashes inside main, so main's locals are visible.
        let vars = reachable_vars(&d, TraverseLimits::default());
        let local = RefPath::root(PathRoot::FocusLocal(LocalId(0)));
        assert_eq!(vars.get(&local), Some(&PathValue::Int(9)));
        assert!(!local.is_shared());
    }

    #[test]
    fn aliasing_yields_multiple_paths() {
        let (_p, d) = dump_of(
            "global q1: ptr; global q2: ptr; fn main() { var a; a = alloc(1); a[0] = 3; q1 = a; q2 = a; }",
        );
        let vars = reachable_vars(&d, TraverseLimits::default());
        // Count only globally rooted paths (the register may hold a third
        // alias of the same object).
        let hits = vars
            .iter()
            .filter(|(p, v)| p.is_shared() && !p.steps.is_empty() && **v == PathValue::Int(3))
            .count();
        assert_eq!(hits, 2, "aliased object is two variables");
    }

    #[test]
    fn resolve_loc_follows_pointers() {
        let (p, d) = dump_of("global q: ptr; fn main() { var a; a = alloc(2); a[1] = 4; q = a; }");
        let q = p.global_by_name("q").unwrap();
        let path = RefPath {
            root: PathRoot::Global(q),
            steps: vec![1],
        };
        match resolve_loc(&d, &path) {
            Some(ResolvedVar::Heap(_, 1)) => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(
            resolve_loc(&d, &RefPath::root(PathRoot::Global(q))),
            Some(ResolvedVar::Global(q))
        );
    }

    #[test]
    fn display_uses_names() {
        let (p, _d) = dump_of("global cache: ptr; fn main() { }");
        let g = p.global_by_name("cache").unwrap();
        let path = RefPath {
            root: PathRoot::Global(g),
            steps: vec![2, 0],
        };
        assert_eq!(path.display(&p).to_string(), "cache->[2]->[0]");
    }
}
