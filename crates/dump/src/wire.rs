//! Reusable wire primitives of the dump codec.
//!
//! The core-dump format ([`crate::codec`]) and the phase-artifact formats
//! built on top of it by `mcr-core` share one varint-based byte layout.
//! This module is that shared layer: a [`Writer`] appending primitive
//! values to a growing buffer and a [`Reader`] consuming them with
//! offset-carrying errors. No external serialization crate is used, so
//! the byte layout is stable by construction.
//!
//! Conventions:
//!
//! * unsigned integers are LEB128 varints ([`Writer::uvarint`]),
//! * signed integers are ZigZag-mapped varints ([`Writer::ivarint`]),
//! * sequences are a length varint followed by the elements,
//! * options are a `0`/`1` presence byte followed by the payload,
//! * durations are whole nanoseconds (saturating at `u64::MAX`),
//! * program counters and failure records use [`Writer::pc`] /
//!   [`Writer::failure`] (shared by the dump codec and the phase
//!   artifacts, so one layout serves both),
//! * [`ContentHash`] identifies wire-encoded content for the
//!   content-addressed artifact stores built on top,
//! * [`SegmentedBytes`] packages a byte stream into fixed-size,
//!   independently checksummed frames with a footer index, so large
//!   artifacts (spilled traces, store snapshots) can be rehydrated by
//!   byte range on demand instead of decoded whole.

use crate::codec::DecodeError;
use mcr_lang::{FuncId, GlobalId, LocalId, LockId, LoopId, Pc, StmtId};
use mcr_vm::{
    Event, Failure, FailureKind, FaultKind, InjectedFault, MemLoc, ObjId, SyncKind, ThreadId, Value,
};
use std::time::Duration;

/// FNV-1a 128-bit offset basis.
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime.
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

/// A 128-bit content hash over wire-format bytes (FNV-1a).
///
/// This is the identity the content-addressed artifact stores of
/// `mcr-core` key on: two byte strings with the same hash are treated as
/// the same content. FNV-1a is not cryptographic — the stores are a
/// cache, not a trust boundary — but at 128 bits accidental collisions
/// are out of reach for any realistic corpus.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentHash(pub u128);

impl ContentHash {
    /// Hashes a byte string in one call.
    pub fn of(bytes: &[u8]) -> ContentHash {
        let mut h = ContentHasher::new();
        h.update(bytes);
        h.finish128()
    }

    /// The hash as 16 little-endian bytes (the wire layout).
    pub fn to_le_bytes(self) -> [u8; 16] {
        self.0.to_le_bytes()
    }

    /// Rebuilds a hash from its wire layout.
    pub fn from_le_bytes(bytes: [u8; 16]) -> ContentHash {
        ContentHash(u128::from_le_bytes(bytes))
    }
}

impl std::fmt::Debug for ContentHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ContentHash({self})")
    }
}

impl std::fmt::Display for ContentHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Streaming [`ContentHash`] builder.
///
/// Also implements [`std::hash::Hasher`], so `#[derive(Hash)]` types —
/// a compiled [`mcr_lang::Program`], say — can be folded into a content
/// hash without a bespoke byte encoding: the derive feeds its canonical
/// field-order byte stream straight into the FNV state.
#[derive(Debug, Clone)]
pub struct ContentHasher {
    state: u128,
}

impl Default for ContentHasher {
    fn default() -> Self {
        ContentHasher::new()
    }
}

impl ContentHasher {
    /// A hasher at the FNV offset basis.
    pub fn new() -> ContentHasher {
        ContentHasher {
            state: FNV128_OFFSET,
        }
    }

    /// Folds `bytes` into the hash state.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// The 128-bit digest of everything folded in so far.
    pub fn finish128(&self) -> ContentHash {
        ContentHash(self.state)
    }
}

impl std::hash::Hasher for ContentHasher {
    fn write(&mut self, bytes: &[u8]) {
        self.update(bytes);
    }

    fn finish(&self) -> u64 {
        (self.state as u64) ^ ((self.state >> 64) as u64)
    }
}

/// Appends wire-format primitives to a byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes verbatim (magic numbers, pre-encoded payloads).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a boolean as a `0`/`1` byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends an unsigned LEB128 varint.
    pub fn uvarint(&mut self, mut v: u64) {
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(b);
                break;
            }
            self.buf.push(b | 0x80);
        }
    }

    /// Appends a signed integer (ZigZag-mapped varint).
    pub fn ivarint(&mut self, v: i64) {
        self.uvarint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.uvarint(bytes.len() as u64);
        self.raw(bytes);
    }

    /// Appends a duration as whole nanoseconds (saturating).
    pub fn duration(&mut self, d: Duration) {
        self.uvarint(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Appends an optional duration (presence byte + payload).
    pub fn opt_duration(&mut self, d: Option<Duration>) {
        match d {
            None => self.bool(false),
            Some(d) => {
                self.bool(true);
                self.duration(d);
            }
        }
    }

    /// Appends an optional unsigned varint (presence byte + payload).
    pub fn opt_uvarint(&mut self, v: Option<u64>) {
        match v {
            None => self.bool(false),
            Some(v) => {
                self.bool(true);
                self.uvarint(v);
            }
        }
    }

    /// Appends a VM value (tagged scalar / null / object pointer).
    pub fn value(&mut self, v: Value) {
        match v {
            Value::Int(i) => {
                self.u8(0);
                self.ivarint(i);
            }
            Value::Ptr(None) => self.u8(1),
            Value::Ptr(Some(o)) => {
                self.u8(2);
                self.uvarint(o.0 as u64);
            }
        }
    }

    /// Appends a program counter (function + statement varints).
    pub fn pc(&mut self, pc: Pc) {
        self.uvarint(pc.func.0 as u64);
        self.uvarint(pc.stmt.0 as u64);
    }

    /// Appends an optional program counter (presence byte + payload).
    pub fn opt_pc(&mut self, pc: Option<Pc>) {
        match pc {
            None => self.bool(false),
            Some(pc) => {
                self.bool(true);
                self.pc(pc);
            }
        }
    }

    /// Appends a failure record (kind tag, pc, failing thread, optional
    /// injected-fault stamp).
    pub fn failure(&mut self, f: Failure) {
        self.u8(failure_kind_tag(f.kind));
        self.pc(f.pc);
        self.uvarint(f.thread.0 as u64);
        match f.fault {
            None => self.bool(false),
            Some(fault) => {
                self.bool(true);
                self.u8(fault_kind_tag(fault.kind));
                self.uvarint(fault.nth as u64);
            }
        }
    }

    /// Appends a memory location (tagged by shape).
    pub fn memloc(&mut self, loc: MemLoc) {
        match loc {
            MemLoc::Global(g) => {
                self.u8(0);
                self.uvarint(g.0 as u64);
            }
            MemLoc::GlobalElem(g, i) => {
                self.u8(1);
                self.uvarint(g.0 as u64);
                self.uvarint(i as u64);
            }
            MemLoc::Heap(o, i) => {
                self.u8(2);
                self.uvarint(o.0 as u64);
                self.uvarint(i as u64);
            }
            MemLoc::Local { tid, frame, local } => {
                self.u8(3);
                self.uvarint(tid.0 as u64);
                self.uvarint(frame);
                self.uvarint(local.0 as u64);
            }
        }
    }

    /// Appends a synchronization-operation kind.
    pub fn sync_kind(&mut self, kind: SyncKind) {
        match kind {
            SyncKind::Acquire(l) => {
                self.u8(0);
                self.uvarint(l.0 as u64);
            }
            SyncKind::Release(l) => {
                self.u8(1);
                self.uvarint(l.0 as u64);
            }
            SyncKind::Spawn(t) => {
                self.u8(2);
                self.uvarint(t.0 as u64);
            }
            SyncKind::Join(t) => {
                self.u8(3);
                self.uvarint(t.0 as u64);
            }
            SyncKind::Flush => self.u8(4),
        }
    }

    /// Appends one dynamic event. Tags are pinned in declaration order of
    /// [`Event`]; new kinds append (the store-buffer events of the TSO
    /// memory model took tags 4 and 5 when the enum gained them).
    pub fn event(&mut self, e: &Event) {
        match e {
            Event::Stmt { tid, pc, cost } => {
                self.u8(0);
                self.uvarint(tid.0 as u64);
                self.pc(*pc);
                self.u8(*cost);
            }
            Event::Branch { tid, pc, outcome } => {
                self.u8(1);
                self.uvarint(tid.0 as u64);
                self.pc(*pc);
                self.bool(*outcome);
            }
            Event::Read {
                tid,
                pc,
                loc,
                value,
            } => {
                self.u8(2);
                self.uvarint(tid.0 as u64);
                self.pc(*pc);
                self.memloc(*loc);
                self.value(*value);
            }
            Event::Write {
                tid,
                pc,
                loc,
                value,
            } => {
                self.u8(3);
                self.uvarint(tid.0 as u64);
                self.pc(*pc);
                self.memloc(*loc);
                self.value(*value);
            }
            Event::StoreBuffered {
                tid,
                pc,
                loc,
                value,
            } => {
                self.u8(4);
                self.uvarint(tid.0 as u64);
                self.pc(*pc);
                self.memloc(*loc);
                self.value(*value);
            }
            Event::StoreFlushed {
                tid,
                pc,
                loc,
                value,
            } => {
                self.u8(5);
                self.uvarint(tid.0 as u64);
                self.pc(*pc);
                self.memloc(*loc);
                self.value(*value);
            }
            Event::FuncEnter { tid, func, frame } => {
                self.u8(6);
                self.uvarint(tid.0 as u64);
                self.uvarint(func.0 as u64);
                self.uvarint(*frame);
            }
            Event::FuncExit { tid, func, frame } => {
                self.u8(7);
                self.uvarint(tid.0 as u64);
                self.uvarint(func.0 as u64);
                self.uvarint(*frame);
            }
            Event::Sync { tid, pc, kind, seq } => {
                self.u8(8);
                self.uvarint(tid.0 as u64);
                self.pc(*pc);
                self.sync_kind(*kind);
                self.uvarint(*seq as u64);
            }
            Event::ThreadStart { tid, func } => {
                self.u8(9);
                self.uvarint(tid.0 as u64);
                self.uvarint(func.0 as u64);
            }
            Event::ThreadEnd { tid } => {
                self.u8(10);
                self.uvarint(tid.0 as u64);
            }
            Event::Output { tid, value } => {
                self.u8(11);
                self.uvarint(tid.0 as u64);
                self.value(*value);
            }
            Event::LoopEnter { tid, pc, loop_id } => {
                self.u8(12);
                self.uvarint(tid.0 as u64);
                self.pc(*pc);
                self.uvarint(loop_id.0 as u64);
            }
            Event::LoopIter {
                tid,
                pc,
                loop_id,
                count,
            } => {
                self.u8(13);
                self.uvarint(tid.0 as u64);
                self.pc(*pc);
                self.uvarint(loop_id.0 as u64);
                self.ivarint(*count);
            }
            Event::Crash { failure } => {
                self.u8(14);
                self.failure(*failure);
            }
        }
    }

    /// Appends a content hash (16 little-endian bytes).
    pub fn hash(&mut self, h: ContentHash) {
        self.raw(&h.to_le_bytes());
    }
}

/// Consumes wire-format primitives from a byte buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// The current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Builds a [`DecodeError`] at the current offset.
    pub fn err<T>(&self, msg: impl Into<String>) -> Result<T, DecodeError> {
        Err(DecodeError {
            msg: msg.into(),
            offset: self.pos,
        })
    }

    /// Consumes and checks a magic-byte prefix.
    ///
    /// # Errors
    ///
    /// Fails when the input is shorter than `magic` or differs from it.
    pub fn expect_magic(&mut self, magic: &[u8]) -> Result<(), DecodeError> {
        if self.buf.len() < self.pos + magic.len()
            || &self.buf[self.pos..self.pos + magic.len()] != magic
        {
            return self.err("bad magic");
        }
        self.pos += magic.len();
        Ok(())
    }

    /// Fails with `trailing bytes` unless the whole input was consumed.
    ///
    /// # Errors
    ///
    /// See above.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.pos != self.buf.len() {
            return self.err("trailing bytes");
        }
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Fails at end of input.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        let Some(&b) = self.buf.get(self.pos) else {
            return self.err("unexpected end of input");
        };
        self.pos += 1;
        Ok(b)
    }

    /// Reads a boolean (`0`/`1` byte).
    ///
    /// # Errors
    ///
    /// Fails on any other byte value.
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => self.err(format!("bad bool byte {t}")),
        }
    }

    /// Reads an unsigned LEB128 varint.
    ///
    /// # Errors
    ///
    /// Fails on truncation or overflow past 64 bits.
    pub fn uvarint(&mut self) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 64 {
                return self.err("varint overflow");
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads a signed (ZigZag) varint.
    ///
    /// # Errors
    ///
    /// See [`Reader::uvarint`].
    pub fn ivarint(&mut self) -> Result<i64, DecodeError> {
        let z = self.uvarint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Reads a sequence length, rejecting implausible values.
    ///
    /// # Errors
    ///
    /// Fails when the length exceeds 2³⁰ (`what` names the field in the
    /// error message).
    pub fn len(&mut self, what: &str) -> Result<usize, DecodeError> {
        let n = self.uvarint()?;
        // Defensive bound: no component should exceed 1G entries.
        if n > (1 << 30) {
            return self.err(format!("{what} length {n} implausible"));
        }
        Ok(n as usize)
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let n = self.len("byte string")?;
        let Some(slice) = self.buf.get(self.pos..self.pos + n) else {
            return self.err("byte string truncated");
        };
        self.pos += n;
        Ok(slice)
    }

    /// Reads a duration (whole nanoseconds).
    ///
    /// # Errors
    ///
    /// See [`Reader::uvarint`].
    pub fn duration(&mut self) -> Result<Duration, DecodeError> {
        Ok(Duration::from_nanos(self.uvarint()?))
    }

    /// Reads an optional duration.
    ///
    /// # Errors
    ///
    /// See [`Reader::bool`] and [`Reader::duration`].
    pub fn opt_duration(&mut self) -> Result<Option<Duration>, DecodeError> {
        Ok(if self.bool()? {
            Some(self.duration()?)
        } else {
            None
        })
    }

    /// Reads an optional unsigned varint.
    ///
    /// # Errors
    ///
    /// See [`Reader::bool`] and [`Reader::uvarint`].
    pub fn opt_uvarint(&mut self) -> Result<Option<u64>, DecodeError> {
        Ok(if self.bool()? {
            Some(self.uvarint()?)
        } else {
            None
        })
    }

    /// Reads a VM value.
    ///
    /// # Errors
    ///
    /// Fails on an unknown tag or truncation.
    pub fn value(&mut self) -> Result<Value, DecodeError> {
        match self.u8()? {
            0 => Ok(Value::Int(self.ivarint()?)),
            1 => Ok(Value::Ptr(None)),
            2 => Ok(Value::Ptr(Some(ObjId(self.uvarint()? as u32)))),
            t => self.err(format!("bad value tag {t}")),
        }
    }

    /// Reads a program counter.
    ///
    /// # Errors
    ///
    /// See [`Reader::uvarint`].
    pub fn pc(&mut self) -> Result<Pc, DecodeError> {
        let func = FuncId(self.uvarint()? as u32);
        let stmt = StmtId(self.uvarint()? as u32);
        Ok(Pc::new(func, stmt))
    }

    /// Reads an optional program counter.
    ///
    /// # Errors
    ///
    /// See [`Reader::bool`] and [`Reader::pc`].
    pub fn opt_pc(&mut self) -> Result<Option<Pc>, DecodeError> {
        Ok(if self.bool()? { Some(self.pc()?) } else { None })
    }

    /// Reads a failure record.
    ///
    /// # Errors
    ///
    /// Fails on an unknown kind tag or truncation.
    pub fn failure(&mut self) -> Result<Failure, DecodeError> {
        let tag = self.u8()?;
        let Some(kind) = failure_kind_from_tag(tag) else {
            return self.err(format!("bad failure kind tag {tag}"));
        };
        let pc = self.pc()?;
        let thread = ThreadId(self.uvarint()? as u32);
        let fault = if self.bool()? {
            let tag = self.u8()?;
            let Some(kind) = fault_kind_from_tag(tag) else {
                return self.err(format!("bad fault kind tag {tag}"));
            };
            let nth = self.uvarint()? as u32;
            Some(InjectedFault { kind, nth })
        } else {
            None
        };
        Ok(Failure {
            kind,
            pc,
            thread,
            fault,
        })
    }

    /// Reads a memory location.
    ///
    /// # Errors
    ///
    /// Fails on an unknown shape tag or truncation.
    pub fn memloc(&mut self) -> Result<MemLoc, DecodeError> {
        match self.u8()? {
            0 => Ok(MemLoc::Global(GlobalId(self.uvarint()? as u32))),
            1 => Ok(MemLoc::GlobalElem(
                GlobalId(self.uvarint()? as u32),
                self.uvarint()? as u32,
            )),
            2 => Ok(MemLoc::Heap(
                ObjId(self.uvarint()? as u32),
                self.uvarint()? as u32,
            )),
            3 => Ok(MemLoc::Local {
                tid: ThreadId(self.uvarint()? as u32),
                frame: self.uvarint()?,
                local: LocalId(self.uvarint()? as u32),
            }),
            t => self.err(format!("bad memloc tag {t}")),
        }
    }

    /// Reads a synchronization-operation kind.
    ///
    /// # Errors
    ///
    /// Fails on an unknown kind tag or truncation.
    pub fn sync_kind(&mut self) -> Result<SyncKind, DecodeError> {
        match self.u8()? {
            0 => Ok(SyncKind::Acquire(LockId(self.uvarint()? as u32))),
            1 => Ok(SyncKind::Release(LockId(self.uvarint()? as u32))),
            2 => Ok(SyncKind::Spawn(ThreadId(self.uvarint()? as u32))),
            3 => Ok(SyncKind::Join(ThreadId(self.uvarint()? as u32))),
            4 => Ok(SyncKind::Flush),
            t => self.err(format!("bad sync kind tag {t}")),
        }
    }

    /// Reads one dynamic event.
    ///
    /// # Errors
    ///
    /// Fails on an unknown event tag or truncation.
    pub fn event(&mut self) -> Result<Event, DecodeError> {
        match self.u8()? {
            0 => Ok(Event::Stmt {
                tid: ThreadId(self.uvarint()? as u32),
                pc: self.pc()?,
                cost: self.u8()?,
            }),
            1 => Ok(Event::Branch {
                tid: ThreadId(self.uvarint()? as u32),
                pc: self.pc()?,
                outcome: self.bool()?,
            }),
            2 => Ok(Event::Read {
                tid: ThreadId(self.uvarint()? as u32),
                pc: self.pc()?,
                loc: self.memloc()?,
                value: self.value()?,
            }),
            3 => Ok(Event::Write {
                tid: ThreadId(self.uvarint()? as u32),
                pc: self.pc()?,
                loc: self.memloc()?,
                value: self.value()?,
            }),
            4 => Ok(Event::StoreBuffered {
                tid: ThreadId(self.uvarint()? as u32),
                pc: self.pc()?,
                loc: self.memloc()?,
                value: self.value()?,
            }),
            5 => Ok(Event::StoreFlushed {
                tid: ThreadId(self.uvarint()? as u32),
                pc: self.pc()?,
                loc: self.memloc()?,
                value: self.value()?,
            }),
            6 => Ok(Event::FuncEnter {
                tid: ThreadId(self.uvarint()? as u32),
                func: FuncId(self.uvarint()? as u32),
                frame: self.uvarint()?,
            }),
            7 => Ok(Event::FuncExit {
                tid: ThreadId(self.uvarint()? as u32),
                func: FuncId(self.uvarint()? as u32),
                frame: self.uvarint()?,
            }),
            8 => Ok(Event::Sync {
                tid: ThreadId(self.uvarint()? as u32),
                pc: self.pc()?,
                kind: self.sync_kind()?,
                seq: self.uvarint()? as u32,
            }),
            9 => Ok(Event::ThreadStart {
                tid: ThreadId(self.uvarint()? as u32),
                func: FuncId(self.uvarint()? as u32),
            }),
            10 => Ok(Event::ThreadEnd {
                tid: ThreadId(self.uvarint()? as u32),
            }),
            11 => Ok(Event::Output {
                tid: ThreadId(self.uvarint()? as u32),
                value: self.value()?,
            }),
            12 => Ok(Event::LoopEnter {
                tid: ThreadId(self.uvarint()? as u32),
                pc: self.pc()?,
                loop_id: LoopId(self.uvarint()? as u32),
            }),
            13 => Ok(Event::LoopIter {
                tid: ThreadId(self.uvarint()? as u32),
                pc: self.pc()?,
                loop_id: LoopId(self.uvarint()? as u32),
                count: self.ivarint()?,
            }),
            14 => Ok(Event::Crash {
                failure: self.failure()?,
            }),
            t => self.err(format!("bad event tag {t}")),
        }
    }

    /// Reads a content hash.
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn hash(&mut self) -> Result<ContentHash, DecodeError> {
        let Some(slice) = self.buf.get(self.pos..self.pos + 16) else {
            return self.err("content hash truncated");
        };
        let mut bytes = [0u8; 16];
        bytes.copy_from_slice(slice);
        self.pos += 16;
        Ok(ContentHash::from_le_bytes(bytes))
    }
}

/// Magic prefix of a segmented container.
const SEG_MAGIC: &[u8; 4] = b"MCSG";
/// Magic suffix closing a segmented container's fixed-width trailer.
const SEG_TRAILER_MAGIC: &[u8; 4] = b"MCSE";
/// Segmented-container format version.
const SEG_VERSION: u8 = 1;
/// Bytes of the fixed-width trailer: 8-byte LE footer offset + magic.
const SEG_TRAILER_LEN: usize = 8 + 4;

/// 64-bit integrity checksum of the segmented container: the xor-folded
/// FNV-1a 128 digest (the same fold [`ContentHasher`]'s
/// `std::hash::Hasher::finish` uses).
fn checksum64(bytes: &[u8]) -> u64 {
    let h = ContentHash::of(bytes).0;
    (h as u64) ^ ((h >> 64) as u64)
}

/// Incrementally builds a [`SegmentedBytes`] container from a byte
/// stream.
///
/// Input bytes are buffered until a full frame (`frame_size` bytes)
/// accumulates, then sealed as one segment — so a producer streaming
/// through a `SegmentWriter` never holds more than one frame of
/// unsealed payload beyond the container itself.
#[derive(Debug)]
pub struct SegmentWriter {
    frame_size: usize,
    buf: Vec<u8>,
    /// Per sealed segment: record offset (for the footer index), payload
    /// offset, payload length.
    records: Vec<(u64, usize, usize)>,
    pending: Vec<u8>,
    total_len: u64,
}

impl SegmentWriter {
    /// An empty container with the given frame size (clamped to ≥ 1).
    pub fn new(frame_size: usize) -> SegmentWriter {
        let frame_size = frame_size.max(1);
        let mut w = Writer::new();
        w.raw(SEG_MAGIC);
        w.u8(SEG_VERSION);
        w.uvarint(frame_size as u64);
        SegmentWriter {
            frame_size,
            buf: w.into_bytes(),
            records: Vec::new(),
            pending: Vec::new(),
            total_len: 0,
        }
    }

    /// Logical payload bytes written so far.
    pub fn total_len(&self) -> u64 {
        self.total_len
    }

    /// Appends payload bytes, sealing full frames as they accumulate.
    pub fn write(&mut self, bytes: &[u8]) {
        self.total_len += bytes.len() as u64;
        self.pending.extend_from_slice(bytes);
        while self.pending.len() >= self.frame_size {
            let rest = self.pending.split_off(self.frame_size);
            let frame = std::mem::replace(&mut self.pending, rest);
            self.seal(&frame);
        }
    }

    fn seal(&mut self, payload: &[u8]) {
        let record_off = self.buf.len() as u64;
        let mut w = Writer::new();
        w.uvarint(payload.len() as u64);
        let header_len = w.len();
        w.raw(&checksum64(payload).to_le_bytes());
        w.raw(payload);
        let payload_off = record_off as usize + header_len + 8;
        self.buf.extend_from_slice(&w.into_bytes());
        self.records.push((record_off, payload_off, payload.len()));
    }

    /// Seals the final (possibly short) frame, writes the footer index
    /// and trailer, and yields the finished container.
    pub fn finish(mut self) -> SegmentedBytes {
        if !self.pending.is_empty() {
            let tail = std::mem::take(&mut self.pending);
            self.seal(&tail);
        }
        let footer_offset = self.buf.len() as u64;
        let mut f = Writer::new();
        f.uvarint(self.records.len() as u64);
        for &(record_off, _, len) in &self.records {
            f.uvarint(record_off);
            f.uvarint(len as u64);
        }
        f.uvarint(self.total_len);
        let footer = f.into_bytes();
        let sum = checksum64(&footer);
        self.buf.extend_from_slice(&footer);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf.extend_from_slice(&footer_offset.to_le_bytes());
        self.buf.extend_from_slice(SEG_TRAILER_MAGIC);
        SegmentedBytes {
            bytes: self.buf,
            frame_size: self.frame_size,
            segments: self
                .records
                .into_iter()
                .map(|(_, payload_off, len)| (payload_off, len))
                .collect(),
            total_len: self.total_len,
        }
    }
}

/// A byte stream packaged into fixed-size, independently checksummed
/// frames with a footer index for O(1) range seek.
///
/// Layout: `MCSG` magic, version, frame-size varint; then one record per
/// segment (payload-length varint, 8-byte LE FNV-64 checksum, payload);
/// then a footer (segment count, per-segment record offset + length,
/// total payload length) followed by its own 8-byte checksum; finally a
/// fixed-width trailer (8-byte LE footer offset + `MCSE` magic).
///
/// Every segment except the last is exactly the frame size, so the
/// segment holding logical offset `o` is `o / frame_size` — no scan.
/// [`SegmentedBytes::parse`] validates only the header, footer, and
/// trailer; per-segment checksums are verified lazily when a range is
/// first read ([`SegmentedBytes::read_range`]), which is what lets an
/// artifact store rehydrate one entry out of a multi-megabyte snapshot
/// without touching — or verifying — the rest. Truncating the container
/// anywhere loses the trailer (or leaves a footer whose checksum or
/// recorded extent no longer matches), so every prefix fails closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentedBytes {
    bytes: Vec<u8>,
    frame_size: usize,
    /// `(absolute payload offset, payload length)` per segment.
    segments: Vec<(usize, usize)>,
    total_len: u64,
}

impl SegmentedBytes {
    /// Packages a fully materialized payload (convenience over
    /// [`SegmentWriter`]).
    pub fn from_payload(payload: &[u8], frame_size: usize) -> SegmentedBytes {
        let mut w = SegmentWriter::new(frame_size);
        w.write(payload);
        w.finish()
    }

    /// Parses a container, validating the header, footer index, and
    /// trailer — but *not* the per-segment payload checksums, which are
    /// verified lazily on first read. Use
    /// [`SegmentedBytes::parse_verified`] to verify everything up front.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on any truncated, reordered, or inconsistent
    /// framing.
    pub fn parse(bytes: Vec<u8>) -> Result<SegmentedBytes, DecodeError> {
        let fail = |offset: usize, msg: &str| DecodeError {
            msg: msg.to_string(),
            offset,
        };
        if bytes.len() < SEG_TRAILER_LEN {
            return Err(fail(bytes.len(), "segmented container too short"));
        }
        if &bytes[bytes.len() - 4..] != SEG_TRAILER_MAGIC {
            return Err(fail(bytes.len() - 4, "bad segmented trailer magic"));
        }
        let off_at = bytes.len() - SEG_TRAILER_LEN;
        let footer_offset =
            u64::from_le_bytes(bytes[off_at..off_at + 8].try_into().expect("8 bytes")) as usize;

        let mut r = Reader::new(&bytes);
        r.expect_magic(SEG_MAGIC)?;
        let version = r.u8()?;
        if version != SEG_VERSION {
            return r.err(format!("unsupported segmented version {version}"));
        }
        let frame_size = r.uvarint()? as usize;
        if frame_size == 0 {
            return r.err("zero segment frame size");
        }
        let header_end = r.pos();

        // Footer body sits between `footer_offset` and its checksum,
        // which the fixed-width trailer follows immediately.
        if bytes.len() < SEG_TRAILER_LEN + 8 || footer_offset > bytes.len() - SEG_TRAILER_LEN - 8 {
            return Err(fail(off_at, "footer offset out of bounds"));
        }
        if footer_offset < header_end {
            return Err(fail(off_at, "footer offset inside header"));
        }
        let body_end = bytes.len() - SEG_TRAILER_LEN - 8;
        let footer = &bytes[footer_offset..body_end];
        let stored = u64::from_le_bytes(bytes[body_end..body_end + 8].try_into().expect("8 bytes"));
        if checksum64(footer) != stored {
            return Err(fail(footer_offset, "footer checksum mismatch"));
        }

        let mut fr = Reader::new(footer);
        let count = fr.len("segments")?;
        let mut segments = Vec::with_capacity(count.min(65536));
        let mut expect_off = header_end;
        let mut total = 0u64;
        for i in 0..count {
            let record_off = fr.uvarint()? as usize;
            let len = fr.uvarint()? as usize;
            if record_off != expect_off {
                return Err(fail(record_off, "segment record out of place"));
            }
            if i + 1 < count && len != frame_size {
                return Err(fail(record_off, "interior segment not frame-sized"));
            }
            if len == 0 || len > frame_size {
                return Err(fail(record_off, "bad segment length"));
            }
            // Re-read the record header so the payload offset comes from
            // the record itself, cross-checked against the footer.
            let mut sr = Reader::new(&bytes[record_off..footer_offset]);
            let rec_len = sr.uvarint()? as usize;
            if rec_len != len {
                return Err(fail(record_off, "segment length disagrees with footer"));
            }
            let payload_off = record_off + sr.pos() + 8;
            if payload_off + len > footer_offset {
                return Err(fail(record_off, "segment payload overruns footer"));
            }
            segments.push((payload_off, len));
            expect_off = payload_off + len;
            total += len as u64;
        }
        let total_len = fr.uvarint()?;
        fr.finish()?;
        if total != total_len {
            return Err(fail(footer_offset, "segment lengths disagree with total"));
        }
        if expect_off != footer_offset {
            return Err(fail(expect_off, "gap between segments and footer"));
        }
        Ok(SegmentedBytes {
            bytes,
            frame_size,
            segments,
            total_len,
        })
    }

    /// Parses a container and eagerly verifies every segment checksum.
    ///
    /// # Errors
    ///
    /// See [`SegmentedBytes::parse`]; additionally fails on any corrupt
    /// segment payload.
    pub fn parse_verified(bytes: Vec<u8>) -> Result<SegmentedBytes, DecodeError> {
        let seg = SegmentedBytes::parse(bytes)?;
        for i in 0..seg.segments.len() {
            seg.verify_segment(i)?;
        }
        Ok(seg)
    }

    /// Total logical payload length.
    pub fn total_len(&self) -> u64 {
        self.total_len
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The frame size segments were sealed at.
    pub fn frame_size(&self) -> usize {
        self.frame_size
    }

    /// The full container bytes (the shippable representation).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the container, yielding its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Checks segment `i`'s payload against its stored checksum.
    ///
    /// # Errors
    ///
    /// Fails on an out-of-range index or a checksum mismatch.
    pub fn verify_segment(&self, i: usize) -> Result<(), DecodeError> {
        let Some(&(payload_off, len)) = self.segments.get(i) else {
            return Err(DecodeError {
                msg: format!("segment {i} out of range"),
                offset: self.bytes.len(),
            });
        };
        let stored = u64::from_le_bytes(
            self.bytes[payload_off - 8..payload_off]
                .try_into()
                .expect("8 bytes"),
        );
        if checksum64(&self.bytes[payload_off..payload_off + len]) != stored {
            return Err(DecodeError {
                msg: format!("segment {i} checksum mismatch"),
                offset: payload_off,
            });
        }
        Ok(())
    }

    /// Rehydrates `len` payload bytes starting at logical offset
    /// `start`, verifying every touched segment.
    ///
    /// # Errors
    ///
    /// Fails when the range exceeds the payload or a touched segment is
    /// corrupt.
    pub fn read_range(&self, start: usize, len: usize) -> Result<Vec<u8>, DecodeError> {
        self.read_range_with(start, len, |_| true)
    }

    /// Like [`SegmentedBytes::read_range`], but asks `needs_verify` per
    /// touched segment index whether its checksum must still be checked —
    /// the hook an artifact store uses to verify each segment exactly
    /// once across many range reads.
    ///
    /// # Errors
    ///
    /// See [`SegmentedBytes::read_range`].
    pub fn read_range_with(
        &self,
        start: usize,
        len: usize,
        mut needs_verify: impl FnMut(usize) -> bool,
    ) -> Result<Vec<u8>, DecodeError> {
        let end = start.saturating_add(len);
        if end as u64 > self.total_len {
            return Err(DecodeError {
                msg: format!(
                    "range {start}..{end} out of bounds (payload is {} bytes)",
                    self.total_len
                ),
                offset: start,
            });
        }
        if len == 0 {
            return Ok(Vec::new());
        }
        let first = start / self.frame_size;
        let last = (end - 1) / self.frame_size;
        let mut out = Vec::with_capacity(len);
        for i in first..=last {
            if needs_verify(i) {
                self.verify_segment(i)?;
            }
            let (payload_off, seg_len) = self.segments[i];
            let logical = i * self.frame_size;
            let from = start.max(logical) - logical;
            let to = end.min(logical + seg_len) - logical;
            out.extend_from_slice(&self.bytes[payload_off + from..payload_off + to]);
        }
        Ok(out)
    }
}

fn failure_kind_tag(k: FailureKind) -> u8 {
    match k {
        FailureKind::NullDeref => 0,
        FailureKind::OutOfBounds => 1,
        FailureKind::GlobalOutOfBounds => 2,
        FailureKind::AssertFailed => 3,
        FailureKind::DivByZero => 4,
        FailureKind::TypeConfusion => 5,
        FailureKind::LockMisuse => 6,
        FailureKind::JoinInvalid => 7,
        FailureKind::StackOverflow => 8,
        FailureKind::AllocTooLarge => 9,
        FailureKind::LockTimeout => 10,
    }
}

fn failure_kind_from_tag(t: u8) -> Option<FailureKind> {
    Some(match t {
        0 => FailureKind::NullDeref,
        1 => FailureKind::OutOfBounds,
        2 => FailureKind::GlobalOutOfBounds,
        3 => FailureKind::AssertFailed,
        4 => FailureKind::DivByZero,
        5 => FailureKind::TypeConfusion,
        6 => FailureKind::LockMisuse,
        7 => FailureKind::JoinInvalid,
        8 => FailureKind::StackOverflow,
        9 => FailureKind::AllocTooLarge,
        10 => FailureKind::LockTimeout,
        _ => return None,
    })
}

fn fault_kind_tag(k: FaultKind) -> u8 {
    match k {
        FaultKind::AllocFail => 0,
        FaultKind::LockTimeout => 1,
    }
}

fn fault_kind_from_tag(t: u8) -> Option<FaultKind> {
    Some(match t {
        0 => FaultKind::AllocFail,
        1 => FaultKind::LockTimeout,
        _ => return None,
    })
}

// ---------------------------------------------------------------------
// Static race-summary codec (the `Phase::StaticRace` per-function cache
// unit of `mcr-core`). Lives here, next to the other shared composite
// codecs, so the proptest battery in `tests/codec_roundtrip.rs` covers
// it alongside the dump format.

fn write_access_site(w: &mut Writer, a: &mcr_analysis::AccessSite) {
    w.uvarint(a.stmt.0 as u64);
    match a.target {
        mcr_analysis::AccessTarget::Global(g) => {
            w.u8(0);
            w.uvarint(g.0 as u64);
        }
        mcr_analysis::AccessTarget::SharedHeap => w.u8(1),
        mcr_analysis::AccessTarget::PrivateHeap => w.u8(2),
    }
    w.bool(a.is_write);
}

fn read_access_site(r: &mut Reader<'_>) -> Result<mcr_analysis::AccessSite, DecodeError> {
    let stmt = StmtId(r.uvarint()? as u32);
    let target = match r.u8()? {
        0 => mcr_analysis::AccessTarget::Global(GlobalId(r.uvarint()? as u32)),
        1 => mcr_analysis::AccessTarget::SharedHeap,
        2 => mcr_analysis::AccessTarget::PrivateHeap,
        t => return r.err(format!("bad access target tag {t}")),
    };
    let is_write = r.bool()?;
    Ok(mcr_analysis::AccessSite {
        stmt,
        target,
        is_write,
    })
}

/// Serializes one per-function static race summary
/// ([`mcr_analysis::FuncRaceSummary`]).
pub fn write_race_summary(w: &mut Writer, s: &mcr_analysis::FuncRaceSummary) {
    w.uvarint(s.stmt_count as u64);
    w.bool(s.lock_top);
    w.uvarint(s.locksets.len() as u64);
    for &m in &s.locksets {
        w.uvarint(m);
    }
    w.uvarint(s.spawn_before.len() as u64);
    for &b in &s.spawn_before {
        w.bool(b);
    }
    w.uvarint(s.callees_before.len() as u64);
    for callees in &s.callees_before {
        w.uvarint(callees.len() as u64);
        for c in callees {
            w.uvarint(c.0 as u64);
        }
    }
    w.uvarint(s.accesses.len() as u64);
    for a in &s.accesses {
        write_access_site(w, a);
    }
    w.uvarint(s.releases);
    w.uvarint(s.call_sites.len() as u64);
    for &(stmt, callee) in &s.call_sites {
        w.uvarint(stmt.0 as u64);
        w.uvarint(callee.0 as u64);
    }
    w.uvarint(s.spawn_sites.len() as u64);
    for &(stmt, callee, in_loop) in &s.spawn_sites {
        w.uvarint(stmt.0 as u64);
        w.uvarint(callee.0 as u64);
        w.bool(in_loop);
    }
    w.uvarint(s.acquire_sites.len() as u64);
    for &(stmt, lock) in &s.acquire_sites {
        w.uvarint(stmt.0 as u64);
        w.uvarint(lock.0 as u64);
    }
}

/// Parses one per-function static race summary.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated or malformed input.
pub fn read_race_summary(r: &mut Reader<'_>) -> Result<mcr_analysis::FuncRaceSummary, DecodeError> {
    let stmt_count = r.uvarint()? as u32;
    let lock_top = r.bool()?;
    let n = r.len("locksets")?;
    let mut locksets = Vec::with_capacity(n.min(65536));
    for _ in 0..n {
        locksets.push(r.uvarint()?);
    }
    let n = r.len("spawn-before flags")?;
    let mut spawn_before = Vec::with_capacity(n.min(65536));
    for _ in 0..n {
        spawn_before.push(r.bool()?);
    }
    let n = r.len("callees-before rows")?;
    let mut callees_before = Vec::with_capacity(n.min(65536));
    for _ in 0..n {
        let m = r.len("callees-before entries")?;
        let mut callees = Vec::with_capacity(m.min(65536));
        for _ in 0..m {
            callees.push(FuncId(r.uvarint()? as u32));
        }
        callees_before.push(callees);
    }
    let n = r.len("access sites")?;
    let mut accesses = Vec::with_capacity(n.min(65536));
    for _ in 0..n {
        accesses.push(read_access_site(r)?);
    }
    let releases = r.uvarint()?;
    let n = r.len("call sites")?;
    let mut call_sites = Vec::with_capacity(n.min(65536));
    for _ in 0..n {
        call_sites.push((StmtId(r.uvarint()? as u32), FuncId(r.uvarint()? as u32)));
    }
    let n = r.len("spawn sites")?;
    let mut spawn_sites = Vec::with_capacity(n.min(65536));
    for _ in 0..n {
        spawn_sites.push((
            StmtId(r.uvarint()? as u32),
            FuncId(r.uvarint()? as u32),
            r.bool()?,
        ));
    }
    let n = r.len("acquire sites")?;
    let mut acquire_sites = Vec::with_capacity(n.min(65536));
    for _ in 0..n {
        acquire_sites.push((StmtId(r.uvarint()? as u32), LockId(r.uvarint()? as u32)));
    }
    Ok(mcr_analysis::FuncRaceSummary {
        stmt_count,
        lock_top,
        locksets,
        spawn_before,
        callees_before,
        accesses,
        releases,
        call_sites,
        spawn_sites,
        acquire_sites,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        let mut w = Writer::new();
        w.uvarint(0);
        w.uvarint(u64::MAX);
        w.ivarint(-123456789);
        w.bool(true);
        w.bytes(b"hello");
        w.duration(Duration::from_micros(1234));
        w.opt_duration(None);
        w.opt_uvarint(Some(7));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.uvarint().unwrap(), 0);
        assert_eq!(r.uvarint().unwrap(), u64::MAX);
        assert_eq!(r.ivarint().unwrap(), -123456789);
        assert!(r.bool().unwrap());
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.duration().unwrap(), Duration::from_micros(1234));
        assert_eq!(r.opt_duration().unwrap(), None);
        assert_eq!(r.opt_uvarint().unwrap(), Some(7));
        r.finish().unwrap();
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = Writer::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        r.u8().unwrap();
        let err = r.finish().unwrap_err();
        assert!(err.msg.contains("trailing"), "{err}");
    }

    #[test]
    fn magic_mismatch_rejected() {
        let mut r = Reader::new(b"XYZ");
        assert!(r.expect_magic(b"MCR").is_err());
        let mut r2 = Reader::new(b"MCR");
        r2.expect_magic(b"MCR").unwrap();
        r2.finish().unwrap();
    }

    #[test]
    fn truncated_varint_rejected() {
        // Continuation bit set, then end of input.
        let mut r = Reader::new(&[0x80]);
        assert!(r.uvarint().is_err());
    }

    #[test]
    fn pc_and_failure_round_trip() {
        let pc = Pc::new(FuncId(7), StmtId(13));
        let f = Failure {
            kind: FailureKind::OutOfBounds,
            pc,
            thread: ThreadId(3),
            fault: None,
        };
        let g = Failure {
            kind: FailureKind::LockTimeout,
            pc,
            thread: ThreadId(1),
            fault: Some(InjectedFault {
                kind: FaultKind::LockTimeout,
                nth: 2,
            }),
        };
        let mut w = Writer::new();
        w.pc(pc);
        w.opt_pc(None);
        w.opt_pc(Some(pc));
        w.failure(f);
        w.failure(g);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.pc().unwrap(), pc);
        assert_eq!(r.opt_pc().unwrap(), None);
        assert_eq!(r.opt_pc().unwrap(), Some(pc));
        assert_eq!(r.failure().unwrap(), f);
        assert_eq!(r.failure().unwrap(), g);
        r.finish().unwrap();
    }

    #[test]
    fn bad_failure_kind_rejected() {
        let mut w = Writer::new();
        w.u8(99);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.failure().is_err());
    }

    #[test]
    fn content_hash_is_stable_and_sensitive() {
        let a = ContentHash::of(b"hello");
        let b = ContentHash::of(b"hello");
        let c = ContentHash::of(b"hellp");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(ContentHash::of(b""), ContentHash::of(b"\0"));
        // Streaming equals one-shot.
        let mut h = ContentHasher::new();
        h.update(b"he");
        h.update(b"llo");
        assert_eq!(h.finish128(), a);
        // Wire round-trip.
        assert_eq!(ContentHash::from_le_bytes(a.to_le_bytes()), a);
        let mut w = Writer::new();
        w.hash(a);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.hash().unwrap(), a);
        r.finish().unwrap();
        assert!(Reader::new(&bytes[..15]).hash().is_err());
        // Display is 32 hex digits.
        assert_eq!(a.to_string().len(), 32);
    }

    #[test]
    fn segmented_round_trips_across_shapes() {
        // Empty, sub-frame, exact-multiple, and ragged payloads.
        for (len, frame) in [
            (0usize, 16usize),
            (5, 16),
            (64, 16),
            (70, 16),
            (1, 1),
            (257, 32),
        ] {
            let payload: Vec<u8> = (0..len).map(|i| (i * 7 + 3) as u8).collect();
            let seg = SegmentedBytes::from_payload(&payload, frame);
            assert_eq!(seg.total_len(), len as u64);
            assert_eq!(seg.segment_count(), len.div_ceil(frame));
            let parsed = SegmentedBytes::parse(seg.as_bytes().to_vec()).unwrap();
            assert_eq!(parsed, seg);
            SegmentedBytes::parse_verified(seg.as_bytes().to_vec()).unwrap();
            assert_eq!(seg.read_range(0, len).unwrap(), payload);
        }
    }

    #[test]
    fn segmented_streaming_writes_equal_one_shot() {
        let payload: Vec<u8> = (0..1000u32).flat_map(u32::to_le_bytes).collect();
        let one_shot = SegmentedBytes::from_payload(&payload, 64);
        let mut w = SegmentWriter::new(64);
        for chunk in payload.chunks(13) {
            w.write(chunk);
        }
        let streamed = w.finish();
        assert_eq!(streamed.as_bytes(), one_shot.as_bytes());
        assert_eq!(streamed.total_len(), payload.len() as u64);
    }

    #[test]
    fn segmented_range_reads_match_the_payload() {
        let payload: Vec<u8> = (0..300).map(|i| (i % 251) as u8).collect();
        let seg = SegmentedBytes::from_payload(&payload, 32);
        for (start, len) in [
            (0, 300),
            (0, 1),
            (299, 1),
            (31, 2),
            (32, 32),
            (100, 150),
            (40, 0),
        ] {
            assert_eq!(
                seg.read_range(start, len).unwrap(),
                payload[start..start + len],
                "range {start}+{len}"
            );
        }
        assert!(seg.read_range(299, 2).is_err(), "overrun rejected");
        assert!(
            seg.read_range(301, 0).is_err(),
            "out-of-bounds start rejected"
        );
    }

    #[test]
    fn segmented_every_prefix_fails_closed() {
        let payload: Vec<u8> = (0..200).map(|i| i as u8).collect();
        let seg = SegmentedBytes::from_payload(&payload, 32);
        let bytes = seg.as_bytes();
        for cut in 0..bytes.len() {
            assert!(
                SegmentedBytes::parse(bytes[..cut].to_vec()).is_err(),
                "parse succeeded on {cut}-byte prefix"
            );
        }
    }

    #[test]
    fn segmented_bit_flips_are_detected() {
        let payload: Vec<u8> = (0..100).map(|i| i as u8).collect();
        let seg = SegmentedBytes::from_payload(&payload, 32);
        let bytes = seg.as_bytes();
        for at in 0..bytes.len() {
            let mut corrupt = bytes.to_vec();
            corrupt[at] ^= 0x40;
            // Either structural parsing or eager payload verification
            // must notice any single-bit flip.
            assert!(
                SegmentedBytes::parse_verified(corrupt).is_err(),
                "flip at byte {at} went unnoticed"
            );
        }
    }

    #[test]
    fn segmented_lazy_verification_is_per_segment() {
        let payload: Vec<u8> = (0..128).map(|i| i as u8).collect();
        let seg = SegmentedBytes::from_payload(&payload, 32);
        // Corrupt the last segment's payload in place.
        let mut bytes = seg.as_bytes().to_vec();
        let (payload_off, _) = seg.segments[3];
        bytes[payload_off] ^= 0xff;
        let corrupt = SegmentedBytes::parse(bytes).unwrap();
        // Lazy parse succeeds; untouched ranges still read fine...
        assert_eq!(corrupt.read_range(0, 96).unwrap(), payload[..96]);
        // ...but touching the corrupt segment fails closed,
        let err = corrupt.read_range(96, 32).unwrap_err();
        assert!(err.msg.contains("checksum"), "{err}");
        // and a caller that claims the segment is already verified gets
        // the raw (corrupt) bytes — the contract the store's
        // verified-bitmap optimization rests on.
        let mut asked = Vec::new();
        let skipped = corrupt
            .read_range_with(96, 32, |i| {
                asked.push(i);
                false
            })
            .unwrap();
        assert_eq!(asked, vec![3]);
        assert_ne!(skipped, payload[96..128]);
    }

    #[test]
    fn content_hasher_works_as_std_hasher() {
        use std::hash::{Hash, Hasher};
        let mut h1 = ContentHasher::new();
        let mut h2 = ContentHasher::new();
        ("abc", 7u32).hash(&mut h1);
        ("abc", 7u32).hash(&mut h2);
        assert_eq!(h1.finish128(), h2.finish128());
        assert_eq!(h1.finish(), h2.finish());
        let mut h3 = ContentHasher::new();
        ("abd", 7u32).hash(&mut h3);
        assert_ne!(h1.finish128(), h3.finish128());
    }
}
