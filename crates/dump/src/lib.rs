//! # mcr-dump — core dumps: capture, encoding, traversal, comparison
//!
//! The paper's pipeline starts and ends with core dumps: a *failure dump*
//! from the multicore production run and an *aligned dump* from the
//! deterministic re-execution are traversed Boehm-GC-style along
//! **reference paths** and compared; the shared variables whose values
//! differ — the **critical shared variables (CSVs)** — drive the schedule
//! search.
//!
//! * [`CoreDump`] — complete snapshot (registers, stacks with loop
//!   counters, globals, heap, locks),
//! * [`codec`] — stable binary format, so dump sizes and parsing costs
//!   are measurable (Tables 3 and 6),
//! * [`wire`] — the codec's reusable varint primitives, shared with the
//!   phase-artifact formats of `mcr-core`'s resumable sessions, plus the
//!   [`ContentHash`] identity the content-addressed artifact stores key
//!   on,
//! * [`refpath`] — reachability traversal producing cross-run variable
//!   identities,
//! * [`DumpDiff`] — comparison and CSV identification (§4).
//!
//! # Examples
//!
//! ```
//! use mcr_dump::{codec, CoreDump, DumpDiff, DumpReason};
//! use mcr_vm::{run, DeterministicScheduler, NullObserver, ThreadId, Vm};
//!
//! let program = mcr_lang::compile("global x: int; fn main() { x = 1; }")?;
//! let mut vm = Vm::new(&program, &[]);
//! run(&mut vm, &mut DeterministicScheduler::new(), &mut NullObserver, 1_000);
//! let dump = CoreDump::capture(&vm, ThreadId(0), DumpReason::Manual);
//! let bytes = mcr_dump::encode(&dump);
//! assert_eq!(mcr_dump::decode(&bytes).unwrap(), dump);
//! assert_eq!(DumpDiff::compare(&dump, &dump).diff_count(), 0);
//! # Ok::<(), mcr_lang::LangError>(())
//! ```

#![warn(missing_docs)]

pub mod codec;
pub mod diff;
#[allow(clippy::module_inception)]
pub mod dump;
pub mod refpath;
pub mod wire;

pub use codec::{decode, decode_segmented, encode, encode_segmented, DecodeError, DUMP_FRAME_SIZE};
pub use diff::{DumpDiff, ValueDiff};
pub use dump::{CoreDump, DumpReason, FrameImage, ThreadImage};
pub use refpath::{
    reachable_vars, resolve_loc, PathRoot, PathValue, RefPath, ResolvedVar, TraverseLimits, VarMap,
};
pub use wire::{ContentHash, ContentHasher, SegmentWriter, SegmentedBytes};
