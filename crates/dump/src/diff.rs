//! Dump comparison and critical shared variables.
//!
//! The heart of the paper's §4: compare the failure dump against the dump
//! taken at the aligned point of the passing run, over all variables with
//! *identical reference paths* in the two dumps. Shared variables whose
//! values differ are the **critical shared variables (CSVs)** — "they
//! reflect the outcome of schedule differences \[and\] are also the reason
//! why a failure occurs in one run but not the other."

use crate::dump::CoreDump;
use crate::refpath::{reachable_vars, PathValue, RefPath, TraverseLimits, VarMap};

/// One value difference between two dumps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueDiff {
    /// The variable (by reference path).
    pub path: RefPath,
    /// Value in the first (failure) dump.
    pub a: PathValue,
    /// Value in the second (aligned/passing) dump.
    pub b: PathValue,
}

/// Result of comparing two dumps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DumpDiff {
    /// Number of variables reachable in the first dump (paper Table 3,
    /// "vars").
    pub vars_a: usize,
    /// Number of variables reachable in the second dump.
    pub vars_b: usize,
    /// Variables with identical reference paths in both dumps.
    pub compared: usize,
    /// Shared variables compared (paper Table 3, "shared").
    pub shared_compared: usize,
    /// All value differences (paper Table 3, "diffs").
    pub diffs: Vec<ValueDiff>,
    /// The critical shared variables: shared paths with differing values
    /// (paper Table 3, "CSV").
    pub csvs: Vec<RefPath>,
}

impl DumpDiff {
    /// Compares two dumps with default traversal limits.
    pub fn compare(a: &CoreDump, b: &CoreDump) -> DumpDiff {
        Self::compare_with(a, b, TraverseLimits::default())
    }

    /// Compares two dumps with explicit traversal limits.
    pub fn compare_with(a: &CoreDump, b: &CoreDump, limits: TraverseLimits) -> DumpDiff {
        let va = reachable_vars(a, limits);
        let vb = reachable_vars(b, limits);
        Self::compare_maps(&va, &vb)
    }

    /// Compares two precomputed variable maps.
    pub fn compare_maps(va: &VarMap, vb: &VarMap) -> DumpDiff {
        let mut compared = 0usize;
        let mut shared_compared = 0usize;
        let mut diffs = Vec::new();
        let mut csvs = Vec::new();
        for (path, &value_a) in va {
            let Some(&value_b) = vb.get(path) else {
                continue;
            };
            compared += 1;
            let shared = path.is_shared();
            if shared {
                shared_compared += 1;
            }
            if value_a != value_b {
                if shared {
                    csvs.push(path.clone());
                }
                diffs.push(ValueDiff {
                    path: path.clone(),
                    a: value_a,
                    b: value_b,
                });
            }
        }
        DumpDiff {
            vars_a: va.len(),
            vars_b: vb.len(),
            compared,
            shared_compared,
            diffs,
            csvs,
        }
    }

    /// Number of differing variables.
    pub fn diff_count(&self) -> usize {
        self.diffs.len()
    }

    /// Number of critical shared variables.
    pub fn csv_count(&self) -> usize {
        self.csvs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dump::DumpReason;
    use mcr_vm::{run, DeterministicScheduler, NullObserver, ThreadId, Vm};

    fn dump_with_input(src: &str, input: &[i64]) -> (mcr_lang::Program, CoreDump) {
        let p = mcr_lang::compile(src).unwrap();
        let mut vm = Vm::new(&p, input);
        let mut s = DeterministicScheduler::new();
        run(&mut vm, &mut s, &mut NullObserver, 100_000);
        let focus = vm.failure().map_or(ThreadId(0), |f| f.thread);
        let reason = vm.failure().map_or(DumpReason::Manual, DumpReason::Failure);
        let d = crate::dump::CoreDump::capture(&vm, focus, reason);
        (p, d)
    }

    // Ends in a deterministic crash so the focus thread's frame (and its
    // locals) are still live in the dump, as in a real failure dump.
    const PROG: &str = r#"
        global input: [int; 2];
        global x: int;
        global y: int;
        global q: ptr;
        fn main() {
            var local_only;
            var z;
            x = input[0];
            y = 5;
            local_only = input[0];
            q = alloc(2);
            q[0] = input[1];
            z = null;
            z[0] = 1;
        }
    "#;

    #[test]
    fn identical_runs_have_no_diffs() {
        let (_, a) = dump_with_input(PROG, &[1, 2]);
        let (_, b) = dump_with_input(PROG, &[1, 2]);
        let d = DumpDiff::compare(&a, &b);
        assert_eq!(d.diff_count(), 0);
        assert_eq!(d.csv_count(), 0);
        assert!(d.compared > 0);
        assert!(d.shared_compared > 0);
        assert!(d.shared_compared < d.compared, "locals are compared too");
    }

    #[test]
    fn differing_shared_values_are_csvs() {
        let (p, a) = dump_with_input(PROG, &[1, 2]);
        let (_, b) = dump_with_input(PROG, &[9, 2]);
        let d = DumpDiff::compare(&a, &b);
        // x differs (shared), local_only differs (private), input[0]
        // differs (shared).
        assert!(d.diff_count() >= 3, "diffs: {:?}", d.diffs);
        let x = p.global_by_name("x").unwrap();
        assert!(d
            .csvs
            .iter()
            .any(|c| c.root == crate::refpath::PathRoot::Global(x)));
        // Every CSV is shared.
        assert!(d.csvs.iter().all(crate::refpath::RefPath::is_shared));
        // The private local difference is a diff but not a CSV.
        assert!(d.diff_count() > d.csv_count());
    }

    #[test]
    fn heap_differences_through_global_pointers_are_csvs() {
        let (_, a) = dump_with_input(PROG, &[1, 2]);
        let (_, b) = dump_with_input(PROG, &[1, 7]);
        let d = DumpDiff::compare(&a, &b);
        assert!(
            d.csvs.iter().any(|c| !c.steps.is_empty()),
            "expected a heap CSV, got {:?}",
            d.csvs
        );
    }

    #[test]
    fn diff_is_symmetric_in_count() {
        let (_, a) = dump_with_input(PROG, &[1, 2]);
        let (_, b) = dump_with_input(PROG, &[3, 4]);
        let ab = DumpDiff::compare(&a, &b);
        let ba = DumpDiff::compare(&b, &a);
        assert_eq!(ab.diff_count(), ba.diff_count());
        assert_eq!(ab.csv_count(), ba.csv_count());
    }
}
