//! Core dump capture.
//!
//! A [`CoreDump`] is a complete snapshot of a run's state, mirroring what
//! the paper assumes of an OS core dump (§3): "register values, the
//! current calling context, the virtual address space, and so on" — here:
//! per-thread register files (pc, last value, retired instructions), full
//! call stacks *including the loop counters* the production
//! instrumentation maintains, all global storage, the entire heap, and
//! lock ownership.

use mcr_lang::{FuncId, StmtId};
use mcr_vm::{BufferedStore, Failure, GSlot, ThreadId, ThreadState, Value, Vm};

/// Why a dump was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DumpReason {
    /// The run crashed; this is a failure dump.
    Failure(Failure),
    /// Captured at the aligned point of a passing run.
    Aligned,
    /// Captured on demand.
    Manual,
}

/// Snapshot of one stack frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameImage {
    /// Function of the frame.
    pub func: FuncId,
    /// Statement the frame is at (call site for outer frames — the
    /// "calling context" of the paper).
    pub pc: StmtId,
    /// Local slot values.
    pub locals: Vec<Value>,
    /// Loop counter values (the paper's §3.2 instrumentation output;
    /// `getLoopCount` in Algorithm 1 reads these).
    pub loop_counters: Vec<i64>,
}

/// Snapshot of one thread.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadImage {
    /// Thread id.
    pub id: ThreadId,
    /// Entry function.
    pub entry: FuncId,
    /// Whether the thread was ready / done / crashed.
    pub state: ThreadState,
    /// Call stack, outermost first.
    pub frames: Vec<FrameImage>,
    /// Instructions retired (the hardware counter of Table 5).
    pub instrs: u64,
    /// Register file: most recently computed value.
    pub last_value: Value,
    /// Synchronization operations executed.
    pub sync_seq: u32,
    /// Unflushed store-buffer entries (TSO mode), oldest first. A crash
    /// freezes the buffer, so a failure dump can show a write the program
    /// performed that never became globally visible — empty under SC.
    pub store_buffer: Vec<BufferedStore>,
}

impl ThreadImage {
    /// The innermost frame, if the thread was live.
    pub fn top(&self) -> Option<&FrameImage> {
        self.frames.last()
    }
}

/// A complete program-state snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreDump {
    /// Why the dump exists.
    pub reason: DumpReason,
    /// The focus (failing) thread.
    pub focus: ThreadId,
    /// Global storage.
    pub globals: Vec<GSlot>,
    /// Heap objects (`None` marks never-allocated / freed ids).
    pub heap: Vec<Option<Vec<Value>>>,
    /// All threads.
    pub threads: Vec<ThreadImage>,
    /// Lock owners.
    pub locks: Vec<Option<ThreadId>>,
    /// Statements executed when the dump was taken.
    pub steps: u64,
}

impl CoreDump {
    /// Captures the state of `vm`, focused on `focus` (the failing thread
    /// for failure dumps; the aligned thread for aligned dumps).
    pub fn capture(vm: &Vm<'_>, focus: ThreadId, reason: DumpReason) -> CoreDump {
        let heap: Vec<Option<Vec<Value>>> = (0..vm.heap_len())
            .map(|i| {
                let id = mcr_vm::ObjId(i as u32);
                // Rebuild each object slot by slot through the public API.
                let mut slots = Vec::new();
                let mut k = 0u32;
                while let Some(v) = vm.heap_get(id, k) {
                    slots.push(v);
                    k += 1;
                }
                if vm.heap_get(id, 0).is_some() || is_empty_alive(vm, id) {
                    Some(slots)
                } else {
                    None
                }
            })
            .collect();

        CoreDump {
            reason,
            focus,
            globals: vm.globals().to_vec(),
            heap,
            threads: vm
                .threads()
                .iter()
                .map(|t| ThreadImage {
                    id: t.id,
                    entry: t.entry,
                    state: t.state,
                    frames: t
                        .frames
                        .iter()
                        .map(|f| FrameImage {
                            func: f.func,
                            pc: f.pc,
                            locals: f.locals.clone(),
                            loop_counters: f.loop_counters.clone(),
                        })
                        .collect(),
                    instrs: t.instrs,
                    last_value: t.last_value,
                    sync_seq: t.sync_seq,
                    store_buffer: t.store_buffer.clone(),
                })
                .collect(),
            locks: vm.lock_owners().to_vec(),
            steps: vm.steps(),
        }
    }

    /// Captures a failure dump from a crashed VM.
    ///
    /// Returns `None` when the VM has not crashed.
    pub fn capture_failure(vm: &Vm<'_>) -> Option<CoreDump> {
        let failure = vm.failure()?;
        Some(Self::capture(
            vm,
            failure.thread,
            DumpReason::Failure(failure),
        ))
    }

    /// The failure recorded in this dump, if it is a failure dump.
    pub fn failure(&self) -> Option<Failure> {
        match self.reason {
            DumpReason::Failure(f) => Some(f),
            _ => None,
        }
    }

    /// The focus thread's snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the focus id is out of range (corrupt dump).
    pub fn focus_thread(&self) -> &ThreadImage {
        &self.threads[self.focus.0 as usize]
    }

    /// The calling context of the focus thread: `(call site, callee)`
    /// pairs from outermost to innermost, ending at the focus pc — the
    /// paper's `context` input to Algorithm 1.
    pub fn focus_context(&self) -> Vec<(FuncId, StmtId)> {
        self.focus_thread()
            .frames
            .iter()
            .map(|f| (f.func, f.pc))
            .collect()
    }
}

/// Distinguishes empty-but-allocated objects from unallocated ids. All
/// objects in the current VM stay allocated, so any id below `heap_len`
/// that reports no slot 0 is an empty allocation.
fn is_empty_alive(_vm: &Vm<'_>, _id: mcr_vm::ObjId) -> bool {
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_vm::{run, DeterministicScheduler, NullObserver, Vm};

    #[test]
    fn capture_failure_dump_has_context_and_counters() {
        let src = r#"
            global n: int;
            fn crashit(p) { p[0] = 1; }
            fn main() {
                var i; var p;
                while (i < 3) {
                    i = i + 1;
                }
                p = null;
                crashit(p);
            }
        "#;
        let p = mcr_lang::compile(src).unwrap();
        let mut vm = Vm::new(&p, &[]);
        let mut s = DeterministicScheduler::new();
        run(&mut vm, &mut s, &mut NullObserver, 100_000);
        let dump = CoreDump::capture_failure(&vm).expect("crashed");
        assert!(dump.failure().is_some());
        let ctx = dump.focus_context();
        assert_eq!(ctx.len(), 2, "main -> crashit");
        // The outer frame's pc is the call site of crashit.
        let main_frame = &dump.focus_thread().frames[0];
        assert!(matches!(
            p.func(main_frame.func).inst(main_frame.pc),
            mcr_lang::Inst::Call { .. }
        ));
        // The while-loop counter reached 3 and is in the dump.
        assert_eq!(main_frame.loop_counters, vec![3]);
    }

    #[test]
    fn capture_failure_requires_crash() {
        let p = mcr_lang::compile("fn main() { }").unwrap();
        let mut vm = Vm::new(&p, &[]);
        let mut s = DeterministicScheduler::new();
        run(&mut vm, &mut s, &mut NullObserver, 1000);
        assert!(CoreDump::capture_failure(&vm).is_none());
    }

    #[test]
    fn heap_snapshot_is_complete() {
        let p = mcr_lang::compile(
            "global keep: ptr; fn main() { var p; p = alloc(2); p[0] = 5; p[1] = 6; keep = p; }",
        )
        .unwrap();
        let mut vm = Vm::new(&p, &[]);
        let mut s = DeterministicScheduler::new();
        run(&mut vm, &mut s, &mut NullObserver, 1000);
        let dump = CoreDump::capture(&vm, mcr_vm::ThreadId(0), DumpReason::Manual);
        assert_eq!(dump.heap.len(), 1);
        assert_eq!(dump.heap[0], Some(vec![Value::Int(5), Value::Int(6)]));
    }
}
