//! Codec round-trip tests over representative dumps: mid-flight
//! multi-thread snapshots, cyclic heaps, and the invariant that a decoded
//! dump yields byte-identical refpath traversals (so a dump written to
//! disk drives the CSV comparison exactly like the live one).

use mcr_dump::wire::{Reader, Writer};
use mcr_dump::{
    decode, encode, reachable_vars, CoreDump, DumpReason, SegmentWriter, SegmentedBytes,
    TraverseLimits,
};
use mcr_lang::{FuncId, GlobalId, LocalId, LockId, Pc, StmtId};
use mcr_vm::{
    run, run_until, DeterministicScheduler, Event, MemLoc, MemModel, NullObserver, ObjId, SyncKind,
    ThreadId, Value, Vm,
};
use proptest::prelude::*;

fn completed_dump(src: &str, input: &[i64]) -> CoreDump {
    let program = mcr_lang::compile(src).unwrap();
    let mut vm = Vm::new(&program, input);
    run(
        &mut vm,
        &mut DeterministicScheduler::new(),
        &mut NullObserver,
        1_000_000,
    );
    match CoreDump::capture_failure(&vm) {
        Some(d) => d,
        None => CoreDump::capture(&vm, ThreadId(0), DumpReason::Manual),
    }
}

/// A linked list threaded through a global array plus a deliberate cycle:
/// the densest refpath shape the traversal supports.
const CYCLIC_HEAP: &str = r#"
    global head: ptr;
    global ring: ptr;
    global table: [int; 4];
    fn main() {
        var i; var node; var a; var b;
        for (i = 0; i < 4; i = i + 1) {
            node = alloc(2);
            node[0] = i * 10;
            node[1] = head;
            head = node;
            table[i] = node;
        }
        a = alloc(1);
        b = alloc(1);
        a[0] = b;
        b[0] = a;
        ring = a;
    }
"#;

#[test]
fn cyclic_heap_round_trips() {
    let dump = completed_dump(CYCLIC_HEAP, &[]);
    let decoded = decode(&encode(&dump)).unwrap();
    assert_eq!(decoded, dump);
}

#[test]
fn decoded_dump_traverses_identically() {
    let dump = completed_dump(CYCLIC_HEAP, &[]);
    let decoded = decode(&encode(&dump)).unwrap();
    let original_vars = reachable_vars(&dump, TraverseLimits::default());
    let decoded_vars = reachable_vars(&decoded, TraverseLimits::default());
    assert_eq!(original_vars, decoded_vars);
    // The fixture guarantees deep paths (global -> node -> node -> ...),
    // so this equality is not vacuous.
    assert!(
        original_vars.keys().any(|p| p.steps.len() >= 3),
        "expected multi-hop heap refpaths in the fixture"
    );
}

#[test]
fn mid_flight_multithread_dump_round_trips() {
    // Capture while t2 is blocked on the lock and t1 sits mid-loop with a
    // live loop counter: stacks, held locks, and waiters all populated.
    let src = r#"
        global x: int;
        lock l;
        fn t1() {
            var i;
            acquire l;
            while (i < 1000) { i = i + 1; x = x + i; }
            release l;
        }
        fn t2() { acquire l; x = 0; release l; }
        fn main() { spawn t1(); spawn t2(); }
    "#;
    let program = mcr_lang::compile(src).unwrap();
    let mut vm = Vm::new(&program, &[]);
    run_until(
        &mut vm,
        &mut DeterministicScheduler::new(),
        &mut NullObserver,
        1_000_000,
        |vm| vm.steps() > 200,
    );
    let dump = CoreDump::capture(&vm, ThreadId(1), DumpReason::Manual);
    assert!(dump.threads.len() >= 2, "both workers must be live");
    let decoded = decode(&encode(&dump)).unwrap();
    assert_eq!(decoded, dump);
    assert_eq!(decoded.focus, ThreadId(1));
}

#[test]
fn encoding_is_canonical() {
    // Same dump encoded twice gives identical bytes (the diff pipeline
    // and the corruption property test both rely on this).
    let dump = completed_dump(CYCLIC_HEAP, &[]);
    assert_eq!(encode(&dump), encode(&dump));
    let reencoded = encode(&decode(&encode(&dump)).unwrap());
    assert_eq!(reencoded, encode(&dump));
}

#[test]
fn failure_dump_with_deep_frames_round_trips() {
    let src = r#"
        global depth: int;
        fn rec(p, d) {
            var local;
            local = d * 3;
            if (d > 0) { rec(p, d - 1); } else { p[0] = local; }
        }
        fn main() { depth = 7; rec(null, 7); }
    "#;
    let dump = completed_dump(src, &[]);
    assert!(dump.failure().is_some(), "fixture must crash");
    let decoded = decode(&encode(&dump)).unwrap();
    assert_eq!(decoded, dump);
    // All eight activations of rec survive the round trip.
    assert_eq!(
        decoded.focus_thread().frames.len(),
        dump.focus_thread().frames.len()
    );
    assert!(decoded.focus_thread().frames.len() >= 8);
}

fn roundtrip_event(e: &Event) -> Event {
    let mut w = Writer::new();
    w.event(e);
    let bytes = w.into_bytes();
    let mut r = Reader::new(&bytes);
    let back = r.event().unwrap();
    r.finish().unwrap();
    back
}

#[test]
fn store_buffer_events_round_trip() {
    let pc = Pc::new(FuncId(3), StmtId(9));
    let cases = [
        Event::StoreBuffered {
            tid: ThreadId(2),
            pc,
            loc: MemLoc::Global(GlobalId(1)),
            value: Value::Int(-42),
        },
        Event::StoreFlushed {
            tid: ThreadId(2),
            pc,
            loc: MemLoc::GlobalElem(GlobalId(0), 7),
            value: Value::Ptr(Some(ObjId(4))),
        },
        Event::StoreFlushed {
            tid: ThreadId(0),
            pc,
            loc: MemLoc::Heap(ObjId(1), 3),
            value: Value::NULL,
        },
        Event::StoreBuffered {
            tid: ThreadId(1),
            pc,
            loc: MemLoc::Local {
                tid: ThreadId(1),
                frame: 12,
                local: LocalId(2),
            },
            value: Value::Int(0),
        },
        Event::Sync {
            tid: ThreadId(5),
            pc,
            kind: SyncKind::Flush,
            seq: 17,
        },
    ];
    for e in &cases {
        assert_eq!(&roundtrip_event(e), e, "{e:?}");
    }
}

#[test]
fn every_event_kind_round_trips() {
    // One representative of every variant, so any codec asymmetry a
    // future variant introduces fails here rather than in a replay.
    let pc = Pc::new(FuncId(0), StmtId(1));
    let tid = ThreadId(1);
    let cases = [
        Event::Stmt { tid, pc, cost: 1 },
        Event::Branch {
            tid,
            pc,
            outcome: true,
        },
        Event::Read {
            tid,
            pc,
            loc: MemLoc::Global(GlobalId(0)),
            value: Value::Int(5),
        },
        Event::Write {
            tid,
            pc,
            loc: MemLoc::Heap(ObjId(0), 0),
            value: Value::NULL,
        },
        Event::StoreBuffered {
            tid,
            pc,
            loc: MemLoc::Global(GlobalId(2)),
            value: Value::Int(1),
        },
        Event::StoreFlushed {
            tid,
            pc,
            loc: MemLoc::Global(GlobalId(2)),
            value: Value::Int(1),
        },
        Event::FuncEnter {
            tid,
            func: FuncId(2),
            frame: 6,
        },
        Event::FuncExit {
            tid,
            func: FuncId(2),
            frame: 6,
        },
        Event::Sync {
            tid,
            pc,
            kind: SyncKind::Acquire(LockId(0)),
            seq: 0,
        },
        Event::Sync {
            tid,
            pc,
            kind: SyncKind::Release(LockId(1)),
            seq: 1,
        },
        Event::Sync {
            tid,
            pc,
            kind: SyncKind::Spawn(ThreadId(2)),
            seq: 2,
        },
        Event::Sync {
            tid,
            pc,
            kind: SyncKind::Join(ThreadId(2)),
            seq: 3,
        },
        Event::Sync {
            tid,
            pc,
            kind: SyncKind::Flush,
            seq: 4,
        },
    ];
    for e in &cases {
        assert_eq!(&roundtrip_event(e), e, "{e:?}");
    }
}

#[test]
fn corrupted_event_tags_are_rejected() {
    // Flip the leading tag byte to every out-of-range value: the reader
    // must error, never misparse.
    let e = Event::StoreBuffered {
        tid: ThreadId(1),
        pc: Pc::new(FuncId(0), StmtId(0)),
        loc: MemLoc::Global(GlobalId(0)),
        value: Value::Int(1),
    };
    let mut w = Writer::new();
    w.event(&e);
    let bytes = w.into_bytes();
    for bad in 15u8..=255 {
        let mut corrupted = bytes.clone();
        corrupted[0] = bad;
        let mut r = Reader::new(&corrupted);
        let err = r.event().expect_err("tag {bad} must be rejected");
        assert!(err.msg.contains("event tag"), "{err}");
    }
}

#[test]
fn corrupted_sync_kind_and_memloc_tags_are_rejected() {
    let pc = Pc::new(FuncId(0), StmtId(0));
    let sync = Event::Sync {
        tid: ThreadId(0),
        pc,
        kind: SyncKind::Flush,
        seq: 0,
    };
    let mut w = Writer::new();
    w.event(&sync);
    let sync_bytes = w.into_bytes();
    // Layout: event tag, tid, pc (func, stmt), sync-kind tag, ...
    let kind_at = sync_bytes.len() - 2; // tag byte before the seq varint
    for bad in 5u8..=255 {
        let mut corrupted = sync_bytes.clone();
        corrupted[kind_at] = bad;
        let mut r = Reader::new(&corrupted);
        let err = r.event().expect_err("sync tag must be rejected");
        assert!(err.msg.contains("sync kind tag"), "{err}");
    }

    let read = Event::Read {
        tid: ThreadId(0),
        pc,
        loc: MemLoc::Global(GlobalId(0)),
        value: Value::Int(1),
    };
    let mut w = Writer::new();
    w.event(&read);
    let read_bytes = w.into_bytes();
    // Layout: event tag, tid, pc, memloc tag, global id, value.
    let loc_at = 4;
    for bad in 4u8..=255 {
        let mut corrupted = read_bytes.clone();
        corrupted[loc_at] = bad;
        let mut r = Reader::new(&corrupted);
        let err = r.event().expect_err("memloc tag must be rejected");
        assert!(err.msg.contains("memloc tag"), "{err}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Segmented framing round-trips any payload at any frame size, and
    /// arbitrary range reads rehydrate exactly the payload slice.
    #[test]
    fn segmented_container_round_trips_any_payload(
        payload in proptest::collection::vec(0u8..255, 0..2048),
        frame_size in 1usize..512,
        start_frac in 0u64..1000,
        len_frac in 0u64..1000,
    ) {
        let seg = SegmentedBytes::from_payload(&payload, frame_size);
        let parsed = SegmentedBytes::parse_verified(seg.as_bytes().to_vec())
            .expect("canonical container must parse");
        prop_assert_eq!(parsed.total_len(), payload.len() as u64);
        prop_assert_eq!(parsed.frame_size(), frame_size);
        prop_assert_eq!(&parsed.read_range(0, payload.len()).unwrap(), &payload);
        // A pseudo-random in-bounds subrange reads back the exact slice.
        let start = (start_frac as usize * payload.len()) / 1000;
        let len = (len_frac as usize * (payload.len() - start)) / 1000;
        prop_assert_eq!(
            parsed.read_range(start, len).unwrap(),
            payload[start..start + len].to_vec()
        );
        // One-past-the-end fails closed, never pads.
        prop_assert!(parsed.read_range(0, payload.len() + 1).is_err());
    }

    /// Framing is canonical in the write chunking: streaming the payload
    /// through a `SegmentWriter` in arbitrary splits produces the exact
    /// container bytes of the one-shot `from_payload` path.
    #[test]
    fn segmented_framing_is_chunking_invariant(
        payload in proptest::collection::vec(0u8..255, 1..1024),
        frame_size in 1usize..256,
        cut_frac in 0u64..1000,
    ) {
        let oneshot = SegmentedBytes::from_payload(&payload, frame_size);
        let cut = (cut_frac as usize * payload.len()) / 1000;
        let mut w = SegmentWriter::new(frame_size);
        w.write(&payload[..cut]);
        w.write(&payload[cut..]);
        let streamed = w.finish();
        prop_assert_eq!(streamed.as_bytes(), oneshot.as_bytes());
    }

    /// Every strict prefix of a segmented container fails `parse` closed
    /// — a torn write (crash mid-spill, short read) is always detected,
    /// never misparsed as a shorter valid container.
    #[test]
    fn every_truncation_prefix_fails_closed(
        payload in proptest::collection::vec(0u8..255, 0..512),
        frame_size in 1usize..128,
    ) {
        let bytes = SegmentedBytes::from_payload(&payload, frame_size).into_bytes();
        for cut in 0..bytes.len() {
            prop_assert!(
                SegmentedBytes::parse(bytes[..cut].to_vec()).is_err(),
                "prefix of {cut}/{} bytes must not parse",
                bytes.len()
            );
        }
    }

    /// Every single-bit flip anywhere in the container either fails
    /// closed (`parse_verified` rejects it) or is payload-benign (the
    /// full rehydrated payload is still byte-identical — e.g. a flip in
    /// the advisory frame-size varint of a single-segment container).
    /// A flip is never silently accepted while corrupting the payload.
    #[test]
    fn bit_flips_never_corrupt_the_payload_silently(
        payload in proptest::collection::vec(0u8..255, 1..256),
        frame_size in 1usize..64,
        byte_frac in 0u64..1000,
        bit in 0u8..8,
    ) {
        let bytes = SegmentedBytes::from_payload(&payload, frame_size).into_bytes();
        let at = (byte_frac as usize * bytes.len()) / 1000;
        let mut flipped = bytes;
        flipped[at] ^= 1 << bit;
        if let Ok(seg) = SegmentedBytes::parse_verified(flipped) {
            prop_assert_eq!(
                &seg.read_range(0, seg.total_len() as usize).unwrap(),
                &payload,
                "accepted flip at byte {at} bit {bit} must be payload-benign"
            );
        }
    }
}

/// A flipped bit *inside a segment payload* is always caught — if not by
/// the lazy `parse`, then by the checksum verification of the first
/// `read_range` that touches the segment.
#[test]
fn payload_bit_flips_are_caught_on_first_read() {
    let payload: Vec<u8> = (0..=255u8).cycle().take(700).collect();
    let seg = SegmentedBytes::from_payload(&payload, 64);
    let first_payload_at = seg
        .as_bytes()
        .windows(8)
        .position(|w| w == &payload[..8])
        .expect("payload bytes present verbatim in the container");
    for bit in 0..8 {
        let mut flipped = seg.as_bytes().to_vec();
        flipped[first_payload_at] ^= 1 << bit;
        // Lazy parse validates only the framing, so it accepts the
        // container…
        let lazy = SegmentedBytes::parse(flipped).expect("framing is intact");
        // …but the corrupt segment can never serve a read.
        let err = lazy
            .read_range(0, 8)
            .expect_err("checksum must catch the flip");
        assert!(err.msg.contains("checksum"), "{err}");
        // Untouched segments still serve reads: corruption is contained
        // to the frame it hit.
        assert_eq!(
            lazy.read_range(640, 32).unwrap(),
            payload[640..672].to_vec()
        );
    }
}

#[test]
fn tso_dump_with_frozen_store_buffer_round_trips() {
    // Run a TSO program to just after its buffered stores, capture, and
    // check the buffer survives the codec byte-for-byte.
    let src = r#"
        global x: int;
        global y: int;
        fn main() {
            x = 1;
            y = 2;
            x = 3;
        }
    "#;
    let program = mcr_lang::compile(src).unwrap();
    let mut vm = Vm::new(&program, &[]).with_mem_model(MemModel::tso());
    run_until(
        &mut vm,
        &mut DeterministicScheduler::new(),
        &mut NullObserver,
        1_000_000,
        |vm| vm.thread(ThreadId(0)).store_buffer.len() >= 3,
    );
    let dump = CoreDump::capture(&vm, ThreadId(0), DumpReason::Manual);
    let buffered = &dump.threads[0].store_buffer;
    assert_eq!(buffered.len(), 3, "all three stores still buffered");
    // FIFO order is part of the state: x=1, y=2, x=3 oldest-first.
    assert_eq!(buffered[0].value, mcr_vm::Value::Int(1));
    assert_eq!(buffered[2].value, mcr_vm::Value::Int(3));
    let decoded = decode(&encode(&dump)).unwrap();
    assert_eq!(decoded, dump);
    assert_eq!(
        decoded.threads[0].store_buffer,
        dump.threads[0].store_buffer
    );
}

// ---------------------------------------------------------------------
// Static race-summary artifact codec (`wire::write_race_summary` /
// `wire::read_race_summary`): the per-function unit the StaticRace
// pre-phase caches.

use mcr_analysis::{AccessSite, AccessTarget, FuncRaceSummary};
use mcr_dump::wire::{read_race_summary, write_race_summary};
use proptest::TestRng;

/// Expands a seed into a structurally arbitrary summary: every field
/// populated with independently drawn sizes and contents, including the
/// corner shapes (empty vectors, top locksets, lock ids at the mask
/// boundary).
fn arb_race_summary(seed: u64) -> FuncRaceSummary {
    let mut rng = TestRng::new(seed);
    let stmts = (rng.next_u64() % 24) as usize;
    let draw_sites = |rng: &mut TestRng| {
        let n = (rng.next_u64() % 8) as usize;
        (0..n)
            .map(|_| AccessSite {
                stmt: StmtId((rng.next_u64() % 24) as u32),
                target: match rng.next_u64() % 3 {
                    0 => AccessTarget::Global(GlobalId((rng.next_u64() % 6) as u32)),
                    1 => AccessTarget::SharedHeap,
                    _ => AccessTarget::PrivateHeap,
                },
                is_write: rng.next_u64() & 1 == 1,
            })
            .collect()
    };
    FuncRaceSummary {
        stmt_count: stmts as u32,
        lock_top: rng.next_u64() & 1 == 1,
        locksets: (0..stmts).map(|_| rng.next_u64()).collect(),
        spawn_before: (0..stmts).map(|_| rng.next_u64() & 1 == 1).collect(),
        callees_before: (0..stmts)
            .map(|_| {
                let n = (rng.next_u64() % 4) as usize;
                (0..n)
                    .map(|_| FuncId((rng.next_u64() % 8) as u32))
                    .collect()
            })
            .collect(),
        accesses: draw_sites(&mut rng),
        releases: rng.next_u64(),
        call_sites: (0..(rng.next_u64() % 6) as usize)
            .map(|_| {
                (
                    StmtId((rng.next_u64() % 24) as u32),
                    FuncId((rng.next_u64() % 8) as u32),
                )
            })
            .collect(),
        spawn_sites: (0..(rng.next_u64() % 6) as usize)
            .map(|_| {
                (
                    StmtId((rng.next_u64() % 24) as u32),
                    FuncId((rng.next_u64() % 8) as u32),
                    rng.next_u64() & 1 == 1,
                )
            })
            .collect(),
        acquire_sites: (0..(rng.next_u64() % 6) as usize)
            .map(|_| {
                (
                    StmtId((rng.next_u64() % 24) as u32),
                    LockId((rng.next_u64() % 64) as u32),
                )
            })
            .collect(),
    }
}

fn encode_race_summary(s: &FuncRaceSummary) -> Vec<u8> {
    let mut w = Writer::new();
    write_race_summary(&mut w, s);
    w.into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The summary codec is a lossless, canonical, exactly-consuming
    /// round trip over structurally arbitrary summaries.
    #[test]
    fn race_summary_round_trips(seed in proptest::num::u64::ANY) {
        let summary = arb_race_summary(seed);
        let bytes = encode_race_summary(&summary);
        let mut r = Reader::new(&bytes);
        let back = read_race_summary(&mut r).expect("canonical bytes decode");
        r.finish().expect("decode consumes exactly the encoding");
        prop_assert_eq!(&back, &summary);
        prop_assert_eq!(encode_race_summary(&back), bytes);
    }

    /// Every strict prefix of an encoded summary fails closed: a torn
    /// store write or short read is always an error, never a shorter
    /// valid summary (length prefixes precede their payloads, so a cut
    /// can only starve a later field).
    #[test]
    fn race_summary_truncations_fail_closed(seed in proptest::num::u64::ANY) {
        let bytes = encode_race_summary(&arb_race_summary(seed));
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let outcome = read_race_summary(&mut r).and_then(|_| r.finish());
            prop_assert!(
                outcome.is_err(),
                "prefix of {}/{} bytes must not decode",
                cut,
                bytes.len()
            );
        }
    }

    /// A single-bit flip anywhere in the encoding never panics or
    /// over-allocates: the reader either rejects the bytes or decodes
    /// some summary whose own re-encoding round-trips (the wire layer
    /// is unchecksummed — end-to-end flip *detection* belongs to the
    /// segmented shipping container, tested below).
    #[test]
    fn race_summary_bit_flips_decode_safely(
        seed in proptest::num::u64::ANY,
        byte_frac in 0u64..1000,
        bit in 0u8..8,
    ) {
        let bytes = encode_race_summary(&arb_race_summary(seed));
        let at = (byte_frac as usize * bytes.len()) / 1000;
        let mut flipped = bytes;
        flipped[at] ^= 1 << bit;
        let mut r = Reader::new(&flipped);
        if let Ok(decoded) = read_race_summary(&mut r).and_then(|s| {
            r.finish()?;
            Ok(s)
        }) {
            let reencoded = encode_race_summary(&decoded);
            let mut r2 = Reader::new(&reencoded);
            let back = read_race_summary(&mut r2).expect("re-encoding decodes");
            r2.finish().expect("re-encoding consumes exactly");
            prop_assert_eq!(back, decoded);
        }
    }

    /// Shipped race artifacts ride the checksummed segmented container;
    /// there a payload bit flip *is* rejected, so a corrupt cache entry
    /// can never rehydrate as a plausible summary.
    #[test]
    fn shipped_race_summary_bit_flips_are_rejected(
        seed in proptest::num::u64::ANY,
        bit in 0u8..8,
    ) {
        let payload = encode_race_summary(&arb_race_summary(seed));
        prop_assume!(!payload.is_empty());
        let seg = SegmentedBytes::from_payload(&payload, 64);
        let payload_at = seg
            .as_bytes()
            .windows(payload.len().min(8))
            .position(|w| w == &payload[..payload.len().min(8)])
            .expect("payload bytes present verbatim in the container");
        let mut flipped = seg.as_bytes().to_vec();
        flipped[payload_at] ^= 1 << bit;
        match SegmentedBytes::parse_verified(flipped) {
            Err(_) => {}
            Ok(seg) => prop_assert!(
                seg.read_range(0, payload.len()).is_err(),
                "checksum must reject the flipped payload"
            ),
        }
    }
}

/// An implausible length prefix is rejected up front — the reader never
/// trusts a claimed element count with an allocation.
#[test]
fn race_summary_huge_length_claims_are_rejected() {
    let mut w = Writer::new();
    w.uvarint(3); // stmt_count
    w.bool(false); // lock_top
    w.uvarint(1 << 40); // locksets length: absurd
    let bytes = w.into_bytes();
    let mut r = Reader::new(&bytes);
    let err = read_race_summary(&mut r).expect_err("absurd length must be rejected");
    assert!(err.msg.contains("implausible"), "{err}");
}
