//! Codec round-trip tests over representative dumps: mid-flight
//! multi-thread snapshots, cyclic heaps, and the invariant that a decoded
//! dump yields byte-identical refpath traversals (so a dump written to
//! disk drives the CSV comparison exactly like the live one).

use mcr_dump::{decode, encode, reachable_vars, CoreDump, DumpReason, TraverseLimits};
use mcr_vm::{run, run_until, DeterministicScheduler, NullObserver, ThreadId, Vm};

fn completed_dump(src: &str, input: &[i64]) -> CoreDump {
    let program = mcr_lang::compile(src).unwrap();
    let mut vm = Vm::new(&program, input);
    run(
        &mut vm,
        &mut DeterministicScheduler::new(),
        &mut NullObserver,
        1_000_000,
    );
    match CoreDump::capture_failure(&vm) {
        Some(d) => d,
        None => CoreDump::capture(&vm, ThreadId(0), DumpReason::Manual),
    }
}

/// A linked list threaded through a global array plus a deliberate cycle:
/// the densest refpath shape the traversal supports.
const CYCLIC_HEAP: &str = r#"
    global head: ptr;
    global ring: ptr;
    global table: [int; 4];
    fn main() {
        var i; var node; var a; var b;
        for (i = 0; i < 4; i = i + 1) {
            node = alloc(2);
            node[0] = i * 10;
            node[1] = head;
            head = node;
            table[i] = node;
        }
        a = alloc(1);
        b = alloc(1);
        a[0] = b;
        b[0] = a;
        ring = a;
    }
"#;

#[test]
fn cyclic_heap_round_trips() {
    let dump = completed_dump(CYCLIC_HEAP, &[]);
    let decoded = decode(&encode(&dump)).unwrap();
    assert_eq!(decoded, dump);
}

#[test]
fn decoded_dump_traverses_identically() {
    let dump = completed_dump(CYCLIC_HEAP, &[]);
    let decoded = decode(&encode(&dump)).unwrap();
    let original_vars = reachable_vars(&dump, TraverseLimits::default());
    let decoded_vars = reachable_vars(&decoded, TraverseLimits::default());
    assert_eq!(original_vars, decoded_vars);
    // The fixture guarantees deep paths (global -> node -> node -> ...),
    // so this equality is not vacuous.
    assert!(
        original_vars.keys().any(|p| p.steps.len() >= 3),
        "expected multi-hop heap refpaths in the fixture"
    );
}

#[test]
fn mid_flight_multithread_dump_round_trips() {
    // Capture while t2 is blocked on the lock and t1 sits mid-loop with a
    // live loop counter: stacks, held locks, and waiters all populated.
    let src = r#"
        global x: int;
        lock l;
        fn t1() {
            var i;
            acquire l;
            while (i < 1000) { i = i + 1; x = x + i; }
            release l;
        }
        fn t2() { acquire l; x = 0; release l; }
        fn main() { spawn t1(); spawn t2(); }
    "#;
    let program = mcr_lang::compile(src).unwrap();
    let mut vm = Vm::new(&program, &[]);
    run_until(
        &mut vm,
        &mut DeterministicScheduler::new(),
        &mut NullObserver,
        1_000_000,
        |vm| vm.steps() > 200,
    );
    let dump = CoreDump::capture(&vm, ThreadId(1), DumpReason::Manual);
    assert!(dump.threads.len() >= 2, "both workers must be live");
    let decoded = decode(&encode(&dump)).unwrap();
    assert_eq!(decoded, dump);
    assert_eq!(decoded.focus, ThreadId(1));
}

#[test]
fn encoding_is_canonical() {
    // Same dump encoded twice gives identical bytes (the diff pipeline
    // and the corruption property test both rely on this).
    let dump = completed_dump(CYCLIC_HEAP, &[]);
    assert_eq!(encode(&dump), encode(&dump));
    let reencoded = encode(&decode(&encode(&dump)).unwrap());
    assert_eq!(reencoded, encode(&dump));
}

#[test]
fn failure_dump_with_deep_frames_round_trips() {
    let src = r#"
        global depth: int;
        fn rec(p, d) {
            var local;
            local = d * 3;
            if (d > 0) { rec(p, d - 1); } else { p[0] = local; }
        }
        fn main() { depth = 7; rec(null, 7); }
    "#;
    let dump = completed_dump(src, &[]);
    assert!(dump.failure().is_some(), "fixture must crash");
    let decoded = decode(&encode(&dump)).unwrap();
    assert_eq!(decoded, dump);
    // All eight activations of rec survive the round trip.
    assert_eq!(
        decoded.focus_thread().frames.len(),
        dump.focus_thread().frames.len()
    );
    assert!(decoded.focus_thread().frames.len() >= 8);
}
