//! Error types for MiniCC front-end phases.

use std::error::Error;
use std::fmt;

/// Error produced by lexing, parsing, or lowering MiniCC source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// Lexical error.
    Lex {
        /// 1-based line.
        line: u32,
        /// Explanation.
        msg: String,
    },
    /// Syntax error.
    Parse {
        /// 1-based line.
        line: u32,
        /// Explanation.
        msg: String,
    },
    /// Name-resolution or structural error during lowering.
    Lower {
        /// 1-based line (0 when not tied to a line).
        line: u32,
        /// Explanation.
        msg: String,
    },
}

impl LangError {
    /// Builds a lexical error.
    pub fn lex(line: u32, msg: impl Into<String>) -> Self {
        LangError::Lex {
            line,
            msg: msg.into(),
        }
    }

    /// Builds a syntax error.
    pub fn parse(line: u32, msg: impl Into<String>) -> Self {
        LangError::Parse {
            line,
            msg: msg.into(),
        }
    }

    /// Builds a lowering error.
    pub fn lower(line: u32, msg: impl Into<String>) -> Self {
        LangError::Lower {
            line,
            msg: msg.into(),
        }
    }

    /// The 1-based source line the error refers to.
    pub fn line(&self) -> u32 {
        match self {
            LangError::Lex { line, .. }
            | LangError::Parse { line, .. }
            | LangError::Lower { line, .. } => *line,
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { line, msg } => write!(f, "lex error at line {line}: {msg}"),
            LangError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            LangError::Lower { line, msg } => write!(f, "lowering error at line {line}: {msg}"),
        }
    }
}

impl Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_line() {
        let e = LangError::parse(7, "expected ';'");
        assert_eq!(e.to_string(), "parse error at line 7: expected ';'");
        assert_eq!(e.line(), 7);
    }
}
