//! # mcr-lang — MiniCC: the concurrent program substrate
//!
//! The paper analyzes compiled C programs (mysql, apache, splash-2). This
//! crate provides the equivalent substrate for the reproduction: **MiniCC**,
//! a small C-like concurrent language with threads, locks, pointers, global
//! and heap state, and — crucially — every control-flow construct the
//! paper's dump analysis distinguishes:
//!
//! * plain conditionals → statements with a *single* control dependence,
//! * short-circuit `&&`/`||` conditions → *multiple control dependences
//!   aggregatable to one* (paper Fig. 5b),
//! * `goto` → *non-aggregatable multiple control dependences* (paper
//!   Fig. 6),
//! * `while`/`for` → *loop predicates*, instrumented with the paper's
//!   loop counters (`while`) or carrying natural counters (`for`).
//!
//! The crate exposes three layers:
//!
//! 1. [`ast`] + [`parse`] — surface syntax,
//! 2. [`lower`](mod@lower) — lowering to the statement-level [`ir`],
//! 3. [`compile`] — the convenience "source text in, [`Program`] out" entry
//!    point used by workloads and tests.
//!
//! # Examples
//!
//! ```
//! // The paper's Fig. 1 running example, in MiniCC.
//! let src = r#"
//!     global x: int;
//!     global a: [int; 2];
//!     lock l;
//!     fn F(p) { p[0] = 1; }
//!     fn T1() {
//!         var i; var p;
//!         for (i = 0; i < 2; i = i + 1) {
//!             x = 0;
//!             p = alloc(2);
//!             acquire l;
//!             if (a[i] > 0) { x = 1; p = null; }
//!             release l;
//!             if (!x) { F(p); }
//!         }
//!     }
//!     fn T2() { x = 0; }
//!     fn main() { spawn T1(); spawn T2(); }
//! "#;
//! let program = mcr_lang::compile(src)?;
//! assert_eq!(program.funcs.len(), 4);
//! assert!(program.validate().is_ok());
//! # Ok::<(), mcr_lang::LangError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod fingerprint;
pub mod ir;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use error::LangError;
pub use fingerprint::{function_fingerprint, program_fingerprint};
pub use ir::{
    BinOp, CondGroup, CondGroupId, Expr, FuncId, Function, GlobalDecl, GlobalId, GlobalKind, Inst,
    LocalId, LockId, LoopId, LoopInfo, Pc, Place, Program, StmtId, UnOp,
};
pub use parser::parse;

/// Compiles MiniCC source text straight to IR.
///
/// # Errors
///
/// Returns [`LangError`] for lexical, syntax, or lowering problems.
///
/// # Examples
///
/// ```
/// let p = mcr_lang::compile("global x: int; fn main() { x = 41 + 1; }")?;
/// assert_eq!(p.stmt_count(), 2); // the assignment + implicit return
/// # Ok::<(), mcr_lang::LangError>(())
/// ```
pub fn compile(src: &str) -> Result<Program, LangError> {
    lower::lower(&parser::parse(src)?)
}

#[cfg(test)]
mod tests {
    #[test]
    fn compile_end_to_end() {
        let p = super::compile("global x: int; fn main() { x = 1; }").unwrap();
        assert!(p.validate().is_ok());
    }
}
