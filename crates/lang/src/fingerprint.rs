//! Function-granular content fingerprints over the IR.
//!
//! The content-addressed caches in `mcr-core` key every artifact on what
//! the program *is*, not where it came from. Keying on a whole-program
//! hash defeats fleet-scale caching, though: one edited function changes
//! the hash and invalidates every artifact of every other function. This
//! module therefore fingerprints at the unit the caches actually want —
//! the function:
//!
//! * [`function_fingerprint`] hashes one [`Function`] in isolation. It
//!   folds in the complete `#[derive(Hash)]` field stream (name, body,
//!   loops, condition groups, line table), so any observable edit moves
//!   the fingerprint while *all other functions' fingerprints stay
//!   bit-identical across program revisions*.
//! * [`program_fingerprint`] is a Merkle root: the hash of the shared
//!   state (globals, locks, entry point) plus the ordered list of
//!   per-function fingerprints. Identical programs agree; a k-function
//!   edit changes exactly k leaves and the root.
//!
//! The digests are 128-bit FNV-1a — the same non-cryptographic family
//! the `mcr-dump` wire layer uses for [`ContentHash`]-keyed stores; this
//! crate sits below `mcr-dump` in the dependency order, so it carries
//! its own copy of the (standard) constants. The raw `u128` returned
//! here is what `mcr-core` wraps into its `ContentHash` keys.
//!
//! [`ContentHash`]: https://en.wikipedia.org/wiki/Fowler–Noll–Vo_hash_function

use crate::ir::{Function, Program};
use std::hash::{Hash, Hasher};

/// FNV-1a 128-bit offset basis.
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime.
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

/// Domain tag for a single function's fingerprint.
const FUNC_DOMAIN: &[u8] = b"MCRFN1";
/// Domain tag for the program-level Merkle root.
const PROGRAM_DOMAIN: &[u8] = b"MCRPM1";

/// Streaming FNV-1a 128 state that doubles as a [`std::hash::Hasher`],
/// so `#[derive(Hash)]` IR types feed their canonical field-order byte
/// stream straight into the digest.
#[derive(Debug, Clone)]
struct Fnv128 {
    state: u128,
}

impl Fnv128 {
    fn new() -> Fnv128 {
        Fnv128 {
            state: FNV128_OFFSET,
        }
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }
}

impl Hasher for Fnv128 {
    fn write(&mut self, bytes: &[u8]) {
        self.update(bytes);
    }

    fn finish(&self) -> u64 {
        (self.state as u64) ^ ((self.state >> 64) as u64)
    }
}

/// The stable content fingerprint of one function.
///
/// Two [`Function`] values hash identically exactly when every
/// `Hash`-visible field agrees — independent of which program revision
/// the function appears in, so a cache keyed on this digest is shared by
/// every program that contains the identical function.
///
/// # Examples
///
/// ```
/// let a = mcr_lang::compile("fn helper() { } fn main() { }").unwrap();
/// let b = mcr_lang::compile("global g: int; fn helper() { } fn main() { g = 1; }").unwrap();
/// // `helper` is byte-for-byte the same function in both programs.
/// assert_eq!(
///     mcr_lang::function_fingerprint(&a.funcs[0]),
///     mcr_lang::function_fingerprint(&b.funcs[0]),
/// );
/// // `main` differs.
/// assert_ne!(
///     mcr_lang::function_fingerprint(&a.funcs[1]),
///     mcr_lang::function_fingerprint(&b.funcs[1]),
/// );
/// ```
pub fn function_fingerprint(func: &Function) -> u128 {
    let mut h = Fnv128::new();
    h.update(FUNC_DOMAIN);
    func.hash(&mut h);
    h.state
}

/// The program fingerprint: a Merkle root over the shared program state
/// and the ordered per-function fingerprints.
///
/// Editing k functions of an N-function program changes exactly k
/// leaves (see [`function_fingerprint`]) plus this root; the other
/// N − k leaves are bit-identical across the two revisions, which is
/// what lets function-granular caches survive program edits.
pub fn program_fingerprint(program: &Program) -> u128 {
    let mut h = Fnv128::new();
    h.update(PROGRAM_DOMAIN);
    program.globals.hash(&mut h);
    program.locks.hash(&mut h);
    program.main.hash(&mut h);
    h.update(&(program.funcs.len() as u64).to_le_bytes());
    for func in &program.funcs {
        h.update(&function_fingerprint(func).to_le_bytes());
    }
    h.state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    const BASE: &str = r#"
        global x: int;
        lock l;
        fn a() { x = 1; }
        fn b() { acquire l; x = 2; release l; }
        fn main() { spawn a(); spawn b(); }
    "#;

    #[test]
    fn identical_programs_agree() {
        let p1 = compile(BASE).unwrap();
        let p2 = compile(BASE).unwrap();
        assert_eq!(program_fingerprint(&p1), program_fingerprint(&p2));
        for (f1, f2) in p1.funcs.iter().zip(&p2.funcs) {
            assert_eq!(function_fingerprint(f1), function_fingerprint(f2));
        }
    }

    #[test]
    fn editing_one_function_moves_only_its_leaf() {
        let p1 = compile(BASE).unwrap();
        let p2 = compile(&BASE.replace("x = 2;", "x = 3;")).unwrap();
        assert_ne!(program_fingerprint(&p1), program_fingerprint(&p2));
        let moved: Vec<usize> = p1
            .funcs
            .iter()
            .zip(&p2.funcs)
            .enumerate()
            .filter(|(_, (f1, f2))| function_fingerprint(f1) != function_fingerprint(f2))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(moved, vec![1], "only `b` may change");
    }

    #[test]
    fn shared_state_feeds_the_root_but_not_the_leaves() {
        let p1 = compile(BASE).unwrap();
        let p2 = compile(&BASE.replace("global x: int;", "global x: int; global y: int;")).unwrap();
        assert_ne!(program_fingerprint(&p1), program_fingerprint(&p2));
        // Function bodies are untouched, so every leaf survives.
        for (f1, f2) in p1.funcs.iter().zip(&p2.funcs) {
            assert_eq!(function_fingerprint(f1), function_fingerprint(f2));
        }
    }

    #[test]
    fn function_order_feeds_the_root() {
        let p = compile(BASE).unwrap();
        let mut swapped = p.clone();
        swapped.funcs.swap(0, 1);
        assert_ne!(program_fingerprint(&p), program_fingerprint(&swapped));
    }

    #[test]
    fn leaf_and_root_domains_are_separated() {
        // A single-function program's root never equals the bare
        // function fingerprint (domain tags differ).
        let p = compile("fn main() { }").unwrap();
        assert_ne!(program_fingerprint(&p), function_fingerprint(&p.funcs[0]));
    }
}
