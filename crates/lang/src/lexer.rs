//! Hand-written lexer for MiniCC.

use crate::error::LangError;
use std::fmt;

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Integer literal.
    Int(i64),
    /// Identifier.
    Ident(String),
    /// Keyword.
    Kw(Kw),
    /// Punctuation / operator.
    Punct(Punct),
    /// End of input.
    Eof,
}

/// Keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // operator/keyword names are self-describing
pub enum Kw {
    Global,
    Lock,
    Fn,
    Var,
    If,
    Else,
    While,
    For,
    Break,
    Continue,
    Goto,
    Label,
    Return,
    Acquire,
    Release,
    Spawn,
    Join,
    Fence,
    Assert,
    Output,
    Alloc,
    Null,
    Int,
    Ptr,
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // operator/keyword names are self-describing
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Not,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Kw(k) => write!(f, "{k:?}"),
            Tok::Punct(p) => write!(f, "{p:?}"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token together with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

fn keyword(s: &str) -> Option<Kw> {
    Some(match s {
        "global" => Kw::Global,
        "lock" => Kw::Lock,
        "fn" => Kw::Fn,
        "var" => Kw::Var,
        "if" => Kw::If,
        "else" => Kw::Else,
        "while" => Kw::While,
        "for" => Kw::For,
        "break" => Kw::Break,
        "continue" => Kw::Continue,
        "goto" => Kw::Goto,
        "label" => Kw::Label,
        "return" => Kw::Return,
        "acquire" => Kw::Acquire,
        "release" => Kw::Release,
        "spawn" => Kw::Spawn,
        "join" => Kw::Join,
        "fence" => Kw::Fence,
        "assert" => Kw::Assert,
        "output" => Kw::Output,
        "alloc" => Kw::Alloc,
        "null" => Kw::Null,
        "int" => Kw::Int,
        "ptr" => Kw::Ptr,
        _ => return None,
    })
}

/// Tokenizes MiniCC source. `//` comments run to end of line.
///
/// # Errors
///
/// Returns [`LangError::Lex`] on unknown characters or malformed literals.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, LangError> {
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Vec::new();
    macro_rules! push {
        ($t:expr) => {
            out.push(SpannedTok { tok: $t, line })
        };
    }
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let v: i64 = text.parse().map_err(|_| {
                    LangError::lex(line, format!("integer literal too large: {text}"))
                })?;
                push!(Tok::Int(v));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let text = &src[start..i];
                match keyword(text) {
                    Some(k) => push!(Tok::Kw(k)),
                    None => push!(Tok::Ident(text.to_string())),
                }
            }
            _ => {
                let two = if i + 1 < bytes.len() {
                    &src[i..i + 2]
                } else {
                    ""
                };
                let (p, n) = match two {
                    "==" => (Punct::EqEq, 2),
                    "!=" => (Punct::NotEq, 2),
                    "<=" => (Punct::Le, 2),
                    ">=" => (Punct::Ge, 2),
                    "&&" => (Punct::AndAnd, 2),
                    "||" => (Punct::OrOr, 2),
                    _ => {
                        let p = match c {
                            '(' => Punct::LParen,
                            ')' => Punct::RParen,
                            '{' => Punct::LBrace,
                            '}' => Punct::RBrace,
                            '[' => Punct::LBracket,
                            ']' => Punct::RBracket,
                            ';' => Punct::Semi,
                            ',' => Punct::Comma,
                            ':' => Punct::Colon,
                            '=' => Punct::Assign,
                            '+' => Punct::Plus,
                            '-' => Punct::Minus,
                            '*' => Punct::Star,
                            '/' => Punct::Slash,
                            '%' => Punct::Percent,
                            '<' => Punct::Lt,
                            '>' => Punct::Gt,
                            '!' => Punct::Not,
                            _ => {
                                return Err(LangError::lex(
                                    line,
                                    format!("unexpected character {c:?}"),
                                ))
                            }
                        };
                        (p, 1)
                    }
                };
                push!(Tok::Punct(p));
                i += n;
            }
        }
    }
    out.push(SpannedTok {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        let t = toks("fn foo while whilex");
        assert_eq!(
            t,
            vec![
                Tok::Kw(Kw::Fn),
                Tok::Ident("foo".into()),
                Tok::Kw(Kw::While),
                Tok::Ident("whilex".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_two_char_operators() {
        let t = toks("== != <= >= && || = < >");
        assert_eq!(
            t,
            vec![
                Tok::Punct(Punct::EqEq),
                Tok::Punct(Punct::NotEq),
                Tok::Punct(Punct::Le),
                Tok::Punct(Punct::Ge),
                Tok::Punct(Punct::AndAnd),
                Tok::Punct(Punct::OrOr),
                Tok::Punct(Punct::Assign),
                Tok::Punct(Punct::Lt),
                Tok::Punct(Punct::Gt),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let ts = lex("a // c\nb").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
    }

    #[test]
    fn rejects_unknown_char() {
        assert!(lex("a $ b").is_err());
    }

    #[test]
    fn integer_literals() {
        assert_eq!(toks("42 0"), vec![Tok::Int(42), Tok::Int(0), Tok::Eof]);
    }

    #[test]
    fn overflow_literal_is_error() {
        assert!(lex("99999999999999999999999").is_err());
    }
}
