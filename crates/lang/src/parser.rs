//! Recursive-descent parser for MiniCC.
//!
//! Grammar sketch (statements end in `;`, blocks use `{ }`):
//!
//! ```text
//! program   := (global | lockdecl | func)*
//! global    := "global" ident ":" ("int" ("=" int)? | "[" "int" ";" int "]" ("=" int)? | "ptr") ";"
//! lockdecl  := "lock" ident ";"
//! func      := "fn" ident "(" params? ")" block
//! stmt      := "var" ident ("=" expr)? ";"
//!            | "if" "(" expr ")" block ("else" (block | ifstmt))?
//!            | "while" "(" expr ")" block
//!            | "for" "(" simple? ";" expr ";" simple? ")" block
//!            | "break" ";" | "continue" ";"
//!            | "goto" ident ";" | "label" ident ":"
//!            | "return" expr? ";"
//!            | "acquire" ident ";" | "release" ident ";"
//!            | "join" expr ";" | "assert" "(" expr ")" ";"
//!            | "output" "(" expr ")" ";"
//!            | "spawn" ident "(" args ")" ";"
//!            | block
//!            | simple ";"
//! simple    := lvalue "=" rhs | ident "(" args ")"
//! rhs       := "alloc" "(" expr ")" | "spawn" ident "(" args ")"
//!            | ident "(" args ")"          (when followed by "(")
//!            | expr
//! expr      := or ; or := and ("||" and)* ; and := eq ("&&" eq)*
//! eq        := rel (("=="|"!=") rel)* ; rel := add (("<"|"<="|">"|">=") add)*
//! add       := mul (("+"|"-") mul)* ; mul := unary (("*"|"/"|"%") unary)*
//! unary     := ("!"|"-") unary | postfix
//! postfix   := primary ("[" expr "]")*
//! primary   := int | "null" | ident | "(" expr ")"
//! ```

use crate::ast::*;
use crate::error::LangError;
use crate::lexer::{lex, Kw, Punct, SpannedTok, Tok};

/// Parses MiniCC source text into an [`AProgram`].
///
/// # Errors
///
/// Returns [`LangError`] with the offending line on any lexical or syntax
/// error.
///
/// # Examples
///
/// ```
/// let src = "global x: int; fn main() { x = 1; }";
/// let prog = mcr_lang::parse(src)?;
/// assert_eq!(prog.funcs.len(), 1);
/// # Ok::<(), mcr_lang::LangError>(())
/// ```
pub fn parse(src: &str) -> Result<AProgram, LangError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        let i = (self.pos + 1).min(self.toks.len() - 1);
        &self.toks[i].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek() == &Tok::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct, what: &str) -> Result<(), LangError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(LangError::parse(
                self.line(),
                format!("expected {what}, found `{}`", self.peek()),
            ))
        }
    }

    fn eat_kw(&mut self, k: Kw) -> bool {
        if self.peek() == &Tok::Kw(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, k: Kw, what: &str) -> Result<(), LangError> {
        if self.eat_kw(k) {
            Ok(())
        } else {
            Err(LangError::parse(
                self.line(),
                format!("expected {what}, found `{}`", self.peek()),
            ))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, LangError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            t => Err(LangError::parse(
                self.line(),
                format!("expected {what}, found `{t}`"),
            )),
        }
    }

    fn int_lit(&mut self) -> Result<i64, LangError> {
        let neg = self.eat_punct(Punct::Minus);
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(if neg { -v } else { v })
            }
            t => Err(LangError::parse(
                self.line(),
                format!("expected integer literal, found `{t}`"),
            )),
        }
    }

    fn program(&mut self) -> Result<AProgram, LangError> {
        let mut prog = AProgram::default();
        loop {
            match self.peek().clone() {
                Tok::Eof => break,
                Tok::Kw(Kw::Global) => {
                    self.bump();
                    prog.globals.push(self.global()?);
                }
                Tok::Kw(Kw::Lock) => {
                    self.bump();
                    let name = self.ident("lock name")?;
                    self.expect_punct(Punct::Semi, "`;`")?;
                    prog.locks.push(name);
                }
                Tok::Kw(Kw::Fn) => {
                    prog.funcs.push(self.func()?);
                }
                t => {
                    return Err(LangError::parse(
                        self.line(),
                        format!("expected `global`, `lock` or `fn`, found `{t}`"),
                    ))
                }
            }
        }
        Ok(prog)
    }

    fn global(&mut self) -> Result<AGlobal, LangError> {
        let name = self.ident("global name")?;
        self.expect_punct(Punct::Colon, "`:`")?;
        let g = if self.eat_kw(Kw::Int) {
            let init = if self.eat_punct(Punct::Assign) {
                self.int_lit()?
            } else {
                0
            };
            AGlobal::Scalar { name, init }
        } else if self.eat_kw(Kw::Ptr) {
            AGlobal::Ptr { name }
        } else if self.eat_punct(Punct::LBracket) {
            self.expect_kw(Kw::Int, "`int`")?;
            self.expect_punct(Punct::Semi, "`;` in array type")?;
            let len = self.int_lit()?;
            if len < 0 {
                return Err(LangError::parse(self.line(), "array length must be >= 0"));
            }
            self.expect_punct(Punct::RBracket, "`]`")?;
            let init = if self.eat_punct(Punct::Assign) {
                self.int_lit()?
            } else {
                0
            };
            AGlobal::Array {
                name,
                len: len as usize,
                init,
            }
        } else {
            return Err(LangError::parse(
                self.line(),
                "expected `int`, `ptr` or `[int; N]` type",
            ));
        };
        self.expect_punct(Punct::Semi, "`;`")?;
        Ok(g)
    }

    fn func(&mut self) -> Result<AFunc, LangError> {
        let line = self.line();
        self.expect_kw(Kw::Fn, "`fn`")?;
        let name = self.ident("function name")?;
        self.expect_punct(Punct::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.eat_punct(Punct::RParen) {
            loop {
                params.push(self.ident("parameter name")?);
                // Optional `: int` annotation on parameters.
                if self.eat_punct(Punct::Colon) && !(self.eat_kw(Kw::Int) || self.eat_kw(Kw::Ptr)) {
                    return Err(LangError::parse(self.line(), "expected `int` or `ptr`"));
                }
                if self.eat_punct(Punct::RParen) {
                    break;
                }
                self.expect_punct(Punct::Comma, "`,`")?;
            }
        }
        let body = self.block()?;
        Ok(AFunc {
            name,
            params,
            body,
            line,
        })
    }

    fn block(&mut self) -> Result<Vec<AStmt>, LangError> {
        self.expect_punct(Punct::LBrace, "`{`")?;
        let mut out = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            if self.peek() == &Tok::Eof {
                return Err(LangError::parse(self.line(), "unclosed block"));
            }
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<AStmt, LangError> {
        let line = self.line();
        let kind = match self.peek().clone() {
            Tok::Kw(Kw::Var) => {
                self.bump();
                let name = self.ident("variable name")?;
                if self.eat_punct(Punct::Colon) && !(self.eat_kw(Kw::Int) || self.eat_kw(Kw::Ptr)) {
                    return Err(LangError::parse(self.line(), "expected `int` or `ptr`"));
                }
                let init = if self.eat_punct(Punct::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect_punct(Punct::Semi, "`;`")?;
                AStmtKind::VarDecl(name, init)
            }
            Tok::Kw(Kw::If) => return self.if_stmt(),
            Tok::Kw(Kw::While) => {
                self.bump();
                self.expect_punct(Punct::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen, "`)`")?;
                let body = self.block()?;
                AStmtKind::While { cond, body }
            }
            Tok::Kw(Kw::For) => {
                self.bump();
                self.expect_punct(Punct::LParen, "`(`")?;
                let init = if self.peek() == &Tok::Punct(Punct::Semi) {
                    None
                } else {
                    Some(Box::new(AStmt {
                        kind: self.simple_stmt()?,
                        line: self.line(),
                    }))
                };
                self.expect_punct(Punct::Semi, "`;`")?;
                let cond = self.expr()?;
                self.expect_punct(Punct::Semi, "`;`")?;
                let step = if self.peek() == &Tok::Punct(Punct::RParen) {
                    None
                } else {
                    Some(Box::new(AStmt {
                        kind: self.simple_stmt()?,
                        line: self.line(),
                    }))
                };
                self.expect_punct(Punct::RParen, "`)`")?;
                let body = self.block()?;
                AStmtKind::For {
                    init,
                    cond,
                    step,
                    body,
                }
            }
            Tok::Kw(Kw::Break) => {
                self.bump();
                self.expect_punct(Punct::Semi, "`;`")?;
                AStmtKind::Break
            }
            Tok::Kw(Kw::Continue) => {
                self.bump();
                self.expect_punct(Punct::Semi, "`;`")?;
                AStmtKind::Continue
            }
            Tok::Kw(Kw::Goto) => {
                self.bump();
                let l = self.ident("label name")?;
                self.expect_punct(Punct::Semi, "`;`")?;
                AStmtKind::Goto(l)
            }
            Tok::Kw(Kw::Label) => {
                self.bump();
                let l = self.ident("label name")?;
                self.expect_punct(Punct::Colon, "`:`")?;
                AStmtKind::Label(l)
            }
            Tok::Kw(Kw::Return) => {
                self.bump();
                let v = if self.peek() == &Tok::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::Semi, "`;`")?;
                AStmtKind::Return(v)
            }
            Tok::Kw(Kw::Acquire) => {
                self.bump();
                let l = self.ident("lock name")?;
                self.expect_punct(Punct::Semi, "`;`")?;
                AStmtKind::Acquire(l)
            }
            Tok::Kw(Kw::Release) => {
                self.bump();
                let l = self.ident("lock name")?;
                self.expect_punct(Punct::Semi, "`;`")?;
                AStmtKind::Release(l)
            }
            Tok::Kw(Kw::Join) => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(Punct::Semi, "`;`")?;
                AStmtKind::Join(e)
            }
            Tok::Kw(Kw::Fence) => {
                self.bump();
                self.expect_punct(Punct::Semi, "`;`")?;
                AStmtKind::Fence
            }
            Tok::Kw(Kw::Assert) => {
                self.bump();
                self.expect_punct(Punct::LParen, "`(`")?;
                let e = self.expr()?;
                self.expect_punct(Punct::RParen, "`)`")?;
                self.expect_punct(Punct::Semi, "`;`")?;
                AStmtKind::Assert(e)
            }
            Tok::Kw(Kw::Output) => {
                self.bump();
                self.expect_punct(Punct::LParen, "`(`")?;
                let e = self.expr()?;
                self.expect_punct(Punct::RParen, "`)`")?;
                self.expect_punct(Punct::Semi, "`;`")?;
                AStmtKind::Output(e)
            }
            Tok::Kw(Kw::Spawn) => {
                self.bump();
                let f = self.ident("function name")?;
                let args = self.call_args()?;
                self.expect_punct(Punct::Semi, "`;`")?;
                AStmtKind::SpawnStmt(f, args)
            }
            Tok::Punct(Punct::LBrace) => AStmtKind::Block(self.block()?),
            _ => {
                let k = self.simple_stmt()?;
                self.expect_punct(Punct::Semi, "`;`")?;
                k
            }
        };
        Ok(AStmt { kind, line })
    }

    fn if_stmt(&mut self) -> Result<AStmt, LangError> {
        let line = self.line();
        self.expect_kw(Kw::If, "`if`")?;
        self.expect_punct(Punct::LParen, "`(`")?;
        let cond = self.expr()?;
        self.expect_punct(Punct::RParen, "`)`")?;
        let then_blk = self.block()?;
        let else_blk = if self.eat_kw(Kw::Else) {
            if self.peek() == &Tok::Kw(Kw::If) {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(AStmt {
            kind: AStmtKind::If {
                cond,
                then_blk,
                else_blk,
            },
            line,
        })
    }

    /// `lvalue = rhs` or a bare call `f(args)` — used in statements and in
    /// `for` init/step positions.
    fn simple_stmt(&mut self) -> Result<AStmtKind, LangError> {
        // Bare call: ident followed by `(`.
        if let (Tok::Ident(name), Tok::Punct(Punct::LParen)) =
            (self.peek().clone(), self.peek2().clone())
        {
            self.bump();
            let args = self.call_args()?;
            return Ok(AStmtKind::CallStmt(name, args));
        }
        let lv = self.lvalue()?;
        self.expect_punct(Punct::Assign, "`=`")?;
        let rhs = self.rhs()?;
        Ok(AStmtKind::Assign(lv, rhs))
    }

    fn rhs(&mut self) -> Result<ARhs, LangError> {
        match self.peek().clone() {
            Tok::Kw(Kw::Alloc) => {
                self.bump();
                self.expect_punct(Punct::LParen, "`(`")?;
                let e = self.expr()?;
                self.expect_punct(Punct::RParen, "`)`")?;
                Ok(ARhs::Alloc(e))
            }
            Tok::Kw(Kw::Spawn) => {
                self.bump();
                let f = self.ident("function name")?;
                let args = self.call_args()?;
                Ok(ARhs::Spawn(f, args))
            }
            Tok::Ident(name) if self.peek2() == &Tok::Punct(Punct::LParen) => {
                self.bump();
                let args = self.call_args()?;
                Ok(ARhs::Call(name, args))
            }
            _ => Ok(ARhs::Expr(self.expr()?)),
        }
    }

    fn call_args(&mut self) -> Result<Vec<AExpr>, LangError> {
        self.expect_punct(Punct::LParen, "`(`")?;
        let mut args = Vec::new();
        if !self.eat_punct(Punct::RParen) {
            loop {
                args.push(self.expr()?);
                if self.eat_punct(Punct::RParen) {
                    break;
                }
                self.expect_punct(Punct::Comma, "`,`")?;
            }
        }
        Ok(args)
    }

    fn lvalue(&mut self) -> Result<ALValue, LangError> {
        let base = self.postfix()?;
        match base {
            AExpr::Name(n) => Ok(ALValue::Name(n)),
            AExpr::Index(b, i) => Ok(ALValue::Index(b, i)),
            _ => Err(LangError::parse(
                self.line(),
                "left-hand side must be a variable or an indexed location",
            )),
        }
    }

    fn expr(&mut self) -> Result<AExpr, LangError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<AExpr, LangError> {
        let mut lhs = self.and_expr()?;
        while self.eat_punct(Punct::OrOr) {
            let rhs = self.and_expr()?;
            lhs = AExpr::Binary(ABinOp::OrOr, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<AExpr, LangError> {
        let mut lhs = self.eq_expr()?;
        while self.eat_punct(Punct::AndAnd) {
            let rhs = self.eq_expr()?;
            lhs = AExpr::Binary(ABinOp::AndAnd, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn eq_expr(&mut self) -> Result<AExpr, LangError> {
        let mut lhs = self.rel_expr()?;
        loop {
            let op = if self.eat_punct(Punct::EqEq) {
                ABinOp::Eq
            } else if self.eat_punct(Punct::NotEq) {
                ABinOp::Ne
            } else {
                break;
            };
            let rhs = self.rel_expr()?;
            lhs = AExpr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn rel_expr(&mut self) -> Result<AExpr, LangError> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = if self.eat_punct(Punct::Lt) {
                ABinOp::Lt
            } else if self.eat_punct(Punct::Le) {
                ABinOp::Le
            } else if self.eat_punct(Punct::Gt) {
                ABinOp::Gt
            } else if self.eat_punct(Punct::Ge) {
                ABinOp::Ge
            } else {
                break;
            };
            let rhs = self.add_expr()?;
            lhs = AExpr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<AExpr, LangError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = if self.eat_punct(Punct::Plus) {
                ABinOp::Add
            } else if self.eat_punct(Punct::Minus) {
                ABinOp::Sub
            } else {
                break;
            };
            let rhs = self.mul_expr()?;
            lhs = AExpr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<AExpr, LangError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = if self.eat_punct(Punct::Star) {
                ABinOp::Mul
            } else if self.eat_punct(Punct::Slash) {
                ABinOp::Div
            } else if self.eat_punct(Punct::Percent) {
                ABinOp::Mod
            } else {
                break;
            };
            let rhs = self.unary_expr()?;
            lhs = AExpr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<AExpr, LangError> {
        if self.eat_punct(Punct::Not) {
            Ok(AExpr::Unary(AUnOp::Not, Box::new(self.unary_expr()?)))
        } else if self.eat_punct(Punct::Minus) {
            Ok(AExpr::Unary(AUnOp::Neg, Box::new(self.unary_expr()?)))
        } else {
            self.postfix()
        }
    }

    fn postfix(&mut self) -> Result<AExpr, LangError> {
        let mut e = self.primary()?;
        while self.eat_punct(Punct::LBracket) {
            let idx = self.expr()?;
            self.expect_punct(Punct::RBracket, "`]`")?;
            e = AExpr::Index(Box::new(e), Box::new(idx));
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<AExpr, LangError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(AExpr::Int(v))
            }
            Tok::Kw(Kw::Null) => {
                self.bump();
                Ok(AExpr::Null)
            }
            Tok::Ident(s) => {
                self.bump();
                Ok(AExpr::Name(s))
            }
            Tok::Punct(Punct::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(Punct::RParen, "`)`")?;
                Ok(e)
            }
            t => Err(LangError::parse(
                self.line(),
                format!("expected expression, found `{t}`"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig1_shape() {
        let src = r#"
            global x: int;
            global a: [int; 4];
            lock l;
            fn F(p) { p[0] = 1; }
            fn T1() {
                var i;
                var p;
                for (i = 0; i < 2; i = i + 1) {
                    x = 0;
                    p = alloc(2);
                    acquire l;
                    if (a[i] > 0) { x = 1; p = null; }
                    release l;
                    if (!x) { F(p); }
                }
            }
            fn T2() { x = 0; }
            fn main() { spawn T1(); spawn T2(); }
        "#;
        let prog = parse(src).unwrap();
        assert_eq!(prog.globals.len(), 2);
        assert_eq!(prog.locks, vec!["l"]);
        assert_eq!(prog.funcs.len(), 4);
        assert_eq!(prog.funcs[1].name, "T1");
    }

    #[test]
    fn parses_else_if_chain() {
        let prog = parse(
            "fn f(a) { if (a > 1) { return 1; } else if (a > 0) { return 2; } else { return 3; } }",
        )
        .unwrap();
        match &prog.funcs[0].body[0].kind {
            AStmtKind::If { else_blk, .. } => {
                assert_eq!(else_blk.len(), 1);
                assert!(matches!(else_blk[0].kind, AStmtKind::If { .. }));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_goto_and_labels() {
        let prog = parse("fn f() { goto out; label out: return; }").unwrap();
        assert!(matches!(prog.funcs[0].body[0].kind, AStmtKind::Goto(_)));
        assert!(matches!(prog.funcs[0].body[1].kind, AStmtKind::Label(_)));
    }

    #[test]
    fn parses_short_circuit_condition() {
        let prog = parse("fn f(a, b) { if (a || b && a) { return; } }").unwrap();
        match &prog.funcs[0].body[0].kind {
            AStmtKind::If { cond, .. } => {
                assert!(matches!(cond, AExpr::Binary(ABinOp::OrOr, _, _)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_spawn_with_result() {
        let prog = parse("fn w() {} fn main() { var t; t = spawn w(); join t; }").unwrap();
        match &prog.funcs[1].body[1].kind {
            AStmtKind::Assign(_, ARhs::Spawn(f, _)) => assert_eq!(f, "w"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_call_assignment_and_statement() {
        let prog = parse("fn g(v) { return v; } fn main() { var r; r = g(3); g(4); }").unwrap();
        assert!(matches!(
            prog.funcs[1].body[1].kind,
            AStmtKind::Assign(_, ARhs::Call(..))
        ));
        assert!(matches!(
            prog.funcs[1].body[2].kind,
            AStmtKind::CallStmt(..)
        ));
    }

    #[test]
    fn parses_nested_index() {
        let prog = parse("fn f(p) { p[0][1] = 2; }").unwrap();
        match &prog.funcs[0].body[0].kind {
            AStmtKind::Assign(ALValue::Index(base, _), _) => {
                assert!(matches!(**base, AExpr::Index(..)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_missing_semicolon() {
        let err = parse("fn f() { var x }").unwrap_err();
        assert!(err.to_string().contains("expected `;`"), "{err}");
    }

    #[test]
    fn rejects_bad_lvalue() {
        assert!(parse("fn f() { 3 = 4; }").is_err());
    }

    #[test]
    fn precedence_is_c_like() {
        let prog = parse("fn f(a, b, c) { if (a + b * c == 7) { return; } }").unwrap();
        match &prog.funcs[0].body[0].kind {
            AStmtKind::If { cond, .. } => match cond {
                AExpr::Binary(ABinOp::Eq, lhs, _) => match &**lhs {
                    AExpr::Binary(ABinOp::Add, _, rhs) => {
                        assert!(matches!(**rhs, AExpr::Binary(ABinOp::Mul, _, _)));
                    }
                    other => panic!("{other:?}"),
                },
                other => panic!("{other:?}"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn global_forms() {
        let prog = parse("global s: int = 5; global a: [int; 3] = 1; global p: ptr;").unwrap();
        assert_eq!(
            prog.globals[0],
            AGlobal::Scalar {
                name: "s".into(),
                init: 5
            }
        );
        assert_eq!(
            prog.globals[1],
            AGlobal::Array {
                name: "a".into(),
                len: 3,
                init: 1
            }
        );
        assert_eq!(prog.globals[2], AGlobal::Ptr { name: "p".into() });
    }
}
