//! Surface syntax tree for MiniCC.
//!
//! MiniCC is the small C-like concurrent language the workloads are written
//! in. It deliberately includes every control-flow construct the paper's
//! reverse-engineering algorithm distinguishes: plain conditionals (single
//! control dependence), short-circuit `&&`/`||` conditions (multiple control
//! dependences aggregatable to one, Fig. 5b), `goto` (non-aggregatable
//! multiple control dependences, Fig. 6), and `for`/`while` loops (loop
//! predicates, with and without natural counters).

/// A parsed expression with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedExpr {
    /// The expression.
    pub expr: AExpr,
    /// 1-based source line.
    pub line: u32,
}

/// Surface expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum AExpr {
    /// Integer literal.
    Int(i64),
    /// `null`.
    Null,
    /// Variable reference (local or global, resolved during lowering).
    Name(String),
    /// Indexing: `base[idx]` — global array element or heap load.
    Index(Box<AExpr>, Box<AExpr>),
    /// Unary operator.
    Unary(AUnOp, Box<AExpr>),
    /// Binary operator. `&&`/`||` short-circuit in `if`/`assert` conditions.
    Binary(ABinOp, Box<AExpr>, Box<AExpr>),
}

/// Surface unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AUnOp {
    /// `-e`.
    Neg,
    /// `!e`.
    Not,
}

/// Surface binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // operator/keyword names are self-describing
pub enum ABinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Short-circuit conjunction.
    AndAnd,
    /// Short-circuit disjunction.
    OrOr,
}

/// Assignable surface locations.
#[derive(Debug, Clone, PartialEq)]
pub enum ALValue {
    /// Named variable.
    Name(String),
    /// `base[idx]`.
    Index(Box<AExpr>, Box<AExpr>),
}

/// The right-hand side of an assignment statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ARhs {
    /// Plain expression.
    Expr(AExpr),
    /// Function call `f(args)`.
    Call(String, Vec<AExpr>),
    /// `alloc(len)`.
    Alloc(AExpr),
    /// `spawn f(args)`, evaluating to the new thread id.
    Spawn(String, Vec<AExpr>),
}

/// Surface statements, each tagged with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct AStmt {
    /// Statement payload.
    pub kind: AStmtKind,
    /// 1-based source line.
    pub line: u32,
}

/// Statement payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum AStmtKind {
    /// `var x;` or `var x = e;` — declares a local.
    VarDecl(String, Option<AExpr>),
    /// `lv = rhs;`.
    Assign(ALValue, ARhs),
    /// Expression-statement call `f(args);`.
    CallStmt(String, Vec<AExpr>),
    /// `spawn f(args);` with the thread id discarded.
    SpawnStmt(String, Vec<AExpr>),
    /// `if (c) { .. } else { .. }`.
    If {
        /// Condition (may short-circuit).
        cond: AExpr,
        /// Then-block.
        then_blk: Vec<AStmt>,
        /// Else-block (possibly empty).
        else_blk: Vec<AStmt>,
    },
    /// `while (c) { .. }` — instrumented loop (no natural counter).
    While {
        /// Condition (evaluated eagerly; see lowering docs).
        cond: AExpr,
        /// Body.
        body: Vec<AStmt>,
    },
    /// `for (init; cond; step) { .. }` — loop with a natural counter.
    For {
        /// Initializer statement.
        init: Option<Box<AStmt>>,
        /// Condition.
        cond: AExpr,
        /// Step statement.
        step: Option<Box<AStmt>>,
        /// Body.
        body: Vec<AStmt>,
    },
    /// `break;`.
    Break,
    /// `continue;`.
    Continue,
    /// `goto label;`.
    Goto(String),
    /// `label name:` — a jump target.
    Label(String),
    /// `return;` / `return e;`.
    Return(Option<AExpr>),
    /// `acquire lockname;`.
    Acquire(String),
    /// `release lockname;`.
    Release(String),
    /// `join e;`.
    Join(AExpr),
    /// `fence;` — full memory fence (store-buffer drain point).
    Fence,
    /// `assert(e);`.
    Assert(AExpr),
    /// `output(e);`.
    Output(AExpr),
    /// `{ .. }` nested block (scoping is flat; this only groups).
    Block(Vec<AStmt>),
}

/// A surface global declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum AGlobal {
    /// `global x: int = 3;`
    Scalar {
        /// Name.
        name: String,
        /// Initial value.
        init: i64,
    },
    /// `global a: [int; 8] = 0;`
    Array {
        /// Name.
        name: String,
        /// Length.
        len: usize,
        /// Initial value of every element.
        init: i64,
    },
    /// `global p: ptr;`
    Ptr {
        /// Name.
        name: String,
    },
}

impl AGlobal {
    /// The declared name.
    pub fn name(&self) -> &str {
        match self {
            AGlobal::Scalar { name, .. } | AGlobal::Array { name, .. } | AGlobal::Ptr { name } => {
                name
            }
        }
    }
}

/// A surface function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct AFunc {
    /// Name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<AStmt>,
    /// 1-based source line of the declaration.
    pub line: u32,
}

/// A parsed MiniCC compilation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AProgram {
    /// Global declarations.
    pub globals: Vec<AGlobal>,
    /// Lock declarations.
    pub locks: Vec<String>,
    /// Functions.
    pub funcs: Vec<AFunc>,
}
