//! Statement-level intermediate representation.
//!
//! Every analysis in this project — control dependence, execution indexing,
//! dump reverse engineering — is defined over *statements*, exactly as in the
//! paper. The IR therefore keeps one [`Inst`] per source statement (plus a
//! small number of synthetic loop-counter instructions, see
//! [`Inst::LoopEnter`] / [`Inst::LoopIter`]), with explicit intra-procedural
//! control flow via statement indices.
//!
//! A [`Program`] is a closed compilation unit: globals, locks and functions.
//! Pointers refer to heap objects allocated with [`Inst::Alloc`]; `null` is a
//! first-class value whose dereference is the canonical crash of the paper's
//! running example (Fig. 1).

use std::fmt;

/// Identifies a function within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

/// Identifies a statement within a [`Function`] body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtId(pub u32);

/// Identifies a global variable slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalId(pub u32);

/// Identifies a local variable slot within the current frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocalId(pub u32);

/// Identifies a statically declared lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(pub u32);

/// Identifies a loop within a function; doubles as the index of the loop's
/// counter slot in a stack frame (the paper's loop-counter instrumentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopId(pub u32);

/// Identifies a short-circuit condition group: the set of branch statements
/// that were lowered from one source-level `&&`/`||` condition. The paper
/// (§3.2, Fig. 5b) aggregates such predicates into a single "complex
/// predicate" index node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CondGroupId(pub u32);

/// A program counter: function plus statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pc {
    /// The function containing the statement.
    pub func: FuncId,
    /// The statement within that function.
    pub stmt: StmtId,
}

impl Pc {
    /// Builds a program counter from raw indices.
    pub fn new(func: FuncId, stmt: StmtId) -> Self {
        Pc { func, stmt }
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}:{}", self.func.0, self.stmt.0)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (0 becomes 1, everything else 0; null is falsy).
    Not,
}

/// Binary operators. `And`/`Or` here are *eager* (both operands evaluated);
/// source-level `&&`/`||` inside `if`/`assert` conditions are lowered to
/// short-circuit branch chains instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // operator/keyword names are self-describing
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// A side-effect-free expression.
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// The null pointer.
    Null,
    /// Read of a local slot.
    Local(LocalId),
    /// Read of a scalar global.
    Global(GlobalId),
    /// Read of an element of a global array.
    GlobalElem(GlobalId, Box<Expr>),
    /// Read through a pointer: `ptr[idx]`. Crashes on null or out-of-bounds.
    HeapLoad {
        /// Expression evaluating to a pointer.
        ptr: Box<Expr>,
        /// Field / element index.
        idx: Box<Expr>,
    },
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Eager binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a binary operation.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor for a unary operation.
    pub fn un(op: UnOp, e: Expr) -> Expr {
        Expr::Unary(op, Box::new(e))
    }
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum Place {
    /// A local slot.
    Local(LocalId),
    /// A scalar global.
    Global(GlobalId),
    /// An element of a global array.
    GlobalElem(GlobalId, Expr),
    /// A store through a pointer: `ptr[idx] = ...`.
    HeapStore {
        /// Expression evaluating to a pointer.
        ptr: Expr,
        /// Field / element index.
        idx: Expr,
    },
}

/// One statement of the IR.
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum Inst {
    /// `dst = src`.
    Assign {
        /// Destination location.
        dst: Place,
        /// Source expression.
        src: Expr,
    },
    /// A two-way conditional branch; the only predicate statement kind.
    Branch {
        /// Condition; nonzero / non-null is true.
        cond: Expr,
        /// Target when true.
        then_to: StmtId,
        /// Target when false.
        else_to: StmtId,
        /// `Some` when this branch is a loop header.
        loop_header: Option<LoopId>,
        /// `Some` when this branch belongs to a short-circuit group.
        cond_group: Option<CondGroupId>,
    },
    /// Unconditional jump (`goto`, `break`, `continue`, loop back edges).
    Jump {
        /// Target statement.
        to: StmtId,
    },
    /// Direct call.
    Call {
        /// Callee.
        callee: FuncId,
        /// Actual arguments.
        args: Vec<Expr>,
        /// Where to store the return value, if any.
        dst: Option<Place>,
    },
    /// Return from the current function.
    Return {
        /// Optional return value.
        value: Option<Expr>,
    },
    /// Acquire a lock; blocks while held by another thread.
    Acquire {
        /// The lock.
        lock: LockId,
    },
    /// Release a lock; fails the run if not held by this thread.
    Release {
        /// The lock.
        lock: LockId,
    },
    /// Spawn a new thread running `callee(args)`; stores the thread id.
    Spawn {
        /// Thread entry function.
        callee: FuncId,
        /// Arguments passed to the entry function.
        args: Vec<Expr>,
        /// Where to store the spawned thread id, if anywhere.
        dst: Option<Place>,
    },
    /// Block until the given thread id terminates.
    Join {
        /// Expression evaluating to a thread id.
        thread: Expr,
    },
    /// Allocate a heap object with `len` zero-initialized slots.
    Alloc {
        /// Destination for the fresh pointer.
        dst: Place,
        /// Number of slots.
        len: Expr,
    },
    /// Crash the run if the condition is false.
    Assert {
        /// Condition that must hold.
        cond: Expr,
    },
    /// Append a value to the run's observable output.
    Output {
        /// Value to emit.
        value: Expr,
    },
    /// Synthetic: reset the loop counter for `loop_id` (loop pre-header).
    LoopEnter {
        /// The loop whose counter is reset.
        loop_id: LoopId,
    },
    /// Synthetic: increment the loop counter for `loop_id` (top of body).
    LoopIter {
        /// The loop whose counter is bumped.
        loop_id: LoopId,
    },
    /// No operation (labels, empty statements).
    Nop,
    /// Full memory fence: drains the executing thread's store buffer
    /// under a relaxed memory model and acts as a scheduling point in
    /// every model. A no-op for memory under sequential consistency.
    Fence,
}

impl Inst {
    /// Stable opcode tag of this instruction kind, in declaration order.
    ///
    /// The dispatch-plan compiler (`mcr-vm`) serializes pre-decoded ops
    /// against this layout, so the values are part of the plan wire
    /// format: existing tags must never be renumbered (new kinds append).
    pub fn opcode(&self) -> u8 {
        match self {
            Inst::Assign { .. } => 0,
            Inst::Branch { .. } => 1,
            Inst::Jump { .. } => 2,
            Inst::Call { .. } => 3,
            Inst::Return { .. } => 4,
            Inst::Acquire { .. } => 5,
            Inst::Release { .. } => 6,
            Inst::Spawn { .. } => 7,
            Inst::Join { .. } => 8,
            Inst::Alloc { .. } => 9,
            Inst::Assert { .. } => 10,
            Inst::Output { .. } => 11,
            Inst::LoopEnter { .. } => 12,
            Inst::LoopIter { .. } => 13,
            Inst::Nop => 14,
            Inst::Fence => 15,
        }
    }

    /// True for the synthetic loop-counter instructions inserted by the
    /// instrumentation pass; these are excluded from the Table 1 census.
    pub fn is_synthetic(&self) -> bool {
        matches!(self, Inst::LoopEnter { .. } | Inst::LoopIter { .. })
    }

    /// True for predicate statements (the only branching kind).
    pub fn is_branch(&self) -> bool {
        matches!(self, Inst::Branch { .. })
    }

    /// True for synchronization operations that act as CHESS scheduling
    /// points: acquire, release, spawn, join, fence.
    pub fn is_sync(&self) -> bool {
        matches!(
            self,
            Inst::Acquire { .. }
                | Inst::Release { .. }
                | Inst::Spawn { .. }
                | Inst::Join { .. }
                | Inst::Fence
        )
    }
}

/// Metadata about one loop in a function.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct LoopInfo {
    /// The header branch statement.
    pub header: StmtId,
    /// Whether the loop carries a natural counter (source-level `for`): the
    /// paper observes such loops need no extra instrumentation, which is why
    /// splash-2 shows lower overhead than apache/mysql (Fig. 10). Natural
    /// counters cost zero extra instructions.
    pub natural: bool,
}

/// Shape of one short-circuit condition group after lowering.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct CondGroup {
    /// Branch statements belonging to the group, in evaluation order; the
    /// first member is the entry ("root") predicate.
    pub members: Vec<StmtId>,
    /// For each (member, outcome) edge: `None` when the edge stays inside
    /// the group (continues evaluating the condition), `Some(side)` when it
    /// resolves the whole complex predicate to `side`.
    pub edge_sides: Vec<((StmtId, bool), Option<bool>)>,
}

impl CondGroup {
    /// Looks up how an executed member edge relates to the group.
    ///
    /// Returns `None` for internal edges (condition still being evaluated)
    /// and `Some(side)` when the complex predicate resolves.
    pub fn resolve(&self, stmt: StmtId, outcome: bool) -> Option<bool> {
        self.edge_sides
            .iter()
            .find(|((s, b), _)| *s == stmt && *b == outcome)
            .and_then(|(_, side)| *side)
    }

    /// The entry predicate of the group.
    pub fn root(&self) -> StmtId {
        self.members[0]
    }
}

/// A function: a flat statement list with explicit control flow.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct Function {
    /// Function name (unique within the program).
    pub name: String,
    /// Number of parameters; parameters occupy locals `0..params`.
    pub params: u32,
    /// Names of all locals (parameters first).
    pub local_names: Vec<String>,
    /// The statement list; execution begins at statement 0 and instructions
    /// without explicit control flow fall through to the next index.
    pub body: Vec<Inst>,
    /// Loop metadata; `LoopId(i)` indexes this vector.
    pub loops: Vec<LoopInfo>,
    /// Short-circuit groups; `CondGroupId(i)` indexes this vector.
    pub cond_groups: Vec<CondGroup>,
    /// Source line of each statement (0 when synthesized).
    pub lines: Vec<u32>,
}

impl Function {
    /// Number of local slots a frame of this function needs.
    pub fn local_count(&self) -> usize {
        self.local_names.len()
    }

    /// The instruction at `stmt`.
    ///
    /// # Panics
    ///
    /// Panics if `stmt` is out of bounds.
    pub fn inst(&self, stmt: StmtId) -> &Inst {
        &self.body[stmt.0 as usize]
    }

    /// Source line of `stmt` (0 if synthesized).
    pub fn line(&self, stmt: StmtId) -> u32 {
        self.lines.get(stmt.0 as usize).copied().unwrap_or(0)
    }

    /// Whether `stmt` is a loop-header branch, and if so which loop.
    pub fn loop_header(&self, stmt: StmtId) -> Option<LoopId> {
        match self.inst(stmt) {
            Inst::Branch { loop_header, .. } => *loop_header,
            _ => None,
        }
    }

    /// Whether `stmt` belongs to a short-circuit group.
    pub fn cond_group(&self, stmt: StmtId) -> Option<CondGroupId> {
        match self.inst(stmt) {
            Inst::Branch { cond_group, .. } => *cond_group,
            _ => None,
        }
    }
}

/// Shape of a global variable.
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum GlobalKind {
    /// A single slot, integer-initialized.
    Scalar {
        /// Initial value.
        init: i64,
    },
    /// A fixed-length array of slots, each integer-initialized.
    Array {
        /// Element count.
        len: usize,
        /// Initial value of each element.
        init: i64,
    },
    /// A single slot initialized to `null`, intended to hold pointers.
    Ptr,
}

/// A global variable declaration.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct GlobalDecl {
    /// Name (unique within the program).
    pub name: String,
    /// Shape and initial value.
    pub kind: GlobalKind,
}

/// A complete program.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct Program {
    /// Global variables; `GlobalId(i)` indexes this vector.
    pub globals: Vec<GlobalDecl>,
    /// Lock names; `LockId(i)` indexes this vector.
    pub locks: Vec<String>,
    /// Functions; `FuncId(i)` indexes this vector.
    pub funcs: Vec<Function>,
    /// The entry function, run as thread 0.
    pub main: FuncId,
}

impl Program {
    /// The function with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Looks up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Looks up a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| GlobalId(i as u32))
    }

    /// The instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of bounds.
    pub fn inst(&self, pc: Pc) -> &Inst {
        self.func(pc.func).inst(pc.stmt)
    }

    /// Total number of statements across all functions, excluding synthetic
    /// loop-counter instructions. This is the population of the Table 1
    /// census.
    pub fn stmt_count(&self) -> usize {
        self.funcs
            .iter()
            .map(|f| f.body.iter().filter(|i| !i.is_synthetic()).count())
            .sum()
    }

    /// Validates internal consistency: all control-flow targets, ids, and
    /// group/loop references are in bounds. Returns a description of the
    /// first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.main.0 as usize >= self.funcs.len() {
            return Err(format!("main function id {} out of range", self.main.0));
        }
        for (fi, f) in self.funcs.iter().enumerate() {
            let n = f.body.len();
            if f.lines.len() != n {
                return Err(format!("{}: lines/body length mismatch", f.name));
            }
            let check = |s: StmtId, what: &str| -> Result<(), String> {
                if (s.0 as usize) < n {
                    Ok(())
                } else {
                    Err(format!("{}: {} target {} out of range", f.name, what, s.0))
                }
            };
            for (si, inst) in f.body.iter().enumerate() {
                match inst {
                    Inst::Branch {
                        then_to,
                        else_to,
                        loop_header,
                        cond_group,
                        ..
                    } => {
                        check(*then_to, "branch then")?;
                        check(*else_to, "branch else")?;
                        if let Some(l) = loop_header {
                            if l.0 as usize >= f.loops.len() {
                                return Err(format!("{}: loop id {} out of range", f.name, l.0));
                            }
                        }
                        if let Some(g) = cond_group {
                            if g.0 as usize >= f.cond_groups.len() {
                                return Err(format!("{}: cond group {} out of range", f.name, g.0));
                            }
                        }
                    }
                    Inst::Jump { to } => check(*to, "jump")?,
                    Inst::Call { callee, .. } | Inst::Spawn { callee, .. }
                        if callee.0 as usize >= self.funcs.len() =>
                    {
                        return Err(format!(
                            "{}:{}: callee {} out of range",
                            f.name, si, callee.0
                        ));
                    }
                    Inst::Acquire { lock } | Inst::Release { lock }
                        if lock.0 as usize >= self.locks.len() =>
                    {
                        return Err(format!("{}:{}: lock {} out of range", f.name, si, lock.0));
                    }
                    _ => {}
                }
            }
            for (li, l) in f.loops.iter().enumerate() {
                check(l.header, "loop header")?;
                if f.loop_header(l.header) != Some(LoopId(li as u32)) {
                    return Err(format!(
                        "{}: loop {} header {} is not marked as its header",
                        f.name, li, l.header.0
                    ));
                }
            }
            let _ = fi;
        }
        Ok(())
    }
}

/// Human-readable rendering of a function body, one statement per line.
pub fn render_function(program: &Program, func: FuncId) -> String {
    use std::fmt::Write as _;
    let f = program.func(func);
    let mut out = String::new();
    let _ = writeln!(out, "fn {} (params: {})", f.name, f.params);
    for (i, inst) in f.body.iter().enumerate() {
        let _ = writeln!(out, "  {:>4}: {}", i, render_inst(program, f, inst));
    }
    out
}

fn render_place(program: &Program, f: &Function, p: &Place) -> String {
    match p {
        Place::Local(l) => f.local_names[l.0 as usize].clone(),
        Place::Global(g) => program.globals[g.0 as usize].name.clone(),
        Place::GlobalElem(g, e) => format!(
            "{}[{}]",
            program.globals[g.0 as usize].name,
            render_expr(program, f, e)
        ),
        Place::HeapStore { ptr, idx } => format!(
            "{}[{}]",
            render_expr(program, f, ptr),
            render_expr(program, f, idx)
        ),
    }
}

fn render_expr(program: &Program, f: &Function, e: &Expr) -> String {
    match e {
        Expr::Const(v) => v.to_string(),
        Expr::Null => "null".into(),
        Expr::Local(l) => f.local_names[l.0 as usize].clone(),
        Expr::Global(g) => program.globals[g.0 as usize].name.clone(),
        Expr::GlobalElem(g, i) => format!(
            "{}[{}]",
            program.globals[g.0 as usize].name,
            render_expr(program, f, i)
        ),
        Expr::HeapLoad { ptr, idx } => format!(
            "{}[{}]",
            render_expr(program, f, ptr),
            render_expr(program, f, idx)
        ),
        Expr::Unary(op, a) => format!(
            "{}{}",
            match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            },
            render_expr(program, f, a)
        ),
        Expr::Binary(op, a, b) => {
            let o = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "&&",
                BinOp::Or => "||",
            };
            format!(
                "({} {} {})",
                render_expr(program, f, a),
                o,
                render_expr(program, f, b)
            )
        }
    }
}

fn render_inst(program: &Program, f: &Function, inst: &Inst) -> String {
    match inst {
        Inst::Assign { dst, src } => format!(
            "{} = {}",
            render_place(program, f, dst),
            render_expr(program, f, src)
        ),
        Inst::Branch {
            cond,
            then_to,
            else_to,
            loop_header,
            cond_group,
        } => {
            let mut s = format!(
                "if {} goto {} else {}",
                render_expr(program, f, cond),
                then_to.0,
                else_to.0
            );
            if let Some(l) = loop_header {
                s.push_str(&format!("  [loop L{}]", l.0));
            }
            if let Some(g) = cond_group {
                s.push_str(&format!("  [group G{}]", g.0));
            }
            s
        }
        Inst::Jump { to } => format!("goto {}", to.0),
        Inst::Call { callee, args, dst } => {
            let a: Vec<String> = args.iter().map(|e| render_expr(program, f, e)).collect();
            let call = format!("{}({})", program.func(*callee).name, a.join(", "));
            match dst {
                Some(d) => format!("{} = {}", render_place(program, f, d), call),
                None => call,
            }
        }
        Inst::Return { value } => match value {
            Some(v) => format!("return {}", render_expr(program, f, v)),
            None => "return".into(),
        },
        Inst::Acquire { lock } => format!("acquire {}", program.locks[lock.0 as usize]),
        Inst::Release { lock } => format!("release {}", program.locks[lock.0 as usize]),
        Inst::Spawn { callee, args, dst } => {
            let a: Vec<String> = args.iter().map(|e| render_expr(program, f, e)).collect();
            let call = format!("spawn {}({})", program.func(*callee).name, a.join(", "));
            match dst {
                Some(d) => format!("{} = {}", render_place(program, f, d), call),
                None => call,
            }
        }
        Inst::Join { thread } => format!("join {}", render_expr(program, f, thread)),
        Inst::Alloc { dst, len } => format!(
            "{} = alloc({})",
            render_place(program, f, dst),
            render_expr(program, f, len)
        ),
        Inst::Assert { cond } => format!("assert {}", render_expr(program, f, cond)),
        Inst::Output { value } => format!("output {}", render_expr(program, f, value)),
        Inst::LoopEnter { loop_id } => format!("loop_enter L{}", loop_id.0),
        Inst::LoopIter { loop_id } => format!("loop_iter L{}", loop_id.0),
        Inst::Nop => "nop".into(),
        Inst::Fence => "fence".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Program {
        Program {
            globals: vec![GlobalDecl {
                name: "x".into(),
                kind: GlobalKind::Scalar { init: 0 },
            }],
            locks: vec!["l".into()],
            funcs: vec![Function {
                name: "main".into(),
                params: 0,
                local_names: vec![],
                body: vec![
                    Inst::Assign {
                        dst: Place::Global(GlobalId(0)),
                        src: Expr::Const(1),
                    },
                    Inst::Return { value: None },
                ],
                loops: vec![],
                cond_groups: vec![],
                lines: vec![1, 2],
            }],
            main: FuncId(0),
        }
    }

    #[test]
    fn validate_ok() {
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn validate_catches_bad_jump() {
        let mut p = tiny();
        p.funcs[0].body[1] = Inst::Jump { to: StmtId(99) };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_catches_bad_lock() {
        let mut p = tiny();
        p.funcs[0].body[1] = Inst::Acquire { lock: LockId(7) };
        let err = p.validate().unwrap_err();
        assert!(err.contains("lock"), "{err}");
    }

    #[test]
    fn stmt_count_skips_synthetic() {
        let mut p = tiny();
        p.funcs[0].loops.push(LoopInfo {
            header: StmtId(0),
            natural: false,
        });
        // Not a real loop structure; just checking the census filter.
        p.funcs[0].body.push(Inst::LoopIter { loop_id: LoopId(0) });
        p.funcs[0].lines.push(0);
        assert_eq!(p.stmt_count(), 2);
    }

    #[test]
    fn cond_group_resolution() {
        let g = CondGroup {
            members: vec![StmtId(3), StmtId(4)],
            edge_sides: vec![
                ((StmtId(3), true), Some(true)),
                ((StmtId(3), false), None),
                ((StmtId(4), true), Some(true)),
                ((StmtId(4), false), Some(false)),
            ],
        };
        assert_eq!(g.resolve(StmtId(3), true), Some(true));
        assert_eq!(g.resolve(StmtId(3), false), None);
        assert_eq!(g.resolve(StmtId(4), false), Some(false));
        assert_eq!(g.root(), StmtId(3));
    }

    #[test]
    fn opcode_tags_are_pinned() {
        // Wire-format stability: these exact values are baked into
        // serialized dispatch plans. Renumbering is a breaking change.
        let cases: Vec<(Inst, u8)> = vec![
            (
                Inst::Assign {
                    dst: Place::Local(LocalId(0)),
                    src: Expr::Const(0),
                },
                0,
            ),
            (
                Inst::Branch {
                    cond: Expr::Const(1),
                    then_to: StmtId(0),
                    else_to: StmtId(0),
                    loop_header: None,
                    cond_group: None,
                },
                1,
            ),
            (Inst::Jump { to: StmtId(0) }, 2),
            (
                Inst::Call {
                    callee: FuncId(0),
                    args: vec![],
                    dst: None,
                },
                3,
            ),
            (Inst::Return { value: None }, 4),
            (Inst::Acquire { lock: LockId(0) }, 5),
            (Inst::Release { lock: LockId(0) }, 6),
            (
                Inst::Spawn {
                    callee: FuncId(0),
                    args: vec![],
                    dst: None,
                },
                7,
            ),
            (
                Inst::Join {
                    thread: Expr::Const(0),
                },
                8,
            ),
            (
                Inst::Alloc {
                    dst: Place::Local(LocalId(0)),
                    len: Expr::Const(1),
                },
                9,
            ),
            (
                Inst::Assert {
                    cond: Expr::Const(1),
                },
                10,
            ),
            (
                Inst::Output {
                    value: Expr::Const(0),
                },
                11,
            ),
            (Inst::LoopEnter { loop_id: LoopId(0) }, 12),
            (Inst::LoopIter { loop_id: LoopId(0) }, 13),
            (Inst::Nop, 14),
            (Inst::Fence, 15),
        ];
        for (inst, tag) in cases {
            assert_eq!(inst.opcode(), tag, "{inst:?}");
        }
    }

    #[test]
    fn lookup_by_name() {
        let p = tiny();
        assert_eq!(p.func_by_name("main"), Some(FuncId(0)));
        assert_eq!(p.global_by_name("x"), Some(GlobalId(0)));
        assert_eq!(p.func_by_name("nope"), None);
    }

    #[test]
    fn render_smoke() {
        let p = tiny();
        let s = render_function(&p, FuncId(0));
        assert!(s.contains("x = 1"), "{s}");
        assert!(s.contains("return"), "{s}");
    }
}
