//! Lowering from the MiniCC AST to the statement-level IR.
//!
//! Lowering is where the paper's control-dependence taxonomy is *created*:
//!
//! * `if (A || B)` conditions are lowered to short-circuit branch chains
//!   whose members share a [`CondGroupId`] — these become the "multiple
//!   control dependences aggregatable to one" class (paper Fig. 5b).
//! * `goto` produces irreducible joins — the "non-aggregatable" class
//!   (paper Fig. 6).
//! * every loop gets a counter slot: `while` loops receive the synthetic
//!   [`Inst::LoopEnter`]/[`Inst::LoopIter`] instrumentation that the paper's
//!   GCC pass would add (costing one instruction per iteration), `for` loops
//!   are marked *natural* (their counter is maintained for free, like the
//!   splash-2 loops in Fig. 10).
//!
//! Loop *conditions* are lowered eagerly (no short-circuit) so that a loop
//! header is always a single predicate statement, which is what both the
//! execution-indexing rules and the reverse-engineering algorithm assume.

use crate::ast::*;
use crate::error::LangError;
use crate::ir::*;
use std::collections::HashMap;

/// Lowers a parsed program to IR.
///
/// # Errors
///
/// Returns [`LangError::Lower`] on unresolved names, arity mismatches,
/// duplicate declarations, misplaced `break`/`continue`, or unknown labels.
///
/// # Examples
///
/// ```
/// let prog = mcr_lang::compile("global x: int; fn main() { x = 1; }")?;
/// assert_eq!(prog.funcs.len(), 1);
/// # Ok::<(), mcr_lang::LangError>(())
/// ```
pub fn lower(ast: &AProgram) -> Result<Program, LangError> {
    let mut globals = Vec::new();
    let mut global_ids = HashMap::new();
    for g in &ast.globals {
        if global_ids.contains_key(g.name()) {
            return Err(LangError::lower(
                0,
                format!("duplicate global `{}`", g.name()),
            ));
        }
        global_ids.insert(g.name().to_string(), GlobalId(globals.len() as u32));
        globals.push(GlobalDecl {
            name: g.name().to_string(),
            kind: match g {
                AGlobal::Scalar { init, .. } => GlobalKind::Scalar { init: *init },
                AGlobal::Array { len, init, .. } => GlobalKind::Array {
                    len: *len,
                    init: *init,
                },
                AGlobal::Ptr { .. } => GlobalKind::Ptr,
            },
        });
    }

    let mut lock_ids = HashMap::new();
    for (i, l) in ast.locks.iter().enumerate() {
        if lock_ids.insert(l.clone(), LockId(i as u32)).is_some() {
            return Err(LangError::lower(0, format!("duplicate lock `{l}`")));
        }
    }

    let mut func_ids = HashMap::new();
    for (i, f) in ast.funcs.iter().enumerate() {
        if func_ids.insert(f.name.clone(), FuncId(i as u32)).is_some() {
            return Err(LangError::lower(
                f.line,
                format!("duplicate function `{}`", f.name),
            ));
        }
    }
    let main = *func_ids
        .get("main")
        .ok_or_else(|| LangError::lower(0, "program has no `main` function"))?;

    let env = Env {
        globals: &global_ids,
        locks: &lock_ids,
        funcs: &func_ids,
        ast,
    };
    let mut funcs = Vec::new();
    for f in &ast.funcs {
        funcs.push(FuncLowerer::new(&env, f)?.run()?);
    }

    let prog = Program {
        globals,
        locks: ast.locks.clone(),
        funcs,
        main,
    };
    prog.validate()
        .map_err(|m| LangError::lower(0, format!("internal lowering bug: {m}")))?;
    Ok(prog)
}

struct Env<'a> {
    globals: &'a HashMap<String, GlobalId>,
    locks: &'a HashMap<String, LockId>,
    funcs: &'a HashMap<String, FuncId>,
    ast: &'a AProgram,
}

/// Symbolic jump target used during emission; resolved to [`StmtId`] at the
/// end so that `goto` can target labels that appear later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SymLabel(u32);

/// A branch instruction awaiting target resolution.
#[derive(Debug, Clone)]
enum PInst {
    Done(Inst),
    Branch {
        cond: Expr,
        then_to: SymLabel,
        else_to: SymLabel,
        loop_header: Option<LoopId>,
        cond_group: Option<CondGroupId>,
    },
    Jump(SymLabel),
}

struct FuncLowerer<'a> {
    env: &'a Env<'a>,
    src: &'a AFunc,
    code: Vec<PInst>,
    lines: Vec<u32>,
    locals: Vec<String>,
    local_ids: HashMap<String, LocalId>,
    labels: Vec<Option<u32>>,
    user_labels: HashMap<String, SymLabel>,
    pending_gotos: Vec<(String, u32)>,
    loops: Vec<LoopInfo>,
    loop_headers: Vec<(LoopId, SymLabel)>,
    cond_groups: Vec<PendingGroup>,
    /// (break_target, continue_target) stack.
    loop_stack: Vec<(SymLabel, SymLabel)>,
}

struct PendingGroup {
    members: Vec<u32>,
    edges: Vec<((u32, bool), SymLabel)>,
    t_final: SymLabel,
    f_final: SymLabel,
}

impl<'a> FuncLowerer<'a> {
    fn new(env: &'a Env<'a>, src: &'a AFunc) -> Result<Self, LangError> {
        let mut me = FuncLowerer {
            env,
            src,
            code: Vec::new(),
            lines: Vec::new(),
            locals: Vec::new(),
            local_ids: HashMap::new(),
            labels: Vec::new(),
            user_labels: HashMap::new(),
            pending_gotos: Vec::new(),
            loops: Vec::new(),
            loop_headers: Vec::new(),
            cond_groups: Vec::new(),
            loop_stack: Vec::new(),
        };
        for p in &src.params {
            me.declare_local(p, src.line)?;
        }
        // Pre-declare every local so nested blocks can forward-reference
        // within the flat frame (C-style function-scoped declarations).
        fn collect<'s>(stmts: &'s [AStmt], out: &mut Vec<(&'s str, u32)>) {
            for s in stmts {
                match &s.kind {
                    AStmtKind::VarDecl(n, _) => out.push((n, s.line)),
                    AStmtKind::If {
                        then_blk, else_blk, ..
                    } => {
                        collect(then_blk, out);
                        collect(else_blk, out);
                    }
                    AStmtKind::While { body, .. } => collect(body, out),
                    AStmtKind::For {
                        init, step, body, ..
                    } => {
                        if let Some(i) = init {
                            collect(std::slice::from_ref(i), out);
                        }
                        if let Some(st) = step {
                            collect(std::slice::from_ref(st), out);
                        }
                        collect(body, out);
                    }
                    AStmtKind::Block(b) => collect(b, out),
                    _ => {}
                }
            }
        }
        let mut decls = Vec::new();
        collect(&src.body, &mut decls);
        for (n, line) in decls {
            me.declare_local(n, line)?;
        }
        Ok(me)
    }

    fn declare_local(&mut self, name: &str, line: u32) -> Result<(), LangError> {
        if self.env.globals.contains_key(name) {
            return Err(LangError::lower(
                line,
                format!("local `{name}` shadows a global"),
            ));
        }
        if self.local_ids.contains_key(name) {
            return Err(LangError::lower(
                line,
                format!("duplicate local `{name}` in function `{}`", self.src.name),
            ));
        }
        self.local_ids
            .insert(name.to_string(), LocalId(self.locals.len() as u32));
        self.locals.push(name.to_string());
        Ok(())
    }

    fn fresh_label(&mut self) -> SymLabel {
        self.labels.push(None);
        SymLabel(self.labels.len() as u32 - 1)
    }

    fn bind(&mut self, l: SymLabel) {
        debug_assert!(self.labels[l.0 as usize].is_none(), "label bound twice");
        self.labels[l.0 as usize] = Some(self.code.len() as u32);
    }

    fn emit(&mut self, inst: Inst, line: u32) -> u32 {
        self.code.push(PInst::Done(inst));
        self.lines.push(line);
        self.code.len() as u32 - 1
    }

    fn emit_jump(&mut self, to: SymLabel, line: u32) {
        self.code.push(PInst::Jump(to));
        self.lines.push(line);
    }

    fn emit_branch(
        &mut self,
        cond: Expr,
        then_to: SymLabel,
        else_to: SymLabel,
        loop_header: Option<LoopId>,
        line: u32,
    ) -> u32 {
        self.code.push(PInst::Branch {
            cond,
            then_to,
            else_to,
            loop_header,
            cond_group: None,
        });
        self.lines.push(line);
        self.code.len() as u32 - 1
    }

    fn run(mut self) -> Result<Function, LangError> {
        let body = std::mem::take(&mut self.src.body.to_vec());
        self.stmts(&body)?;
        // Implicit return; also serves as the landing site for labels bound
        // at the very end of the function.
        self.emit(Inst::Return { value: None }, 0);

        // Resolve user gotos: every referenced label must have been bound.
        for (name, _at) in std::mem::take(&mut self.pending_gotos) {
            let bound = self
                .user_labels
                .get(&name)
                .is_some_and(|l| self.labels[l.0 as usize].is_some());
            if !bound {
                return Err(LangError::lower(
                    self.src.line,
                    format!("goto to unknown label `{name}` in `{}`", self.src.name),
                ));
            }
        }

        // Resolve symbolic labels to statement ids.
        let n = self.code.len() as u32;
        let resolve = |l: SymLabel, labels: &[Option<u32>]| -> StmtId {
            StmtId(labels[l.0 as usize].unwrap_or(n - 1).min(n - 1))
        };
        let labels = self.labels.clone();
        let mut body: Vec<Inst> = Vec::with_capacity(self.code.len());
        for pi in &self.code {
            body.push(match pi {
                PInst::Done(i) => i.clone(),
                PInst::Jump(l) => Inst::Jump {
                    to: resolve(*l, &labels),
                },
                PInst::Branch {
                    cond,
                    then_to,
                    else_to,
                    loop_header,
                    cond_group,
                } => Inst::Branch {
                    cond: cond.clone(),
                    then_to: resolve(*then_to, &labels),
                    else_to: resolve(*else_to, &labels),
                    loop_header: *loop_header,
                    cond_group: *cond_group,
                },
            });
        }

        // Materialize condition groups, tagging member branches.
        let mut cond_groups = Vec::new();
        for g in &self.cond_groups {
            let gid = CondGroupId(cond_groups.len() as u32);
            for &m in &g.members {
                if let Inst::Branch { cond_group, .. } = &mut body[m as usize] {
                    *cond_group = Some(gid);
                }
            }
            let edge_sides = g
                .edges
                .iter()
                .map(|((m, b), target)| {
                    let side = if *target == g.t_final {
                        Some(true)
                    } else if *target == g.f_final {
                        Some(false)
                    } else {
                        None
                    };
                    ((StmtId(*m), *b), side)
                })
                .collect();
            cond_groups.push(CondGroup {
                members: g.members.iter().map(|&m| StmtId(m)).collect(),
                edge_sides,
            });
        }

        // Record loop headers now that labels are resolved.
        let mut loops = self.loops.clone();
        for (lid, header_label) in &self.loop_headers {
            loops[lid.0 as usize].header = resolve(*header_label, &labels);
        }
        for (i, l) in loops.iter().enumerate() {
            match &mut body[l.header.0 as usize] {
                Inst::Branch { loop_header, .. } => *loop_header = Some(LoopId(i as u32)),
                _ => {
                    return Err(LangError::lower(
                        self.src.line,
                        format!(
                            "internal: loop header of `{}` is not a branch",
                            self.src.name
                        ),
                    ))
                }
            }
        }

        Ok(Function {
            name: self.src.name.clone(),
            params: self.src.params.len() as u32,
            local_names: self.locals,
            body,
            loops,
            cond_groups,
            lines: self.lines,
        })
    }

    fn stmts(&mut self, stmts: &[AStmt]) -> Result<(), LangError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &AStmt) -> Result<(), LangError> {
        let line = s.line;
        match &s.kind {
            AStmtKind::VarDecl(name, init) => {
                if let Some(e) = init {
                    let dst = Place::Local(self.local(name, line)?);
                    let src = self.expr(e, line)?;
                    self.emit(Inst::Assign { dst, src }, line);
                }
            }
            AStmtKind::Assign(lv, rhs) => self.assign(lv, rhs, line)?,
            AStmtKind::CallStmt(name, args) => {
                let (callee, args) = self.call(name, args, line)?;
                self.emit(
                    Inst::Call {
                        callee,
                        args,
                        dst: None,
                    },
                    line,
                );
            }
            AStmtKind::SpawnStmt(name, args) => {
                let (callee, args) = self.call(name, args, line)?;
                self.emit(
                    Inst::Spawn {
                        callee,
                        args,
                        dst: None,
                    },
                    line,
                );
            }
            AStmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let t = self.fresh_label();
                let f = self.fresh_label();
                let merge = self.fresh_label();
                self.cond(cond, t, f, line)?;
                self.bind(t);
                self.stmts(then_blk)?;
                self.emit_jump(merge, line);
                self.bind(f);
                self.stmts(else_blk)?;
                self.bind(merge);
            }
            AStmtKind::While { cond, body } => {
                let lid = LoopId(self.loops.len() as u32);
                self.loops.push(LoopInfo {
                    header: StmtId(0), // patched in run()
                    natural: false,
                });
                self.emit(Inst::LoopEnter { loop_id: lid }, line);
                let header = self.fresh_label();
                let body_l = self.fresh_label();
                let exit = self.fresh_label();
                self.bind(header);
                self.loop_headers.push((lid, header));
                let c = self.loop_cond(cond, line)?;
                self.emit_branch(c, body_l, exit, Some(lid), line);
                self.bind(body_l);
                self.emit(Inst::LoopIter { loop_id: lid }, line);
                self.loop_stack.push((exit, header));
                self.stmts(body)?;
                self.loop_stack.pop();
                self.emit_jump(header, line);
                self.bind(exit);
            }
            AStmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let lid = LoopId(self.loops.len() as u32);
                self.loops.push(LoopInfo {
                    header: StmtId(0),
                    natural: true,
                });
                self.emit(Inst::LoopEnter { loop_id: lid }, line);
                let header = self.fresh_label();
                let body_l = self.fresh_label();
                let cont = self.fresh_label();
                let exit = self.fresh_label();
                self.bind(header);
                self.loop_headers.push((lid, header));
                let c = self.loop_cond(cond, line)?;
                self.emit_branch(c, body_l, exit, Some(lid), line);
                self.bind(body_l);
                self.emit(Inst::LoopIter { loop_id: lid }, line);
                self.loop_stack.push((exit, cont));
                self.stmts(body)?;
                self.loop_stack.pop();
                self.bind(cont);
                if let Some(st) = step {
                    self.stmt(st)?;
                }
                self.emit_jump(header, line);
                self.bind(exit);
            }
            AStmtKind::Break => {
                let (exit, _) = *self
                    .loop_stack
                    .last()
                    .ok_or_else(|| LangError::lower(line, "`break` outside of a loop"))?;
                self.emit_jump(exit, line);
            }
            AStmtKind::Continue => {
                let (_, cont) = *self
                    .loop_stack
                    .last()
                    .ok_or_else(|| LangError::lower(line, "`continue` outside of a loop"))?;
                self.emit_jump(cont, line);
            }
            AStmtKind::Goto(name) => {
                let l = self.user_label(name);
                self.pending_gotos.push((name.clone(), line));
                self.emit_jump(l, line);
            }
            AStmtKind::Label(name) => {
                let l = self.user_label(name);
                if self.labels[l.0 as usize].is_some() {
                    return Err(LangError::lower(line, format!("duplicate label `{name}`")));
                }
                self.bind(l);
            }
            AStmtKind::Return(v) => {
                let value = match v {
                    Some(e) => Some(self.expr(e, line)?),
                    None => None,
                };
                self.emit(Inst::Return { value }, line);
            }
            AStmtKind::Acquire(name) => {
                let lock = self.lock(name, line)?;
                self.emit(Inst::Acquire { lock }, line);
            }
            AStmtKind::Release(name) => {
                let lock = self.lock(name, line)?;
                self.emit(Inst::Release { lock }, line);
            }
            AStmtKind::Join(e) => {
                let thread = self.expr(e, line)?;
                self.emit(Inst::Join { thread }, line);
            }
            AStmtKind::Fence => {
                self.emit(Inst::Fence, line);
            }
            AStmtKind::Assert(e) => {
                let cond = self.expr(e, line)?;
                self.emit(Inst::Assert { cond }, line);
            }
            AStmtKind::Output(e) => {
                let value = self.expr(e, line)?;
                self.emit(Inst::Output { value }, line);
            }
            AStmtKind::Block(b) => self.stmts(b)?,
        }
        Ok(())
    }

    fn user_label(&mut self, name: &str) -> SymLabel {
        if let Some(&l) = self.user_labels.get(name) {
            l
        } else {
            let l = self.fresh_label();
            self.user_labels.insert(name.to_string(), l);
            l
        }
    }

    /// Lowers an `if`/condition expression into short-circuit branches.
    /// Emits one branch for simple conditions; for `&&`/`||` chains, emits a
    /// branch per primitive test and registers them as one condition group.
    fn cond(&mut self, c: &AExpr, t: SymLabel, f: SymLabel, line: u32) -> Result<(), LangError> {
        let mut emitted: Vec<((u32, bool), SymLabel)> = Vec::new();
        self.cond_rec(c, t, f, line, &mut emitted)?;
        let members: Vec<u32> = {
            let mut m: Vec<u32> = emitted.iter().map(|((i, _), _)| *i).collect();
            m.dedup();
            m
        };
        if members.len() > 1 {
            self.cond_groups.push(PendingGroup {
                members,
                edges: emitted,
                t_final: t,
                f_final: f,
            });
        }
        Ok(())
    }

    fn cond_rec(
        &mut self,
        c: &AExpr,
        t: SymLabel,
        f: SymLabel,
        line: u32,
        emitted: &mut Vec<((u32, bool), SymLabel)>,
    ) -> Result<(), LangError> {
        match c {
            AExpr::Binary(ABinOp::OrOr, a, b) => {
                let mid = self.fresh_label();
                self.cond_rec(a, t, mid, line, emitted)?;
                self.bind(mid);
                self.cond_rec(b, t, f, line, emitted)?;
            }
            AExpr::Binary(ABinOp::AndAnd, a, b) => {
                let mid = self.fresh_label();
                self.cond_rec(a, mid, f, line, emitted)?;
                self.bind(mid);
                self.cond_rec(b, t, f, line, emitted)?;
            }
            AExpr::Unary(AUnOp::Not, inner) => {
                self.cond_rec(inner, f, t, line, emitted)?;
            }
            _ => {
                let e = self.expr(c, line)?;
                let idx = self.emit_branch(e, t, f, None, line);
                emitted.push(((idx, true), t));
                emitted.push(((idx, false), f));
            }
        }
        Ok(())
    }

    /// Loop conditions are single predicates: `&&`/`||` are lowered eagerly.
    fn loop_cond(&mut self, c: &AExpr, line: u32) -> Result<Expr, LangError> {
        self.expr(c, line)
    }

    fn assign(&mut self, lv: &ALValue, rhs: &ARhs, line: u32) -> Result<(), LangError> {
        let dst = self.place(lv, line)?;
        match rhs {
            ARhs::Expr(e) => {
                let src = self.expr(e, line)?;
                self.emit(Inst::Assign { dst, src }, line);
            }
            ARhs::Alloc(e) => {
                let len = self.expr(e, line)?;
                self.emit(Inst::Alloc { dst, len }, line);
            }
            ARhs::Call(name, args) => {
                let (callee, args) = self.call(name, args, line)?;
                self.emit(
                    Inst::Call {
                        callee,
                        args,
                        dst: Some(dst),
                    },
                    line,
                );
            }
            ARhs::Spawn(name, args) => {
                let (callee, args) = self.call(name, args, line)?;
                self.emit(
                    Inst::Spawn {
                        callee,
                        args,
                        dst: Some(dst),
                    },
                    line,
                );
            }
        }
        Ok(())
    }

    fn call(
        &mut self,
        name: &str,
        args: &[AExpr],
        line: u32,
    ) -> Result<(FuncId, Vec<Expr>), LangError> {
        let callee = *self
            .env
            .funcs
            .get(name)
            .ok_or_else(|| LangError::lower(line, format!("unknown function `{name}`")))?;
        let want = self.env.ast.funcs[callee.0 as usize].params.len();
        if want != args.len() {
            return Err(LangError::lower(
                line,
                format!("`{name}` expects {want} argument(s), got {}", args.len()),
            ));
        }
        let mut out = Vec::with_capacity(args.len());
        for a in args {
            out.push(self.expr(a, line)?);
        }
        Ok((callee, out))
    }

    fn lock(&self, name: &str, line: u32) -> Result<LockId, LangError> {
        self.env
            .locks
            .get(name)
            .copied()
            .ok_or_else(|| LangError::lower(line, format!("unknown lock `{name}`")))
    }

    fn local(&self, name: &str, line: u32) -> Result<LocalId, LangError> {
        self.local_ids
            .get(name)
            .copied()
            .ok_or_else(|| LangError::lower(line, format!("unknown variable `{name}`")))
    }

    fn place(&mut self, lv: &ALValue, line: u32) -> Result<Place, LangError> {
        match lv {
            ALValue::Name(n) => {
                if let Some(&l) = self.local_ids.get(n) {
                    Ok(Place::Local(l))
                } else if let Some(&g) = self.env.globals.get(n) {
                    match self.global_kind(g) {
                        GlobalKind::Array { .. } => Err(LangError::lower(
                            line,
                            format!("global array `{n}` must be indexed"),
                        )),
                        _ => Ok(Place::Global(g)),
                    }
                } else {
                    Err(LangError::lower(line, format!("unknown variable `{n}`")))
                }
            }
            ALValue::Index(base, idx) => {
                let i = self.expr(idx, line)?;
                if let AExpr::Name(n) = &**base {
                    if let Some(&g) = self.env.globals.get(n) {
                        if matches!(self.global_kind(g), GlobalKind::Array { .. }) {
                            return Ok(Place::GlobalElem(g, i));
                        }
                    }
                }
                let p = self.expr(base, line)?;
                Ok(Place::HeapStore { ptr: p, idx: i })
            }
        }
    }

    fn global_kind(&self, g: GlobalId) -> GlobalKind {
        match &self.env.ast.globals[g.0 as usize] {
            AGlobal::Scalar { init, .. } => GlobalKind::Scalar { init: *init },
            AGlobal::Array { len, init, .. } => GlobalKind::Array {
                len: *len,
                init: *init,
            },
            AGlobal::Ptr { .. } => GlobalKind::Ptr,
        }
    }

    fn expr(&mut self, e: &AExpr, line: u32) -> Result<Expr, LangError> {
        Ok(match e {
            AExpr::Int(v) => Expr::Const(*v),
            AExpr::Null => Expr::Null,
            AExpr::Name(n) => {
                if let Some(&l) = self.local_ids.get(n) {
                    Expr::Local(l)
                } else if let Some(&g) = self.env.globals.get(n) {
                    if matches!(self.global_kind(g), GlobalKind::Array { .. }) {
                        return Err(LangError::lower(
                            line,
                            format!("global array `{n}` must be indexed"),
                        ));
                    }
                    Expr::Global(g)
                } else {
                    return Err(LangError::lower(line, format!("unknown variable `{n}`")));
                }
            }
            AExpr::Index(base, idx) => {
                let i = self.expr(idx, line)?;
                if let AExpr::Name(n) = &**base {
                    if let Some(&g) = self.env.globals.get(n) {
                        if matches!(self.global_kind(g), GlobalKind::Array { .. }) {
                            return Ok(Expr::GlobalElem(g, Box::new(i)));
                        }
                    }
                }
                let p = self.expr(base, line)?;
                Expr::HeapLoad {
                    ptr: Box::new(p),
                    idx: Box::new(i),
                }
            }
            AExpr::Unary(op, a) => {
                let ir_op = match op {
                    AUnOp::Neg => UnOp::Neg,
                    AUnOp::Not => UnOp::Not,
                };
                Expr::un(ir_op, self.expr(a, line)?)
            }
            AExpr::Binary(op, a, b) => {
                let ir_op = match op {
                    ABinOp::Add => BinOp::Add,
                    ABinOp::Sub => BinOp::Sub,
                    ABinOp::Mul => BinOp::Mul,
                    ABinOp::Div => BinOp::Div,
                    ABinOp::Mod => BinOp::Mod,
                    ABinOp::Eq => BinOp::Eq,
                    ABinOp::Ne => BinOp::Ne,
                    ABinOp::Lt => BinOp::Lt,
                    ABinOp::Le => BinOp::Le,
                    ABinOp::Gt => BinOp::Gt,
                    ABinOp::Ge => BinOp::Ge,
                    // Eager forms outside `if` conditions.
                    ABinOp::AndAnd => BinOp::And,
                    ABinOp::OrOr => BinOp::Or,
                };
                Expr::bin(ir_op, self.expr(a, line)?, self.expr(b, line)?)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile(src: &str) -> Program {
        lower(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn simple_assignment_lowering() {
        let p = compile("global x: int; fn main() { x = 1 + 2; }");
        let f = p.func(p.main);
        assert!(matches!(f.body[0], Inst::Assign { .. }));
        assert!(matches!(f.body[1], Inst::Return { value: None }));
    }

    #[test]
    fn if_else_lowering_has_one_branch() {
        let p = compile("global x: int; fn main() { if (x > 0) { x = 1; } else { x = 2; } }");
        let f = p.func(p.main);
        let branches: Vec<_> = f.body.iter().filter(|i| i.is_branch()).collect();
        assert_eq!(branches.len(), 1);
        assert!(f.cond_groups.is_empty());
    }

    #[test]
    fn or_condition_creates_group() {
        let p =
            compile("global x: int; global y: int; fn main() { if (x > 0 || y > 0) { x = 1; } }");
        let f = p.func(p.main);
        assert_eq!(f.cond_groups.len(), 1);
        let g = &f.cond_groups[0];
        assert_eq!(g.members.len(), 2);
        // First member's false edge is internal, true edge resolves to T.
        let root = g.root();
        assert_eq!(g.resolve(root, true), Some(true));
        assert_eq!(g.resolve(root, false), None);
        let second = g.members[1];
        assert_eq!(g.resolve(second, true), Some(true));
        assert_eq!(g.resolve(second, false), Some(false));
    }

    #[test]
    fn and_condition_group_sides() {
        let p =
            compile("global x: int; global y: int; fn main() { if (x > 0 && y > 0) { x = 1; } }");
        let f = p.func(p.main);
        let g = &f.cond_groups[0];
        let root = g.root();
        assert_eq!(g.resolve(root, false), Some(false));
        assert_eq!(g.resolve(root, true), None);
    }

    #[test]
    fn negated_or_swaps_sides() {
        let p = compile(
            "global x: int; global y: int; fn main() { if (!(x > 0 || y > 0)) { x = 1; } }",
        );
        let f = p.func(p.main);
        let g = &f.cond_groups[0];
        let root = g.root();
        // `x > 0` true means the OR is true, hence the *else* side of the if.
        assert_eq!(g.resolve(root, true), Some(false));
        assert_eq!(g.resolve(root, false), None);
    }

    #[test]
    fn while_is_instrumented_for_is_natural() {
        let p = compile(
            "global n: int; fn main() { var i; while (i < n) { i = i + 1; } for (i = 0; i < n; i = i + 1) { n = n; } }",
        );
        let f = p.func(p.main);
        assert_eq!(f.loops.len(), 2);
        assert!(!f.loops[0].natural);
        assert!(f.loops[1].natural);
        let enters = f
            .body
            .iter()
            .filter(|i| matches!(i, Inst::LoopEnter { .. }))
            .count();
        let iters = f
            .body
            .iter()
            .filter(|i| matches!(i, Inst::LoopIter { .. }))
            .count();
        assert_eq!(enters, 2);
        assert_eq!(iters, 2);
        // Headers are marked.
        for l in &f.loops {
            assert!(f.loop_header(l.header).is_some());
        }
    }

    #[test]
    fn break_continue_lowering() {
        let p = compile(
            "global n: int; fn main() { var i; while (1) { i = i + 1; if (i > 3) { break; } continue; } }",
        );
        assert!(p.validate().is_ok());
        let f = p.func(p.main);
        // There must be at least two jumps besides the back edge.
        let jumps = f
            .body
            .iter()
            .filter(|i| matches!(i, Inst::Jump { .. }))
            .count();
        assert!(jumps >= 3, "found {jumps} jumps");
    }

    #[test]
    fn goto_forward_and_backward() {
        let p = compile(
            "global x: int; fn main() { goto skip; x = 1; label skip: x = 2; label back: if (x < 5) { x = x + 1; goto back; } }",
        );
        assert!(p.validate().is_ok());
    }

    #[test]
    fn goto_unknown_label_fails() {
        let ast = parse("fn main() { goto nowhere; }").unwrap();
        assert!(lower(&ast).is_err());
    }

    #[test]
    fn break_outside_loop_fails() {
        let ast = parse("fn main() { break; }").unwrap();
        assert!(lower(&ast).is_err());
    }

    #[test]
    fn duplicate_local_fails() {
        let ast = parse("fn main() { var a; var a; }").unwrap();
        assert!(lower(&ast).is_err());
    }

    #[test]
    fn unknown_function_fails() {
        let ast = parse("fn main() { nope(); }").unwrap();
        assert!(lower(&ast).is_err());
    }

    #[test]
    fn arity_mismatch_fails() {
        let ast = parse("fn g(a) {} fn main() { g(); }").unwrap();
        assert!(lower(&ast).is_err());
    }

    #[test]
    fn missing_main_fails() {
        let ast = parse("fn g() {}").unwrap();
        assert!(lower(&ast).is_err());
    }

    #[test]
    fn eager_logic_outside_conditions() {
        let p = compile("global x: int; fn main() { x = (x > 0) && (x < 5); }");
        let f = p.func(p.main);
        assert!(f.cond_groups.is_empty());
        match &f.body[0] {
            Inst::Assign { src, .. } => {
                assert!(matches!(src, Expr::Binary(BinOp::And, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn loop_condition_is_single_predicate() {
        let p = compile("global x: int; fn main() { while (x > 0 && x < 9) { x = x + 1; } }");
        let f = p.func(p.main);
        let branches: Vec<_> = f.body.iter().filter(|i| i.is_branch()).collect();
        assert_eq!(branches.len(), 1);
        assert!(f.cond_groups.is_empty());
    }

    #[test]
    fn global_array_access_resolves() {
        let p = compile("global a: [int; 4]; fn main() { a[1] = 7; a[2] = a[1]; }");
        let f = p.func(p.main);
        assert!(matches!(
            f.body[0],
            Inst::Assign {
                dst: Place::GlobalElem(..),
                ..
            }
        ));
    }

    #[test]
    fn heap_access_through_local() {
        let p = compile("fn main() { var p; p = alloc(3); p[0] = 9; var v; v = p[0]; }");
        let f = p.func(p.main);
        assert!(matches!(f.body[0], Inst::Alloc { .. }));
        assert!(matches!(
            f.body[1],
            Inst::Assign {
                dst: Place::HeapStore { .. },
                ..
            }
        ));
    }

    #[test]
    fn shadowing_global_is_rejected() {
        let ast = parse("global x: int; fn main() { var x; }").unwrap();
        assert!(lower(&ast).is_err());
    }

    #[test]
    fn three_way_or_group_members() {
        let p = compile(
            "global a: int; global b: int; global c: int; fn main() { if (a > 0 || b > 0 || c > 0) { a = 1; } }",
        );
        let f = p.func(p.main);
        assert_eq!(f.cond_groups.len(), 1);
        assert_eq!(f.cond_groups[0].members.len(), 3);
    }
}
