//! Fleet job mixes: duplicate-heavy batches for the `mcr-batch`
//! scheduler and its benchmarks.
//!
//! A production triage queue is dominated by *near-duplicates*: the same
//! bug crashing over and over, occasionally under a different input.
//! [`fleet_corpus`] models that shape over the Table 2 bug suite — for
//! each bug, several byte-identical jobs (same program, same lengthened
//! input, hence the same failure dump once stressed) plus one
//! distinct-input variant — so a batch engine's content-addressed
//! caching and single-flight dedup have exactly the redundancy they are
//! built to exploit, while the variants keep it honest about genuinely
//! new work.
//!
//! Specs are pure descriptions (program + input recipe); producing the
//! failure dumps requires stressing, which belongs to the consumer
//! (`mcr-bench`, examples, tests) — note that duplicates share a
//! [`FleetSpec::dedup_key`], so a consumer stresses each *distinct* spec
//! once and clones the dump across its duplicates.

use crate::bugs::{all_bugs, bug_by_name, BugSpec};
use mcr_vm::SplitMix64;

/// One fleet job description: which bug, which input recipe, and how
/// urgent.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Job name, unique within the corpus ("mysql-3#dup1").
    pub name: String,
    /// The underlying benchmark bug.
    pub bug: BugSpec,
    /// Random-prefix length of the lengthened input.
    pub warmup: usize,
    /// Seed of the lengthened input's random prefix.
    pub input_seed: u64,
    /// Scheduling priority (lower = earlier).
    pub priority: u32,
}

impl FleetSpec {
    /// The job's failing input (deterministic per spec).
    pub fn input(&self) -> Vec<i64> {
        self.bug.lengthened_input(self.warmup, self.input_seed)
    }

    /// Work-identity key: two specs with equal keys describe identical
    /// jobs (same program, same input ⇒ same stress outcome ⇒ same
    /// phase keys). Consumers stress one representative per key.
    pub fn dedup_key(&self) -> (String, usize, u64) {
        (self.bug.name.to_string(), self.warmup, self.input_seed)
    }
}

/// A duplicate-heavy job mix over `bugs`: per bug, `copies` identical
/// jobs plus one distinct-input variant. Priorities are drawn
/// deterministically from `seed`, so the schedule is shuffled but
/// reproducible. `copies = 0` yields only the variants.
pub fn fleet_mix(bugs: &[BugSpec], copies: usize, seed: u64) -> Vec<FleetSpec> {
    let mut rng = SplitMix64::new(seed ^ 0xF1EE_7C0D);
    let mut specs = Vec::new();
    for bug in bugs {
        for c in 0..copies {
            specs.push(FleetSpec {
                name: format!("{}#dup{}", bug.name, c),
                bug: bug.clone(),
                warmup: bug.default_warmup,
                input_seed: 42,
                priority: rng.next_range(0, 9) as u32,
            });
        }
        // One genuinely distinct job per bug: a different input prefix
        // changes the dump, the phase keys, and hence the work.
        specs.push(FleetSpec {
            name: format!("{}#variant", bug.name),
            bug: bug.clone(),
            warmup: bug.default_warmup,
            input_seed: 43 + seed,
            priority: rng.next_range(0, 9) as u32,
        });
    }
    specs
}

/// [`fleet_mix`] over the whole Table 2 suite.
pub fn fleet_corpus(copies: usize, seed: u64) -> Vec<FleetSpec> {
    fleet_mix(&all_bugs(), copies, seed)
}

/// One revision of the [`fleet_recompile`] corpus: a complete program
/// source plus which functions this revision edited relative to the
/// previous one.
#[derive(Debug, Clone)]
pub struct RecompileSpec {
    /// Revision name ("rev3").
    pub name: String,
    /// The full MiniCC source of this revision.
    pub source: String,
    /// Names of the functions edited versus the previous revision
    /// (empty for the base revision).
    pub edited: Vec<String>,
    /// Revision number, 0 for the base.
    pub revision: usize,
}

/// A *recompile-heavy* revision stream: the corpus function-granular
/// caching is built for.
///
/// Every revision is the `mysql-3` bug program extended with `helpers`
/// uncalled helper functions `h0..h{helpers-1}`; each revision after the
/// base edits the constant inside `edits_per_rev` seeded-chosen helpers
/// and leaves everything else byte-identical. Because the edits touch
/// neither executed code nor shared state, one stress dump found on the
/// base revision is valid for *every* revision — which makes the stream
/// cheap to drive — while each revision still changes the program
/// fingerprint and exactly `edits_per_rev` function fingerprints. A
/// function-granular cache replaying the stream should therefore
/// recompute `2 × edits_per_rev` units per revision (one compile + one
/// analysis unit per edited function) and hit on every other function.
pub fn fleet_recompile(
    helpers: usize,
    revisions: usize,
    edits_per_rev: usize,
    seed: u64,
) -> Vec<RecompileSpec> {
    let base = bug_by_name("mysql-3").expect("suite bug");
    let mut rng = SplitMix64::new(seed ^ 0x2EC0_4411);
    // Evolving helper constants; editing helper h means bumping its
    // constant, so revisions accumulate (no two revisions of a helper
    // collide on content).
    let mut consts: Vec<i64> = (0..helpers as i64).map(|i| i + 1).collect();
    let mut specs = Vec::with_capacity(revisions);
    for rev in 0..revisions {
        let edited: Vec<String> = if rev == 0 {
            Vec::new()
        } else {
            let mut picked: Vec<usize> = Vec::new();
            while picked.len() < edits_per_rev.min(helpers) {
                let h = rng.next_range(0, helpers as i64 - 1) as usize;
                if !picked.contains(&h) {
                    picked.push(h);
                }
            }
            for &h in &picked {
                consts[h] += 1 + rng.next_range(0, 7);
            }
            picked.sort_unstable();
            picked.iter().map(|h| format!("h{h}")).collect()
        };
        // Helpers are appended after `main` so the base functions keep
        // their ids; they assign an existing global but are never
        // called, so the failure behavior is untouched.
        let helpers_src: String = consts
            .iter()
            .enumerate()
            .map(|(i, c)| format!("    fn h{i}() {{ lookups = {c}; }}\n"))
            .collect();
        specs.push(RecompileSpec {
            name: format!("rev{rev}"),
            source: format!("{}\n{}", base.source, helpers_src),
            edited,
            revision: rev,
        });
    }
    specs
}

/// A deterministic *arrival stream* over a job mix, for driving a
/// long-running triage service: [`fleet_mix`] groups a bug's duplicates
/// together, but a production queue interleaves them — the same crash
/// trickles in between unrelated reports. `FleetStream` yields the
/// specs of a mix in a seeded shuffle (Fisher–Yates over `SplitMix64`),
/// so consumers can `submit` one spec at a time and still reproduce the
/// exact arrival order across runs.
///
/// The stream is a plain [`Iterator`] (with exact size), so it composes
/// with `take`, `by_ref` chunking, etc.
#[derive(Debug, Clone)]
pub struct FleetStream {
    /// Remaining specs, stored back-to-front so `next` pops from the
    /// end.
    reversed: Vec<FleetSpec>,
}

impl Iterator for FleetStream {
    type Item = FleetSpec;

    fn next(&mut self) -> Option<FleetSpec> {
        self.reversed.pop()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.reversed.len(), Some(self.reversed.len()))
    }
}

impl ExactSizeIterator for FleetStream {}

/// The arrival stream of [`fleet_mix`]`(bugs, copies, seed)`: the same
/// specs, in a deterministic seeded arrival order.
pub fn fleet_stream(bugs: &[BugSpec], copies: usize, seed: u64) -> FleetStream {
    let mut specs = fleet_mix(bugs, copies, seed);
    let mut rng = SplitMix64::new(seed ^ 0x57AE_A17B_57AE_A17B);
    // Fisher–Yates, then reverse so pops come out in shuffled order.
    for i in (1..specs.len()).rev() {
        let j = rng.next_range(0, i as i64) as usize;
        specs.swap(i, j);
    }
    specs.reverse();
    FleetStream { reversed: specs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn corpus_is_deterministic_and_duplicate_heavy() {
        let a = fleet_corpus(3, 7);
        let b = fleet_corpus(3, 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.priority, y.priority);
            assert_eq!(x.input(), y.input());
        }
        // 7 bugs x (3 dups + 1 variant).
        assert_eq!(a.len(), all_bugs().len() * 4);
        let mut by_key: HashMap<_, usize> = HashMap::new();
        for spec in &a {
            *by_key.entry(spec.dedup_key()).or_default() += 1;
        }
        // Per bug: one key with 3 duplicates, one with the variant.
        assert_eq!(by_key.len(), all_bugs().len() * 2);
        assert_eq!(
            by_key.values().filter(|&&n| n == 3).count(),
            all_bugs().len()
        );
    }

    #[test]
    fn names_are_unique_and_variants_differ() {
        let corpus = fleet_corpus(2, 1);
        let names: HashSet<&str> = corpus.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), corpus.len());
        for bug in all_bugs() {
            let dup = corpus
                .iter()
                .find(|s| s.name == format!("{}#dup0", bug.name))
                .unwrap();
            let var = corpus
                .iter()
                .find(|s| s.name == format!("{}#variant", bug.name))
                .unwrap();
            assert_eq!(dup.dedup_key().0, var.dedup_key().0);
            assert_ne!(dup.dedup_key(), var.dedup_key());
            assert_ne!(dup.input(), var.input(), "{}", bug.name);
            // Both keep the bug-report tail.
            assert_eq!(&dup.input()[dup.warmup..], bug.base_input, "{}", bug.name);
        }
    }

    #[test]
    fn stream_is_a_deterministic_permutation_of_the_mix() {
        let bugs = all_bugs();
        let mix = fleet_mix(&bugs, 2, 9);
        let a: Vec<FleetSpec> = fleet_stream(&bugs, 2, 9).collect();
        let b: Vec<FleetSpec> = fleet_stream(&bugs, 2, 9).collect();
        assert_eq!(a.len(), mix.len());
        // Deterministic: the same seed reproduces the arrival order.
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.priority, y.priority);
        }
        // A permutation: every spec of the mix arrives exactly once.
        let mut mix_names: Vec<&str> = mix.iter().map(|s| s.name.as_str()).collect();
        let mut stream_names: Vec<&str> = a.iter().map(|s| s.name.as_str()).collect();
        mix_names.sort_unstable();
        stream_names.sort_unstable();
        assert_eq!(mix_names, stream_names);
        // And genuinely shuffled: arrival differs from the grouped mix
        // (seeded, so this cannot flake).
        let grouped: Vec<&str> = mix.iter().map(|s| s.name.as_str()).collect();
        let arrived: Vec<&str> = a.iter().map(|s| s.name.as_str()).collect();
        assert_ne!(grouped, arrived, "stream must interleave the mix");
        // Exact size is reported up front.
        let stream = fleet_stream(&bugs, 2, 9);
        assert_eq!(stream.len(), mix.len());
    }

    #[test]
    fn recompile_stream_edits_exactly_k_functions_per_revision() {
        let specs = fleet_recompile(8, 5, 1, 11);
        let again = fleet_recompile(8, 5, 1, 11);
        assert_eq!(specs.len(), 5);
        for (a, b) in specs.iter().zip(&again) {
            assert_eq!(a.source, b.source, "deterministic per seed");
            assert_eq!(a.edited, b.edited);
        }
        assert!(
            specs[0].edited.is_empty(),
            "the base revision edits nothing"
        );
        let programs: Vec<mcr_lang::Program> = specs
            .iter()
            .map(|s| mcr_lang::compile(&s.source).expect("revisions compile"))
            .collect();
        let base_funcs = programs[0].funcs.len();
        for (prev, (next, spec)) in programs.iter().zip(programs.iter().zip(&specs).skip(1)) {
            assert_eq!(
                next.funcs.len(),
                base_funcs,
                "no functions appear or vanish"
            );
            // Exactly the named helpers' fingerprints move.
            let moved: Vec<String> = prev
                .funcs
                .iter()
                .zip(&next.funcs)
                .filter(|(a, b)| {
                    mcr_lang::function_fingerprint(a) != mcr_lang::function_fingerprint(b)
                })
                .map(|(_, b)| b.name.clone())
                .collect();
            assert_eq!(moved, spec.edited, "{}", spec.name);
            assert_eq!(moved.len(), 1);
            // Statement layout is identical, so one dump serves all
            // revisions.
            for (a, b) in prev.funcs.iter().zip(&next.funcs) {
                assert_eq!(a.body.len(), b.body.len());
            }
        }
        // Every revision is a distinct program.
        let mut roots: Vec<u128> = programs.iter().map(mcr_lang::program_fingerprint).collect();
        roots.sort_unstable();
        roots.dedup();
        assert_eq!(roots.len(), programs.len());
    }

    #[test]
    fn duplicate_specs_share_inputs() {
        let corpus = fleet_mix(&all_bugs()[..2], 2, 5);
        for bug in &all_bugs()[..2] {
            let dups: Vec<&FleetSpec> = corpus
                .iter()
                .filter(|s| s.name.starts_with(&format!("{}#dup", bug.name)))
                .collect();
            assert_eq!(dups.len(), 2);
            assert_eq!(dups[0].input(), dups[1].input());
            assert_eq!(dups[0].dedup_key(), dups[1].dedup_key());
        }
    }
}
