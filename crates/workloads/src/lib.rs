//! # mcr-workloads — benchmark programs for the evaluation
//!
//! * [`bugs`] — the seven concurrency bugs of the paper's Table 2
//!   (apache-1/2, mysql-1..5), including the §6 mod_mem_cache case study,
//! * [`faults`] — environment-gated seeded bugs: TSO store-buffering
//!   bugs unreachable under SC, plus fault-injection bugs (allocation
//!   failure, lock timeout) dead without their fault plan,
//! * [`splash`] — loop-intensive kernels standing in for splash-2 in the
//!   Fig. 10 overhead measurement,
//! * [`corpora`] — synthesized program corpora with apache/mysql/postgres
//!   control-flow statistics for the Table 1 census,
//! * [`fleet`] — duplicate-heavy job mixes over the bug suite for the
//!   `mcr-batch` fleet scheduler and its benchmarks.

#![warn(missing_docs)]

pub mod bugs;
pub mod corpora;
pub mod faults;
pub mod fleet;
pub mod splash;

pub use bugs::{all_bugs, bug_by_name, BugClass, BugSpec};
pub use corpora::{generate, paper_profiles, small_profiles, CorpusProfile};
pub use faults::{fault_bug_by_name, fault_bugs, EnvRequirement, FaultBugSpec};
pub use fleet::{
    fleet_corpus, fleet_mix, fleet_recompile, fleet_stream, FleetSpec, FleetStream, RecompileSpec,
};
pub use splash::{measure_overhead, overhead_workloads, OverheadResult, OverheadWorkload};
