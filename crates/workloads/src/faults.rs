//! Seeded bugs that need a non-default execution environment.
//!
//! The Table 2 suite ([`crate::bugs`]) lives entirely in the default
//! environment: sequential consistency, no injected faults. This module
//! holds the bugs that *cannot* exist there:
//!
//! * two store-buffering bugs (`tso-sb`, `tso-dekker`) whose failing
//!   executions are impossible under SC — both are instances of the
//!   store→load reordering TSO permits (a thread's own store is delayed
//!   in its buffer past its next load of a *different* location), the
//!   only relaxation TSO adds over SC;
//! * two fault-injection bugs (`fault-publish`, `fault-timeout`) whose
//!   buggy recovery paths are dead code until an injected allocation
//!   failure or lock timeout steers execution into them.
//!
//! Every entry keeps the Heisenbug premise *within its own environment*:
//! the deterministic single-core run passes even under TSO / with the
//! fault plan armed, and only stressed interleavings crash. The suite is
//! deliberately a separate registry from [`crate::bugs::all_bugs`] — the
//! Table 2 census and its pinned shapes stay byte-identical.

use mcr_vm::{FaultKind, FaultSpec, MemModel, ThreadId};

/// Why a seeded bug needs its environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnvRequirement {
    /// Only reachable under TSO store buffering (SC-unreachable).
    WeakMemory,
    /// Only reachable with the fault plan armed.
    FaultInjection,
}

/// One environment-gated seeded bug.
#[derive(Debug, Clone)]
pub struct FaultBugSpec {
    /// Short name ("tso-sb").
    pub name: &'static str,
    /// What part of the environment the bug depends on.
    pub requires: EnvRequirement,
    /// Memory model the bug runs under.
    pub mem_model: MemModel,
    /// Fault plan the bug runs under (empty for the TSO bugs).
    pub faults: Vec<FaultSpec>,
    /// MiniCC source.
    pub source: &'static str,
    /// Program input.
    pub input: &'static [i64],
    /// Step budget for runs of this program.
    pub max_steps: u64,
}

impl FaultBugSpec {
    /// Compiles the program.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source fails to compile (a bug in this
    /// crate, covered by tests).
    pub fn compile(&self) -> mcr_lang::Program {
        mcr_lang::compile(self.source)
            .unwrap_or_else(|e| panic!("workload {} failed to compile: {e}", self.name))
    }

    /// Builds a VM running in this bug's environment.
    pub fn vm<'p>(&self, program: &'p mcr_lang::Program) -> mcr_vm::Vm<'p> {
        mcr_vm::Vm::new(program, self.input)
            .with_mem_model(self.mem_model)
            .with_faults(&self.faults)
    }
}

/// The classic SB litmus test, weaponized. Each worker publishes its
/// flag and then polls the other's; under TSO both stores can sit in
/// their buffers across both loads, so both workers observe 0 — an
/// outcome SC forbids (whichever load executes last must see the other
/// worker's already-visible store).
const TSO_SB_SRC: &str = r#"
    global x: int;
    global y: int;
    global r1: int;
    global r2: int;

    fn t0() {
        x = 1;          // buffered under TSO
        r1 = y;         // may read y before t1's store becomes visible
    }

    fn t1() {
        y = 1;
        r2 = x;
    }

    fn main() {
        var a; var b;
        a = spawn t0();
        b = spawn t1();
        join a;
        join b;
        // SC invariant: at least one worker saw the other's flag.
        assert(r1 + r2 > 0);
    }
"#;

/// Dekker-style mutual exclusion by flags alone. Each worker raises its
/// intent flag and enters the critical section only if the other's flag
/// is down — correct under SC, broken under TSO where both intent
/// stores can be buffer-delayed past both loads, letting both workers
/// in at once. Entry is recorded in per-thread indicator globals (a
/// shared counter would let a lost update mask the double entry).
const TSO_DEKKER_SRC: &str = r#"
    global f0: int;
    global f1: int;
    global e0: int;
    global e1: int;
    global work: int;

    fn t0() {
        f0 = 1;                 // intent, buffered under TSO
        if (f1 == 0) {
            e0 = 1;             // entered the critical section
            work = work + 1;
        }
        // Intent flags stay raised: lowering them would let the workers
        // enter *sequentially* under SC, which is not the bug.
    }

    fn t1() {
        f1 = 1;
        if (f0 == 0) {
            e1 = 1;
            work = work + 1;
        }
    }

    fn main() {
        var a; var b;
        a = spawn t0();
        b = spawn t1();
        join a;
        join b;
        // Mutual exclusion: both workers inside is an SC-impossible
        // double entry.
        assert(e0 + e1 < 2);
    }
"#;

/// Publish-after-recovery order bug, dead until an allocation fails.
/// The happy path publishes buffer-then-flag (correct). The recovery
/// path for a failed allocation raises the flag *before* the retry
/// allocation lands — an injected first-allocation failure plus a
/// reader scheduled into that window dereferences the null buffer.
const FAULT_PUBLISH_SRC: &str = r#"
    global buf: ptr;
    global ready: int;
    global sink: int;

    fn worker() {
        var p;
        p = alloc(4);
        if (p == null) {
            // Degraded mode. BUG: the flag goes up before the retry
            // allocation is published. The fence pushes the flag out
            // promptly — and is a first-class scheduling point, so the
            // search can preempt inside the window it opens.
            ready = 1;
            fence;
            p = alloc(4);
            p[0] = 1;
            buf = p;
        } else {
            p[0] = 7;
            buf = p;
            ready = 1;
        }
    }

    fn reader() {
        if (ready > 0) {
            sink = buf[0];
        }
    }

    fn main() {
        spawn worker();
        spawn reader();
    }
"#;

/// Lock-timeout path: the fast worker's acquire is configured to time
/// out (crash) when the gate is contended. The slow worker holds the
/// gate across a `fence` — a first-class scheduling point inside the
/// critical section, so schedule exploration can park `slow` mid-section
/// and drive `fast` into the held lock. Fault-free, `fast` just blocks
/// and the program always completes.
const FAULT_TIMEOUT_SRC: &str = r#"
    global done: int;
    lock gate;

    fn slow() {
        acquire gate;
        fence;              // schedulable point while holding the gate
        done = done + 1;
        release gate;
    }

    fn fast() {
        acquire gate;       // injected: times out if the gate is held
        done = done + 1;
        release gate;
    }

    fn main() {
        spawn slow();
        spawn fast();
    }
"#;

/// All environment-gated seeded bugs.
pub fn fault_bugs() -> Vec<FaultBugSpec> {
    vec![
        FaultBugSpec {
            name: "tso-sb",
            requires: EnvRequirement::WeakMemory,
            mem_model: MemModel::tso(),
            faults: Vec::new(),
            source: TSO_SB_SRC,
            input: &[],
            max_steps: 100_000,
        },
        FaultBugSpec {
            name: "tso-dekker",
            requires: EnvRequirement::WeakMemory,
            mem_model: MemModel::tso(),
            faults: Vec::new(),
            source: TSO_DEKKER_SRC,
            input: &[],
            max_steps: 100_000,
        },
        FaultBugSpec {
            name: "fault-publish",
            requires: EnvRequirement::FaultInjection,
            mem_model: MemModel::Sc,
            // main = 0, worker = 1: fail the worker's first allocation.
            faults: vec![FaultSpec {
                kind: FaultKind::AllocFail,
                tid: ThreadId(1),
                nth: 0,
            }],
            source: FAULT_PUBLISH_SRC,
            input: &[],
            max_steps: 100_000,
        },
        FaultBugSpec {
            name: "fault-timeout",
            requires: EnvRequirement::FaultInjection,
            mem_model: MemModel::Sc,
            // main = 0, slow = 1, fast = 2: time out the fast worker's
            // first acquire when contended.
            faults: vec![FaultSpec {
                kind: FaultKind::LockTimeout,
                tid: ThreadId(2),
                nth: 0,
            }],
            source: FAULT_TIMEOUT_SRC,
            input: &[],
            max_steps: 100_000,
        },
    ]
}

/// Looks up a seeded bug by name (same forgiving matching as
/// [`crate::bugs::bug_by_name`]: case-insensitive, `_` ≡ `-`).
pub fn fault_bug_by_name(name: &str) -> Option<FaultBugSpec> {
    let wanted = normalize(name);
    fault_bugs()
        .into_iter()
        .find(|b| normalize(b.name) == wanted)
}

fn normalize(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            '_' => '-',
            c => c.to_ascii_lowercase(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_vm::{run, DeterministicScheduler, NullObserver, Outcome, StressScheduler, Vm};

    fn crashes_with(bug: &FaultBugSpec, vm: impl Fn() -> Vm<'static>, seeds: u64) -> bool {
        let _ = bug;
        for seed in 0..seeds {
            let mut vm = vm();
            let mut s = StressScheduler::new(seed);
            if let Outcome::Crashed(_) = run(&mut vm, &mut s, &mut NullObserver, 100_000) {
                return true;
            }
        }
        false
    }

    #[test]
    fn all_fault_bugs_compile_and_validate() {
        for bug in fault_bugs() {
            let p = bug.compile();
            assert!(p.validate().is_ok(), "{}", bug.name);
        }
    }

    #[test]
    fn registry_shape() {
        let bugs = fault_bugs();
        assert_eq!(bugs.len(), 4);
        assert_eq!(
            bugs.iter()
                .filter(|b| b.requires == EnvRequirement::WeakMemory)
                .count(),
            2
        );
        assert_eq!(
            bugs.iter()
                .filter(|b| b.requires == EnvRequirement::FaultInjection)
                .count(),
            2
        );
        // Environment invariants: TSO bugs carry no faults, fault bugs
        // run under SC (each axis is isolated).
        for b in &bugs {
            match b.requires {
                EnvRequirement::WeakMemory => {
                    assert!(b.mem_model.is_tso(), "{}", b.name);
                    assert!(b.faults.is_empty(), "{}", b.name);
                }
                EnvRequirement::FaultInjection => {
                    assert_eq!(b.mem_model, MemModel::Sc, "{}", b.name);
                    assert!(!b.faults.is_empty(), "{}", b.name);
                }
            }
        }
    }

    #[test]
    fn fault_bug_lookup() {
        assert_eq!(fault_bug_by_name("TSO_SB").unwrap().name, "tso-sb");
        assert!(fault_bug_by_name("tso-nope").is_none());
    }

    #[test]
    fn all_pass_deterministically_in_their_environment() {
        // The Heisenbug premise holds even with TSO / the fault plan
        // armed: the single-core canonical run never crashes.
        for bug in fault_bugs() {
            let p = bug.compile();
            let mut vm = bug.vm(&p);
            let mut s = DeterministicScheduler::new();
            let out = run(&mut vm, &mut s, &mut NullObserver, bug.max_steps);
            assert_eq!(out, Outcome::Completed, "{}", bug.name);
        }
    }

    #[test]
    fn all_fail_under_stress_in_their_environment() {
        for bug in fault_bugs() {
            let p = Box::leak(Box::new(bug.compile()));
            let found = crashes_with(&bug, || bug.vm(p), 50_000);
            assert!(found, "{}: stress never exposed the bug", bug.name);
        }
    }

    #[test]
    fn tso_bugs_are_unreachable_under_sc() {
        for bug in fault_bugs() {
            if bug.requires != EnvRequirement::WeakMemory {
                continue;
            }
            let p = Box::leak(Box::new(bug.compile()));
            let found = crashes_with(&bug, || Vm::new(p, bug.input), 50_000);
            assert!(!found, "{}: crashed under SC", bug.name);
        }
    }

    #[test]
    fn fault_bugs_are_unreachable_without_the_fault_plan() {
        for bug in fault_bugs() {
            if bug.requires != EnvRequirement::FaultInjection {
                continue;
            }
            let p = Box::leak(Box::new(bug.compile()));
            let found = crashes_with(
                &bug,
                || Vm::new(p, bug.input).with_mem_model(bug.mem_model),
                50_000,
            );
            assert!(!found, "{}: crashed without faults", bug.name);
        }
    }

    #[test]
    fn injected_failures_carry_their_fault_tag() {
        for bug in fault_bugs() {
            if bug.requires != EnvRequirement::FaultInjection {
                continue;
            }
            let p = bug.compile();
            let mut failure = None;
            for seed in 0..50_000u64 {
                let mut vm = bug.vm(&p);
                let mut s = StressScheduler::new(seed);
                if let Outcome::Crashed(f) = run(&mut vm, &mut s, &mut NullObserver, bug.max_steps)
                {
                    failure = Some(f);
                    break;
                }
            }
            let f = failure.unwrap_or_else(|| panic!("{}: no crash", bug.name));
            let fault = f
                .fault
                .unwrap_or_else(|| panic!("{}: crash lost its fault tag", bug.name));
            assert_eq!(fault.kind, bug.faults[0].kind, "{}", bug.name);
            assert_eq!(fault.nth, bug.faults[0].nth, "{}", bug.name);
        }
    }
}
