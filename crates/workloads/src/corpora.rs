//! Synthesized program corpora for the Table 1 census.
//!
//! The paper's Table 1 reports, over apache-2.0.46 (105K statements),
//! mysql-5.1.31 (892K) and postgresql-8.3 (521K), what fraction of
//! statements fall into each control-dependence class. Since those code
//! bases cannot be compiled to MiniCC, this module synthesizes corpora
//! with the same *scale* and comparable *control-flow mix*: each corpus
//! is generated from a seeded grammar whose weights (plain conditionals,
//! short-circuit conditions, goto joins, loops) are tuned per corpus.
//! The census then measures the actual resulting distribution — the
//! generator sets tendencies, the analysis reports ground truth.

use mcr_lang::ast::*;
use mcr_lang::Program;
use mcr_vm::SplitMix64;

/// Control-flow mix of a corpus, as per-mille weights of generated
/// compound statements.
#[derive(Debug, Clone, Copy)]
pub struct CorpusProfile {
    /// Corpus name (Table 1 row).
    pub name: &'static str,
    /// Target statement count (the paper's "total" column).
    pub target_stmts: usize,
    /// Weight of plain `if` units.
    pub w_if: u32,
    /// Weight of `if` with `||`/`&&` conditions (aggregatable class).
    pub w_or_if: u32,
    /// Weight of goto-join shapes (non-aggregatable class, Fig. 6).
    pub w_goto: u32,
    /// Weight of loops.
    pub w_loop: u32,
    /// Weight of straight-line assignments.
    pub w_plain: u32,
    /// Statements per conditional body.
    pub body_len: u32,
}

/// The three Table 1 corpora at the paper's scale.
pub fn paper_profiles() -> Vec<CorpusProfile> {
    vec![
        CorpusProfile {
            name: "apache-2.0.46",
            target_stmts: 105_000,
            w_if: 200,
            w_or_if: 135,
            w_goto: 85,
            w_loop: 330,
            w_plain: 250,
            body_len: 3,
        },
        CorpusProfile {
            name: "mysql-5.1.31",
            target_stmts: 892_000,
            w_if: 260,
            w_or_if: 75,
            w_goto: 62,
            w_loop: 210,
            w_plain: 393,
            body_len: 3,
        },
        CorpusProfile {
            name: "postgresql-8.3",
            target_stmts: 521_000,
            w_if: 210,
            w_or_if: 90,
            w_goto: 53,
            w_loop: 380,
            w_plain: 267,
            body_len: 3,
        },
    ]
}

/// Scaled-down profiles for fast tests and benches.
pub fn small_profiles(target: usize) -> Vec<CorpusProfile> {
    paper_profiles()
        .into_iter()
        .map(|mut p| {
            p.target_stmts = target;
            p
        })
        .collect()
}

/// Generates a corpus program for `profile`, deterministically from
/// `seed`. The result is a single large [`Program`] whose census
/// approximates the profile's mix.
pub fn generate(profile: &CorpusProfile, seed: u64) -> Program {
    let mut rng = SplitMix64::new(seed ^ 0xC0DE_BA5E);
    let mut gen = Gen {
        rng: &mut rng,
        profile,
        label_counter: 0,
    };

    let mut funcs: Vec<AFunc> = Vec::new();
    let mut emitted = 0usize;
    let mut fidx = 0u32;
    while emitted < profile.target_stmts {
        let body_units = 8 + (gen.rng.next_below(10) as usize);
        let (body, stmts) = gen.function_body(body_units, fidx, funcs.len());
        emitted += stmts + 1; // + implicit return
        funcs.push(AFunc {
            name: format!("f{fidx}"),
            params: vec!["p0".into()],
            body,
            line: 1,
        });
        fidx += 1;
    }
    // main calls a sample of functions (keeps everything reachable-ish
    // without running forever; the census is static anyway).
    let mut main_body = Vec::new();
    for i in 0..funcs.len().min(4) {
        main_body.push(AStmt {
            kind: AStmtKind::CallStmt(format!("f{i}"), vec![AExpr::Int(1)]),
            line: 1,
        });
    }
    funcs.push(AFunc {
        name: "main".into(),
        params: vec![],
        body: main_body,
        line: 1,
    });

    let ast = AProgram {
        globals: vec![
            AGlobal::Scalar {
                name: "g0".into(),
                init: 1,
            },
            AGlobal::Scalar {
                name: "g1".into(),
                init: 2,
            },
            AGlobal::Array {
                name: "ga".into(),
                len: 8,
                init: 0,
            },
        ],
        locks: vec![],
        funcs,
    };
    mcr_lang::lower::lower(&ast).expect("generated corpus must lower")
}

struct Gen<'a> {
    rng: &'a mut SplitMix64,
    profile: &'a CorpusProfile,
    label_counter: u64,
}

impl Gen<'_> {
    /// Emits `units` statement units; returns (body, statement count).
    fn function_body(&mut self, units: usize, _fidx: u32, _nfuncs: usize) -> (Vec<AStmt>, usize) {
        let mut body = Vec::new();
        let mut count = 0usize;
        // One local for scratch.
        body.push(AStmt {
            kind: AStmtKind::VarDecl("v".into(), Some(AExpr::Int(0))),
            line: 1,
        });
        count += 1;
        for _ in 0..units {
            let total = self.profile.w_if
                + self.profile.w_or_if
                + self.profile.w_goto
                + self.profile.w_loop
                + self.profile.w_plain;
            let roll = self.rng.next_below(total as u64) as u32;
            let (stmt, n) = if roll < self.profile.w_plain {
                self.plain()
            } else if roll < self.profile.w_plain + self.profile.w_if {
                self.plain_if()
            } else if roll < self.profile.w_plain + self.profile.w_if + self.profile.w_or_if {
                self.or_if()
            } else if roll
                < self.profile.w_plain
                    + self.profile.w_if
                    + self.profile.w_or_if
                    + self.profile.w_goto
            {
                self.goto_shape()
            } else {
                self.loop_shape()
            };
            count += n;
            body.push(stmt);
        }
        (body, count)
    }

    fn assign(&mut self) -> AStmt {
        let v = self.rng.next_range(0, 99);
        AStmt {
            kind: AStmtKind::Assign(
                ALValue::Name("v".into()),
                ARhs::Expr(AExpr::Binary(
                    ABinOp::Add,
                    Box::new(AExpr::Name("v".into())),
                    Box::new(AExpr::Int(v)),
                )),
            ),
            line: 1,
        }
    }

    fn cond(&mut self) -> AExpr {
        let k = self.rng.next_range(0, 9);
        AExpr::Binary(
            ABinOp::Gt,
            Box::new(AExpr::Name("v".into())),
            Box::new(AExpr::Int(k)),
        )
    }

    fn block(&mut self, n: u32) -> Vec<AStmt> {
        (0..n).map(|_| self.assign()).collect()
    }

    fn plain(&mut self) -> (AStmt, usize) {
        (self.assign(), 1)
    }

    fn plain_if(&mut self) -> (AStmt, usize) {
        let b = self.profile.body_len;
        let with_else = self.rng.next_below(2) == 0;
        let then_blk = self.block(b);
        let else_blk = if with_else { self.block(b) } else { Vec::new() };
        let n = 1 + then_blk.len() + else_blk.len() + 1; // branch + bodies + merge jump
        (
            AStmt {
                kind: AStmtKind::If {
                    cond: self.cond(),
                    then_blk,
                    else_blk,
                },
                line: 1,
            },
            n,
        )
    }

    fn or_if(&mut self) -> (AStmt, usize) {
        let b = self.profile.body_len;
        let c1 = self.cond();
        let c2 = self.cond();
        let cond = if self.rng.next_below(2) == 0 {
            AExpr::Binary(ABinOp::OrOr, Box::new(c1), Box::new(c2))
        } else {
            AExpr::Binary(ABinOp::AndAnd, Box::new(c1), Box::new(c2))
        };
        let then_blk = self.block(b);
        let n = 2 + then_blk.len() + 1;
        (
            AStmt {
                kind: AStmtKind::If {
                    cond,
                    then_blk,
                    else_blk: Vec::new(),
                },
                line: 1,
            },
            n,
        )
    }

    /// The Fig. 6 shape: a goto from one branch into another branch's
    /// then-region, making the target's dependences non-aggregatable.
    fn goto_shape(&mut self) -> (AStmt, usize) {
        self.label_counter += 1;
        let label = format!("L{}", self.label_counter);
        let inner = vec![
            AStmt {
                kind: AStmtKind::If {
                    cond: self.cond(),
                    then_blk: vec![AStmt {
                        kind: AStmtKind::Goto(label.clone()),
                        line: 1,
                    }],
                    else_blk: Vec::new(),
                },
                line: 1,
            },
            self.assign(),
            AStmt {
                kind: AStmtKind::If {
                    cond: self.cond(),
                    then_blk: vec![
                        AStmt {
                            kind: AStmtKind::Label(label),
                            line: 1,
                        },
                        self.assign(),
                        self.assign(),
                    ],
                    else_blk: vec![self.assign()],
                },
                line: 1,
            },
        ];
        // Statements: outer branch, goto, assign, inner branch, 2 target
        // assigns, else assign, plus merge jumps (~3).
        let n = 10;
        (
            AStmt {
                kind: AStmtKind::If {
                    cond: self.cond(),
                    then_blk: inner,
                    else_blk: Vec::new(),
                },
                line: 1,
            },
            n,
        )
    }

    fn loop_shape(&mut self) -> (AStmt, usize) {
        let b = self.profile.body_len;
        let body = self.block(b);
        let use_for = self.rng.next_below(10) < 7; // splash-like mix
        let n = 1 + body.len() + 2;
        let stmt = if use_for {
            AStmt {
                kind: AStmtKind::For {
                    init: Some(Box::new(AStmt {
                        kind: AStmtKind::Assign(
                            ALValue::Name("v".into()),
                            ARhs::Expr(AExpr::Int(0)),
                        ),
                        line: 1,
                    })),
                    cond: AExpr::Binary(
                        ABinOp::Lt,
                        Box::new(AExpr::Name("v".into())),
                        Box::new(AExpr::Int(3)),
                    ),
                    step: Some(Box::new(AStmt {
                        kind: AStmtKind::Assign(
                            ALValue::Name("v".into()),
                            ARhs::Expr(AExpr::Binary(
                                ABinOp::Add,
                                Box::new(AExpr::Name("v".into())),
                                Box::new(AExpr::Int(1)),
                            )),
                        ),
                        line: 1,
                    })),
                    body,
                },
                line: 1,
            }
        } else {
            let mut body = body;
            body.push(AStmt {
                kind: AStmtKind::Assign(
                    ALValue::Name("v".into()),
                    ARhs::Expr(AExpr::Binary(
                        ABinOp::Add,
                        Box::new(AExpr::Name("v".into())),
                        Box::new(AExpr::Int(1)),
                    )),
                ),
                line: 1,
            });
            AStmt {
                kind: AStmtKind::While {
                    cond: AExpr::Binary(
                        ABinOp::Lt,
                        Box::new(AExpr::Name("v".into())),
                        Box::new(AExpr::Int(3)),
                    ),
                    body,
                },
                line: 1,
            }
        };
        (stmt, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_analysis::ProgramAnalysis;

    #[test]
    fn corpora_generate_and_validate() {
        for profile in small_profiles(3_000) {
            let p = generate(&profile, 1);
            assert!(p.validate().is_ok(), "{}", profile.name);
            let total = p.stmt_count();
            assert!(
                total >= profile.target_stmts,
                "{}: {total} < {}",
                profile.name,
                profile.target_stmts
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let profile = &small_profiles(2_000)[0];
        let a = generate(profile, 7);
        let b = generate(profile, 7);
        assert_eq!(a, b);
        let c = generate(profile, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn census_shape_matches_table1_bands() {
        // Loose bands: the generator is tuned toward the paper's
        // distribution; the census must land in the right neighborhoods.
        for profile in small_profiles(8_000) {
            let p = generate(&profile, 3);
            let analysis = ProgramAnalysis::analyze(&p);
            let census = analysis.census(&p);
            let one = census.pct_one_cd();
            let aggr = census.pct_aggr_to_one();
            let na = census.pct_not_aggr();
            let lp = census.pct_loop();
            assert!(
                (78.0..95.0).contains(&one),
                "{}: one-CD {one}",
                profile.name
            );
            assert!((0.5..9.0).contains(&aggr), "{}: aggr {aggr}", profile.name);
            assert!((0.5..9.0).contains(&na), "{}: not-aggr {na}", profile.name);
            assert!((1.0..12.0).contains(&lp), "{}: loop {lp}", profile.name);
            let sum = one + aggr + na + lp;
            assert!((sum - 100.0).abs() < 1e-6, "{}: sum {sum}", profile.name);
        }
    }
}
