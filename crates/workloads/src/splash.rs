//! Loop-intensive kernels for the Fig. 10 overhead measurement.
//!
//! The paper measures its loop-counter instrumentation on splash-2
//! because those programs are loop-dense — and finds them *cheaper* to
//! instrument than apache/mysql because most splash loops already carry
//! a loop counter (`for` loops), which needs no extra code. The kernels
//! here reproduce that structure: numeric `for`-heavy computations with
//! occasional `while` loops (convergence tests, scans) that do need the
//! synthetic counter. `apache-like` and `mysql-like` request-processing
//! models are `while`-heavy (parsers, queue scans), reproducing the
//! higher end of the paper's 0–2.5% range.

/// One overhead-measurement workload.
#[derive(Debug, Clone, Copy)]
pub struct OverheadWorkload {
    /// Display name (Fig. 10 x-axis).
    pub name: &'static str,
    /// MiniCC source.
    pub source: &'static str,
    /// Input (sizes the kernel).
    pub input: &'static [i64],
    /// Step budget.
    pub max_steps: u64,
}

impl OverheadWorkload {
    /// Compiles the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source fails to compile.
    pub fn compile(&self) -> mcr_lang::Program {
        mcr_lang::compile(self.source)
            .unwrap_or_else(|e| panic!("kernel {} failed to compile: {e}", self.name))
    }
}

const FFT_LIKE: &str = r#"
    // Butterfly passes over a power-of-two array: pure for-loops.
    global input: [int; 1];
    global a: [int; 256];
    global checksum: int;
    lock red;

    fn pass(span) {
        var i; var j;
        for (i = 0; i < 256; i = i + span * 2) {
            for (j = 0; j < span; j = j + 1) {
                var lo; var hi;
                lo = a[i + j];
                hi = a[i + j + span];
                a[i + j] = lo + hi;
                a[i + j + span] = lo - hi;
            }
        }
    }

    fn worker() {
        var span;
        for (span = 1; span < 256; span = span * 2) {
            pass(span);
        }
        acquire red;
        checksum = checksum + a[0];
        release red;
    }

    fn main() {
        var i; var t;
        for (i = 0; i < 256; i = i + 1) { a[i] = i % 17; }
        t = spawn worker();
        join t;
    }
"#;

const LU_LIKE: &str = r#"
    // Blocked elimination: triple-nested for-loops.
    global input: [int; 1];
    global m: [int; 144];
    global checksum: int;

    fn main() {
        var i; var j; var k; var n;
        n = 12;
        for (i = 0; i < n; i = i + 1) {
            for (j = 0; j < n; j = j + 1) {
                m[i * n + j] = (i * 31 + j * 7) % 23 + 1;
            }
        }
        for (k = 0; k < n; k = k + 1) {
            for (i = k + 1; i < n; i = i + 1) {
                for (j = k + 1; j < n; j = j + 1) {
                    m[i * n + j] = m[i * n + j] - (m[i * n + k] * m[k * n + j]) % 97;
                }
            }
        }
        checksum = m[0];
    }
"#;

const RADIX_LIKE: &str = r#"
    // Counting-sort passes: for-loops with a while-scan per bucket.
    global input: [int; 1];
    global keys: [int; 200];
    global counts: [int; 10];
    global sorted: [int; 200];
    global checksum: int;

    fn main() {
        var i; var d; var pos;
        for (i = 0; i < 200; i = i + 1) { keys[i] = (i * 137 + 11) % 1000; }
        var div;
        div = 1;
        for (d = 0; d < 3; d = d + 1) {
            for (i = 0; i < 10; i = i + 1) { counts[i] = 0; }
            for (i = 0; i < 200; i = i + 1) {
                counts[(keys[i] / div) % 10] = counts[(keys[i] / div) % 10] + 1;
            }
            pos = 0;
            i = 0;
            while (i < 10) {                     // prefix sums via while
                var c;
                c = counts[i];
                counts[i] = pos;
                pos = pos + c;
                i = i + 1;
            }
            for (i = 0; i < 200; i = i + 1) {
                var b;
                b = (keys[i] / div) % 10;
                sorted[counts[b]] = keys[i];
                counts[b] = counts[b] + 1;
            }
            for (i = 0; i < 200; i = i + 1) { keys[i] = sorted[i]; }
            div = div * 10;
        }
        checksum = keys[199];
    }
"#;

const OCEAN_LIKE: &str = r#"
    // Grid relaxation sweeps: for-loops with a while convergence test.
    global input: [int; 1];
    global grid: [int; 400];
    global checksum: int;

    fn main() {
        var i; var j; var iter; var delta;
        for (i = 0; i < 400; i = i + 1) { grid[i] = (i * 3) % 50; }
        iter = 0;
        delta = 1000;
        while (delta > 10) {                     // convergence: while loop
            delta = 0;
            for (i = 1; i < 19; i = i + 1) {
                for (j = 1; j < 19; j = j + 1) {
                    var v; var nv;
                    v = grid[i * 20 + j];
                    nv = (grid[(i - 1) * 20 + j] + grid[(i + 1) * 20 + j]
                        + grid[i * 20 + j - 1] + grid[i * 20 + j + 1]) / 4;
                    grid[i * 20 + j] = nv;
                    if (nv - v > 0) { delta = delta + nv - v; }
                    else { delta = delta + v - nv; }
                }
            }
            iter = iter + 1;
            if (iter > 30) { delta = 0; }
        }
        checksum = grid[21];
    }
"#;

const BARNES_LIKE: &str = r#"
    // Spatial tree build + traversal: a bucketed forest of shallow
    // binary trees (cells), body payloads initialized per node.
    global input: [int; 1];
    global buckets: [int; 16];
    global checksum: int;

    fn insert(v) {
        var node; var cur; var b; var k;
        node = alloc(20);
        node[0] = v;
        // Body payload: position/velocity/mass fields.
        for (k = 3; k < 20; k = k + 1) {
            node[k] = (v * k * 31 + k) % 1009;
        }
        b = v % 16;
        if (buckets[b] == 0) {
            buckets[b] = node;
            return;
        }
        cur = buckets[b];
        var placed;
        placed = 0;
        while (placed == 0) {                    // descent: while loop
            if (v < cur[0]) {
                if (cur[1] == null) { cur[1] = node; placed = 1; }
                else { cur = cur[1]; }
            } else {
                if (cur[2] == null) { cur[2] = node; placed = 1; }
                else { cur = cur[2]; }
            }
        }
    }

    fn sum(node) {
        var a; var b;
        if (node == null) { return 0; }
        a = sum(node[1]);
        b = sum(node[2]);
        return node[0] + a + b;
    }

    fn main() {
        var i; var b; var cell; var acc;
        for (i = 0; i < 80; i = i + 1) {
            insert((i * 73 + 5) % 211);
        }
        acc = 0;
        for (b = 0; b < 16; b = b + 1) {
            cell = buckets[b];
            if (cell == 0) { checksum = checksum; }
            else {
                var s;
                s = sum(cell);
                acc = acc + s;
            }
        }
        checksum = acc;
    }
"#;

const WATER_LIKE: &str = r#"
    // Pairwise interactions: double for-loop over molecules.
    global input: [int; 1];
    global posn: [int; 64];
    global force: [int; 64];
    global checksum: int;

    fn main() {
        var i; var j; var t;
        for (i = 0; i < 64; i = i + 1) { posn[i] = (i * 29) % 101; }
        for (t = 0; t < 4; t = t + 1) {
            for (i = 0; i < 64; i = i + 1) {
                for (j = i + 1; j < 64; j = j + 1) {
                    var d;
                    d = posn[i] - posn[j];
                    if (d < 0) { d = 0 - d; }
                    force[i] = force[i] + d % 7;
                    force[j] = force[j] - d % 7;
                }
            }
            for (i = 0; i < 64; i = i + 1) {
                posn[i] = (posn[i] + force[i]) % 101;
                if (posn[i] < 0) { posn[i] = posn[i] + 101; }
            }
        }
        checksum = posn[0] + force[63];
    }
"#;

const APACHE_LIKE: &str = r#"
    // Request processing: while-heavy header parsing and queue scans.
    global input: [int; 64];
    global input_len: int;
    global queue: [int; 64];
    global qlen: int;
    global handled: int;

    fn parse_request(v) {
        var tokens; var x; var k; var h;
        tokens = 0;
        x = v * 31 + 7;
        while (x > 1) {                          // tokenizer: while loop
            if (x % 2 == 0) { x = x / 2; }
            else { x = x * 3 + 1; }
            // Per-token work: header field hashing.
            h = x;
            for (k = 0; k < 6; k = k + 1) {
                h = (h * 131 + k) % 65521;
            }
            tokens = tokens + h % 3 + 1;
            if (tokens > 40) { x = 1; }
        }
        return tokens;
    }

    fn main() {
        var i; var t;
        i = 0;
        while (i < input_len) {                  // accept loop: while
            t = parse_request(input[i]);
            queue[qlen % 64] = t;
            qlen = qlen + 1;
            handled = handled + 1;
            i = i + 1;
        }
    }
"#;

const MYSQL_LIKE: &str = r#"
    // Query execution: scans and b-tree-ish probes with while loops.
    global input: [int; 64];
    global input_len: int;
    global rows: [int; 128];
    global matches: int;

    fn probe(key) {
        var lo; var hi; var mid;
        lo = 0;
        hi = 127;
        while (lo < hi) {                        // binary search: while
            mid = (lo + hi) / 2;
            if (rows[mid] < key) { lo = mid + 1; }
            else { hi = mid; }
        }
        return lo;
    }

    fn verify(q) {
        var k; var acc;
        acc = 0;
        for (k = 0; k < 40; k = k + 1) {
            acc = acc + rows[(q + k) % 128] * 3 % 97;
        }
        return acc;
    }

    fn main() {
        var i; var q; var v;
        for (i = 0; i < 128; i = i + 1) { rows[i] = i * 3; }
        i = 0;
        while (i < input_len) {
            q = probe((input[i] * 7) % 384);
            v = verify(q);
            if (v % 2 == 0) { matches = matches + 1; }
            i = i + 1;
        }
    }
"#;

/// The Fig. 10 workload set: apache/mysql request models plus six
/// splash-like kernels.
pub fn overhead_workloads() -> Vec<OverheadWorkload> {
    const WARM: &[i64] = &[
        3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4, 6, 2, 6, 4, 3, 3, 8, 3, 2, 7,
        9, 5, 0, 2, 8, 8, 4, 1, 9, 7,
    ];
    vec![
        OverheadWorkload {
            name: "apache",
            source: APACHE_LIKE,
            input: WARM,
            max_steps: 10_000_000,
        },
        OverheadWorkload {
            name: "mysql",
            source: MYSQL_LIKE,
            input: WARM,
            max_steps: 10_000_000,
        },
        OverheadWorkload {
            name: "fft",
            source: FFT_LIKE,
            input: &[0],
            max_steps: 10_000_000,
        },
        OverheadWorkload {
            name: "lu",
            source: LU_LIKE,
            input: &[0],
            max_steps: 10_000_000,
        },
        OverheadWorkload {
            name: "radix",
            source: RADIX_LIKE,
            input: &[0],
            max_steps: 10_000_000,
        },
        OverheadWorkload {
            name: "ocean",
            source: OCEAN_LIKE,
            input: &[0],
            max_steps: 10_000_000,
        },
        OverheadWorkload {
            name: "barnes",
            source: BARNES_LIKE,
            input: &[0],
            max_steps: 10_000_000,
        },
        OverheadWorkload {
            name: "water",
            source: WATER_LIKE,
            input: &[0],
            max_steps: 10_000_000,
        },
    ]
}

/// Measured instrumentation overhead for one workload.
#[derive(Debug, Clone, Copy)]
pub struct OverheadResult {
    /// Workload name.
    pub name: &'static str,
    /// Instructions retired with loop counters charged.
    pub instrumented: u64,
    /// Instructions retired without instrumentation cost.
    pub plain: u64,
}

impl OverheadResult {
    /// The Fig. 10 ratio (1.0 = no overhead).
    pub fn ratio(&self) -> f64 {
        if self.plain == 0 {
            1.0
        } else {
            self.instrumented as f64 / self.plain as f64
        }
    }
}

/// Runs one workload with and without instrumentation cost and reports
/// the instruction-count ratio (deterministic single-core runs, as in
/// the paper's Fig. 10 methodology).
pub fn measure_overhead(w: &OverheadWorkload) -> OverheadResult {
    use mcr_vm::{run, DeterministicScheduler, NullObserver, Vm};
    let program = w.compile();
    let mut counts = [0u64; 2];
    for (i, instrumented) in [(0usize, true), (1usize, false)] {
        let mut vm = Vm::new(&program, w.input);
        vm.set_count_loop_instr(instrumented);
        let mut sched = DeterministicScheduler::new();
        let out = run(&mut vm, &mut sched, &mut NullObserver, w.max_steps);
        assert_eq!(
            out,
            mcr_vm::Outcome::Completed,
            "overhead workload {} must complete, got {out:?}",
            w.name
        );
        counts[i] = vm.instrs();
    }
    OverheadResult {
        name: w.name,
        instrumented: counts[0],
        plain: counts[1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_compile_and_complete() {
        for w in overhead_workloads() {
            let r = measure_overhead(&w);
            assert!(r.plain > 1000, "{} too trivial: {}", w.name, r.plain);
        }
    }

    #[test]
    fn overhead_is_small_and_positive() {
        for w in overhead_workloads() {
            let r = measure_overhead(&w);
            let ratio = r.ratio();
            assert!(
                (1.0..1.08).contains(&ratio),
                "{}: ratio {ratio} out of the expected band",
                w.name
            );
        }
    }

    #[test]
    fn request_models_cost_more_than_for_loop_kernels() {
        // The paper's observation: splash-2 loops mostly carry natural
        // counters, so apache/mysql overhead is higher.
        let results: Vec<OverheadResult> =
            overhead_workloads().iter().map(measure_overhead).collect();
        let apache = results.iter().find(|r| r.name == "apache").unwrap().ratio();
        let lu = results.iter().find(|r| r.name == "lu").unwrap().ratio();
        let water = results.iter().find(|r| r.name == "water").unwrap().ratio();
        assert!(apache > lu, "apache {apache} vs lu {lu}");
        assert!(apache > water, "apache {apache} vs water {water}");
    }
}
