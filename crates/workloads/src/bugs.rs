//! The concurrency bug suite (paper Table 2).
//!
//! Seven MiniCC programs engineering the bug classes of the paper's
//! mysql/apache study: atomicity violations and order races. Each program
//!
//! * passes under the deterministic single-core scheduler (the Heisenbug
//!   premise),
//! * fails under stressed random interleavings,
//! * needs one or two preemptions to reproduce (the paper's `k = 2`), and
//! * accepts *lengthened inputs* — the paper prepends randomly generated
//!   inputs to the short bug-report inputs to get realistic execution
//!   lengths; here a warmup section consumes the random prefix, churning
//!   locks and shared state so the preemption-candidate space grows.
//!
//! `apache-1` is a faithful model of the paper's §6 case study: the
//! mod_mem_cache two-step insertion, eviction under size pressure, the
//! double size subtraction that underflows the unsigned byte count, and
//! the eviction loop that then underflows the object queue.

use mcr_vm::SplitMix64;

/// Bug class, as in the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugClass {
    /// Atomicity violation.
    Atomicity,
    /// Order violation / data race.
    Race,
}

impl BugClass {
    /// The paper's Table 2 label.
    pub fn label(&self) -> &'static str {
        match self {
            BugClass::Atomicity => "atom",
            BugClass::Race => "race",
        }
    }
}

/// One benchmark bug.
#[derive(Debug, Clone)]
pub struct BugSpec {
    /// Short name ("apache-1").
    pub name: &'static str,
    /// Upstream bug id the model is patterned after.
    pub bug_id: &'static str,
    /// Bug class.
    pub class: BugClass,
    /// Worker threads (excluding main), as reported in Table 2.
    pub threads: u32,
    /// MiniCC source.
    pub source: &'static str,
    /// The bug-triggering tail of the input (the "original input from
    /// the bug report").
    pub base_input: &'static [i64],
    /// Default random-prefix length for lengthened inputs.
    pub default_warmup: usize,
    /// Step budget for runs of this program.
    pub max_steps: u64,
}

impl BugSpec {
    /// Compiles the program.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source fails to compile (a bug in this
    /// crate, covered by tests).
    pub fn compile(&self) -> mcr_lang::Program {
        mcr_lang::compile(self.source)
            .unwrap_or_else(|e| panic!("workload {} failed to compile: {e}", self.name))
    }

    /// Builds a lengthened input: `warmup` random values (the prefix the
    /// warmup loop consumes) followed by the bug-report tail.
    pub fn lengthened_input(&self, warmup: usize, seed: u64) -> Vec<i64> {
        let mut rng = SplitMix64::new(seed ^ 0x5EED_F00D);
        let mut v: Vec<i64> = (0..warmup).map(|_| rng.next_range(0, 9)).collect();
        v.extend_from_slice(self.base_input);
        v
    }

    /// The default input used by the evaluation harness.
    pub fn default_input(&self) -> Vec<i64> {
        self.lengthened_input(self.default_warmup, 42)
    }
}

/// The paper's §6 case study: apache bug 21285 (mod_mem_cache).
///
/// Cache protocol: `create_entity` inserts an object with DEFAULT_SIZE;
/// `write_body` later removes it, sets the real size, and re-inserts.
/// The two steps are individually locked but not atomic. If the object
/// is evicted in between, `cache_remove` still subtracts its size —
/// "again", after the eviction already did — and the unsigned byte count
/// wraps to a huge value; the next insertion's eviction loop then pops
/// the queue past empty.
const APACHE1_SRC: &str = r#"
    // mod_mem_cache model. Sizes are unsigned (20-bit wrap).
    global input: [int; 256];
    global input_len: int;
    global pq: [int; 16];          // object queue (holds pointers)
    global pq_count: int;
    global current_size: int;      // total cached bytes (unsigned)
    global max_size: int = 20;
    global served: int;
    lock cl;

    // Unsigned arithmetic helper: wrap into [0, 2^20).
    fn uwrap(v) {
        return ((v % 1048576) + 1048576) % 1048576;
    }

    fn cache_insert(obj) {
        // Evict under size pressure; a wrapped current_size makes this
        // loop run the queue below zero: pq[-1] crashes (paper: "the
        // huge loop count underflows the object queue at line 182").
        while (current_size + obj[0] > max_size) {
            pq_count = pq_count - 1;
            var ev;
            ev = pq[pq_count];
            current_size = uwrap(current_size - ev[0]);
        }
        pq[pq_count] = obj;
        pq_count = pq_count + 1;
        current_size = uwrap(current_size + obj[0]);
    }

    fn cache_remove(obj) {
        var i; var j; var found;
        i = 0;
        while (i < pq_count) {
            if (pq[i] == obj) {
                j = i;
                while (j + 1 < pq_count) {
                    pq[j] = pq[j + 1];
                    j = j + 1;
                }
                pq_count = pq_count - 1;
                found = 1;
                i = pq_count;
            }
            i = i + 1;
        }
        // BUG: subtract even when the object was already evicted.
        current_size = uwrap(current_size - obj[0]);
    }

    fn handle_request(key) {
        var obj;
        obj = alloc(2);
        obj[0] = 10;               // default size (real size unknown yet)
        obj[1] = key;
        // Step 1: create_entity.
        acquire cl;
        cache_insert(obj);
        release cl;
        // Step 2: write_body — NOT atomic with step 1.
        acquire cl;
        cache_remove(obj);
        obj[0] = 1;                // the real size
        cache_insert(obj);
        release cl;
        served = served + 1;
    }

    fn warmup_worker() {
        var i; var n;
        n = input_len - 1;
        i = 0;
        while (i < n) {
            acquire cl;
            served = served + input[i] - input[i];
            release cl;
            i = i + 1;
        }
    }

    fn w1() { handle_request(101); }
    fn w2() { handle_request(102); }
    fn w3() { handle_request(103); }

    fn main() {
        warmup_worker();
        spawn w1();
        spawn w2();
        spawn w3();
    }
"#;

/// apache bug 45605: order race on a shared buffer pointer. The writer
/// retires the buffer in the wrong order: it nulls the pointer *before*
/// clearing the published `ready` flag (and outside the lock). A reader
/// scheduled into that window sees `ready == 1` with a null buffer.
const APACHE2_SRC: &str = r#"
    global input: [int; 256];
    global input_len: int;
    global buf: ptr;
    global ready: int;
    global sink: int;
    lock bl;

    fn writer() {
        var r;
        acquire bl;
        buf = alloc(4);
        buf[0] = 7;
        ready = 1;
        release bl;
        r = 0;
        while (r < 3) { r = r + 1; }    // simulated work
        // BUG: the buffer is retired before the flag is withdrawn, and
        // outside the critical section.
        buf = null;
        acquire bl;
        ready = 0;
        release bl;
    }

    fn reader() {
        if (ready > 0) {
            sink = buf[0];
        }
    }

    fn warmup() {
        var i;
        i = 0;
        while (i < input_len) {
            acquire bl;
            sink = sink + input[i] - input[i];
            release bl;
            i = i + 1;
        }
    }

    fn main() {
        warmup();
        spawn writer();
        spawn reader();
    }
"#;

/// mysql bug 21587: atomicity violation on the (len, data) pair of a
/// growable buffer. The rebuild destroys the data pointer *before* the
/// published length is withdrawn — a consumer that reads the stale
/// length dereferences a null buffer.
const MYSQL1_SRC: &str = r#"
    global input: [int; 256];
    global input_len: int;
    global data: ptr;
    global len: int;
    global acc: int;
    lock ml;

    fn producer() {
        acquire ml;
        data = alloc(4);
        data[3] = 42;
        len = 4;
        release ml;
        // Rebuild. BUG: the old buffer dies outside the critical
        // section; `len` still advertises 4 valid entries while `data`
        // is null.
        data = null;
        acquire ml;
        data = alloc(4);
        data[3] = 7;
        len = 4;
        release ml;
    }

    fn consumer() {
        var n;
        n = len;
        if (n > 0) {
            acc = data[n - 1];
        }
    }

    fn warmup() {
        var i;
        i = 0;
        while (i < input_len) {
            acquire ml;
            acc = acc + input[i] - input[i];
            release ml;
            i = i + 1;
        }
    }

    fn main() {
        warmup();
        spawn producer();
        spawn consumer();
    }
"#;

/// mysql bug 12228: check-then-use of a cached prepared statement that a
/// concurrent invalidation frees in between.
const MYSQL2_SRC: &str = r#"
    global input: [int; 256];
    global input_len: int;
    global stmt: ptr;
    global stmt_valid: int;
    global result: int;
    lock sl;

    fn prepare() {
        acquire sl;
        stmt = alloc(3);
        stmt[0] = 11;
        stmt_valid = 1;
        release sl;
    }

    fn execute() {
        if (stmt_valid > 0) {
            // Window: invalidation may land between check and use.
            result = stmt[0];
        }
    }

    fn invalidate() {
        // BUG: the statement is freed before its validity flag is
        // withdrawn, and outside the critical section.
        stmt = null;
        acquire sl;
        stmt_valid = 0;
        release sl;
    }

    fn session() {
        prepare();
        invalidate();
    }

    fn warmup() {
        var i;
        i = 0;
        while (i < input_len) {
            acquire sl;
            result = result + input[i] - input[i];
            release sl;
            i = i + 1;
        }
    }

    fn main() {
        warmup();
        spawn session();
        spawn execute();
    }
"#;

/// mysql bug 12212: use-before-init order violation — the init thread
/// publishes the `initialized` flag before the table pointer.
const MYSQL3_SRC: &str = r#"
    global input: [int; 256];
    global input_len: int;
    global table: ptr;
    global initialized: int;
    global lookups: int;
    lock il;

    fn init_subsystem() {
        var i;
        // BUG: flag raised before the table exists.
        initialized = 1;
        i = 0;
        while (i < 2) { i = i + 1; }     // init work
        acquire il;
        table = alloc(8);
        table[0] = 5;
        release il;
    }

    fn user() {
        if (initialized > 0) {
            lookups = table[0];
        }
    }

    fn warmup() {
        var i;
        i = 0;
        while (i < input_len) {
            acquire il;
            lookups = lookups + input[i] - input[i];
            release il;
            i = i + 1;
        }
    }

    fn main() {
        warmup();
        spawn init_subsystem();
        spawn user();
    }
"#;

/// mysql bug 12848: TOCTOU on the connection slot table — the free-slot
/// scan and the slot assignment sit in different critical sections, so
/// two admissions can pick the same slot; the double-allocation check in
/// the assignment section fires.
const MYSQL4_SRC: &str = r#"
    global input: [int; 256];
    global input_len: int;
    global slots: [int; 2];
    global conn_count: int;
    global admitted: int;
    global rejected: int;
    lock cl;

    fn admit(id) {
        var idx; var i;
        idx = 0 - 1;
        // Step 1: find a free slot.
        acquire cl;
        i = 0;
        while (i < 2) {
            if (slots[i] == 0) {
                idx = i;
                i = 2;
            }
            i = i + 1;
        }
        release cl;
        // Step 2: claim it — NOT atomic with the scan.
        if (idx >= 0) {
            acquire cl;
            assert(slots[idx] == 0);     // double allocation detected
            slots[idx] = id;
            conn_count = conn_count + 1;
            release cl;
            admitted = admitted + 1;
        } else {
            rejected = rejected + 1;
        }
    }

    fn a1() { admit(71); }
    fn a2() { admit(72); }
    fn a3() { admit(73); }

    fn warmup() {
        var i;
        i = 0;
        while (i < input_len) {
            acquire cl;
            admitted = admitted + input[i] - input[i];
            release cl;
            i = i + 1;
        }
    }

    fn main() {
        warmup();
        spawn a1();
        spawn a2();
        spawn a3();
    }
"#;

/// mysql bug 42419: log-buffer flush atomicity violation — the flusher
/// retires the active buffer (nulling the shared pointer) and installs
/// the replacement in a *separate* step outside the critical section; an
/// append that reserves its slot in between reads a null buffer pointer.
const MYSQL5_SRC: &str = r#"
    global input: [int; 256];
    global input_len: int;
    global logbuf: ptr;
    global logpos: int;
    global flushes: int;
    global writes: int;
    lock ll;

    fn append(v) {
        var b; var p;
        // Reserve a slot under the lock, write outside it (the standard
        // log-buffer fast path).
        acquire ll;
        b = logbuf;
        p = logpos;
        logpos = p + 1;
        release ll;
        b[p] = v;
        writes = writes + 1;
    }

    fn flush() {
        var fresh;
        // Step 1: retire the active buffer.
        acquire ll;
        logbuf = null;
        logpos = 0;
        flushes = flushes + 1;
        release ll;
        // Step 2: install the replacement — NOT atomic with step 1.
        fresh = alloc(4);
        logbuf = fresh;
    }

    fn writer_thread() {
        append(1);
        append(2);
    }

    fn flusher_thread() {
        flush();
    }

    fn setup() {
        logbuf = alloc(4);
        logpos = 0;
    }

    fn warmup() {
        var i;
        i = 0;
        while (i < input_len) {
            acquire ll;
            writes = writes + input[i] - input[i];
            release ll;
            i = i + 1;
        }
    }

    fn main() {
        setup();
        warmup();
        spawn writer_thread();
        spawn flusher_thread();
    }
"#;

/// All benchmark bugs, in the paper's Table 2 order.
pub fn all_bugs() -> Vec<BugSpec> {
    vec![
        BugSpec {
            name: "apache-1",
            bug_id: "21285",
            class: BugClass::Atomicity,
            threads: 3,
            source: APACHE1_SRC,
            base_input: &[1],
            default_warmup: 120,
            max_steps: 2_000_000,
        },
        BugSpec {
            name: "apache-2",
            bug_id: "45605",
            class: BugClass::Race,
            threads: 2,
            source: APACHE2_SRC,
            base_input: &[1],
            default_warmup: 150,
            max_steps: 2_000_000,
        },
        BugSpec {
            name: "mysql-1",
            bug_id: "21587",
            class: BugClass::Atomicity,
            threads: 2,
            source: MYSQL1_SRC,
            base_input: &[1],
            default_warmup: 200,
            max_steps: 2_000_000,
        },
        BugSpec {
            name: "mysql-2",
            bug_id: "12228",
            class: BugClass::Atomicity,
            threads: 2,
            source: MYSQL2_SRC,
            base_input: &[1],
            default_warmup: 180,
            max_steps: 2_000_000,
        },
        BugSpec {
            name: "mysql-3",
            bug_id: "12212",
            class: BugClass::Race,
            threads: 2,
            source: MYSQL3_SRC,
            base_input: &[1],
            default_warmup: 100,
            max_steps: 2_000_000,
        },
        BugSpec {
            name: "mysql-4",
            bug_id: "12848",
            class: BugClass::Atomicity,
            threads: 3,
            source: MYSQL4_SRC,
            base_input: &[1],
            default_warmup: 160,
            max_steps: 2_000_000,
        },
        BugSpec {
            name: "mysql-5",
            bug_id: "42419",
            class: BugClass::Atomicity,
            threads: 2,
            source: MYSQL5_SRC,
            base_input: &[1],
            default_warmup: 140,
            max_steps: 2_000_000,
        },
    ]
}

/// Looks up a bug by name.
///
/// Matching is forgiving the way bug trackers are: case-insensitive,
/// with `_` and `-` interchangeable — `"APACHE-1"`, `"apache_1"` and
/// `"apache-1"` all resolve to the same spec.
pub fn bug_by_name(name: &str) -> Option<BugSpec> {
    let wanted = normalize_bug_name(name);
    all_bugs()
        .into_iter()
        .find(|b| normalize_bug_name(b.name) == wanted)
}

/// Canonical form used by [`bug_by_name`]: ASCII-lowercased, `_` → `-`.
fn normalize_bug_name(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            '_' => '-',
            c => c.to_ascii_lowercase(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_vm::{run, DeterministicScheduler, NullObserver, Outcome, StressScheduler, Vm};

    #[test]
    fn all_bugs_compile_and_validate() {
        for bug in all_bugs() {
            let p = bug.compile();
            assert!(p.validate().is_ok(), "{}", bug.name);
            assert!(p.funcs.len() >= 3, "{}", bug.name);
        }
    }

    #[test]
    fn all_bugs_pass_deterministically() {
        for bug in all_bugs() {
            let p = bug.compile();
            let input = bug.default_input();
            let mut vm = Vm::new(&p, &input);
            let mut s = DeterministicScheduler::new();
            let out = run(&mut vm, &mut s, &mut NullObserver, bug.max_steps);
            assert_eq!(
                out,
                Outcome::Completed,
                "{} must pass on a single core, got {out:?}",
                bug.name
            );
        }
    }

    #[test]
    fn all_bugs_fail_under_stress() {
        for bug in all_bugs() {
            let p = bug.compile();
            let input = bug.default_input();
            let mut found = false;
            for seed in 0..300_000u64 {
                let mut vm = Vm::new(&p, &input);
                let mut s = StressScheduler::new(seed);
                if let Outcome::Crashed(_) = run(&mut vm, &mut s, &mut NullObserver, bug.max_steps)
                {
                    found = true;
                    break;
                }
            }
            assert!(found, "{}: stress never exposed the bug", bug.name);
        }
    }

    #[test]
    fn lengthened_inputs_keep_the_tail() {
        let bug = bug_by_name("apache-1").unwrap();
        let input = bug.lengthened_input(10, 7);
        assert_eq!(input.len(), 10 + bug.base_input.len());
        assert_eq!(&input[10..], bug.base_input);
        // Deterministic per seed.
        assert_eq!(input, bug.lengthened_input(10, 7));
        assert_ne!(bug.lengthened_input(10, 7), bug.lengthened_input(10, 8));
    }

    #[test]
    fn bug_by_name_is_case_and_separator_insensitive() {
        // Every canonical name round-trips through uppercase and
        // underscore spellings to the same spec.
        for bug in all_bugs() {
            for variant in [
                bug.name.to_string(),
                bug.name.to_ascii_uppercase(),
                bug.name.replace('-', "_"),
                bug.name.replace('-', "_").to_ascii_uppercase(),
            ] {
                let found = bug_by_name(&variant)
                    .unwrap_or_else(|| panic!("{variant:?} must resolve to {}", bug.name));
                assert_eq!(found.name, bug.name, "via {variant:?}");
                assert_eq!(found.bug_id, bug.bug_id);
            }
        }
        assert!(bug_by_name("no-such-bug").is_none());
        assert!(bug_by_name("").is_none());
    }

    #[test]
    fn table2_shape() {
        let bugs = all_bugs();
        assert_eq!(bugs.len(), 7);
        assert_eq!(bugs.iter().filter(|b| b.class == BugClass::Race).count(), 2);
        assert!(bugs.iter().all(|b| b.threads >= 2));
    }
}
