//! # mcr-index — execution indexing for dump-driven bug reproduction
//!
//! The paper's central analytical device (§3): a canonical, structural
//! identification of execution points that survives scheduling changes.
//!
//! * [`ExecutionIndex`] — the index representation (paper Fig. 3),
//! * [`OnlineIndexer`] — the instrumented runtime of Fig. 4; ground truth
//!   for validation and the overhead comparison that motivates dump
//!   reverse engineering,
//! * [`reverse_index`] — Algorithm 1: rebuild the failure index from a
//!   core dump using static control dependences, the call stack, and the
//!   loop counters the 1.6%-overhead instrumentation left in the frames,
//! * [`Aligner`] — the Fig. 7 rules locating the exact or closest
//!   aligned point in the deterministic passing run.
//!
//! # Examples
//!
//! ```
//! use mcr_analysis::ProgramAnalysis;
//! use mcr_dump::CoreDump;
//! use mcr_index::{reverse_index, AlignSignal, Aligner};
//! use mcr_vm::{run, run_until, DeterministicScheduler, NullObserver, Vm};
//!
//! let src = r#"
//!     global input: [int; 1];
//!     fn main() {
//!         var i; var p;
//!         while (i < 4) {
//!             i = i + 1;
//!             if (i == input[0]) { p = null; p[0] = 1; }
//!         }
//!     }
//! "#;
//! let program = mcr_lang::compile(src)?;
//! let analysis = ProgramAnalysis::analyze(&program);
//!
//! // Failing run, dump, reverse-engineered index.
//! let mut vm = Vm::new(&program, &[2]);
//! run(&mut vm, &mut DeterministicScheduler::new(), &mut NullObserver, 100_000);
//! let dump = CoreDump::capture_failure(&vm).unwrap();
//! let index = reverse_index(&program, &analysis, &dump).unwrap();
//!
//! // Align a run that does not crash.
//! let mut vm2 = Vm::new(&program, &[99]);
//! let mut aligner = Aligner::new(&program, &analysis, dump.focus, &index);
//! run_until(&mut vm2, &mut DeterministicScheduler::new(), &mut aligner, 100_000, |_| false);
//! assert_eq!(aligner.finish().signal, AlignSignal::Closest);
//! # Ok::<(), mcr_lang::LangError>(())
//! ```

#![warn(missing_docs)]

pub mod align;
#[allow(clippy::module_inception)]
pub mod index;
pub mod online;
pub mod reverse;

pub use align::{AlignSignal, Aligner, Alignment, AlignmentOutcome};
pub use index::{ExecutionIndex, IndexDisplay, IndexEntry};
pub use online::OnlineIndexer;
pub use reverse::{reverse_index, ReverseError};
