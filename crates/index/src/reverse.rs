//! Reverse engineering a failure index from a core dump — Algorithm 1.
//!
//! Given only the failure PC, the calling context, and the loop counters
//! recorded in the dump's stack frames, rebuild the execution index of the
//! failure point:
//!
//! * no control dependence → the statement nests in its method body; the
//!   call stack supplies the parent and the walk continues at the call
//!   site (lines 2–6),
//! * nesting in a loop → the frame's loop counter gives the multiplicity:
//!   insert that many copies of the loop-predicate entry (lines 7–13),
//! * single or aggregatable dependences → one predicate-region entry
//!   (lines 16–19),
//! * non-aggregatable dependences → the closest common single-CD
//!   ancestor, losing some precision that the alignment rules tolerate
//!   (lines 21–23).

use crate::index::{ExecutionIndex, IndexEntry};
use mcr_analysis::{ParentStep, PredKey, ProgramAnalysis};
use mcr_dump::CoreDump;
use mcr_lang::{Pc, Program, StmtId};
use std::error::Error;
use std::fmt;

/// Error during index reverse engineering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReverseError {
    /// The dump's focus thread has no frames (it had already finished).
    NoFrames,
    /// A frame referenced a statement out of range (corrupt dump).
    BadFrame {
        /// Frame depth (0 = outermost).
        depth: usize,
    },
    /// A loop counter slot was missing from a frame (the program was not
    /// instrumented the way the paper's production build requires).
    MissingCounter {
        /// Frame depth.
        depth: usize,
        /// Loop id within the function.
        loop_id: u32,
    },
}

impl fmt::Display for ReverseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReverseError::NoFrames => write!(f, "focus thread has no live frames"),
            ReverseError::BadFrame { depth } => {
                write!(f, "frame {depth} references an invalid statement")
            }
            ReverseError::MissingCounter { depth, loop_id } => {
                write!(f, "frame {depth} lacks a counter for loop {loop_id}")
            }
        }
    }
}

impl Error for ReverseError {}

/// Reverse engineers the execution index of the dump's failure point
/// (the focus thread's current statement).
///
/// # Errors
///
/// Returns [`ReverseError`] on corrupt dumps; see the variants.
pub fn reverse_index(
    program: &Program,
    analysis: &ProgramAnalysis,
    dump: &CoreDump,
) -> Result<ExecutionIndex, ReverseError> {
    let frames = &dump.focus_thread().frames;
    if frames.is_empty() {
        return Err(ReverseError::NoFrames);
    }
    let mut entries: Vec<IndexEntry> = Vec::new();

    // The leaf: the failure PC itself.
    let innermost = frames.last().expect("nonempty");
    entries.push(IndexEntry::Stmt(Pc::new(innermost.func, innermost.pc)));

    // Walk frames innermost -> outermost; each frame contributes the
    // regions enclosing its pc, then a Func entry.
    for (rev_depth, frame) in frames.iter().rev().enumerate() {
        let depth = frames.len() - 1 - rev_depth;
        let func_id = frame.func;
        let func = program.func(func_id);
        if frame.pc.0 as usize >= func.body.len() {
            return Err(ReverseError::BadFrame { depth });
        }
        let fa = analysis.func(func_id);

        let counter =
            |header: StmtId| -> Result<i64, ReverseError> {
                let lid = func
                    .loop_header(header)
                    .ok_or(ReverseError::BadFrame { depth })?;
                frame.loop_counters.get(lid.0 as usize).copied().ok_or(
                    ReverseError::MissingCounter {
                        depth,
                        loop_id: lid.0,
                    },
                )
            };

        let prepend = |e: IndexEntry, entries: &mut Vec<IndexEntry>| {
            entries.insert(0, e);
        };

        let mut cur = frame.pc;
        // If the pc is itself a loop predicate, its own iteration entries
        // come first (paper: "if the given PC is a loop predicate, its
        // parent node ... can be reverse engineered as well").
        if func.loop_header(cur).is_some() {
            let n = counter(cur)?;
            for _ in 0..n {
                prepend(
                    IndexEntry::Branch {
                        func: func_id,
                        key: PredKey::Stmt(cur),
                        outcome: true,
                    },
                    &mut entries,
                );
            }
        }
        // Walk outward to the function boundary.
        let mut guard = 0usize;
        loop {
            guard += 1;
            if guard > func.body.len() + 8 {
                return Err(ReverseError::BadFrame { depth });
            }
            match fa.index_parent(func, cur) {
                ParentStep::MethodBody => {
                    prepend(IndexEntry::Func(func_id), &mut entries);
                    break;
                }
                ParentStep::Loop { header } => {
                    let n = counter(header)?;
                    for _ in 0..n {
                        prepend(
                            IndexEntry::Branch {
                                func: func_id,
                                key: PredKey::Stmt(header),
                                outcome: true,
                            },
                            &mut entries,
                        );
                    }
                    cur = header;
                }
                ParentStep::Pred { key, outcome, .. } => {
                    prepend(
                        IndexEntry::Branch {
                            func: func_id,
                            key,
                            outcome,
                        },
                        &mut entries,
                    );
                    let rep = fa.rep_stmt(func, key);
                    // Defensive: a lossy common ancestor could land on a
                    // loop header; account its iterations (minus the entry
                    // just added if it is the loop entry itself).
                    if func.loop_header(rep).is_some() {
                        let n = counter(rep)?.saturating_sub(1);
                        for _ in 0..n {
                            prepend(
                                IndexEntry::Branch {
                                    func: func_id,
                                    key: PredKey::Stmt(rep),
                                    outcome: true,
                                },
                                &mut entries,
                            );
                        }
                    }
                    cur = rep;
                }
            }
        }
    }
    Ok(ExecutionIndex::new(entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_analysis::ProgramAnalysis;
    use mcr_dump::CoreDump;
    use mcr_vm::{run, DeterministicScheduler, NullObserver, Vm};

    /// The paper's Fig. 1/2/3 running example, with `a` set so the second
    /// iteration takes the `a[i] > 0` branch and crashes via F(null) —
    /// even single-threaded (we force x to stay 0 to trigger the call).
    /// We emulate the failing interleaving's *state* deterministically so
    /// the reverse-engineered index can be checked exactly.
    fn fig1_crash() -> (mcr_lang::Program, ProgramAnalysis, CoreDump) {
        // Single-threaded variant that reaches the same failure point with
        // the same nesting: in iteration 2, p = null and x == 0 => F(p)
        // crashes at p[0].
        let src = r#"
            global x: int;
            global a: [int; 3];
            fn F(p) { p[0] = 1; }
            fn T1() {
                var i;
                var p;
                for (i = 1; i <= 2; i = i + 1) {
                    x = 0;
                    p = alloc(2);
                    if (a[i] > 0) {
                        x = 1;
                        p = null;
                    }
                    x = 0;        // stand-in for T2's racing write
                    if (!x) {
                        F(p);
                    }
                }
            }
            fn main() { T1(); }
        "#;
        // Feed `a` through the `input` convention so a[2] > 0 makes the
        // second iteration null the pointer.
        let src3 = src
            .replace("global a: [int; 3];", "global input: [int; 3];")
            .replace("a[i]", "input[i]");
        let p = mcr_lang::compile(&src3).unwrap();
        let a = ProgramAnalysis::analyze(&p);
        let mut vm = Vm::new(&p, &[0, 0, 1]);
        let mut s = DeterministicScheduler::new();
        run(&mut vm, &mut s, &mut NullObserver, 100_000);
        let dump = CoreDump::capture_failure(&vm).expect("must crash");
        (p, a, dump)
    }

    #[test]
    fn fig1_index_structure() {
        let (p, a, dump) = fig1_crash();
        let idx = reverse_index(&p, &a, &dump).unwrap();
        let s = idx.display(&p).to_string();
        // Expected structure (paper Fig. 3):
        // main -> T1 -> for^T -> for^T -> ifT(!x) -> F -> leaf
        // Loop entries: exactly 2 (crash in iteration 2).
        let t1 = p.func_by_name("T1").unwrap();
        let f = p.func_by_name("F").unwrap();
        let loop_header = p.func(t1).loops[0].header;
        let loop_entries = idx
            .entries
            .iter()
            .filter(|e| {
                matches!(e, IndexEntry::Branch { func, key: PredKey::Stmt(h), .. }
                    if *func == t1 && *h == loop_header)
            })
            .count();
        assert_eq!(loop_entries, 2, "index: {s}");
        // Function nesting main -> T1 -> F appears in order.
        let func_order: Vec<_> = idx
            .entries
            .iter()
            .filter_map(|e| match e {
                IndexEntry::Func(fid) => Some(*fid),
                _ => None,
            })
            .collect();
        assert_eq!(func_order, vec![p.main, t1, f], "index: {s}");
        // Leaf is the crash point inside F.
        assert_eq!(idx.leaf().unwrap().func, f);
    }

    #[test]
    fn iteration_count_matches_crash_iteration() {
        // Crash in iteration K of a while loop: K loop entries.
        for k in [1i64, 3, 7] {
            let src = r#"
                global input: [int; 1];
                fn main() {
                    var i; var p;
                    while (i < 10) {
                        i = i + 1;
                        if (i == input[0]) { p = null; p[0] = 1; }
                    }
                }
            "#;
            let p = mcr_lang::compile(src).unwrap();
            let a = ProgramAnalysis::analyze(&p);
            let mut vm = Vm::new(&p, &[k]);
            let mut s = DeterministicScheduler::new();
            run(&mut vm, &mut s, &mut NullObserver, 100_000);
            let dump = CoreDump::capture_failure(&vm).expect("crash");
            let idx = reverse_index(&p, &a, &dump).unwrap();
            let header = p.func(p.main).loops[0].header;
            let loops = idx
                .entries
                .iter()
                .filter(|e| {
                    matches!(e, IndexEntry::Branch { key: PredKey::Stmt(h), .. } if *h == header)
                })
                .count();
            assert_eq!(loops as i64, k, "k={k}: {}", idx.display(&p));
        }
    }

    #[test]
    fn nested_loops_use_both_counters() {
        let src = r#"
            global input: [int; 2];
            fn main() {
                var i; var j; var p;
                while (i < 5) {
                    i = i + 1;
                    j = 0;
                    while (j < 5) {
                        j = j + 1;
                        if (i == input[0]) {
                            if (j == input[1]) { p = null; p[0] = 1; }
                        }
                    }
                }
            }
        "#;
        let p = mcr_lang::compile(src).unwrap();
        let a = ProgramAnalysis::analyze(&p);
        let mut vm = Vm::new(&p, &[3, 2]);
        let mut s = DeterministicScheduler::new();
        run(&mut vm, &mut s, &mut NullObserver, 100_000);
        let dump = CoreDump::capture_failure(&vm).expect("crash");
        let idx = reverse_index(&p, &a, &dump).unwrap();
        let outer = p.func(p.main).loops[0].header;
        let inner = p.func(p.main).loops[1].header;
        let count = |h| {
            idx.entries
                .iter()
                .filter(
                    |e| matches!(e, IndexEntry::Branch { key: PredKey::Stmt(hh), .. } if *hh == h),
                )
                .count() as i64
        };
        assert_eq!(count(outer), 3, "{}", idx.display(&p));
        assert_eq!(count(inner), 2, "{}", idx.display(&p));
    }

    #[test]
    fn cluster_entry_in_reversed_index() {
        let src = r#"
            global input: [int; 2];
            fn main() {
                var p;
                if (input[0] > 0 || input[1] > 0) {
                    p = null;
                    p[0] = 1;
                }
            }
        "#;
        let p = mcr_lang::compile(src).unwrap();
        let a = ProgramAnalysis::analyze(&p);
        let mut vm = Vm::new(&p, &[0, 1]);
        let mut s = DeterministicScheduler::new();
        run(&mut vm, &mut s, &mut NullObserver, 100_000);
        let dump = CoreDump::capture_failure(&vm).expect("crash");
        let idx = reverse_index(&p, &a, &dump).unwrap();
        assert!(
            idx.entries.iter().any(|e| matches!(
                e,
                IndexEntry::Branch {
                    key: PredKey::Cluster(_),
                    outcome: true,
                    ..
                }
            )),
            "{}",
            idx.display(&p)
        );
    }

    #[test]
    fn no_frames_is_an_error() {
        let p = mcr_lang::compile("fn main() { }").unwrap();
        let a = ProgramAnalysis::analyze(&p);
        let mut vm = Vm::new(&p, &[]);
        let mut s = DeterministicScheduler::new();
        run(&mut vm, &mut s, &mut NullObserver, 1000);
        let dump = CoreDump::capture(&vm, mcr_vm::ThreadId(0), mcr_dump::DumpReason::Manual);
        assert_eq!(reverse_index(&p, &a, &dump), Err(ReverseError::NoFrames));
    }
}
