//! Locating the aligned point in a passing run — the paper's Fig. 7 rules.
//!
//! The reverse-engineered failure index is consumed entry by entry as the
//! deterministic passing run executes:
//!
//! * rule 5 — entering a procedure that matches the head entry pops it;
//! * rule 6 — a predicate matching the head's region pops it when the
//!   outcome matches (①); signals **closest alignment** when the same
//!   predicate takes the other branch (②) or when the head is
//!   transitively control dependent on the branch *not* taken (③ — the
//!   tolerance for lossy common-ancestor entries);
//! * rule 7 — when only the leaf remains and the current statement is
//!   that leaf, the **exact alignment** is found.
//!
//! If the run ends without a signal, the point of deepest progress is the
//! closest alignment (the paper leaves this case implicit; deterministic
//! re-execution makes it easy to stop there on a replay).

use crate::index::{ExecutionIndex, IndexEntry};
use mcr_analysis::{PredEvent, PredKey, ProgramAnalysis};
use mcr_lang::Program;
use mcr_vm::{Event, Observer, ThreadId};
use std::collections::VecDeque;

/// The kind of alignment found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignSignal {
    /// The failure point itself occurs in the passing run.
    Exact,
    /// The runs diverge before the failure point; this is the closest
    /// point (paper: `CLOSEST_ALIGNMENT`).
    Closest,
}

/// Where a run aligned with a failure index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alignment {
    /// Exact or closest.
    pub signal: AlignSignal,
    /// The VM step (statement serial) at which the signal fired; replay
    /// to just past this step to stand at the aligned point.
    pub step: u64,
    /// Entries of the failure index still unmatched at the signal.
    pub remaining: usize,
}

/// Observer that consumes a failure index during a (passing) run.
#[derive(Debug)]
pub struct Aligner<'p> {
    program: &'p Program,
    analysis: &'p ProgramAnalysis,
    focus: ThreadId,
    idx: VecDeque<IndexEntry>,
    result: Option<Alignment>,
    /// Step of the most recent successful match (fallback alignment).
    progress_step: u64,
    progress_seen: bool,
}

impl<'p> Aligner<'p> {
    /// Creates an aligner that matches `index` against the execution of
    /// thread `focus`.
    pub fn new(
        program: &'p Program,
        analysis: &'p ProgramAnalysis,
        focus: ThreadId,
        index: &ExecutionIndex,
    ) -> Self {
        Aligner {
            program,
            analysis,
            focus,
            idx: index.entries.iter().copied().collect(),
            result: None,
            progress_step: 0,
            progress_seen: false,
        }
    }

    /// The alignment, if a signal has fired.
    pub fn result(&self) -> Option<Alignment> {
        self.result
    }

    /// Whether the aligner is still searching.
    pub fn searching(&self) -> bool {
        self.result.is_none()
    }

    /// Finishes the scan: if no signal fired during the run, the point of
    /// deepest progress becomes the closest alignment.
    pub fn finish(self) -> Alignment {
        self.result.unwrap_or(Alignment {
            signal: AlignSignal::Closest,
            step: self.progress_step,
            remaining: self.idx.len(),
        })
    }

    fn signal(&mut self, signal: AlignSignal, step: u64) {
        if self.result.is_none() {
            self.result = Some(Alignment {
                signal,
                step,
                remaining: self.idx.len(),
            });
        }
    }
}

impl Observer for Aligner<'_> {
    fn on_event(&mut self, step: u64, event: &Event) {
        if self.result.is_some() || event.tid() != self.focus {
            return;
        }
        match event {
            // Rule 5: enter procedure X.
            Event::FuncEnter { func, .. } if self.idx.front() == Some(&IndexEntry::Func(*func)) => {
                self.idx.pop_front();
                self.progress_step = step;
                self.progress_seen = true;
            }
            // Rule 6: predicate with outcome.
            Event::Branch { pc, outcome, .. } => {
                let func = self.program.func(pc.func);
                let fa = self.analysis.func(pc.func);
                let (key, side) = match fa.pred_event(func, pc.stmt, *outcome) {
                    PredEvent::Simple { stmt, outcome } => (PredKey::Stmt(stmt), outcome),
                    PredEvent::ClusterResolved { group, side } => (PredKey::Cluster(group), side),
                    PredEvent::ClusterInternal { .. } => return,
                };
                let Some(head) = self.idx.front().copied() else {
                    return;
                };
                match head {
                    IndexEntry::Branch {
                        func: hfunc,
                        key: hkey,
                        outcome: houtcome,
                    } if hfunc == pc.func && hkey == key => {
                        if houtcome == side {
                            // Condition ①: entering the matching branch.
                            self.idx.pop_front();
                            self.progress_step = step;
                            self.progress_seen = true;
                        } else {
                            // Condition ②: same predicate, other branch.
                            self.signal(AlignSignal::Closest, step);
                        }
                    }
                    IndexEntry::Branch {
                        func: hfunc,
                        key: hkey,
                        ..
                    } if hfunc == pc.func => {
                        // Condition ③: the head nests in the branch NOT
                        // taken. Control dependence on the untaken side is
                        // the paper's test; the reachability qualifier
                        // keeps it from misfiring on multi-dependence
                        // statements that another path can still reach
                        // (cf. 22F in the paper's Fig. 6 example).
                        let head_rep = fa.rep_stmt(func, hkey);
                        let not_taken = !side;
                        let opposite_rep = fa.rep_stmt(func, key);
                        if fa.transitively_control_dependent(head_rep, opposite_rep, not_taken)
                            && !fa.reachable_after_branch(opposite_rep, side, head_rep)
                        {
                            self.signal(AlignSignal::Closest, step);
                        }
                    }
                    IndexEntry::Stmt(leaf) if leaf.func == pc.func => {
                        // Condition ③ applied to the leaf.
                        let not_taken = !side;
                        let opposite_rep = fa.rep_stmt(func, key);
                        if fa.transitively_control_dependent(leaf.stmt, opposite_rep, not_taken)
                            && !fa.reachable_after_branch(opposite_rep, side, leaf.stmt)
                        {
                            self.signal(AlignSignal::Closest, step);
                        }
                    }
                    _ => {}
                }
            }
            // Rule 7: the leaf statement executes.
            Event::Stmt { pc, .. }
                if self.idx.len() == 1 && self.idx.front() == Some(&IndexEntry::Stmt(*pc)) =>
            {
                self.idx.pop_front();
                self.signal(AlignSignal::Exact, step);
            }
            _ => {}
        }
    }
}

/// Convenience summary of a completed alignment scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlignmentOutcome {
    /// The alignment.
    pub alignment: Alignment,
    /// Total entries in the failure index.
    pub index_len: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reverse::reverse_index;
    use mcr_analysis::ProgramAnalysis;
    use mcr_dump::CoreDump;
    use mcr_vm::{run, DeterministicScheduler, NullObserver, Vm};

    /// Crash a program on `crash_input`, reverse the index, then align it
    /// against the run on `pass_input`.
    fn crash_then_align(
        src: &str,
        crash_input: &[i64],
        pass_input: &[i64],
    ) -> (mcr_lang::Program, Alignment) {
        let p = mcr_lang::compile(src).unwrap();
        let a = ProgramAnalysis::analyze(&p);
        let mut vm = Vm::new(&p, crash_input);
        let mut s = DeterministicScheduler::new();
        run(&mut vm, &mut s, &mut NullObserver, 1_000_000);
        let dump = CoreDump::capture_failure(&vm).expect("crash run must crash");
        let idx = reverse_index(&p, &a, &dump).unwrap();

        let mut vm2 = Vm::new(&p, pass_input);
        let mut s2 = DeterministicScheduler::new();
        let mut aligner = Aligner::new(&p, &a, dump.focus, &idx);
        mcr_vm::run_until(&mut vm2, &mut s2, &mut aligner, 1_000_000, |_| false);
        let alignment = aligner.finish();
        (p, alignment)
    }

    const LOOP_CRASH: &str = r#"
        global input: [int; 1];
        global x: int;
        fn main() {
            var i; var p;
            while (i < 5) {
                i = i + 1;
                x = i;
                if (i == input[0]) { p = null; p[0] = 1; }
            }
            x = 77;
        }
    "#;

    #[test]
    fn same_input_gives_exact_alignment() {
        // Re-executing with the same input reaches the failure point
        // itself: exact alignment (and in this deterministic case, the
        // same crash).
        let (_p, al) = crash_then_align(LOOP_CRASH, &[3], &[3]);
        assert_eq!(al.signal, AlignSignal::Exact);
        assert_eq!(al.remaining, 0);
    }

    #[test]
    fn diverging_predicate_gives_closest_alignment() {
        // Passing input never satisfies i == input[0] inside the range:
        // the run diverges at that predicate in iteration 3 — condition ②.
        let (_p, al) = crash_then_align(LOOP_CRASH, &[3], &[99]);
        assert_eq!(al.signal, AlignSignal::Closest);
        // The leaf (and nothing else) may remain unmatched... the branch
        // entry for the if and the Func/loop entries must all have been
        // consumed by iteration 3. Remaining = ifT entry + leaf.
        assert!(al.remaining >= 1 && al.remaining <= 3, "{al:?}");
    }

    #[test]
    fn alignment_step_is_in_matching_iteration() {
        // The divergence must be detected in iteration input[0] of the
        // crash run (i == 3), not earlier or later.
        let (_p, al_same) = crash_then_align(LOOP_CRASH, &[2], &[99]);
        let (_p2, al_later) = crash_then_align(LOOP_CRASH, &[4], &[99]);
        assert_eq!(al_same.signal, AlignSignal::Closest);
        assert_eq!(al_later.signal, AlignSignal::Closest);
        // Diverging later in the loop means more steps executed.
        assert!(
            al_later.step > al_same.step,
            "iteration-2 divergence at {} should precede iteration-4 at {}",
            al_same.step,
            al_later.step
        );
    }

    #[test]
    fn paper_example_2_lossy_index_condition_3() {
        // Paper §3.3 Example 2 (Fig. 6 program): failing path reaches 26
        // via goto, reversed index is [21T, 26] (lossy). Passing run takes
        // 25F, so 26 — control dependent on 25T — can never execute:
        // condition ③ fires at predicate 25.
        let src = r#"
            global input: [int; 3];
            global c: int;
            fn main() {
                var p;
                if (input[0] > 0) {
                    if (input[1] > 0) { goto s2; }
                    c = 1;
                    if (input[2] > 0) {
                        label s2:
                        p = null;
                        p[0] = 26;
                    } else {
                        c = 3;
                    }
                }
                c = 30;
            }
        "#;
        // Crash: goto path (input = 1,1,0). Pass: 25F path (1,0,0).
        let (_p, al) = crash_then_align(src, &[1, 1, 0], &[1, 0, 0]);
        assert_eq!(al.signal, AlignSignal::Closest);

        // And with input[2] > 0 the passing run reaches the crash point:
        // exact alignment even though the index is lossy.
        let (_p2, al2) = crash_then_align(src, &[1, 1, 0], &[1, 0, 1]);
        assert_eq!(al2.signal, AlignSignal::Exact);
    }

    #[test]
    fn cluster_divergence_is_condition_2() {
        let src = r#"
            global input: [int; 2];
            fn main() {
                var p;
                if (input[0] > 0 || input[1] > 0) {
                    p = null;
                    p[0] = 1;
                }
            }
        "#;
        // Crash via the second disjunct; pass with both false: the
        // aggregated cluster resolves F while the index head wants T.
        let (_p, al) = crash_then_align(src, &[0, 1], &[0, 0]);
        assert_eq!(al.signal, AlignSignal::Closest);
    }

    #[test]
    fn end_of_run_fallback() {
        // The passing run takes an early return, so index entries beyond
        // the matched prefix never appear; the fallback reports closest
        // at the deepest progress point.
        let src = r#"
            global input: [int; 1];
            global x: int;
            fn work() {
                var p;
                x = 1;
                if (input[0] > 0) { p = null; p[0] = 1; }
            }
            fn main() {
                if (input[0] > 9) { work(); }
                x = 2;
            }
        "#;
        let (_p, al) = crash_then_align(src, &[10], &[0]);
        assert_eq!(al.signal, AlignSignal::Closest);
    }
}
