//! Execution index representation.
//!
//! An execution index (paper §3.1, after Xin et al. \[29\]) canonically
//! names one execution point by its nesting structure: the path from the
//! root of the index tree to the leaf. Here an index is the list of
//! enclosing regions — thread-root and called functions, predicate
//! branches (with short-circuit groups aggregated into one complex
//! predicate), one entry per loop iteration — ending with the leaf
//! statement.

use mcr_analysis::PredKey;
use mcr_lang::{FuncId, Pc, Program};
use std::fmt;

/// One entry of an execution index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexEntry {
    /// A function body region (thread root or call).
    Func(FuncId),
    /// A predicate branch region.
    Branch {
        /// Function containing the predicate.
        func: FuncId,
        /// The predicate (plain statement or aggregated cluster).
        key: PredKey,
        /// The branch side.
        outcome: bool,
    },
    /// The leaf: the execution point itself.
    Stmt(Pc),
}

/// A complete execution index: regions from outermost to innermost,
/// ending with the leaf statement.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecutionIndex {
    /// Entries, outermost first.
    pub entries: Vec<IndexEntry>,
}

impl ExecutionIndex {
    /// Creates an index from entries.
    pub fn new(entries: Vec<IndexEntry>) -> Self {
        ExecutionIndex { entries }
    }

    /// Number of entries — the `len(index)` column of the paper's Table 3.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the index has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The leaf statement, if present.
    pub fn leaf(&self) -> Option<Pc> {
        match self.entries.last() {
            Some(IndexEntry::Stmt(pc)) => Some(*pc),
            _ => None,
        }
    }

    /// Renders the index with source-level names, e.g.
    /// `T1 -> 2T -> 2T -> 11T -> F -> 17`.
    pub fn display<'a>(&'a self, program: &'a Program) -> IndexDisplay<'a> {
        IndexDisplay {
            index: self,
            program,
        }
    }
}

/// Pretty-printer for [`ExecutionIndex`].
#[derive(Debug, Clone, Copy)]
pub struct IndexDisplay<'a> {
    index: &'a ExecutionIndex,
    program: &'a Program,
}

impl fmt::Display for IndexDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.index.entries.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            match e {
                IndexEntry::Func(fid) => write!(f, "{}", self.program.func(*fid).name)?,
                IndexEntry::Branch { func, key, outcome } => {
                    let fname = &self.program.func(*func).name;
                    let side = if *outcome { "T" } else { "F" };
                    match key {
                        PredKey::Stmt(s) => write!(f, "{fname}:{}{side}", s.0)?,
                        PredKey::Cluster(g) => write!(f, "{fname}:G{}{side}", g.0)?,
                    }
                }
                IndexEntry::Stmt(pc) => write!(f, "{pc}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_lang::StmtId;

    #[test]
    fn leaf_extraction() {
        let pc = Pc::new(FuncId(0), StmtId(3));
        let idx = ExecutionIndex::new(vec![IndexEntry::Func(FuncId(0)), IndexEntry::Stmt(pc)]);
        assert_eq!(idx.leaf(), Some(pc));
        assert_eq!(idx.len(), 2);
        assert!(!idx.is_empty());
    }

    #[test]
    fn display_shows_structure() {
        let p = mcr_lang::compile("global x: int; fn main() { if (x > 0) { x = 1; } }").unwrap();
        let branch = p
            .func(p.main)
            .body
            .iter()
            .position(mcr_lang::Inst::is_branch)
            .unwrap() as u32;
        let idx = ExecutionIndex::new(vec![
            IndexEntry::Func(p.main),
            IndexEntry::Branch {
                func: p.main,
                key: PredKey::Stmt(StmtId(branch)),
                outcome: true,
            },
            IndexEntry::Stmt(Pc::new(p.main, StmtId(branch + 1))),
        ]);
        let s = idx.display(&p).to_string();
        assert!(s.starts_with("main -> main:"), "{s}");
        assert!(s.contains('T'), "{s}");
    }
}
