//! Online execution indexing (the paper's Fig. 4 rules).
//!
//! Maintains, per thread, the index stack the paper's instrumented
//! execution would maintain:
//!
//! 1. procedure entry pushes, procedure exit pops;
//! 2. predicates push `(predicate, outcome)` — with short-circuit groups
//!    pushed once, as their aggregated complex predicate;
//! 3. each statement first pops every region whose immediate
//!    post-dominator it is.
//!
//! This runtime exists for two reasons: it is the *ground truth* the
//! reverse-engineering algorithm is validated against (their agreement is
//! a core correctness property), and its operation counter quantifies why
//! the paper rejects online EI for production runs (≈42% overhead) in
//! favor of loop counters (§3.2).

use crate::index::{ExecutionIndex, IndexEntry};
use mcr_analysis::{PredEvent, PredKey, ProgramAnalysis};
use mcr_lang::{FuncId, Pc, Program, StmtId};
use mcr_vm::{Event, Observer, ThreadId};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StackEntry {
    Func(FuncId),
    Region {
        func: FuncId,
        key: PredKey,
        outcome: bool,
        /// Statement that pops this region (`None`: popped at function
        /// exit — the region's post-dominator is the virtual exit).
        pop_at: Option<StmtId>,
    },
}

/// Online index maintenance over the VM event stream.
#[derive(Debug)]
pub struct OnlineIndexer<'p> {
    program: &'p Program,
    analysis: &'p ProgramAnalysis,
    stacks: HashMap<ThreadId, Vec<StackEntry>>,
    /// Last statement executed per thread (the index leaf).
    last_pc: HashMap<ThreadId, Pc>,
    /// Index-maintenance operations performed (pushes + pops) — the
    /// overhead proxy for the EI-vs-loop-counter ablation.
    ops: u64,
}

impl<'p> OnlineIndexer<'p> {
    /// Creates an indexer for a program and its analysis.
    pub fn new(program: &'p Program, analysis: &'p ProgramAnalysis) -> Self {
        OnlineIndexer {
            program,
            analysis,
            stacks: HashMap::new(),
            last_pc: HashMap::new(),
            ops: 0,
        }
    }

    /// Total pushes and pops performed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// The current index of `tid`, with the thread's last executed
    /// statement as the leaf.
    pub fn current_index(&self, tid: ThreadId) -> ExecutionIndex {
        let mut entries: Vec<IndexEntry> = self
            .stacks
            .get(&tid)
            .map(|stack| {
                stack
                    .iter()
                    .map(|e| match e {
                        StackEntry::Func(f) => IndexEntry::Func(*f),
                        StackEntry::Region {
                            func, key, outcome, ..
                        } => IndexEntry::Branch {
                            func: *func,
                            key: *key,
                            outcome: *outcome,
                        },
                    })
                    .collect()
            })
            .unwrap_or_default();
        if let Some(pc) = self.last_pc.get(&tid) {
            entries.push(IndexEntry::Stmt(*pc));
        }
        ExecutionIndex::new(entries)
    }

    /// The index a thread would have *at* `pc` (its next statement):
    /// current stack plus `pc` as the leaf, after applying the pop rule
    /// for `pc`. Used to name a point just before it executes.
    pub fn index_at(&self, tid: ThreadId, pc: Pc) -> ExecutionIndex {
        let mut stack = self.stacks.get(&tid).cloned().unwrap_or_default();
        Self::pop_for_stmt(&mut stack, pc, &mut 0);
        let mut entries: Vec<IndexEntry> = stack
            .iter()
            .map(|e| match e {
                StackEntry::Func(f) => IndexEntry::Func(*f),
                StackEntry::Region {
                    func, key, outcome, ..
                } => IndexEntry::Branch {
                    func: *func,
                    key: *key,
                    outcome: *outcome,
                },
            })
            .collect();
        entries.push(IndexEntry::Stmt(pc));
        ExecutionIndex::new(entries)
    }

    fn pop_for_stmt(stack: &mut Vec<StackEntry>, pc: Pc, ops: &mut u64) {
        while let Some(StackEntry::Region {
            func,
            pop_at: Some(p),
            ..
        }) = stack.last()
        {
            if *func == pc.func && *p == pc.stmt {
                stack.pop();
                *ops += 1;
            } else {
                break;
            }
        }
    }
}

impl Observer for OnlineIndexer<'_> {
    fn on_event(&mut self, _step: u64, event: &Event) {
        match event {
            Event::Stmt { tid, pc, .. } => {
                let stack = self.stacks.entry(*tid).or_default();
                // Rule 4: pop regions whose immediate post-dominator is pc.
                Self::pop_for_stmt(stack, *pc, &mut self.ops);
                self.last_pc.insert(*tid, *pc);
            }
            Event::Branch { tid, pc, outcome } => {
                let func = self.program.func(pc.func);
                let fa = self.analysis.func(pc.func);
                let ev = fa.pred_event(func, pc.stmt, *outcome);
                let (key, side) = match ev {
                    PredEvent::Simple { stmt, outcome } => (PredKey::Stmt(stmt), outcome),
                    PredEvent::ClusterResolved { group, side } => (PredKey::Cluster(group), side),
                    PredEvent::ClusterInternal { .. } => return,
                };
                let pop_at = fa.region_pop_stmt(func, key);
                self.stacks
                    .entry(*tid)
                    .or_default()
                    .push(StackEntry::Region {
                        func: pc.func,
                        key,
                        outcome: side,
                        pop_at,
                    });
                self.ops += 1;
            }
            Event::FuncEnter { tid, func, .. } => {
                self.stacks
                    .entry(*tid)
                    .or_default()
                    .push(StackEntry::Func(*func));
                self.ops += 1;
            }
            Event::FuncExit { tid, .. } => {
                // Rule 2, generalized: leaving the function pops any
                // regions left open inside it (their post-dominator was
                // the virtual exit), then the function entry itself.
                let stack = self.stacks.entry(*tid).or_default();
                while let Some(top) = stack.pop() {
                    self.ops += 1;
                    if matches!(top, StackEntry::Func(_)) {
                        break;
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_analysis::ProgramAnalysis;
    use mcr_vm::{run, DeterministicScheduler, Scheduler, Vm};

    /// Runs a single-threaded program and returns the indexer + program.
    fn run_and_index(src: &str) -> (mcr_lang::Program, ProgramAnalysis, Vec<String>) {
        let p = mcr_lang::compile(src).unwrap();
        let a = ProgramAnalysis::analyze(&p);
        let mut indexes = Vec::new();
        {
            let mut vm = Vm::new(&p, &[]);
            let mut sched = DeterministicScheduler::new();
            let mut indexer = OnlineIndexer::new(&p, &a);
            // Capture the index after every step by re-running manually.
            loop {
                let runnable = vm.runnable_threads();
                if runnable.is_empty() || vm.failure().is_some() {
                    break;
                }
                let t = sched.pick(&vm, &runnable);
                vm.step(t, &mut indexer);
                indexes.push(indexer.current_index(t).display(&p).to_string());
            }
        }
        (p, a, indexes)
    }

    #[test]
    fn loop_iterations_accumulate_entries() {
        // Fig. 3 of the paper: in iteration i, the stack holds i copies of
        // the loop predicate entry.
        let src =
            "global n: int; fn main() { var i; while (i < 3) { i = i + 1; n = n + 1; } n = 99; }";
        let (p, a, indexes) = run_and_index(src);
        let _ = (p, a);
        // Find indexes of the body statement `n = n + 1` across iterations:
        // they must show growing numbers of loop entries.
        let depth_of = |s: &str| s.matches("->").count();
        let body_indexes: Vec<&String> = indexes
            .iter()
            .filter(|s| s.contains("T") && !s.contains("99"))
            .collect();
        assert!(!body_indexes.is_empty());
        // After the loop exits, the final statement has no loop entries.
        let last = indexes.last().unwrap();
        assert!(
            depth_of(last) <= 2,
            "loop entries must be popped at exit: {last}"
        );
    }

    #[test]
    fn same_calling_context_different_index() {
        // The motivating observation of the paper's §2: two calls to F in
        // different loop iterations share a calling context but must have
        // different indices.
        let src = r#"
            global n: int;
            fn F() { n = n + 1; }
            fn main() {
                var i;
                while (i < 2) { i = i + 1; F(); }
            }
        "#;
        let p = mcr_lang::compile(src).unwrap();
        let a = ProgramAnalysis::analyze(&p);
        let mut vm = Vm::new(&p, &[]);
        let mut sched = DeterministicScheduler::new();
        let mut indexer = OnlineIndexer::new(&p, &a);
        let f_id = p.func_by_name("F").unwrap();
        let mut f_body_indexes = Vec::new();
        loop {
            let runnable = vm.runnable_threads();
            if runnable.is_empty() {
                break;
            }
            let t = sched.pick(&vm, &runnable);
            vm.step(t, &mut indexer);
            let idx = indexer.current_index(t);
            if idx.leaf().map(|pc| pc.func) == Some(f_id) {
                f_body_indexes.push(idx);
            }
        }
        // Two executions of F's body statement with identical calling
        // context but distinct indices (extra loop entry).
        let body_stmt: Vec<_> = f_body_indexes
            .iter()
            .filter(|i| i.leaf().map(|pc| pc.stmt.0) == Some(0))
            .collect();
        assert_eq!(body_stmt.len(), 2);
        assert_ne!(body_stmt[0], body_stmt[1]);
        assert_eq!(body_stmt[0].len() + 1, body_stmt[1].len());
    }

    #[test]
    fn branch_regions_pop_at_merge() {
        let src = "global x: int; fn main() { if (x == 0) { x = 1; } x = 2; }";
        let (_p, _a, indexes) = run_and_index(src);
        // The statement after the if (x = 2) must not contain the branch
        // entry.
        let last_assign = indexes
            .iter()
            .rev()
            .nth(1) // skip the implicit return
            .unwrap();
        assert!(
            !last_assign.contains('T') || last_assign.matches("->").count() <= 1,
            "branch region leaked: {last_assign}"
        );
    }

    #[test]
    fn cluster_pushes_single_aggregated_entry() {
        let src = "global x: int; global y: int; fn main() { if (x == 0 || y == 0) { x = 5; } }";
        let p = mcr_lang::compile(src).unwrap();
        let a = ProgramAnalysis::analyze(&p);
        let mut vm = Vm::new(&p, &[]);
        let mut sched = DeterministicScheduler::new();
        let mut indexer = OnlineIndexer::new(&p, &a);
        let mut then_index = None;
        loop {
            let runnable = vm.runnable_threads();
            if runnable.is_empty() {
                break;
            }
            let t = sched.pick(&vm, &runnable);
            vm.step(t, &mut indexer);
            let idx = indexer.current_index(t);
            let leaf_inst = idx.leaf().map(|pc| p.inst(pc).clone());
            if matches!(
                leaf_inst,
                Some(mcr_lang::Inst::Assign {
                    src: mcr_lang::Expr::Const(5),
                    ..
                })
            ) {
                then_index = Some(idx);
            }
        }
        let idx = then_index.expect("then branch executed");
        // main -> G0T -> leaf: exactly one aggregated cluster entry even
        // though `x == 0` resolved the condition at its first member.
        assert_eq!(idx.len(), 3, "{}", idx.display(&p));
        assert!(matches!(
            idx.entries[1],
            IndexEntry::Branch {
                key: PredKey::Cluster(_),
                outcome: true,
                ..
            }
        ));
    }

    #[test]
    fn ops_counter_grows() {
        let (_p, _a, _idx) =
            run_and_index("global n: int; fn main() { var i; while (i < 10) { i = i + 1; } }");
        // Indirect: the helper drops the indexer, so just re-run quickly.
        let p =
            mcr_lang::compile("global n: int; fn main() { var i; while (i < 10) { i = i + 1; } }")
                .unwrap();
        let a = ProgramAnalysis::analyze(&p);
        let mut vm = Vm::new(&p, &[]);
        let mut sched = DeterministicScheduler::new();
        let mut indexer = OnlineIndexer::new(&p, &a);
        run(&mut vm, &mut sched, &mut indexer, 10_000);
        assert!(indexer.ops() > 20, "ops = {}", indexer.ops());
    }
}
