//! Dynamic dependence traces.
//!
//! The paper's Valgrind component collects an instruction trace for a
//! window of execution (20M instructions, §6) on which dynamic slicing
//! runs. Here a [`TraceCollector`] observes the VM event stream and builds
//! the same information natively: per executed statement, its used and
//! defined locations, the *dynamic data dependence* (which earlier
//! statement execution wrote each used value) and the *dynamic control
//! dependence* (which branch execution / call currently governs it).

use mcr_analysis::ProgramAnalysis;
use mcr_lang::{FuncId, Pc, Program, StmtId};
use mcr_vm::{Event, MemLoc, Observer, ThreadId};
use std::collections::{HashMap, VecDeque};

/// One executed statement in the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Trace serial (monotonically increasing across the run; survives
    /// windowing).
    pub serial: u64,
    /// The VM step at which the statement executed.
    pub step: u64,
    /// Executing thread.
    pub tid: ThreadId,
    /// The statement.
    pub pc: Pc,
    /// Locations read, with the serial of the writing event when known.
    pub uses: Vec<(MemLoc, Option<u64>)>,
    /// Locations written.
    pub defs: Vec<MemLoc>,
    /// Serial of the dynamically governing branch or call event.
    pub ctrl_dep: Option<u64>,
    /// Branch outcome, when the statement was a predicate.
    pub branch_outcome: Option<bool>,
}

impl TraceEvent {
    /// Whether this event reads `loc`.
    pub fn reads(&self, loc: MemLoc) -> bool {
        self.uses.iter().any(|&(l, _)| l == loc)
    }

    /// Whether this event writes `loc`.
    pub fn writes(&self, loc: MemLoc) -> bool {
        self.defs.contains(&loc)
    }

    /// Whether this event touches `loc` at all.
    pub fn touches(&self, loc: MemLoc) -> bool {
        self.reads(loc) || self.writes(loc)
    }
}

#[derive(Debug, Clone, Copy)]
enum Region {
    /// An open branch region: governing serial, function, pop statement.
    Branch {
        serial: u64,
        func: FuncId,
        pop_at: Option<StmtId>,
    },
    /// A call boundary: statements above it are governed by the call.
    Call { serial: Option<u64> },
}

/// Observer that collects a (windowed) dynamic dependence trace.
#[derive(Debug)]
pub struct TraceCollector<'p> {
    program: &'p Program,
    analysis: &'p ProgramAnalysis,
    window: usize,
    events: VecDeque<TraceEvent>,
    current: Option<TraceEvent>,
    next_serial: u64,
    last_writer: HashMap<MemLoc, u64>,
    regions: HashMap<ThreadId, Vec<Region>>,
}

impl<'p> TraceCollector<'p> {
    /// Creates a collector keeping at most `window` events (the paper
    /// uses a 20M-instruction window; traces here are much denser in
    /// information per event, so windows of 10⁵–10⁶ suffice).
    pub fn new(program: &'p Program, analysis: &'p ProgramAnalysis, window: usize) -> Self {
        TraceCollector {
            program,
            analysis,
            window,
            events: VecDeque::new(),
            current: None,
            next_serial: 0,
            last_writer: HashMap::new(),
            regions: HashMap::new(),
        }
    }

    /// Finalizes and returns the collected trace.
    pub fn finish(mut self) -> Trace {
        self.flush();
        Trace {
            events: self.events.into_iter().collect(),
        }
    }

    fn flush(&mut self) {
        if let Some(ev) = self.current.take() {
            if self.events.len() == self.window {
                self.events.pop_front();
            }
            self.events.push_back(ev);
        }
    }

    fn governing(&self, tid: ThreadId) -> Option<u64> {
        match self.regions.get(&tid)?.last()? {
            Region::Branch { serial, .. } => Some(*serial),
            Region::Call { serial } => *serial,
        }
    }
}

impl Observer for TraceCollector<'_> {
    fn on_event(&mut self, step: u64, event: &Event) {
        match event {
            Event::Stmt { tid, pc, .. } => {
                self.flush();
                // Close branch regions that post-dominate at this pc.
                let stack = self.regions.entry(*tid).or_default();
                while let Some(Region::Branch { func, pop_at, .. }) = stack.last() {
                    if *func == pc.func && *pop_at == Some(pc.stmt) {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                let ctrl_dep = self.governing(*tid);
                let serial = self.next_serial;
                self.next_serial += 1;
                self.current = Some(TraceEvent {
                    serial,
                    step,
                    tid: *tid,
                    pc: *pc,
                    uses: Vec::new(),
                    defs: Vec::new(),
                    ctrl_dep,
                    branch_outcome: None,
                });
            }
            Event::Read { loc, .. } => {
                if let Some(cur) = &mut self.current {
                    let writer = self.last_writer.get(loc).copied();
                    cur.uses.push((*loc, writer));
                }
            }
            // Under TSO a buffered store is still the defining statement
            // for dataflow purposes: the value a later read observes (via
            // snooping or after the flush) originates here. The matching
            // `StoreFlushed` is visibility bookkeeping, not a second def,
            // and falls through to the ignore arm.
            Event::Write { loc, .. } | Event::StoreBuffered { loc, .. } => {
                if let Some(cur) = &mut self.current {
                    cur.defs.push(*loc);
                    self.last_writer.insert(*loc, cur.serial);
                }
            }
            Event::Branch { tid, pc, outcome } => {
                let serial = match &mut self.current {
                    Some(cur) => {
                        cur.branch_outcome = Some(*outcome);
                        cur.serial
                    }
                    None => return,
                };
                let fa = self.analysis.func(pc.func);
                let pop_at = fa.ipdom_stmt(pc.stmt);
                let _ = self.program;
                self.regions.entry(*tid).or_default().push(Region::Branch {
                    serial,
                    func: pc.func,
                    pop_at,
                });
            }
            Event::FuncEnter { tid, .. } => {
                // The governing event of the callee's statements is the
                // call/spawn statement currently executing (if any — the
                // main thread's root has none).
                let serial = self.current.as_ref().map(|c| c.serial);
                self.regions
                    .entry(*tid)
                    .or_default()
                    .push(Region::Call { serial });
            }
            Event::FuncExit { tid, .. } => {
                let stack = self.regions.entry(*tid).or_default();
                while let Some(top) = stack.pop() {
                    if matches!(top, Region::Call { .. }) {
                        break;
                    }
                }
            }
            _ => {}
        }
    }
}

/// A finalized dynamic trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Events in execution order (possibly a suffix window of the run).
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The event with the given serial, if still in the window.
    pub fn by_serial(&self, serial: u64) -> Option<&TraceEvent> {
        let first = self.events.first()?.serial;
        let idx = serial.checked_sub(first)? as usize;
        let ev = self.events.get(idx)?;
        debug_assert_eq!(ev.serial, serial);
        Some(ev)
    }

    /// The last event (the aligned point when collection stopped there).
    pub fn last(&self) -> Option<&TraceEvent> {
        self.events.last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_analysis::ProgramAnalysis;
    use mcr_vm::{run, DeterministicScheduler, Vm};

    fn collect(src: &str, input: &[i64]) -> (mcr_lang::Program, Trace) {
        let p = mcr_lang::compile(src).unwrap();
        let a = ProgramAnalysis::analyze(&p);
        let mut vm = Vm::new(&p, input);
        let mut s = DeterministicScheduler::new();
        let mut tc = TraceCollector::new(&p, &a, 1_000_000);
        run(&mut vm, &mut s, &mut tc, 1_000_000);
        let t = tc.finish();
        (p, t)
    }

    #[test]
    fn data_dependences_link_writer_to_reader() {
        let (_p, t) = collect(
            "global x: int; global y: int; fn main() { x = 3; y = x; }",
            &[],
        );
        // Find `y = x`: it reads x with a writer serial pointing at `x = 3`.
        let reader = t
            .events
            .iter()
            .find(|e| !e.uses.is_empty() && !e.defs.is_empty())
            .expect("y = x");
        let (_, writer) = reader.uses[0];
        let w = t.by_serial(writer.expect("writer known")).unwrap();
        assert!(w.serial < reader.serial);
        assert_eq!(w.defs.len(), 1);
    }

    #[test]
    fn control_dependence_points_at_branch() {
        let (_p, t) = collect("global x: int; fn main() { if (x == 0) { x = 7; } }", &[]);
        let branch = t
            .events
            .iter()
            .find(|e| e.branch_outcome.is_some())
            .unwrap();
        let inner = t
            .events
            .iter()
            .find(|e| e.serial > branch.serial && !e.defs.is_empty())
            .expect("x = 7");
        assert_eq!(inner.ctrl_dep, Some(branch.serial));
    }

    #[test]
    fn callee_statements_governed_by_call() {
        let (_p, t) = collect("global x: int; fn f() { x = 5; } fn main() { f(); }", &[]);
        let call = t
            .events
            .iter()
            .find(|e| matches!(e.pc.func, f if f == mcr_lang::FuncId(1)) && e.defs.is_empty())
            .expect("call stmt in main");
        let body = t
            .events
            .iter()
            .find(|e| e.pc.func == mcr_lang::FuncId(0) && !e.defs.is_empty())
            .expect("x = 5 in f");
        assert_eq!(body.ctrl_dep, Some(call.serial));
    }

    #[test]
    fn window_keeps_suffix() {
        let src = "global n: int; fn main() { var i; while (i < 50) { i = i + 1; } }";
        let p = mcr_lang::compile(src).unwrap();
        let a = ProgramAnalysis::analyze(&p);
        let mut vm = Vm::new(&p, &[]);
        let mut s = DeterministicScheduler::new();
        let mut tc = TraceCollector::new(&p, &a, 10);
        run(&mut vm, &mut s, &mut tc, 1_000_000);
        let t = tc.finish();
        assert_eq!(t.len(), 10);
        // Serials are contiguous and lookups work.
        let first = t.events.first().unwrap().serial;
        assert!(t.by_serial(first + 5).is_some());
        assert!(t.by_serial(first.wrapping_sub(1)).is_none());
    }

    #[test]
    fn loop_body_governed_by_header() {
        let (_p, t) = collect(
            "global n: int; fn main() { var i; while (i < 3) { i = i + 1; } }",
            &[],
        );
        let headers: Vec<u64> = t
            .events
            .iter()
            .filter(|e| e.branch_outcome.is_some())
            .map(|e| e.serial)
            .collect();
        assert_eq!(headers.len(), 4, "3 true + 1 false evaluations");
        // Each `i = i + 1` is governed by the nearest preceding header.
        for ev in t.events.iter().filter(|e| !e.defs.is_empty()) {
            if let Some(cd) = ev.ctrl_dep {
                assert!(headers.contains(&cd) || cd < headers[0]);
            }
        }
    }
}
