//! Dynamic dependence traces.
//!
//! The paper's Valgrind component collects an instruction trace for a
//! window of execution (20M instructions, §6) on which dynamic slicing
//! runs. Here a [`TraceCollector`] observes the VM event stream and builds
//! the same information natively: per executed statement, its used and
//! defined locations, the *dynamic data dependence* (which earlier
//! statement execution wrote each used value) and the *dynamic control
//! dependence* (which branch execution / call currently governs it).
//!
//! The collector buffers its window through a pluggable [`TraceSink`]:
//! the default [`RingSink`] keeps the last `window` events decoded in
//! memory, while [`SegmentSpillSink`] seals older events into
//! checksummed [`SegmentedBytes`] frames on the wire codec
//! ([`write_trace_event`]) and drops frames that fall out of the window
//! — so `window` can exceed what decoded events would fit in RAM, and
//! [`TraceCollector::finish`] still reproduces the exact ring result.

use mcr_analysis::ProgramAnalysis;
use mcr_dump::wire::{Reader, SegmentedBytes, Writer};
use mcr_dump::DecodeError;
use mcr_lang::{FuncId, Pc, Program, StmtId};
use mcr_vm::{Event, MemLoc, Observer, ThreadId};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// One executed statement in the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Trace serial (monotonically increasing across the run; survives
    /// windowing).
    pub serial: u64,
    /// The VM step at which the statement executed.
    pub step: u64,
    /// Executing thread.
    pub tid: ThreadId,
    /// The statement.
    pub pc: Pc,
    /// Locations read, with the serial of the writing event when known.
    pub uses: Vec<(MemLoc, Option<u64>)>,
    /// Locations written.
    pub defs: Vec<MemLoc>,
    /// Serial of the dynamically governing branch or call event.
    pub ctrl_dep: Option<u64>,
    /// Branch outcome, when the statement was a predicate.
    pub branch_outcome: Option<bool>,
}

impl TraceEvent {
    /// Whether this event reads `loc`.
    pub fn reads(&self, loc: MemLoc) -> bool {
        self.uses.iter().any(|&(l, _)| l == loc)
    }

    /// Whether this event writes `loc`.
    pub fn writes(&self, loc: MemLoc) -> bool {
        self.defs.contains(&loc)
    }

    /// Whether this event touches `loc` at all.
    pub fn touches(&self, loc: MemLoc) -> bool {
        self.reads(loc) || self.writes(loc)
    }
}

/// Appends one trace event on the wire codec. This is the canonical
/// trace-event byte layout: `mcr-core`'s diff artifact and the
/// segment-spilling sink both use it, so a spilled trace and a cached
/// artifact carry bit-identical event encodings.
pub fn write_trace_event(w: &mut Writer, e: &TraceEvent) {
    w.uvarint(e.serial);
    w.uvarint(e.step);
    w.uvarint(e.tid.0 as u64);
    w.pc(e.pc);
    w.uvarint(e.uses.len() as u64);
    for &(loc, writer) in &e.uses {
        w.memloc(loc);
        w.opt_uvarint(writer);
    }
    w.uvarint(e.defs.len() as u64);
    for &loc in &e.defs {
        w.memloc(loc);
    }
    w.opt_uvarint(e.ctrl_dep);
    match e.branch_outcome {
        None => w.u8(0),
        Some(false) => w.u8(1),
        Some(true) => w.u8(2),
    }
}

/// Reads one trace event (inverse of [`write_trace_event`]).
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated or malformed input.
pub fn read_trace_event(r: &mut Reader<'_>) -> Result<TraceEvent, DecodeError> {
    let serial = r.uvarint()?;
    let step = r.uvarint()?;
    let tid = ThreadId(r.uvarint()? as u32);
    let pc = r.pc()?;
    let n = r.len("trace uses")?;
    let mut uses = Vec::with_capacity(n.min(65536));
    for _ in 0..n {
        let loc = r.memloc()?;
        uses.push((loc, r.opt_uvarint()?));
    }
    let n = r.len("trace defs")?;
    let mut defs = Vec::with_capacity(n.min(65536));
    for _ in 0..n {
        defs.push(r.memloc()?);
    }
    let ctrl_dep = r.opt_uvarint()?;
    let branch_outcome = match r.u8()? {
        0 => None,
        1 => Some(false),
        2 => Some(true),
        t => return r.err(format!("bad branch outcome tag {t}")),
    };
    Ok(TraceEvent {
        serial,
        step,
        tid,
        pc,
        uses,
        defs,
        ctrl_dep,
        branch_outcome,
    })
}

/// How a [`TraceCollector`] buffers its window — a process-local tuning
/// knob: both modes finalize to the identical [`Trace`], so the choice
/// never affects phase keys, artifacts, or reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TraceSpill {
    /// Keep the whole window decoded in memory (a [`RingSink`]) — the
    /// classic behavior, fastest when the window fits comfortably.
    #[default]
    InMemory,
    /// Seal events into wire-encoded [`SegmentedBytes`] frames of
    /// `frame_events` events each (a [`SegmentSpillSink`]), keeping at
    /// most one frame decoded: resident bytes track the *encoded* window
    /// (typically 5–10× smaller than decoded `TraceEvent`s), so
    /// `trace_window` can exceed what decoded events would fit in RAM.
    Segmented {
        /// Events per sealed frame (clamped to ≥ 1).
        frame_events: u32,
    },
}

impl TraceSpill {
    /// Rough wire size of one encoded [`TraceEvent`]
    /// ([`write_trace_event`]): a handful of small varints plus one or
    /// two use/def memlocs. Only a planning estimate for converting a
    /// byte budget into a frame granularity — frames seal on event
    /// *count*, so a wrong estimate costs a little frame-size skew,
    /// never correctness.
    const APPROX_EVENT_BYTES: usize = 16;

    /// Segmented spilling at the default frame granularity.
    pub fn segmented() -> TraceSpill {
        TraceSpill::Segmented { frame_events: 1024 }
    }

    /// Segmented spilling with frames sized to roughly `frame_bytes`
    /// encoded bytes each (≥ 1 event), for callers that measured a
    /// working frame size (e.g. from a store's residency histogram)
    /// rather than picking an event count. Like every [`TraceSpill`]
    /// value this is residency-only tuning: the finalized [`Trace`] is
    /// identical at any granularity.
    pub fn segmented_sized(frame_bytes: usize) -> TraceSpill {
        TraceSpill::Segmented {
            frame_events: (frame_bytes / TraceSpill::APPROX_EVENT_BYTES).max(1) as u32,
        }
    }
}

/// Where a [`TraceCollector`] pushes finalized events.
///
/// A sink retains (at least) the last `window` events pushed and yields
/// exactly that suffix from [`TraceSink::finish`] — every implementation
/// must produce the identical event sequence, so the sink choice is
/// invisible downstream.
pub trait TraceSink: Send + fmt::Debug {
    /// Accepts the next finalized event.
    fn push(&mut self, event: TraceEvent);

    /// Logical events currently retained.
    fn len(&self) -> usize;

    /// True when nothing is retained.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the sink, yielding the retained window in push order.
    fn finish(&mut self) -> Vec<TraceEvent>;
}

/// The in-memory ring sink: the last `window` events, decoded.
#[derive(Debug)]
pub struct RingSink {
    window: usize,
    events: VecDeque<TraceEvent>,
}

impl RingSink {
    /// A ring retaining at most `window` events.
    pub fn new(window: usize) -> RingSink {
        RingSink {
            window,
            events: VecDeque::new(),
        }
    }
}

impl TraceSink for RingSink {
    fn push(&mut self, event: TraceEvent) {
        if self.events.len() == self.window {
            self.events.pop_front();
        }
        self.events.push_back(event);
    }

    fn len(&self) -> usize {
        self.events.len()
    }

    fn finish(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events).into_iter().collect()
    }
}

/// Byte frame size of sealed spill containers: small enough that
/// decoding one frame on finish stays cheap, large enough that the
/// per-segment header overhead is negligible.
const SPILL_FRAME_BYTES: usize = 4096;

#[derive(Debug)]
struct SealedFrame {
    events: usize,
    seg: SegmentedBytes,
}

/// A spilling sink: events beyond a small decoded tail live wire-encoded
/// in checksummed [`SegmentedBytes`] frames, and frames that fall wholly
/// outside the window are dropped — resident bytes are bounded by the
/// *encoded* window size plus one decoded frame.
#[derive(Debug)]
pub struct SegmentSpillSink {
    window: usize,
    frame_events: usize,
    tail: Vec<TraceEvent>,
    frames: VecDeque<SealedFrame>,
    sealed_events: usize,
    /// Events dropped past the window (oldest-first), for telemetry.
    spilled: u64,
}

impl SegmentSpillSink {
    /// A sink retaining at most `window` events, sealing frames of
    /// `frame_events` (clamped to ≥ 1) events each.
    pub fn new(window: usize, frame_events: usize) -> SegmentSpillSink {
        SegmentSpillSink {
            window,
            frame_events: frame_events.max(1),
            tail: Vec::new(),
            frames: VecDeque::new(),
            sealed_events: 0,
            spilled: 0,
        }
    }

    /// Events dropped because they fell out of the window.
    pub fn spilled(&self) -> u64 {
        self.spilled
    }

    /// Encoded bytes currently resident in sealed frames (what the
    /// in-memory ring would instead hold as decoded `TraceEvent`s).
    pub fn sealed_bytes(&self) -> usize {
        self.frames.iter().map(|f| f.seg.as_bytes().len()).sum()
    }

    fn seal_tail(&mut self) {
        let mut w = Writer::new();
        w.uvarint(self.tail.len() as u64);
        for e in &self.tail {
            write_trace_event(&mut w, e);
        }
        let seg = SegmentedBytes::from_payload(&w.into_bytes(), SPILL_FRAME_BYTES);
        self.sealed_events += self.tail.len();
        self.frames.push_back(SealedFrame {
            events: self.tail.len(),
            seg,
        });
        self.tail.clear();
        // Drop frames that no longer intersect the window suffix.
        while let Some(front) = self.frames.front() {
            if self.window > 0 && self.sealed_events - front.events >= self.window {
                self.sealed_events -= front.events;
                self.spilled += front.events as u64;
                self.frames.pop_front();
            } else {
                break;
            }
        }
    }

    fn decode_frame(frame: &SealedFrame) -> Vec<TraceEvent> {
        let payload = frame
            .seg
            .read_range(0, frame.seg.total_len() as usize)
            .expect("own spill frame verifies");
        let mut r = Reader::new(&payload);
        let n = r.len("spilled trace events").expect("own spill frame");
        let mut events = Vec::with_capacity(n);
        for _ in 0..n {
            events.push(read_trace_event(&mut r).expect("own spill frame decodes"));
        }
        r.finish().expect("own spill frame complete");
        events
    }
}

impl TraceSink for SegmentSpillSink {
    fn push(&mut self, event: TraceEvent) {
        self.tail.push(event);
        if self.tail.len() >= self.frame_events {
            self.seal_tail();
        }
    }

    fn len(&self) -> usize {
        self.sealed_events + self.tail.len()
    }

    fn finish(&mut self) -> Vec<TraceEvent> {
        let mut events = Vec::with_capacity(self.len());
        for frame in &self.frames {
            events.extend(SegmentSpillSink::decode_frame(frame));
        }
        events.append(&mut self.tail);
        self.frames.clear();
        self.sealed_events = 0;
        if self.window > 0 && events.len() > self.window {
            let excess = events.len() - self.window;
            self.spilled += excess as u64;
            events.drain(..excess);
        }
        events
    }
}

#[derive(Debug, Clone, Copy)]
enum Region {
    /// An open branch region: governing serial, function, pop statement.
    Branch {
        serial: u64,
        func: FuncId,
        pop_at: Option<StmtId>,
    },
    /// A call boundary: statements above it are governed by the call.
    Call { serial: Option<u64> },
}

/// Observer that collects a (windowed) dynamic dependence trace.
#[derive(Debug)]
pub struct TraceCollector<'p> {
    program: &'p Program,
    analysis: &'p ProgramAnalysis,
    sink: Box<dyn TraceSink>,
    current: Option<TraceEvent>,
    next_serial: u64,
    last_writer: HashMap<MemLoc, u64>,
    regions: HashMap<ThreadId, Vec<Region>>,
}

impl<'p> TraceCollector<'p> {
    /// Creates a collector keeping at most `window` events decoded in
    /// memory (the paper uses a 20M-instruction window; traces here are
    /// much denser in information per event, so windows of 10⁵–10⁶
    /// suffice).
    pub fn new(program: &'p Program, analysis: &'p ProgramAnalysis, window: usize) -> Self {
        TraceCollector::with_sink(program, analysis, Box::new(RingSink::new(window)))
    }

    /// Creates a collector whose window buffering is chosen by `spill`
    /// (see [`TraceSpill`]); both modes finalize to the identical
    /// [`Trace`].
    pub fn with_spill(
        program: &'p Program,
        analysis: &'p ProgramAnalysis,
        window: usize,
        spill: TraceSpill,
    ) -> Self {
        let sink: Box<dyn TraceSink> = match spill {
            TraceSpill::InMemory => Box::new(RingSink::new(window)),
            TraceSpill::Segmented { frame_events } => {
                Box::new(SegmentSpillSink::new(window, frame_events as usize))
            }
        };
        TraceCollector::with_sink(program, analysis, sink)
    }

    /// Creates a collector over an explicit sink.
    pub fn with_sink(
        program: &'p Program,
        analysis: &'p ProgramAnalysis,
        sink: Box<dyn TraceSink>,
    ) -> Self {
        TraceCollector {
            program,
            analysis,
            sink,
            current: None,
            next_serial: 0,
            last_writer: HashMap::new(),
            regions: HashMap::new(),
        }
    }

    /// Finalizes and returns the collected trace.
    pub fn finish(mut self) -> Trace {
        self.flush();
        Trace {
            events: self.sink.finish(),
        }
    }

    fn flush(&mut self) {
        if let Some(ev) = self.current.take() {
            self.sink.push(ev);
        }
    }

    fn governing(&self, tid: ThreadId) -> Option<u64> {
        match self.regions.get(&tid)?.last()? {
            Region::Branch { serial, .. } => Some(*serial),
            Region::Call { serial } => *serial,
        }
    }
}

impl Observer for TraceCollector<'_> {
    fn on_event(&mut self, step: u64, event: &Event) {
        match event {
            Event::Stmt { tid, pc, .. } => {
                self.flush();
                // Close branch regions that post-dominate at this pc.
                let stack = self.regions.entry(*tid).or_default();
                while let Some(Region::Branch { func, pop_at, .. }) = stack.last() {
                    if *func == pc.func && *pop_at == Some(pc.stmt) {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                let ctrl_dep = self.governing(*tid);
                let serial = self.next_serial;
                self.next_serial += 1;
                self.current = Some(TraceEvent {
                    serial,
                    step,
                    tid: *tid,
                    pc: *pc,
                    uses: Vec::new(),
                    defs: Vec::new(),
                    ctrl_dep,
                    branch_outcome: None,
                });
            }
            Event::Read { loc, .. } => {
                if let Some(cur) = &mut self.current {
                    let writer = self.last_writer.get(loc).copied();
                    cur.uses.push((*loc, writer));
                }
            }
            // Under TSO a buffered store is still the defining statement
            // for dataflow purposes: the value a later read observes (via
            // snooping or after the flush) originates here. The matching
            // `StoreFlushed` is visibility bookkeeping, not a second def,
            // and falls through to the ignore arm.
            Event::Write { loc, .. } | Event::StoreBuffered { loc, .. } => {
                if let Some(cur) = &mut self.current {
                    cur.defs.push(*loc);
                    self.last_writer.insert(*loc, cur.serial);
                }
            }
            Event::Branch { tid, pc, outcome } => {
                let serial = match &mut self.current {
                    Some(cur) => {
                        cur.branch_outcome = Some(*outcome);
                        cur.serial
                    }
                    None => return,
                };
                let fa = self.analysis.func(pc.func);
                let pop_at = fa.ipdom_stmt(pc.stmt);
                let _ = self.program;
                self.regions.entry(*tid).or_default().push(Region::Branch {
                    serial,
                    func: pc.func,
                    pop_at,
                });
            }
            Event::FuncEnter { tid, .. } => {
                // The governing event of the callee's statements is the
                // call/spawn statement currently executing (if any — the
                // main thread's root has none).
                let serial = self.current.as_ref().map(|c| c.serial);
                self.regions
                    .entry(*tid)
                    .or_default()
                    .push(Region::Call { serial });
            }
            Event::FuncExit { tid, .. } => {
                let stack = self.regions.entry(*tid).or_default();
                while let Some(top) = stack.pop() {
                    if matches!(top, Region::Call { .. }) {
                        break;
                    }
                }
            }
            _ => {}
        }
    }
}

/// A finalized dynamic trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Events in execution order (possibly a suffix window of the run).
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The event with the given serial, if still in the window.
    pub fn by_serial(&self, serial: u64) -> Option<&TraceEvent> {
        let first = self.events.first()?.serial;
        let idx = serial.checked_sub(first)? as usize;
        let ev = self.events.get(idx)?;
        debug_assert_eq!(ev.serial, serial);
        Some(ev)
    }

    /// The last event (the aligned point when collection stopped there).
    pub fn last(&self) -> Option<&TraceEvent> {
        self.events.last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_analysis::ProgramAnalysis;
    use mcr_vm::{run, DeterministicScheduler, Vm};

    fn collect(src: &str, input: &[i64]) -> (mcr_lang::Program, Trace) {
        let p = mcr_lang::compile(src).unwrap();
        let a = ProgramAnalysis::analyze(&p);
        let mut vm = Vm::new(&p, input);
        let mut s = DeterministicScheduler::new();
        let mut tc = TraceCollector::new(&p, &a, 1_000_000);
        run(&mut vm, &mut s, &mut tc, 1_000_000);
        let t = tc.finish();
        (p, t)
    }

    #[test]
    fn data_dependences_link_writer_to_reader() {
        let (_p, t) = collect(
            "global x: int; global y: int; fn main() { x = 3; y = x; }",
            &[],
        );
        // Find `y = x`: it reads x with a writer serial pointing at `x = 3`.
        let reader = t
            .events
            .iter()
            .find(|e| !e.uses.is_empty() && !e.defs.is_empty())
            .expect("y = x");
        let (_, writer) = reader.uses[0];
        let w = t.by_serial(writer.expect("writer known")).unwrap();
        assert!(w.serial < reader.serial);
        assert_eq!(w.defs.len(), 1);
    }

    #[test]
    fn control_dependence_points_at_branch() {
        let (_p, t) = collect("global x: int; fn main() { if (x == 0) { x = 7; } }", &[]);
        let branch = t
            .events
            .iter()
            .find(|e| e.branch_outcome.is_some())
            .unwrap();
        let inner = t
            .events
            .iter()
            .find(|e| e.serial > branch.serial && !e.defs.is_empty())
            .expect("x = 7");
        assert_eq!(inner.ctrl_dep, Some(branch.serial));
    }

    #[test]
    fn callee_statements_governed_by_call() {
        let (_p, t) = collect("global x: int; fn f() { x = 5; } fn main() { f(); }", &[]);
        let call = t
            .events
            .iter()
            .find(|e| matches!(e.pc.func, f if f == mcr_lang::FuncId(1)) && e.defs.is_empty())
            .expect("call stmt in main");
        let body = t
            .events
            .iter()
            .find(|e| e.pc.func == mcr_lang::FuncId(0) && !e.defs.is_empty())
            .expect("x = 5 in f");
        assert_eq!(body.ctrl_dep, Some(call.serial));
    }

    #[test]
    fn window_keeps_suffix() {
        let src = "global n: int; fn main() { var i; while (i < 50) { i = i + 1; } }";
        let p = mcr_lang::compile(src).unwrap();
        let a = ProgramAnalysis::analyze(&p);
        let mut vm = Vm::new(&p, &[]);
        let mut s = DeterministicScheduler::new();
        let mut tc = TraceCollector::new(&p, &a, 10);
        run(&mut vm, &mut s, &mut tc, 1_000_000);
        let t = tc.finish();
        assert_eq!(t.len(), 10);
        // Serials are contiguous and lookups work.
        let first = t.events.first().unwrap().serial;
        assert!(t.by_serial(first + 5).is_some());
        assert!(t.by_serial(first.wrapping_sub(1)).is_none());
    }

    fn collect_with_spill(src: &str, window: usize, spill: TraceSpill) -> Trace {
        let p = mcr_lang::compile(src).unwrap();
        let a = ProgramAnalysis::analyze(&p);
        let mut vm = Vm::new(&p, &[]);
        let mut s = DeterministicScheduler::new();
        let mut tc = TraceCollector::with_spill(&p, &a, window, spill);
        run(&mut vm, &mut s, &mut tc, 1_000_000);
        tc.finish()
    }

    const SPILL_SRC: &str = r#"
        global x: int;
        global a: [int; 8];
        fn main() {
            var i;
            while (i < 200) {
                i = i + 1;
                x = x + i;
                a[0] = x;
                if (x > 100) { a[1] = i; }
            }
        }
    "#;

    #[test]
    fn spilling_sink_reproduces_the_ring_exactly() {
        // Windows straddling frame boundaries, and frames both smaller
        // and larger than the window.
        for (window, frame_events) in [(10, 4), (10, 64), (37, 8), (128, 16), (1, 4)] {
            let ring = collect_with_spill(SPILL_SRC, window, TraceSpill::InMemory);
            let spilled =
                collect_with_spill(SPILL_SRC, window, TraceSpill::Segmented { frame_events });
            assert_eq!(
                spilled, ring,
                "window {window} / frame {frame_events} must match the ring"
            );
            assert_eq!(ring.len(), window, "fixture must overflow the window");
        }
        // A window larger than the run retains everything, both modes.
        let all_ring = collect_with_spill(SPILL_SRC, 1_000_000, TraceSpill::InMemory);
        let all_spill = collect_with_spill(SPILL_SRC, 1_000_000, TraceSpill::segmented());
        assert_eq!(all_spill, all_ring);
    }

    #[test]
    fn segmented_sized_maps_a_byte_budget_to_events() {
        assert_eq!(
            TraceSpill::segmented_sized(4096),
            TraceSpill::Segmented { frame_events: 256 }
        );
        // Degenerate budgets still seal at least one event per frame.
        assert_eq!(
            TraceSpill::segmented_sized(0),
            TraceSpill::Segmented { frame_events: 1 }
        );
        // Granularity is residency-only: a byte-sized spill finalizes
        // to the identical trace.
        let ring = collect_with_spill(SPILL_SRC, 37, TraceSpill::InMemory);
        let sized = collect_with_spill(SPILL_SRC, 37, TraceSpill::segmented_sized(512));
        assert_eq!(sized, ring);
    }

    #[test]
    fn spilling_sink_bounds_decoded_residency() {
        let p = mcr_lang::compile(SPILL_SRC).unwrap();
        let a = ProgramAnalysis::analyze(&p);
        let mut vm = Vm::new(&p, &[]);
        let mut s = DeterministicScheduler::new();
        let mut sink = SegmentSpillSink::new(64, 16);
        {
            let mut tc = TraceCollector::with_sink(&p, &a, Box::new(SegmentSpillSink::new(64, 16)));
            run(&mut vm, &mut s, &mut tc, 1_000_000);
            let t = tc.finish();
            assert_eq!(t.len(), 64);
        }
        // Drive the sink directly to observe its internals.
        let ring = collect_with_spill(SPILL_SRC, 1_000_000, TraceSpill::InMemory);
        for e in &ring.events {
            sink.push(e.clone());
        }
        assert!(sink.spilled() > 0, "old frames must have been dropped");
        // Retention never exceeds window + one frame of slack.
        assert!(sink.len() <= 64 + 16, "retained {}", sink.len());
        let out = sink.finish();
        assert_eq!(out.len(), 64);
        assert_eq!(out, ring.events[ring.len() - 64..]);
    }

    #[test]
    fn trace_event_codec_round_trips() {
        let ring = collect_with_spill(SPILL_SRC, 1_000_000, TraceSpill::InMemory);
        assert!(ring.events.iter().any(|e| !e.uses.is_empty()));
        for e in &ring.events {
            let mut w = Writer::new();
            write_trace_event(&mut w, e);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(&read_trace_event(&mut r).unwrap(), e);
            r.finish().unwrap();
        }
    }

    #[test]
    fn loop_body_governed_by_header() {
        let (_p, t) = collect(
            "global n: int; fn main() { var i; while (i < 3) { i = i + 1; } }",
            &[],
        );
        let headers: Vec<u64> = t
            .events
            .iter()
            .filter(|e| e.branch_outcome.is_some())
            .map(|e| e.serial)
            .collect();
        assert_eq!(headers.len(), 4, "3 true + 1 false evaluations");
        // Each `i = i + 1` is governed by the nearest preceding header.
        for ev in t.events.iter().filter(|e| !e.defs.is_empty()) {
            if let Some(cd) = ev.ctrl_dep {
                assert!(headers.contains(&cd) || cd < headers[0]);
            }
        }
    }
}
