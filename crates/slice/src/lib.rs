//! # mcr-slice — dynamic slicing for CSV-access prioritization
//!
//! Implements the paper's dependence-distance heuristic (§4): a
//! [`TraceCollector`] records a windowed dynamic dependence trace of the
//! passing run (the role Valgrind plays in the paper); [`backward_slice`]
//! computes the backward dynamic slice from the aligned point's
//! criterion variables; [`rank_csv_accesses`] assigns the priority
//! superscripts of the paper's Fig. 9 under either the temporal or the
//! dependence strategy.
//!
//! # Examples
//!
//! ```
//! use mcr_analysis::ProgramAnalysis;
//! use mcr_slice::{backward_slice, TraceCollector};
//! use mcr_vm::{run, DeterministicScheduler, Vm};
//!
//! let program = mcr_lang::compile(
//!     "global x: int; global y: int; fn main() { x = 2; y = x + 1; }",
//! )?;
//! let analysis = ProgramAnalysis::analyze(&program);
//! let mut vm = Vm::new(&program, &[]);
//! let mut tc = TraceCollector::new(&program, &analysis, 100_000);
//! run(&mut vm, &mut DeterministicScheduler::new(), &mut tc, 100_000);
//! let trace = tc.finish();
//! let criterion = trace.last().unwrap().serial;
//! let slice = backward_slice(&trace, &[criterion]);
//! assert!(slice.contains(criterion));
//! # Ok::<(), mcr_lang::LangError>(())
//! ```

#![warn(missing_docs)]

pub mod slicer;
pub mod trace;

pub use slicer::{
    backward_slice, rank_csv_accesses, DynamicSlice, RankedAccess, Strategy, PRIORITY_BOTTOM,
};
pub use trace::{
    read_trace_event, write_trace_event, RingSink, SegmentSpillSink, Trace, TraceCollector,
    TraceEvent, TraceSink, TraceSpill,
};
