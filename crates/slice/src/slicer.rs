//! Backward dynamic slicing and CSV-access prioritization (paper §4).
//!
//! Two strategies rank the passing run's accesses to critical shared
//! variables:
//!
//! * **temporal distance** — how close the access is to the aligned
//!   point in execution order;
//! * **dependence distance** — how close the access is to the slicing
//!   criterion along dynamic data/control dependence edges; accesses not
//!   in the slice get the lowest priority ("they are very likely not
//!   relevant to the failure").

use crate::trace::{Trace, TraceEvent};
use mcr_vm::MemLoc;
use std::collections::{HashMap, HashSet, VecDeque};

/// The lowest priority (the paper's ⊥).
pub const PRIORITY_BOTTOM: u32 = u32::MAX;

/// A backward dynamic slice with dependence distances.
#[derive(Debug, Clone, Default)]
pub struct DynamicSlice {
    /// Dependence distance (in edges) from the criterion, per event
    /// serial; events absent from the map are not in the slice.
    pub distance: HashMap<u64, u32>,
}

impl DynamicSlice {
    /// Whether an event is in the slice.
    pub fn contains(&self, serial: u64) -> bool {
        self.distance.contains_key(&serial)
    }

    /// Number of events in the slice.
    pub fn len(&self) -> usize {
        self.distance.len()
    }

    /// True when the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.distance.is_empty()
    }
}

/// Computes the backward dynamic slice from the given criterion events
/// (distance 0), following dynamic data and control dependence edges.
pub fn backward_slice(trace: &Trace, criteria: &[u64]) -> DynamicSlice {
    let mut slice = DynamicSlice::default();
    let mut queue: VecDeque<u64> = VecDeque::new();
    for &c in criteria {
        if trace.by_serial(c).is_some() && !slice.distance.contains_key(&c) {
            slice.distance.insert(c, 0);
            queue.push_back(c);
        }
    }
    while let Some(serial) = queue.pop_front() {
        let d = slice.distance[&serial];
        let Some(ev) = trace.by_serial(serial) else {
            continue;
        };
        let mut neighbors: Vec<u64> = ev.uses.iter().filter_map(|&(_, writer)| writer).collect();
        if let Some(cd) = ev.ctrl_dep {
            neighbors.push(cd);
        }
        for n in neighbors {
            if trace.by_serial(n).is_some() && !slice.distance.contains_key(&n) {
                slice.distance.insert(n, d + 1);
                queue.push_back(n);
            }
        }
    }
    slice
}

/// How to prioritize CSV accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// By closeness to the aligned point in execution order.
    Temporal,
    /// By dependence distance to the slicing criterion.
    Dependence,
}

/// A prioritized access to a critical shared variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedAccess {
    /// Trace serial of the access.
    pub serial: u64,
    /// VM step of the access.
    pub step: u64,
    /// Accessing thread.
    pub tid: mcr_vm::ThreadId,
    /// Statement performing the access.
    pub pc: mcr_lang::Pc,
    /// The CSV location touched.
    pub loc: MemLoc,
    /// Whether the access writes the location.
    pub is_write: bool,
    /// Priority: 1 is highest; [`PRIORITY_BOTTOM`] is the paper's ⊥.
    pub priority: u32,
}

/// Finds and prioritizes all accesses to `csv_locs` that occur at or
/// before the aligned point (`aligned_serial`).
///
/// For [`Strategy::Temporal`], rank = closeness to the aligned point.
/// For [`Strategy::Dependence`], rank = dependence distance in `slice`
/// (must be provided); off-slice accesses get [`PRIORITY_BOTTOM`].
pub fn rank_csv_accesses(
    trace: &Trace,
    aligned_serial: u64,
    csv_locs: &HashSet<MemLoc>,
    strategy: Strategy,
    slice: Option<&DynamicSlice>,
) -> Vec<RankedAccess> {
    let mut accesses: Vec<(&TraceEvent, MemLoc, bool)> = Vec::new();
    for ev in &trace.events {
        if ev.serial > aligned_serial {
            break;
        }
        for &(loc, _) in &ev.uses {
            if csv_locs.contains(&loc) {
                accesses.push((ev, loc, false));
            }
        }
        for &loc in &ev.defs {
            if csv_locs.contains(&loc) {
                accesses.push((ev, loc, true));
            }
        }
    }

    // Order by the strategy's notion of distance, then assign dense
    // priorities 1..; ties share neither rank nor order stability issues
    // because the sort is stable on (distance, recency).
    let keyed: Vec<(u64, usize)> = accesses
        .iter()
        .enumerate()
        .map(|(i, (ev, _, _))| {
            let key = match strategy {
                Strategy::Temporal => aligned_serial - ev.serial,
                Strategy::Dependence => {
                    let s = slice.expect("dependence strategy requires a slice");
                    match s.distance.get(&ev.serial) {
                        Some(&d) => d as u64,
                        None => u64::MAX,
                    }
                }
            };
            (key, i)
        })
        .collect();
    let mut order = keyed;
    order.sort_by_key(|&(key, i)| (key, std::cmp::Reverse(i)));

    let mut out: Vec<RankedAccess> = Vec::with_capacity(accesses.len());
    let mut ranked: Vec<Option<u32>> = vec![None; accesses.len()];
    let mut next_priority = 1u32;
    for &(key, i) in &order {
        let p = if key == u64::MAX {
            PRIORITY_BOTTOM
        } else {
            let p = next_priority;
            next_priority += 1;
            p
        };
        ranked[i] = Some(p);
    }
    for (i, (ev, loc, is_write)) in accesses.iter().enumerate() {
        out.push(RankedAccess {
            serial: ev.serial,
            step: ev.step,
            tid: ev.tid,
            pc: ev.pc,
            loc: *loc,
            is_write: *is_write,
            priority: ranked[i].expect("all accesses ranked"),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceCollector;
    use mcr_analysis::ProgramAnalysis;
    use mcr_lang::GlobalId;
    use mcr_vm::{run, DeterministicScheduler, Vm};

    fn collect(src: &str, input: &[i64]) -> (mcr_lang::Program, Trace) {
        let p = mcr_lang::compile(src).unwrap();
        let a = ProgramAnalysis::analyze(&p);
        let mut vm = Vm::new(&p, input);
        let mut s = DeterministicScheduler::new();
        let mut tc = TraceCollector::new(&p, &a, 1_000_000);
        run(&mut vm, &mut s, &mut tc, 1_000_000);
        let t = tc.finish();
        (p, t)
    }

    const PROG: &str = r#"
        global x: int;
        global y: int;
        global unrelated: int;
        fn main() {
            unrelated = 1;     // not in the slice of y
            x = 2;             // in the slice (y depends on x)
            unrelated = 3;
            y = x + 1;         // criterion
        }
    "#;

    fn criterion_serial(t: &Trace) -> u64 {
        // The `y = x + 1` event: defines y.
        t.events
            .iter()
            .rev()
            .find(|e| {
                e.defs
                    .iter()
                    .any(|l| matches!(l, MemLoc::Global(GlobalId(1))))
            })
            .unwrap()
            .serial
    }

    #[test]
    fn slice_follows_data_deps_only_where_relevant() {
        let (_p, t) = collect(PROG, &[]);
        let crit = criterion_serial(&t);
        let slice = backward_slice(&t, &[crit]);
        assert!(slice.contains(crit));
        // `x = 2` is in the slice at distance 1.
        let x_writer = t
            .events
            .iter()
            .find(|e| {
                e.defs
                    .iter()
                    .any(|l| matches!(l, MemLoc::Global(GlobalId(0))))
            })
            .unwrap();
        assert_eq!(slice.distance.get(&x_writer.serial), Some(&1));
        // `unrelated = ..` events are not in the slice.
        for ev in t.events.iter().filter(|e| {
            e.defs
                .iter()
                .any(|l| matches!(l, MemLoc::Global(GlobalId(2))))
        }) {
            assert!(!slice.contains(ev.serial), "unrelated in slice");
        }
    }

    #[test]
    fn slice_follows_control_deps() {
        let src = r#"
            global input: [int; 1];
            global x: int;
            global y: int;
            fn main() {
                x = input[0];
                if (x > 0) { y = 1; } else { y = 2; }
            }
        "#;
        let (_p, t) = collect(src, &[5]);
        let crit = t
            .events
            .iter()
            .rev()
            .find(|e| !e.defs.is_empty())
            .unwrap()
            .serial;
        let slice = backward_slice(&t, &[crit]);
        // The branch, and through it `x = input[0]`, are in the slice.
        let branch = t
            .events
            .iter()
            .find(|e| e.branch_outcome.is_some())
            .unwrap();
        assert!(slice.contains(branch.serial));
        let x_def = t
            .events
            .iter()
            .find(|e| {
                e.defs
                    .iter()
                    .any(|l| matches!(l, MemLoc::Global(GlobalId(1))))
            })
            .unwrap();
        assert!(slice.contains(x_def.serial));
    }

    #[test]
    fn temporal_ranking_prefers_recent() {
        let (_p, t) = collect(PROG, &[]);
        let crit = criterion_serial(&t);
        let mut csvs = HashSet::new();
        csvs.insert(MemLoc::Global(GlobalId(0)));
        csvs.insert(MemLoc::Global(GlobalId(2)));
        let ranked = rank_csv_accesses(&t, crit, &csvs, Strategy::Temporal, None);
        // Closest to the aligned point: the read of x in `y = x + 1`.
        let top = ranked.iter().find(|r| r.priority == 1).unwrap();
        assert_eq!(top.serial, crit);
        assert!(!top.is_write);
        // All ranked accesses are at or before the aligned point.
        assert!(ranked.iter().all(|r| r.serial <= crit));
        // Priorities strictly order by recency.
        for w in ranked.iter().filter(|r| r.priority != 1) {
            assert!(w.serial <= top.serial);
        }
    }

    #[test]
    fn dependence_ranking_excludes_unrelated() {
        let (_p, t) = collect(PROG, &[]);
        let crit = criterion_serial(&t);
        let slice = backward_slice(&t, &[crit]);
        let mut csvs = HashSet::new();
        csvs.insert(MemLoc::Global(GlobalId(0))); // x
        csvs.insert(MemLoc::Global(GlobalId(2))); // unrelated
        let ranked = rank_csv_accesses(&t, crit, &csvs, Strategy::Dependence, Some(&slice));
        // Accesses to `unrelated` rank bottom; accesses to x rank high.
        for r in &ranked {
            match r.loc {
                MemLoc::Global(GlobalId(2)) => assert_eq!(r.priority, PRIORITY_BOTTOM),
                MemLoc::Global(GlobalId(0)) => assert!(r.priority < PRIORITY_BOTTOM),
                _ => {}
            }
        }
        // This is exactly the paper's argument for the dependence
        // heuristic: the temporal heuristic cannot exclude `unrelated = 3`
        // (it is very recent), the dependence heuristic can.
        let temporal = rank_csv_accesses(&t, crit, &csvs, Strategy::Temporal, None);
        let unrelated_temporal = temporal
            .iter()
            .filter(|r| matches!(r.loc, MemLoc::Global(GlobalId(2))))
            .map(|r| r.priority)
            .min()
            .unwrap();
        assert!(unrelated_temporal < PRIORITY_BOTTOM);
    }

    #[test]
    fn accesses_after_aligned_point_are_ignored() {
        let (_p, t) = collect(PROG, &[]);
        let crit = criterion_serial(&t);
        let mut csvs = HashSet::new();
        csvs.insert(MemLoc::Global(GlobalId(2)));
        // Align at the very first event: only accesses before it count.
        let first = t.events.first().unwrap().serial;
        let ranked = rank_csv_accesses(&t, first, &csvs, Strategy::Temporal, None);
        assert!(ranked.len() <= 1);
        let all = rank_csv_accesses(&t, crit, &csvs, Strategy::Temporal, None);
        assert!(all.len() > ranked.len());
    }

    #[test]
    fn empty_criterion_empty_slice() {
        let (_p, t) = collect(PROG, &[]);
        let slice = backward_slice(&t, &[]);
        assert!(slice.is_empty());
    }
}
