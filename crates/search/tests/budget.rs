//! Exhaustion-path tests for [`mcr_search::Budget`] (try cap, deadline,
//! per-run step cap) and the [`CoarseLoc`] collapsing rules the guided
//! `preempt()` overlap test depends on.

use mcr_lang::{GlobalId, LocalId};
use mcr_search::{annotate, coarse, Budget, CoarseLoc, Guidance, SyncLogger, TestRun};
use mcr_vm::{run, DeterministicScheduler, MemLoc, ObjId, StressScheduler, ThreadId, Vm};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// A two-thread race (Fig. 1 shape, minimized): passes deterministically,
/// fails when t2's store lands inside t1's unlock/check window.
const RACE: &str = r#"
    global x: int;
    lock l;
    fn t1() {
        var p;
        p = alloc(1);
        acquire l;
        x = 1;
        p = null;
        release l;
        if (!x) { p[0] = 1; }
    }
    fn t2() { x = 0; }
    fn main() { spawn t1(); spawn t2(); }
"#;

/// An unbounded loop, for step-cap exhaustion.
const SPIN: &str = r#"
    global x: int;
    fn spinner() { while (1) { x = x + 1; } }
    fn main() { spawn spinner(); spawn spinner(); }
"#;

fn setup(src: &str) -> (mcr_lang::Program, mcr_vm::Failure) {
    let program = mcr_lang::compile(src).unwrap();
    let mut failure = None;
    for seed in 0..100_000u64 {
        let mut vm = Vm::new(&program, &[]);
        let mut sched = StressScheduler::new(seed);
        run(&mut vm, &mut sched, &mut mcr_vm::NullObserver, 100_000);
        if let Some(f) = vm.failure() {
            failure = Some(f);
            break;
        }
    }
    (program, failure.expect("stress exposes the race"))
}

fn all_candidates(
    program: &mcr_lang::Program,
) -> (
    Vec<mcr_search::AnnotatedCandidate>,
    mcr_search::FutureCsvMap,
) {
    let mut vm = Vm::new(program, &[]);
    let mut log = SyncLogger::new();
    run(
        &mut vm,
        &mut DeterministicScheduler::new(),
        &mut log,
        100_000,
    );
    annotate(&log.finish(), &HashSet::new(), &HashMap::new())
}

#[test]
fn try_cap_stops_the_exploration() {
    let (program, failure) = setup(RACE);
    let (candidates, future) = all_candidates(&program);
    let fresh = Vm::new(&program, &[]);
    // Injecting every candidate at once forces many branching choices;
    // a cap of 1 must stop after a single completed execution.
    let tr = TestRun {
        fresh_vm: &fresh,
        preemptions: &candidates,
        target: failure,
        guidance: Guidance::All,
        future: &future,
    };
    let mut budget = Budget::with_tries(1, 100_000);
    tr.execute(&mut budget);
    assert_eq!(budget.tries, 1);
    assert!(budget.exhausted());
}

#[test]
fn exhausted_budget_refuses_new_work() {
    let (program, failure) = setup(RACE);
    let (candidates, future) = all_candidates(&program);
    let fresh = Vm::new(&program, &[]);
    let tr = TestRun {
        fresh_vm: &fresh,
        preemptions: &candidates,
        target: failure,
        guidance: Guidance::All,
        future: &future,
    };
    let mut budget = Budget::with_tries(0, 100_000);
    assert!(budget.exhausted(), "a zero-try budget starts exhausted");
    assert!(!tr.execute(&mut budget), "no work may happen");
    assert_eq!(budget.tries, 0);
}

#[test]
fn elapsed_deadline_exhausts_immediately() {
    let mut budget = Budget::with_tries(u64::MAX, 100_000);
    assert!(!budget.exhausted(), "try budget alone is ample");
    budget.deadline = Some(Instant::now() - Duration::from_millis(1));
    assert!(budget.exhausted(), "a past deadline exhausts the budget");
    // And a comfortably future deadline does not.
    budget.deadline = Some(Instant::now() + Duration::from_secs(3600));
    assert!(!budget.exhausted());
}

#[test]
fn deadline_stops_a_search_midway() {
    let (program, failure) = setup(RACE);
    let (candidates, future) = all_candidates(&program);
    let fresh = Vm::new(&program, &[]);
    let tr = TestRun {
        fresh_vm: &fresh,
        preemptions: &candidates,
        target: failure,
        guidance: Guidance::All,
        future: &future,
    };
    let mut budget = Budget::with_tries(u64::MAX, 100_000);
    budget.deadline = Some(Instant::now());
    assert!(!tr.execute(&mut budget));
    // The deadline is polled before each execution, so at most the
    // in-flight one completes.
    assert!(budget.tries <= 1, "tries = {}", budget.tries);
}

#[test]
fn step_cap_counts_a_try_and_terminates() {
    // Non-terminating program: without the per-run step cap the explore
    // loop would never finish a try.
    let program = mcr_lang::compile(SPIN).unwrap();
    let (candidates, future) = all_candidates_spin(&program);
    let fresh = Vm::new(&program, &[]);
    let bogus_target = {
        // Any failure value will do: the spinner never fails, so every
        // try ends by step exhaustion.
        let (_, f) = setup(RACE);
        f
    };
    let tr = TestRun {
        fresh_vm: &fresh,
        preemptions: &candidates,
        target: bogus_target,
        guidance: Guidance::All,
        future: &future,
    };
    let mut budget = Budget::with_tries(3, 5_000);
    assert!(
        !tr.execute(&mut budget),
        "spinner cannot reproduce anything"
    );
    assert_eq!(
        budget.tries, 3,
        "each step-capped execution must count as one try"
    );
}

fn all_candidates_spin(
    program: &mcr_lang::Program,
) -> (
    Vec<mcr_search::AnnotatedCandidate>,
    mcr_search::FutureCsvMap,
) {
    // The spinner never terminates: collect candidates from a bounded
    // prefix of the canonical run instead.
    let mut vm = Vm::new(program, &[]);
    let mut log = SyncLogger::new();
    run(&mut vm, &mut DeterministicScheduler::new(), &mut log, 2_000);
    annotate(&log.finish(), &HashSet::new(), &HashMap::new())
}

#[test]
fn coarse_collapses_to_variable_granularity() {
    let g = GlobalId(4);
    let o = ObjId(9);
    // Scalars and array elements collapse to the owning global.
    assert_eq!(coarse(MemLoc::Global(g)), CoarseLoc::Global(g));
    assert_eq!(coarse(MemLoc::GlobalElem(g, 0)), CoarseLoc::Global(g));
    assert_eq!(coarse(MemLoc::GlobalElem(g, 31)), CoarseLoc::Global(g));
    // Heap slots collapse to the owning object.
    assert_eq!(coarse(MemLoc::Heap(o, 0)), CoarseLoc::Heap(o));
    assert_eq!(coarse(MemLoc::Heap(o, 7)), CoarseLoc::Heap(o));
    // Locals are private regardless of owner.
    assert_eq!(
        coarse(MemLoc::Local {
            tid: ThreadId(2),
            frame: 11,
            local: LocalId(3),
        }),
        CoarseLoc::Private
    );
}

#[test]
fn coarse_overlap_matches_contention_not_elements() {
    // The motivating case for variable granularity: two threads touching
    // *different elements* of one shared array still contend.
    let g = GlobalId(0);
    assert_eq!(
        coarse(MemLoc::GlobalElem(g, 1)),
        coarse(MemLoc::GlobalElem(g, 2))
    );
    // But distinct globals and distinct heap objects never unify.
    assert_ne!(
        coarse(MemLoc::Global(GlobalId(1))),
        coarse(MemLoc::Global(GlobalId(2)))
    );
    assert_ne!(
        coarse(MemLoc::Heap(ObjId(1), 0)),
        coarse(MemLoc::Heap(ObjId(2), 0))
    );
}
