//! Schedule search: plain CHESS and the paper's enhanced algorithm.
//!
//! Plain CHESS enumerates preemption combinations up to the bound `k` in
//! execution order and tries every thread selection at each injected
//! preemption. The enhanced algorithm (paper Algorithm 2):
//!
//! 1. weights every combination by the sum of the best CSV-access
//!    priorities of its members,
//! 2. sorts the worklist ascending and tests combinations in that order,
//! 3. restricts `preempt()`'s thread selection to threads whose future
//!    CSV set overlaps the perturbed block's accesses.
//!
//! The paper fixes `k = 2` ("most failures only need two preemptions").

use crate::candidates::{AnnotatedCandidate, FutureCsvMap};
use crate::runner::{Budget, Guidance, TestRun};
use mcr_vm::{Failure, Vm};
use std::time::{Duration, Instant};

/// Which search algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// The original CHESS enumeration (execution order, unguided).
    Chess,
    /// Enhanced CHESS with priority weights and guided thread selection.
    ChessX,
}

/// Configuration of one search.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Preemption bound `k` (the paper uses 2).
    pub preemption_bound: usize,
    /// Cap on completed test executions (the paper's 18-hour cutoff
    /// equivalent).
    pub max_tries: u64,
    /// Optional wall-clock budget.
    pub time_budget: Option<Duration>,
    /// Per-run step cap.
    pub max_steps: u64,
    /// When the candidate list is enormous, pairs are only formed among
    /// the `pair_pool` best candidates (by priority for ChessX, by
    /// execution order for CHESS) to bound worklist construction.
    pub pair_pool: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            preemption_bound: 2,
            max_tries: 20_000,
            time_budget: None,
            max_steps: 10_000_000,
            pair_pool: 512,
        }
    }
}

/// Result of a schedule search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Whether the failure was reproduced.
    pub reproduced: bool,
    /// Completed test executions (the "tries" of Table 4).
    pub tries: u64,
    /// Combinations taken from the worklist.
    pub combinations_tested: u64,
    /// The winning preemption set, if any.
    pub winning: Option<Vec<AnnotatedCandidate>>,
    /// Wall-clock time spent searching.
    pub wall_time: Duration,
    /// True when the search stopped on budget rather than success or
    /// worklist exhaustion.
    pub cut_off: bool,
}

/// Searches for a failure-inducing schedule.
///
/// `fresh_vm` must be a VM at the initial state for the failing input;
/// each test clones it. `candidates` come from the passing run (see
/// [`crate::candidates::annotate`]).
pub fn find_schedule(
    fresh_vm: &Vm<'_>,
    candidates: &[AnnotatedCandidate],
    future: &FutureCsvMap,
    target: Failure,
    algorithm: Algorithm,
    config: &SearchConfig,
) -> SearchResult {
    let start = Instant::now();
    let mut budget = Budget::with_tries(config.max_tries, config.max_steps);
    budget.deadline = config.time_budget.map(|d| start + d);

    let worklist = build_worklist(candidates, algorithm, config);
    let guidance = match algorithm {
        Algorithm::Chess => Guidance::All,
        Algorithm::ChessX => Guidance::CsvOverlap,
    };

    let mut combinations_tested = 0u64;
    let mut winning = None;
    let mut reproduced = false;
    for combo in worklist {
        if budget.exhausted() {
            break;
        }
        combinations_tested += 1;
        let set: Vec<AnnotatedCandidate> = combo.iter().map(|&i| candidates[i].clone()).collect();
        let run = TestRun {
            fresh_vm,
            preemptions: &set,
            target,
            guidance,
            future,
        };
        if run.execute(&mut budget) {
            winning = Some(set);
            reproduced = true;
            break;
        }
    }

    SearchResult {
        reproduced,
        tries: budget.tries,
        combinations_tested,
        winning,
        wall_time: start.elapsed(),
        cut_off: !reproduced && budget.exhausted(),
    }
}

/// Builds the ordered worklist of candidate-index combinations.
fn build_worklist(
    candidates: &[AnnotatedCandidate],
    algorithm: Algorithm,
    config: &SearchConfig,
) -> Vec<Vec<usize>> {
    let n = candidates.len();
    let mut singles: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();

    // Pair pool: cap quadratic blowup on very long runs.
    let mut pool: Vec<usize> = (0..n).collect();
    if n > config.pair_pool {
        if algorithm == Algorithm::ChessX {
            pool.sort_by_key(|&i| candidates[i].best_priority);
        }
        pool.truncate(config.pair_pool);
        pool.sort_unstable();
    }
    let mut pairs: Vec<Vec<usize>> = Vec::new();
    if config.preemption_bound >= 2 {
        for (a, &i) in pool.iter().enumerate() {
            for &j in pool.iter().skip(a + 1) {
                pairs.push(vec![i, j]);
            }
        }
    }

    match algorithm {
        Algorithm::Chess => {
            // Linear search: single preemptions in execution order, then
            // pairs in lexicographic execution order.
            let mut out = singles;
            out.extend(pairs);
            out
        }
        Algorithm::ChessX => {
            // Algorithm 2: weight = sum of members' best priorities; sort
            // the whole worklist ascending.
            let weight = |combo: &Vec<usize>| -> u64 {
                combo
                    .iter()
                    .map(|&i| candidates[i].best_priority as u64)
                    .sum()
            };
            let mut out: Vec<Vec<usize>> = Vec::with_capacity(singles.len() + pairs.len());
            out.append(&mut singles);
            out.append(&mut pairs);
            out.sort_by_key(|c| (weight(c), c.len(), c.clone()));
            out
        }
    }
}

/// Convenience: the number of combinations the worklist would hold.
pub fn worklist_size(n_candidates: usize, bound: usize, pair_pool: usize) -> usize {
    let n = n_candidates;
    let pool = n.min(pair_pool);
    let pairs = if bound >= 2 { pool * (pool - 1) / 2 } else { 0 };
    n + pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{annotate, SyncLogger};
    use mcr_slice::PRIORITY_BOTTOM as BOT;
    use mcr_vm::{run, DeterministicScheduler, MemLoc, NullObserver, StressScheduler, ThreadId};
    use std::collections::{HashMap, HashSet};

    const FIG1: &str = r#"
        global x: int;
        global input: [int; 2];
        lock l;
        fn F(p) { p[0] = 1; }
        fn T1() {
            var i; var p;
            for (i = 0; i < 2; i = i + 1) {
                x = 0;
                p = alloc(2);
                acquire l;
                if (input[i] > 0) {
                    x = 1;
                    p = null;
                }
                release l;
                if (!x) { F(p); }
            }
        }
        fn T2() { x = 0; }
        fn main() {
            spawn T1();
            spawn T2();
        }
    "#;

    struct Setup {
        program: mcr_lang::Program,
        failure: Failure,
        candidates: Vec<AnnotatedCandidate>,
        future: FutureCsvMap,
    }

    fn setup() -> Setup {
        let program = mcr_lang::compile(FIG1).unwrap();
        let input = [0i64, 1];
        let mut failure = None;
        for seed in 0..50_000 {
            let mut vm = Vm::new(&program, &input);
            let mut s = StressScheduler::new(seed);
            run(&mut vm, &mut s, &mut NullObserver, 1_000_000);
            if let Some(f) = vm.failure() {
                failure = Some(f);
                break;
            }
        }
        let failure = failure.expect("race must be exposed");
        let mut vm = Vm::new(&program, &input);
        let mut s = DeterministicScheduler::new();
        let mut log = SyncLogger::new();
        run(&mut vm, &mut s, &mut log, 1_000_000);
        let info = log.finish();
        let x = program.global_by_name("x").unwrap();
        let mut csvs = HashSet::new();
        csvs.insert(MemLoc::Global(x));
        // Give the second-iteration accesses the top priorities the way
        // the temporal heuristic would.
        let mut prio = HashMap::new();
        for (i, a) in info
            .shared_accesses
            .iter()
            .rev()
            .filter(|a| a.tid == ThreadId(1) && csvs.contains(&a.loc))
            .enumerate()
        {
            prio.insert((a.step, a.loc, a.is_write), i as u32 + 1);
        }
        let (candidates, future) = annotate(&info, &csvs, &prio);
        Setup {
            program,
            failure,
            candidates,
            future,
        }
    }

    #[test]
    fn chessx_beats_chess_on_fig1() {
        let s = setup();
        let fresh = Vm::new(&s.program, &[0, 1]);
        let cfg = SearchConfig::default();

        let x = find_schedule(
            &fresh,
            &s.candidates,
            &s.future,
            s.failure,
            Algorithm::ChessX,
            &cfg,
        );
        assert!(x.reproduced, "chessx must reproduce: {x:?}");

        let c = find_schedule(
            &fresh,
            &s.candidates,
            &s.future,
            s.failure,
            Algorithm::Chess,
            &cfg,
        );
        assert!(c.reproduced, "plain chess eventually reproduces");
        assert!(
            x.tries <= c.tries,
            "guided {} vs plain {}",
            x.tries,
            c.tries
        );
        // The winning schedule is a single preemption.
        assert_eq!(x.winning.as_ref().unwrap().len(), 1);
    }

    #[test]
    fn worklist_order_respects_weights() {
        let s = setup();
        let cfg = SearchConfig::default();
        let wl = build_worklist(&s.candidates, Algorithm::ChessX, &cfg);
        // The first combination's weight is minimal.
        let weight = |combo: &Vec<usize>| -> u64 {
            combo
                .iter()
                .map(|&i| s.candidates[i].best_priority as u64)
                .sum()
        };
        let w0 = weight(&wl[0]);
        assert!(wl.iter().all(|c| weight(c) >= w0));
        // Its sole member's block touches the CSV.
        assert!(s.candidates[wl[0][0]].best_priority < BOT);
    }

    #[test]
    fn chess_worklist_is_execution_ordered() {
        let s = setup();
        let cfg = SearchConfig::default();
        let wl = build_worklist(&s.candidates, Algorithm::Chess, &cfg);
        // Singles first, in candidate order.
        for (i, combo) in wl.iter().take(s.candidates.len()).enumerate() {
            assert_eq!(combo, &vec![i]);
        }
        assert_eq!(
            wl.len(),
            worklist_size(s.candidates.len(), 2, cfg.pair_pool)
        );
    }

    #[test]
    fn budget_cutoff_reported() {
        let s = setup();
        let fresh = Vm::new(&s.program, &[0, 1]);
        // Impossible target: same kind, nonexistent pc.
        let impossible = Failure {
            pc: mcr_lang::Pc::new(mcr_lang::FuncId(0), mcr_lang::StmtId(0)),
            ..s.failure
        };
        let cfg = SearchConfig {
            max_tries: 5,
            ..Default::default()
        };
        let r = find_schedule(
            &fresh,
            &s.candidates,
            &s.future,
            impossible,
            Algorithm::Chess,
            &cfg,
        );
        assert!(!r.reproduced);
        assert!(r.cut_off);
        assert!(r.tries <= 5);
    }

    #[test]
    fn pair_pool_caps_worklist() {
        let s = setup();
        let cfg = SearchConfig {
            pair_pool: 3,
            ..Default::default()
        };
        let wl = build_worklist(&s.candidates, Algorithm::ChessX, &cfg);
        assert_eq!(wl.len(), s.candidates.len() + 3);
    }
}
