//! Schedule search: plain CHESS and the paper's enhanced algorithm.
//!
//! Plain CHESS enumerates preemption combinations up to the bound `k` in
//! execution order and tries every thread selection at each injected
//! preemption. The enhanced algorithm (paper Algorithm 2):
//!
//! 1. weights every combination by the sum of the best CSV-access
//!    priorities of its members,
//! 2. sorts the worklist ascending and tests combinations in that order,
//! 3. restricts `preempt()`'s thread selection to threads whose future
//!    CSV set overlaps the perturbed block's accesses.
//!
//! The paper fixes `k = 2` ("most failures only need two preemptions").

use crate::candidates::{AnnotatedCandidate, FutureCsvMap};
use crate::runner::{Budget, CancelToken, Guidance, TestRun};
use mcr_vm::{Failure, Vm};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which search algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// The original CHESS enumeration (execution order, unguided).
    Chess,
    /// Enhanced CHESS with priority weights and guided thread selection.
    ChessX,
}

/// Configuration of one search.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Preemption bound `k` (the paper uses 2).
    pub preemption_bound: usize,
    /// Cap on completed test executions (the paper's 18-hour cutoff
    /// equivalent).
    pub max_tries: u64,
    /// Optional wall-clock budget.
    pub time_budget: Option<Duration>,
    /// Per-run step cap.
    pub max_steps: u64,
    /// When the candidate list is enormous, pairs are only formed among
    /// the `pair_pool` best candidates (by priority for ChessX, by
    /// execution order for CHESS) to bound worklist construction.
    pub pair_pool: usize,
    /// Worker threads testing worklist combinations concurrently.
    ///
    /// `1` (the default) runs the exact serial loop, as does any value
    /// once clamped to the machine's physical core count (extra workers
    /// on an oversubscribed host only add contention). Higher values fan
    /// the worklist over a pool whose workers claim combinations in
    /// worklist order; the *lowest worklist
    /// index* that reproduces wins, and the reported `reproduced` /
    /// `winning` / `combinations_tested` / `tries` are identical to the
    /// serial result whenever the search finishes without hitting the
    /// try cap or deadline (speculative tries beyond the winner are
    /// spent but not reported). When the budget *does* bind mid-search,
    /// speculative work competes with low-index combinations for the
    /// remaining tries, so a cut-off parallel run may reproduce a
    /// different (or no) combination than a cut-off serial run — size
    /// `max_tries` for the serial search and treat it as a work bound,
    /// not an exact schedule.
    pub parallelism: usize,
    /// Cooperative cancellation: when the token fires mid-search, every
    /// worker unwinds at its next budget poll and the search returns a
    /// partial [`SearchResult`] with `cancelled` (and `cut_off`) set.
    /// The default token never fires.
    pub cancel: CancelToken,
    /// An injected executor handle. `None` (the default) builds a
    /// private pool of [`SearchConfig::parallelism`] workers per search,
    /// the historical behavior; a batch scheduler instead hands every
    /// search a clone of *one* handle (typically carrying a shared
    /// [`minipool::Limit`]) so concurrent searches draw from a single
    /// fleet-wide thread budget. When set, the handle's
    /// [`threads()`](minipool::Pool::threads) supersedes `parallelism`.
    pub pool: Option<minipool::Pool>,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            preemption_bound: 2,
            max_tries: 20_000,
            time_budget: None,
            max_steps: 10_000_000,
            pair_pool: 512,
            parallelism: 1,
            cancel: CancelToken::new(),
            pool: None,
        }
    }
}

impl SearchConfig {
    /// The executor this search will fan out over: the injected handle,
    /// or a private pool of `parallelism` workers.
    pub fn executor(&self) -> minipool::Pool {
        self.pool
            .clone()
            .unwrap_or_else(|| minipool::Pool::new(self.parallelism))
    }
}

/// Result of a schedule search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// Whether the failure was reproduced.
    pub reproduced: bool,
    /// Completed test executions (the "tries" of Table 4).
    pub tries: u64,
    /// Combinations taken from the worklist.
    pub combinations_tested: u64,
    /// The winning preemption set, if any.
    pub winning: Option<Vec<AnnotatedCandidate>>,
    /// Wall-clock time spent searching.
    pub wall_time: Duration,
    /// True when the search stopped on budget rather than success or
    /// worklist exhaustion.
    pub cut_off: bool,
    /// True when the stop was a [`CancelToken`] firing (a partial result:
    /// combinations not yet tested may still reproduce).
    pub cancelled: bool,
}

/// Searches for a failure-inducing schedule.
///
/// `fresh_vm` must be a VM at the initial state for the failing input;
/// each test clones it. `candidates` come from the passing run (see
/// [`crate::candidates::annotate`]).
pub fn find_schedule(
    fresh_vm: &Vm<'_>,
    candidates: &[AnnotatedCandidate],
    future: &FutureCsvMap,
    target: Failure,
    algorithm: Algorithm,
    config: &SearchConfig,
) -> SearchResult {
    let start = Instant::now();
    let deadline = config.time_budget.map(|d| start + d);

    let worklist = build_worklist(candidates, algorithm, config);
    let guidance = match algorithm {
        Algorithm::Chess => Guidance::All,
        Algorithm::ChessX => Guidance::CsvOverlap,
    };

    let executor = config.executor();
    // Clamp the fan-out to the machine: workers beyond the physical
    // core count only add claim contention and speculative tries, and
    // on a single-core host the "parallel" path is pure overhead (the
    // 0.93x regression this clamp fixed) — such hosts take the exact
    // serial loop below.
    let workers = executor.threads().min(minipool::available_parallelism());
    if workers > 1 && worklist.len() > 1 {
        return find_schedule_parallel(
            fresh_vm, candidates, future, target, guidance, config, &executor, workers, &worklist,
            deadline, start,
        );
    }

    let mut budget =
        Budget::with_tries(config.max_tries, config.max_steps).with_cancel(config.cancel.clone());
    budget.deadline = deadline;

    let mut combinations_tested = 0u64;
    let mut winning = None;
    let mut reproduced = false;
    // Stop reason recorded at stop time, not read from the live token /
    // clock afterwards: a search that already ran its worklist dry must
    // not be relabeled partial by a token firing after the fact.
    let mut cut_off = false;
    let mut cancelled = false;
    for combo in worklist {
        if budget.exhausted() {
            cut_off = true;
            cancelled = budget.cancelled();
            break;
        }
        combinations_tested += 1;
        let set: Vec<AnnotatedCandidate> = combo.iter().map(|&i| candidates[i].clone()).collect();
        let run = TestRun {
            fresh_vm,
            preemptions: &set,
            target,
            guidance,
            future,
        };
        if run.execute(&mut budget) {
            winning = Some(set);
            reproduced = true;
            break;
        }
        // Re-check at loop bottom so exhaustion inside the *last*
        // combination's execute is still attributed to the budget.
        if budget.exhausted() {
            cut_off = true;
            cancelled = budget.cancelled();
            break;
        }
    }

    SearchResult {
        reproduced,
        tries: budget.tries,
        combinations_tested,
        winning,
        wall_time: start.elapsed(),
        cut_off: !reproduced && cut_off,
        cancelled: !reproduced && cancelled,
    }
}

/// The parallel worklist driver: `workers` pool tasks claim worklist
/// indices *in order* from one shared counter; every worker draws from
/// one shared try pool, and the *lowest worklist index* that reproduces
/// is the winner, so the result matches the serial search whenever the
/// budget does not cut the search off (see [`SearchConfig::parallelism`]
/// for the cutoff caveat).
///
/// In-order claiming (rather than chunked index splitting) keeps the
/// fan-out front-loaded on the combinations the guided ordering ranked
/// best: no worker burns tries deep in the tail while the likely winner
/// near the head is still unclaimed. Once a winner is posted, workers
/// mid-combination at higher indices abort at their next budget poll
/// (the obsolete-watch); since the winner index only decreases,
/// combinations at or below the final winner always run to completion
/// and their try counts stay serial-identical.
///
/// Checkpoint sharing makes this cheap: all workers clone the same
/// `fresh_vm`, and with copy-on-write VM state those clones are
/// reference-count bumps into shared initial state.
#[allow(clippy::too_many_arguments)]
fn find_schedule_parallel(
    fresh_vm: &Vm<'_>,
    candidates: &[AnnotatedCandidate],
    future: &FutureCsvMap,
    target: Failure,
    guidance: Guidance,
    config: &SearchConfig,
    executor: &minipool::Pool,
    workers: usize,
    worklist: &[Vec<usize>],
    deadline: Option<Instant>,
    start: Instant,
) -> SearchResult {
    let n = worklist.len();
    // Lowest reproducing worklist index (usize::MAX = none yet).
    let winner = Arc::new(AtomicUsize::new(usize::MAX));
    // The claim counter: each worker takes the next untested index.
    let next = AtomicUsize::new(0);
    // One global try pool, debited as each try completes — the cap
    // bounds *total* work to within one in-flight try per worker, unlike
    // per-worker budget snapshots which could multiply it.
    let pool = crate::runner::SharedTries::new(config.max_tries);
    // Per-combination tries for deterministic reporting.
    let per_combo_tries: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let executed: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
    // Did cancellation actually stop work? Recorded by the workers that
    // observed it, so a token firing after the search is over cannot
    // relabel a complete result as partial.
    let cancel_stopped = std::sync::atomic::AtomicBool::new(false);

    executor.for_each_index(workers, |_| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        // Claims are monotonic and the winner index only decreases, so
        // once this claim is past the winner (or the list), every later
        // claim would be too: this worker is done.
        if i >= n || i > winner.load(Ordering::Acquire) {
            break;
        }
        if config.cancel.is_cancelled() {
            cancel_stopped.store(true, Ordering::Relaxed);
            break;
        }
        if pool.exhausted_now() {
            break;
        }
        let mut budget = Budget::with_tries(u64::MAX, config.max_steps)
            .with_shared(pool.clone())
            .with_cancel(config.cancel.clone())
            .with_obsolete(Arc::clone(&winner), i);
        budget.deadline = deadline;
        let set: Vec<AnnotatedCandidate> =
            worklist[i].iter().map(|&k| candidates[k].clone()).collect();
        let run = TestRun {
            fresh_vm,
            preemptions: &set,
            target,
            guidance,
            future,
        };
        executed[i].store(1, Ordering::Relaxed);
        let ok = run.execute(&mut budget);
        per_combo_tries[i].store(budget.tries, Ordering::Relaxed);
        if ok {
            winner.fetch_min(i, Ordering::AcqRel);
        } else if budget.cancelled() {
            cancel_stopped.store(true, Ordering::Relaxed);
        }
    });

    let w = winner.load(Ordering::Acquire);
    if w != usize::MAX {
        // Serial-identical accounting: the tries and combination count
        // the serial loop would have reported — everything up to and
        // including the winner; speculative work beyond it is discarded.
        let tries: u64 = per_combo_tries[..=w]
            .iter()
            .map(|t| t.load(Ordering::Relaxed))
            .sum();
        let winning: Vec<AnnotatedCandidate> =
            worklist[w].iter().map(|&k| candidates[k].clone()).collect();
        SearchResult {
            reproduced: true,
            tries,
            combinations_tested: (w + 1) as u64,
            winning: Some(winning),
            wall_time: start.elapsed(),
            cut_off: false,
            cancelled: false,
        }
    } else {
        let tries = pool.used();
        let combinations_tested = executed
            .iter()
            .filter(|e| e.load(Ordering::Relaxed) == 1)
            .count() as u64;
        let cancelled = cancel_stopped.load(Ordering::Relaxed);
        let cut_off =
            cancelled || tries >= config.max_tries || deadline.is_some_and(|d| Instant::now() >= d);
        SearchResult {
            reproduced: false,
            tries,
            combinations_tested,
            winning: None,
            wall_time: start.elapsed(),
            cut_off,
            cancelled,
        }
    }
}

/// Builds the ordered worklist of candidate-index combinations.
fn build_worklist(
    candidates: &[AnnotatedCandidate],
    algorithm: Algorithm,
    config: &SearchConfig,
) -> Vec<Vec<usize>> {
    let n = candidates.len();
    let mut singles: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();

    // Pair pool: cap quadratic blowup on very long runs.
    let mut pool: Vec<usize> = (0..n).collect();
    if n > config.pair_pool {
        if algorithm == Algorithm::ChessX {
            pool.sort_by_key(|&i| candidates[i].best_priority);
        }
        pool.truncate(config.pair_pool);
        pool.sort_unstable();
    }
    let mut pairs: Vec<Vec<usize>> = Vec::new();
    if config.preemption_bound >= 2 {
        for (a, &i) in pool.iter().enumerate() {
            for &j in pool.iter().skip(a + 1) {
                pairs.push(vec![i, j]);
            }
        }
    }

    match algorithm {
        Algorithm::Chess => {
            // Linear search: single preemptions in execution order, then
            // pairs in lexicographic execution order.
            let mut out = singles;
            out.extend(pairs);
            out
        }
        Algorithm::ChessX => {
            // Algorithm 2: weight = sum of members' best priorities; sort
            // the whole worklist ascending.
            let weight = |combo: &Vec<usize>| -> u64 {
                combo
                    .iter()
                    .map(|&i| candidates[i].best_priority as u64)
                    .sum()
            };
            let mut out: Vec<Vec<usize>> = Vec::with_capacity(singles.len() + pairs.len());
            out.append(&mut singles);
            out.append(&mut pairs);
            out.sort_by_key(|c| (weight(c), c.len(), c.clone()));
            out
        }
    }
}

/// Convenience: the number of combinations the worklist would hold.
pub fn worklist_size(n_candidates: usize, bound: usize, pair_pool: usize) -> usize {
    let n = n_candidates;
    let pool = n.min(pair_pool);
    let pairs = if bound >= 2 { pool * (pool - 1) / 2 } else { 0 };
    n + pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{annotate, SyncLogger};
    use mcr_slice::PRIORITY_BOTTOM as BOT;
    use mcr_vm::{run, DeterministicScheduler, MemLoc, NullObserver, StressScheduler, ThreadId};
    use std::collections::{HashMap, HashSet};

    const FIG1: &str = r#"
        global x: int;
        global input: [int; 2];
        lock l;
        fn F(p) { p[0] = 1; }
        fn T1() {
            var i; var p;
            for (i = 0; i < 2; i = i + 1) {
                x = 0;
                p = alloc(2);
                acquire l;
                if (input[i] > 0) {
                    x = 1;
                    p = null;
                }
                release l;
                if (!x) { F(p); }
            }
        }
        fn T2() { x = 0; }
        fn main() {
            spawn T1();
            spawn T2();
        }
    "#;

    struct Setup {
        program: mcr_lang::Program,
        failure: Failure,
        candidates: Vec<AnnotatedCandidate>,
        future: FutureCsvMap,
    }

    fn setup() -> Setup {
        let program = mcr_lang::compile(FIG1).unwrap();
        let input = [0i64, 1];
        let mut failure = None;
        for seed in 0..50_000 {
            let mut vm = Vm::new(&program, &input);
            let mut s = StressScheduler::new(seed);
            run(&mut vm, &mut s, &mut NullObserver, 1_000_000);
            if let Some(f) = vm.failure() {
                failure = Some(f);
                break;
            }
        }
        let failure = failure.expect("race must be exposed");
        let mut vm = Vm::new(&program, &input);
        let mut s = DeterministicScheduler::new();
        let mut log = SyncLogger::new();
        run(&mut vm, &mut s, &mut log, 1_000_000);
        let info = log.finish();
        let x = program.global_by_name("x").unwrap();
        let mut csvs = HashSet::new();
        csvs.insert(MemLoc::Global(x));
        // Give the second-iteration accesses the top priorities the way
        // the temporal heuristic would.
        let mut prio = HashMap::new();
        for (i, a) in info
            .shared_accesses
            .iter()
            .rev()
            .filter(|a| a.tid == ThreadId(1) && csvs.contains(&a.loc))
            .enumerate()
        {
            prio.insert((a.step, a.loc, a.is_write), i as u32 + 1);
        }
        let (candidates, future) = annotate(&info, &csvs, &prio);
        Setup {
            program,
            failure,
            candidates,
            future,
        }
    }

    #[test]
    fn chessx_beats_chess_on_fig1() {
        let s = setup();
        let fresh = Vm::new(&s.program, &[0, 1]);
        let cfg = SearchConfig::default();

        let x = find_schedule(
            &fresh,
            &s.candidates,
            &s.future,
            s.failure,
            Algorithm::ChessX,
            &cfg,
        );
        assert!(x.reproduced, "chessx must reproduce: {x:?}");

        let c = find_schedule(
            &fresh,
            &s.candidates,
            &s.future,
            s.failure,
            Algorithm::Chess,
            &cfg,
        );
        assert!(c.reproduced, "plain chess eventually reproduces");
        assert!(
            x.tries <= c.tries,
            "guided {} vs plain {}",
            x.tries,
            c.tries
        );
        // The winning schedule is a single preemption.
        assert_eq!(x.winning.as_ref().unwrap().len(), 1);
    }

    #[test]
    fn worklist_order_respects_weights() {
        let s = setup();
        let cfg = SearchConfig::default();
        let wl = build_worklist(&s.candidates, Algorithm::ChessX, &cfg);
        // The first combination's weight is minimal.
        let weight = |combo: &Vec<usize>| -> u64 {
            combo
                .iter()
                .map(|&i| s.candidates[i].best_priority as u64)
                .sum()
        };
        let w0 = weight(&wl[0]);
        assert!(wl.iter().all(|c| weight(c) >= w0));
        // Its sole member's block touches the CSV.
        assert!(s.candidates[wl[0][0]].best_priority < BOT);
    }

    #[test]
    fn chess_worklist_is_execution_ordered() {
        let s = setup();
        let cfg = SearchConfig::default();
        let wl = build_worklist(&s.candidates, Algorithm::Chess, &cfg);
        // Singles first, in candidate order.
        for (i, combo) in wl.iter().take(s.candidates.len()).enumerate() {
            assert_eq!(combo, &vec![i]);
        }
        assert_eq!(
            wl.len(),
            worklist_size(s.candidates.len(), 2, cfg.pair_pool)
        );
    }

    #[test]
    fn budget_cutoff_reported() {
        let s = setup();
        let fresh = Vm::new(&s.program, &[0, 1]);
        // Impossible target: same kind, nonexistent pc.
        let impossible = Failure {
            pc: mcr_lang::Pc::new(mcr_lang::FuncId(0), mcr_lang::StmtId(0)),
            ..s.failure
        };
        let cfg = SearchConfig {
            max_tries: 5,
            ..Default::default()
        };
        let r = find_schedule(
            &fresh,
            &s.candidates,
            &s.future,
            impossible,
            Algorithm::Chess,
            &cfg,
        );
        assert!(!r.reproduced);
        assert!(r.cut_off);
        assert!(r.tries <= 5);
    }

    #[test]
    fn parallel_search_matches_serial() {
        let s = setup();
        let fresh = Vm::new(&s.program, &[0, 1]);
        let serial_cfg = SearchConfig::default();
        let par_cfg = SearchConfig {
            parallelism: 4,
            ..Default::default()
        };
        let points = |r: &SearchResult| {
            r.winning
                .as_ref()
                .map(|w| w.iter().map(|c| c.point).collect::<Vec<_>>())
        };
        for alg in [Algorithm::ChessX, Algorithm::Chess] {
            let a = find_schedule(
                &fresh,
                &s.candidates,
                &s.future,
                s.failure,
                alg,
                &serial_cfg,
            );
            let b = find_schedule(&fresh, &s.candidates, &s.future, s.failure, alg, &par_cfg);
            assert_eq!(a.reproduced, b.reproduced, "{alg:?}");
            assert_eq!(a.tries, b.tries, "{alg:?}");
            assert_eq!(a.combinations_tested, b.combinations_tested, "{alg:?}");
            assert_eq!(points(&a), points(&b), "{alg:?}");
        }
    }

    #[test]
    fn parallel_driver_matches_serial_even_when_cores_are_scarce() {
        // `find_schedule` clamps its fan-out to the physical core
        // count, so on a small host the test above may exercise the
        // serial loop twice. Drive the parallel claim loop directly to
        // pin its accounting against the serial path regardless of the
        // machine.
        let s = setup();
        let fresh = Vm::new(&s.program, &[0, 1]);
        let cfg = SearchConfig::default();
        for (alg, guidance) in [
            (Algorithm::ChessX, Guidance::CsvOverlap),
            (Algorithm::Chess, Guidance::All),
        ] {
            let serial = find_schedule(&fresh, &s.candidates, &s.future, s.failure, alg, &cfg);
            let worklist = build_worklist(&s.candidates, alg, &cfg);
            let executor = minipool::Pool::new(4);
            let start = Instant::now();
            let par = find_schedule_parallel(
                &fresh,
                &s.candidates,
                &s.future,
                s.failure,
                guidance,
                &cfg,
                &executor,
                4,
                &worklist,
                None,
                start,
            );
            assert_eq!(serial.reproduced, par.reproduced, "{alg:?}");
            assert_eq!(serial.tries, par.tries, "{alg:?}");
            assert_eq!(
                serial.combinations_tested, par.combinations_tested,
                "{alg:?}"
            );
            assert_eq!(serial.winning, par.winning, "{alg:?}");
        }
    }

    #[test]
    fn injected_shared_pool_matches_serial() {
        let s = setup();
        let fresh = Vm::new(&s.program, &[0, 1]);
        let serial = find_schedule(
            &fresh,
            &s.candidates,
            &s.future,
            s.failure,
            Algorithm::ChessX,
            &SearchConfig::default(),
        );
        // A handle with a shared worker budget, as a fleet would inject;
        // `parallelism` stays 1 to prove the handle supersedes it.
        let limit = minipool::Limit::new(2);
        let cfg = SearchConfig {
            pool: Some(minipool::Pool::with_limit(4, limit.clone())),
            ..Default::default()
        };
        let injected = find_schedule(
            &fresh,
            &s.candidates,
            &s.future,
            s.failure,
            Algorithm::ChessX,
            &cfg,
        );
        assert_eq!(serial.reproduced, injected.reproduced);
        assert_eq!(serial.tries, injected.tries);
        assert_eq!(serial.combinations_tested, injected.combinations_tested);
        assert_eq!(serial.winning, injected.winning);
        // Every claimed permit was returned.
        assert_eq!(limit.available(), limit.capacity());
    }

    #[test]
    fn cancellation_returns_partial_result() {
        let s = setup();
        let fresh = Vm::new(&s.program, &[0, 1]);
        // Impossible target so the search would otherwise grind through
        // the entire worklist.
        let impossible = Failure {
            pc: mcr_lang::Pc::new(mcr_lang::FuncId(0), mcr_lang::StmtId(0)),
            ..s.failure
        };
        for parallelism in [1, 4] {
            let cfg = SearchConfig {
                parallelism,
                ..Default::default()
            };
            cfg.cancel.cancel(); // fire before the search even starts
            let r = find_schedule(
                &fresh,
                &s.candidates,
                &s.future,
                impossible,
                Algorithm::Chess,
                &cfg,
            );
            assert!(!r.reproduced);
            assert!(r.cancelled, "parallelism {parallelism}");
            assert!(r.cut_off);
            assert_eq!(r.tries, 0);
        }
    }

    #[test]
    fn pair_pool_caps_worklist() {
        let s = setup();
        let cfg = SearchConfig {
            pair_pool: 3,
            ..Default::default()
        };
        let wl = build_worklist(&s.candidates, Algorithm::ChessX, &cfg);
        assert_eq!(wl.len(), s.candidates.len() + 3);
    }
}
