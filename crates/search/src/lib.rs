//! # mcr-search — failure-inducing schedule search
//!
//! The last phase of the paper's pipeline (§5): given the preemption
//! candidates of the passing run and the CSV annotations from the dump
//! comparison, search for a schedule that reproduces the failure.
//!
//! * [`candidates`] — CHESS scheduling points with Fig. 9 annotations,
//! * [`runner`] — `testrun`/`preempt` with checkpointed thread-choice
//!   exploration (VM clones),
//! * [`chess`] — the plain CHESS baseline and the enhanced, weighted,
//!   guided Algorithm 2 ([`Algorithm::ChessX`]).
//!
//! The unit of cost is a *try*: one completed test execution, matching
//! the "tries" columns of the paper's Table 4.

#![warn(missing_docs)]

pub mod candidates;
pub mod chess;
pub mod runner;

pub use candidates::{
    annotate, annotate_with_race, coarse, AnnotatedCandidate, CandidateKind, CoarseLoc,
    FutureCsvMap, PassingRunInfo, PreemptionPoint, SharedAccess, SyncLogger,
};
pub use chess::{find_schedule, worklist_size, Algorithm, SearchConfig, SearchResult};
pub use runner::{Budget, CancelToken, Guidance, TestRun};
