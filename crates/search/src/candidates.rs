//! Preemption candidates and their CSV annotations (paper §5, Fig. 9).
//!
//! Candidates are the CHESS scheduling points observed in the passing
//! run: the beginning of each thread, points *before* lock acquisitions
//! and joins, and points *after* lock releases and spawns. Each candidate
//! is identified across runs by `(thread, per-thread sync ordinal, kind)`
//! — a schedule-independent name, unlike step counts.
//!
//! The enhanced algorithm annotates every candidate with:
//!
//! * the prioritized CSV accesses inside the *schedule block* it leads
//!   (what injecting the preemption would perturb), and
//! * the set of CSVs its thread will access from that point on (used by
//!   the guided `preempt()` thread selection).

use mcr_analysis::RaceVerdicts;
use mcr_lang::{GlobalId, Pc};
use mcr_slice::{RankedAccess, PRIORITY_BOTTOM};
use mcr_vm::{Event, MemLoc, ObjId, Observer, SyncKind, ThreadId};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Variable-granularity location used for CSV overlap tests: array
/// elements and heap slots collapse to their container. Two threads that
/// touch *different elements of the same critical shared array* still
/// contend on the same program variable — the paper's CSV sets are
/// variable-level ("c→current_size", "cache_cache→pq→size"), so the
/// `preempt()` overlap test must not be element-exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CoarseLoc {
    /// A global variable (scalar or whole array).
    Global(GlobalId),
    /// A heap object.
    Heap(ObjId),
    /// A private location (never overlaps anything shared).
    Private,
}

/// Collapses a memory location to variable granularity.
pub fn coarse(loc: MemLoc) -> CoarseLoc {
    match loc {
        MemLoc::Global(g) | MemLoc::GlobalElem(g, _) => CoarseLoc::Global(g),
        MemLoc::Heap(o, _) => CoarseLoc::Heap(o),
        MemLoc::Local { .. } => CoarseLoc::Private,
    }
}

/// Where a preemption can be injected relative to its anchor operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CandidateKind {
    /// At the first statement of a thread.
    ThreadStart,
    /// Before an `acquire` (so other threads can take the lock first).
    BeforeAcquire,
    /// After a `release` (so other threads can run inside the gap).
    AfterRelease,
    /// After a `spawn` (so the child can run first).
    AfterSpawn,
    /// Before a `join`.
    BeforeJoin,
    /// Before a store-buffer flush (TSO mode; also `fence` under SC) —
    /// the instant at which another thread can still observe the
    /// pre-flush (stale) memory.
    BeforeFlush,
}

/// A schedule-independent name for a preemption point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PreemptionPoint {
    /// The thread to preempt.
    pub tid: ThreadId,
    /// The per-thread sync ordinal of the anchor operation (0 for
    /// `ThreadStart`).
    pub sync_seq: u32,
    /// Anchor kind.
    pub kind: CandidateKind,
    /// Step at which the anchor executed in the passing run (for
    /// ordering and block computation only; not used for matching).
    pub step: u64,
    /// Statement of the anchor in the passing run.
    pub pc: Option<Pc>,
}

impl fmt::Display for PreemptionPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{:?}#{}", self.tid, self.kind, self.sync_seq)
    }
}

/// One shared-memory access observed in the passing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedAccess {
    /// Step of the access.
    pub step: u64,
    /// Accessing thread.
    pub tid: ThreadId,
    /// Statement.
    pub pc: Pc,
    /// Location.
    pub loc: MemLoc,
    /// Whether it was a write.
    pub is_write: bool,
}

/// Everything the schedule search needs from the passing run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PassingRunInfo {
    /// Preemption candidates in execution order.
    pub candidates: Vec<PreemptionPoint>,
    /// Every shared-memory access, in execution order.
    pub shared_accesses: Vec<SharedAccess>,
    /// Total steps of the passing run.
    pub total_steps: u64,
}

/// Observer collecting [`PassingRunInfo`] during the passing run.
#[derive(Debug, Default)]
pub struct SyncLogger {
    info: PassingRunInfo,
}

impl SyncLogger {
    /// Creates an empty logger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finalizes collection.
    pub fn finish(self) -> PassingRunInfo {
        self.info
    }
}

impl Observer for SyncLogger {
    fn on_event(&mut self, step: u64, event: &Event) {
        self.info.total_steps = self.info.total_steps.max(step + 1);
        match event {
            Event::ThreadStart { tid, .. } if tid.0 != 0 => {
                self.info.candidates.push(PreemptionPoint {
                    tid: *tid,
                    sync_seq: 0,
                    kind: CandidateKind::ThreadStart,
                    step,
                    pc: None,
                });
            }
            Event::Sync { tid, pc, kind, seq } => {
                let kind = match kind {
                    SyncKind::Acquire(_) => CandidateKind::BeforeAcquire,
                    SyncKind::Release(_) => CandidateKind::AfterRelease,
                    SyncKind::Spawn(_) => CandidateKind::AfterSpawn,
                    SyncKind::Join(_) => CandidateKind::BeforeJoin,
                    SyncKind::Flush => CandidateKind::BeforeFlush,
                };
                self.info.candidates.push(PreemptionPoint {
                    tid: *tid,
                    sync_seq: *seq,
                    kind,
                    step,
                    pc: Some(*pc),
                });
            }
            Event::Read { tid, pc, loc, .. } if loc.is_shared() => {
                self.info.shared_accesses.push(SharedAccess {
                    step,
                    tid: *tid,
                    pc: *pc,
                    loc: *loc,
                    is_write: false,
                });
            }
            Event::Write { tid, pc, loc, .. } if loc.is_shared() => {
                self.info.shared_accesses.push(SharedAccess {
                    step,
                    tid: *tid,
                    pc: *pc,
                    loc: *loc,
                    is_write: true,
                });
            }
            // A buffered store is the *program's* write (the flush is
            // its delayed visibility, not a second access — counting
            // `StoreFlushed` too would double-count every TSO write).
            Event::StoreBuffered { tid, pc, loc, .. } if loc.is_shared() => {
                self.info.shared_accesses.push(SharedAccess {
                    step,
                    tid: *tid,
                    pc: *pc,
                    loc: *loc,
                    is_write: true,
                });
            }
            _ => {}
        }
    }
}

/// A candidate with its Fig. 9 annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotatedCandidate {
    /// The preemption point.
    pub point: PreemptionPoint,
    /// Prioritized CSV accesses in the schedule block this candidate
    /// leads (same thread, up to the thread's next candidate).
    pub accesses: Vec<RankedAccess>,
    /// Best (smallest) priority among `accesses`; [`PRIORITY_BOTTOM`]
    /// when the block touches no CSV.
    pub best_priority: u32,
    /// Variable-granularity locations of `accesses` (for overlap tests).
    pub access_locs: HashSet<CoarseLoc>,
}

/// For each `(thread, position)` — position = number of syncs executed —
/// the set of CSVs the thread accesses from that position on in the
/// passing run (the paper's per-sync-point "CSV set").
#[derive(Debug, Clone, Default)]
pub struct FutureCsvMap {
    map: HashMap<(u32, u32), HashSet<CoarseLoc>>,
    /// Fallback per thread: all CSVs it ever accesses (used when a test
    /// run drives a thread past its passing-run sync count).
    all: HashMap<u32, HashSet<CoarseLoc>>,
}

impl FutureCsvMap {
    /// CSVs thread `tid` will access from sync position `pos` on.
    pub fn future(&self, tid: ThreadId, pos: u32) -> Option<&HashSet<CoarseLoc>> {
        self.map.get(&(tid.0, pos))
    }

    /// All CSVs the thread ever accessed in the passing run.
    pub fn any(&self, tid: ThreadId) -> Option<&HashSet<CoarseLoc>> {
        self.all.get(&tid.0)
    }
}

/// Builds annotated candidates and the future-CSV map from the passing
/// run info, the CSV locations, and the access priorities computed by
/// `mcr-slice` (keyed by `(step, loc, is_write)`).
pub fn annotate(
    info: &PassingRunInfo,
    csv_locs: &HashSet<MemLoc>,
    priorities: &HashMap<(u64, MemLoc, bool), u32>,
) -> (Vec<AnnotatedCandidate>, FutureCsvMap) {
    annotate_with_race(info, csv_locs, priorities, None)
}

/// [`annotate`], optionally consulting static race verdicts
/// (`mcr_analysis::RaceVerdicts`):
///
/// * **Pruning.** Candidates anchored at a statically *Solo* statement
///   (provably executed before the first spawn, while only thread 0
///   exists) are dropped: preempting where no other thread is runnable
///   is a no-op, so removing the candidate cannot change which schedule
///   the search finds — the surviving worklist is an order-preserving
///   subsequence and the winning schedule stays bit-identical.
///   `ThreadStart` and `AfterSpawn` anchors are never pruned (their
///   whole point is that another thread just became runnable), and a
///   candidate without a passing-run `pc` is kept conservatively. A
///   TSO `BeforeFlush` anchored at a Solo statement is safe to drop for
///   the same reason: the buffered store drains while no other thread
///   exists to observe the stale value.
/// * **Ranking.** Candidates whose block carries no dump-prioritized
///   CSV access ([`PRIORITY_BOTTOM`]) but does touch a statically
///   *May-Race* statement move one notch up (`PRIORITY_BOTTOM - 1`), so
///   the search tries statically suspicious blocks before statically
///   clean ones. This reorders only the bottom tier — every
///   dump-prioritized candidate still sorts first.
///
/// The future-CSV map is always built from the *full* candidate list:
/// sync positions must stay aligned with what a test run replays.
pub fn annotate_with_race(
    info: &PassingRunInfo,
    csv_locs: &HashSet<MemLoc>,
    priorities: &HashMap<(u64, MemLoc, bool), u32>,
    race: Option<&RaceVerdicts>,
) -> (Vec<AnnotatedCandidate>, FutureCsvMap) {
    // Next candidate step per thread, for block boundaries.
    let mut next_step: HashMap<u32, Vec<(u64, u64)>> = HashMap::new(); // tid -> [(step, next_step)]
    let mut per_thread: HashMap<u32, Vec<&PreemptionPoint>> = HashMap::new();
    for c in &info.candidates {
        per_thread.entry(c.point_tid()).or_default().push(c);
    }
    for (tid, list) in &per_thread {
        let mut spans = Vec::with_capacity(list.len());
        for (i, c) in list.iter().enumerate() {
            let end = list.get(i + 1).map_or(u64::MAX, |n| n.step);
            spans.push((c.step, end));
        }
        next_step.insert(*tid, spans);
    }

    // CSV accesses only.
    let csv_accesses: Vec<&SharedAccess> = info
        .shared_accesses
        .iter()
        .filter(|a| csv_locs.contains(&a.loc))
        .collect();

    let mut annotated = Vec::with_capacity(info.candidates.len());
    for c in &info.candidates {
        let spans = &next_step[&c.point_tid()];
        let (start, end) = spans
            .iter()
            .find(|&&(s, _)| s == c.step)
            .copied()
            .unwrap_or((c.step, u64::MAX));
        let mut accesses = Vec::new();
        let mut access_locs = HashSet::new();
        let mut best = PRIORITY_BOTTOM;
        for a in &csv_accesses {
            if a.tid.0 != c.point_tid() || a.step < start || a.step >= end {
                continue;
            }
            let priority = priorities
                .get(&(a.step, a.loc, a.is_write))
                .copied()
                .unwrap_or(PRIORITY_BOTTOM);
            best = best.min(priority);
            access_locs.insert(coarse(a.loc));
            accesses.push(RankedAccess {
                serial: a.step,
                step: a.step,
                tid: a.tid,
                pc: a.pc,
                loc: a.loc,
                is_write: a.is_write,
                priority,
            });
        }
        if best == PRIORITY_BOTTOM {
            if let Some(rv) = race {
                let block_may_race = info.shared_accesses.iter().any(|a| {
                    a.tid.0 == c.point_tid()
                        && a.step >= start
                        && a.step < end
                        && rv.has_may_race(a.pc)
                });
                if block_may_race {
                    best = PRIORITY_BOTTOM - 1;
                }
            }
        }
        annotated.push(AnnotatedCandidate {
            point: *c,
            accesses,
            best_priority: best,
            access_locs,
        });
    }

    if let Some(rv) = race {
        annotated.retain(|a| !prunable(&a.point, rv));
    }

    // Future CSV sets per (thread, sync position).
    let mut fut = FutureCsvMap::default();
    for (tid, list) in &per_thread {
        // Position p corresponds to: before executing sync #p. The step
        // at which the thread reaches position p is the step of its p-th
        // sync anchor (ThreadStart is position 0's lower bound).
        let mut positions: Vec<(u32, u64)> = vec![(0, 0)];
        for c in list {
            match c.kind {
                CandidateKind::BeforeAcquire
                | CandidateKind::BeforeJoin
                | CandidateKind::BeforeFlush => {
                    positions.push((c.sync_seq, c.step));
                }
                CandidateKind::AfterRelease | CandidateKind::AfterSpawn => {
                    positions.push((c.sync_seq + 1, c.step));
                }
                CandidateKind::ThreadStart => {}
            }
        }
        let thread_accesses: Vec<&&SharedAccess> =
            csv_accesses.iter().filter(|a| a.tid.0 == *tid).collect();
        let mut all = HashSet::new();
        for a in &thread_accesses {
            all.insert(coarse(a.loc));
        }
        fut.all.insert(*tid, all);
        for (pos, from_step) in positions {
            let set: HashSet<CoarseLoc> = thread_accesses
                .iter()
                .filter(|a| a.step >= from_step)
                .map(|a| coarse(a.loc))
                .collect();
            fut.map.insert((*tid, pos), set);
        }
    }

    (annotated, fut)
}

/// Whether static race verdicts prove this preemption point is a no-op
/// (see [`annotate_with_race`]).
fn prunable(point: &PreemptionPoint, race: &RaceVerdicts) -> bool {
    match point.kind {
        // Another thread just became runnable here — exactly the
        // schedules pruning must preserve.
        CandidateKind::ThreadStart | CandidateKind::AfterSpawn => false,
        CandidateKind::BeforeAcquire
        | CandidateKind::AfterRelease
        | CandidateKind::BeforeJoin
        | CandidateKind::BeforeFlush => point.pc.is_some_and(|pc| race.is_solo(pc)),
    }
}

impl PreemptionPoint {
    fn point_tid(&self) -> u32 {
        self.tid.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_vm::{run, DeterministicScheduler, Vm};

    const PROG: &str = r#"
        global x: int;
        lock l;
        fn t1() {
            acquire l;
            x = 1;
            release l;
            acquire l;
            x = 2;
            release l;
        }
        fn t2() { x = 0; }
        fn main() {
            var a; var b;
            a = spawn t1();
            b = spawn t2();
            join a;
            join b;
        }
    "#;

    fn collect() -> (mcr_lang::Program, PassingRunInfo) {
        let p = mcr_lang::compile(PROG).unwrap();
        let mut vm = Vm::new(&p, &[]);
        let mut s = DeterministicScheduler::new();
        let mut log = SyncLogger::new();
        run(&mut vm, &mut s, &mut log, 100_000);
        (p, log.finish())
    }

    #[test]
    fn candidate_enumeration() {
        let (_p, info) = collect();
        // main: 2 spawns + 2 joins = 4; t1: 2 acquires + 2 releases = 4;
        // thread starts: t1, t2 = 2. Total 10.
        assert_eq!(info.candidates.len(), 10, "{:#?}", info.candidates);
        let starts = info
            .candidates
            .iter()
            .filter(|c| c.kind == CandidateKind::ThreadStart)
            .count();
        assert_eq!(starts, 2);
        // Candidates are in step order.
        assert!(info.candidates.windows(2).all(|w| w[0].step <= w[1].step));
    }

    #[test]
    fn annotation_blocks_and_future_sets() {
        let (p, info) = collect();
        let x = p.global_by_name("x").unwrap();
        let mut csvs = HashSet::new();
        csvs.insert(MemLoc::Global(x));
        let (ann, fut) = annotate(&info, &csvs, &HashMap::new());
        // The block after t1's first acquire contains the write x = 1.
        let t1 = ThreadId(1);
        let first_acq = ann
            .iter()
            .find(|a| a.point.tid == t1 && a.point.kind == CandidateKind::BeforeAcquire)
            .unwrap();
        assert!(
            first_acq.access_locs.contains(&CoarseLoc::Global(x)),
            "block accesses: {:?}",
            first_acq.accesses
        );
        // t2 at position 0 will access x in the future.
        let t2 = ThreadId(2);
        assert!(fut.future(t2, 0).unwrap().contains(&CoarseLoc::Global(x)));
        // t1 after all its syncs has no future CSV accesses.
        let last = fut.future(t1, 4).unwrap();
        assert!(last.is_empty(), "{last:?}");
    }

    #[test]
    fn priorities_flow_into_best() {
        let (p, info) = collect();
        let x = p.global_by_name("x").unwrap();
        let loc = MemLoc::Global(x);
        let mut csvs = HashSet::new();
        csvs.insert(loc);
        // Give the t1 write `x = 2` priority 1.
        let w = info
            .shared_accesses
            .iter()
            .filter(|a| a.is_write && a.tid == ThreadId(1))
            .nth(1)
            .unwrap();
        let mut prio = HashMap::new();
        prio.insert((w.step, loc, true), 1u32);
        let (ann, _) = annotate(&info, &csvs, &prio);
        let best = ann.iter().map(|a| a.best_priority).min().unwrap();
        assert_eq!(best, 1);
        // Candidates whose block has no CSV access stay at bottom.
        assert!(ann.iter().any(|a| a.best_priority == PRIORITY_BOTTOM));
    }
}
