//! Test execution with injected preemptions (Algorithm 2's `testrun` and
//! `preempt`).
//!
//! A test run replays the program under the deterministic policy, but at
//! each scheduled preemption point it forces a context switch. Which
//! thread runs next is a branching choice: the paper's `preempt()`
//! checkpoints the execution and tries each admissible thread in turn.
//! Here checkpointing is a [`Vm`] clone, and the exploration is a
//! depth-first search over those choices; every completed execution
//! counts as one *try* (the unit of the paper's Table 4).

use crate::candidates::{AnnotatedCandidate, CandidateKind, FutureCsvMap};
use mcr_lang::Inst;
use mcr_vm::{Failure, NullObserver, ThreadId, Vm};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A cooperative cancellation flag shared between a search (or any other
/// long-running phase) and the code driving it.
///
/// Cloning the token shares the flag: any clone's [`CancelToken::cancel`]
/// is observed by every other clone. A [`Budget`] carrying the token
/// reports itself exhausted once the flag is set, so an in-flight
/// [`find_schedule`](crate::find_schedule) unwinds at the next poll —
/// within one explored statement — and returns a partial
/// [`SearchResult`](crate::SearchResult) instead of blocking.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Sets the flag. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Bounds of the *adaptive* deadline-poll period: how many
/// [`Budget::exhausted`] polls share one `Instant::now()` read. The
/// deadline is coarse (the paper's 18-hour cutoff equivalent), so a
/// clock syscall on every poll — once per explored statement — is pure
/// overhead; between real reads the cached verdict is returned. A fixed
/// period couples the overshoot to the *poll rate*: a search stepping
/// millions of statements per second barely notices 256 polls, but one
/// stalled in slow combinations (deep preemption recursion, large VM
/// clones) could blow past a deadline by the full period. The period
/// therefore scales to the observed rate — each clock read measures the
/// wall time since the previous one and halves the period when the
/// window drifts above [`POLL_WINDOW_HIGH`] (or doubles it below
/// [`POLL_WINDOW_LOW`]) — so the time between reads converges on
/// roughly a millisecond regardless of steps/s, bounding the deadline
/// overshoot to that order.
const MIN_POLL_PERIOD: u32 = 16;
/// Upper period bound (reached by fast pollers within ~a dozen reads).
const MAX_POLL_PERIOD: u32 = 65_536;
/// Clock-read window above which the period halves.
const POLL_WINDOW_HIGH: std::time::Duration = std::time::Duration::from_millis(2);
/// Clock-read window below which the period doubles.
const POLL_WINDOW_LOW: std::time::Duration = std::time::Duration::from_micros(250);

/// A try pool shared by the workers of a parallel search. The counter is
/// debited as each try *completes* (not snapshotted up front), so the
/// configured cap bounds total work across all workers to within one
/// in-flight try per worker.
#[derive(Debug, Default)]
pub(crate) struct SharedTries {
    count: AtomicU64,
    max: u64,
}

impl SharedTries {
    pub(crate) fn new(max: u64) -> Arc<SharedTries> {
        Arc::new(SharedTries {
            count: AtomicU64::new(0),
            max,
        })
    }

    /// Tries completed across all workers so far.
    pub(crate) fn used(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Whether the pool is spent.
    pub(crate) fn exhausted_now(&self) -> bool {
        self.used() >= self.max
    }
}

/// Budget shared across an entire schedule search.
#[derive(Debug)]
pub struct Budget {
    /// Maximum completed executions.
    pub max_tries: u64,
    /// Completed executions so far.
    pub tries: u64,
    /// Wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Per-run step cap.
    pub max_steps: u64,
    /// Deadline-poll cache: reads the clock once per `poll_period`
    /// polls and replays the last verdict in between; the period adapts
    /// to the observed poll rate (see `MIN_POLL_PERIOD`). Re-keyed
    /// (and re-read immediately) whenever `deadline` is replaced.
    polls_left: Cell<u32>,
    poll_period: Cell<u32>,
    last_poll: Cell<Option<Instant>>,
    poll_key: Cell<Option<Instant>>,
    poll_expired: Cell<bool>,
    /// Obsolete-watch for parallel workers: `(winner, my_index)`. The
    /// shared cell holds the lowest reproducing worklist index found so
    /// far (`usize::MAX` = none); once it drops *below* this worker's
    /// index, the combination under test can no longer affect the
    /// result and the budget reports itself exhausted. Because the
    /// winner index only ever decreases, a combination at or below the
    /// final winner never observes the watch firing — its try count
    /// stays serial-identical.
    obsolete: Option<(Arc<AtomicUsize>, usize)>,
    /// Global pool this worker-local budget also draws from (parallel
    /// searches only).
    shared: Option<Arc<SharedTries>>,
    /// Cooperative cancellation: once the token fires, the budget is
    /// exhausted.
    cancel: Option<CancelToken>,
}

impl Budget {
    /// A budget with the given try cap and no deadline.
    pub fn with_tries(max_tries: u64, max_steps: u64) -> Budget {
        Budget {
            max_tries,
            tries: 0,
            deadline: None,
            max_steps,
            polls_left: Cell::new(0),
            poll_period: Cell::new(MIN_POLL_PERIOD),
            last_poll: Cell::new(None),
            poll_key: Cell::new(None),
            poll_expired: Cell::new(false),
            obsolete: None,
            shared: None,
            cancel: None,
        }
    }

    /// Attaches a cancellation token: once it fires, the budget reports
    /// itself exhausted.
    pub fn with_cancel(mut self, token: CancelToken) -> Budget {
        self.cancel = Some(token);
        self
    }

    /// Whether the attached token (if any) has fired.
    pub fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Attaches a shared try pool: every recorded try also debits the
    /// pool, and pool exhaustion exhausts this budget.
    pub(crate) fn with_shared(mut self, pool: Arc<SharedTries>) -> Budget {
        self.shared = Some(pool);
        self
    }

    /// Attaches an obsolete-watch (parallel searches only): the budget
    /// reports itself exhausted once `winner` drops below `my_index`,
    /// aborting speculative work a lower combination has already beaten.
    pub(crate) fn with_obsolete(mut self, winner: Arc<AtomicUsize>, my_index: usize) -> Budget {
        self.obsolete = Some((winner, my_index));
        self
    }

    /// Counts one completed execution (and debits the shared pool, if
    /// any).
    pub(crate) fn record_try(&mut self) {
        self.tries += 1;
        if let Some(pool) = &self.shared {
            pool.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether the budget is exhausted.
    ///
    /// The try cap is exact; the deadline is polled through a cache
    /// whose clock-read period adapts to the observed poll rate (see
    /// `MIN_POLL_PERIOD`), so a deadline overrun is noticed within
    /// roughly a poll window — milliseconds — regardless of how fast or
    /// slow the search is stepping.
    pub fn exhausted(&self) -> bool {
        if self.tries >= self.max_tries {
            return true;
        }
        if self.cancelled() {
            return true;
        }
        if let Some((winner, my_index)) = &self.obsolete {
            if winner.load(Ordering::Acquire) < *my_index {
                return true;
            }
        }
        if let Some(pool) = &self.shared {
            if pool.exhausted_now() {
                return true;
            }
        }
        let Some(deadline) = self.deadline else {
            return false;
        };
        if self.poll_key.get() != Some(deadline) {
            // The deadline was (re)set: re-key the cache and check the
            // clock on this very poll (the learned period survives —
            // the poll rate did not change with the deadline).
            self.poll_key.set(Some(deadline));
            self.poll_expired.set(false);
            self.polls_left.set(0);
            self.last_poll.set(None);
        }
        if self.poll_expired.get() {
            return true;
        }
        let left = self.polls_left.get();
        if left > 0 {
            self.polls_left.set(left - 1);
            return false;
        }
        let now = Instant::now();
        if let Some(prev) = self.last_poll.get() {
            // Steer the window between clock reads toward ~1ms: halve
            // the period when polls run slow, double it when they fly.
            let window = now.duration_since(prev);
            let period = self.poll_period.get();
            if window > POLL_WINDOW_HIGH {
                self.poll_period.set((period / 2).max(MIN_POLL_PERIOD));
            } else if window < POLL_WINDOW_LOW {
                self.poll_period.set((period * 2).min(MAX_POLL_PERIOD));
            }
        }
        self.last_poll.set(Some(now));
        self.polls_left.set(self.poll_period.get());
        let expired = now >= deadline;
        self.poll_expired.set(expired);
        expired
    }
}

/// How `preempt()` selects the thread to switch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Guidance {
    /// Plain CHESS: try every other runnable thread.
    All,
    /// Enhanced: only threads whose future CSV set overlaps the
    /// preempted block's CSV accesses (Algorithm 2, line 23).
    CsvOverlap,
}

/// One test execution request: a set of preemptions to inject.
#[derive(Debug)]
pub struct TestRun<'a, 'p> {
    /// The VM template (fresh program + input state).
    pub fresh_vm: &'a Vm<'p>,
    /// Preemptions to inject.
    pub preemptions: &'a [AnnotatedCandidate],
    /// The failure to reproduce.
    pub target: Failure,
    /// Thread-selection guidance.
    pub guidance: Guidance,
    /// Future-CSV map from the passing run (used by `CsvOverlap`).
    pub future: &'a FutureCsvMap,
}

/// Preemption candidates pre-bucketed by `(tid, sync_seq)` — the key
/// every firing rule matches on — so the per-step `fires_before` /
/// `fires_after` checks look up one (almost always empty or singleton)
/// bucket instead of scanning the whole preemption set.
#[derive(Debug, Default)]
struct PreemptionIndex {
    by_anchor: HashMap<(u32, u32), Vec<usize>>,
}

impl PreemptionIndex {
    fn build(preemptions: &[AnnotatedCandidate]) -> PreemptionIndex {
        let mut by_anchor: HashMap<(u32, u32), Vec<usize>> = HashMap::new();
        for (i, pm) in preemptions.iter().enumerate() {
            // Buckets keep insertion (= candidate index) order, so the
            // first in-bucket hit is the same candidate a full scan
            // would have returned.
            by_anchor
                .entry((pm.point.tid.0, pm.point.sync_seq))
                .or_default()
                .push(i);
        }
        PreemptionIndex { by_anchor }
    }

    /// Candidate indices anchored at `(tid, sync_seq)`.
    fn bucket(&self, tid: ThreadId, sync_seq: u32) -> &[usize] {
        self.by_anchor
            .get(&(tid.0, sync_seq))
            .map_or(&[], Vec::as_slice)
    }
}

impl TestRun<'_, '_> {
    /// Runs the test, exploring thread choices at each preemption.
    /// Returns whether the target failure was reproduced. Increments
    /// `budget.tries` once per completed execution.
    pub fn execute(&self, budget: &mut Budget) -> bool {
        let index = PreemptionIndex::build(self.preemptions);
        let consumed = vec![false; self.preemptions.len()];
        self.explore(self.fresh_vm.clone(), None, consumed, &index, budget)
    }

    /// The deterministic policy: keep the current thread while runnable,
    /// else the lowest-id runnable thread.
    fn pick(current: Option<ThreadId>, runnable: &[ThreadId]) -> ThreadId {
        match current {
            Some(c) if runnable.contains(&c) => c,
            _ => runnable[0],
        }
    }

    /// Does a pending *before*-anchored preemption fire for `t` now?
    ///
    /// Every firing rule requires the candidate's `(tid, sync_seq)` to
    /// match the thread's current position, so only that bucket of the
    /// index is inspected.
    fn fires_before(
        &self,
        vm: &Vm<'_>,
        t: ThreadId,
        index: &PreemptionIndex,
        consumed: &[bool],
    ) -> Option<usize> {
        let th = vm.thread(t);
        for &i in index.bucket(t, th.sync_seq) {
            if consumed[i] {
                continue;
            }
            let pm = &self.preemptions[i];
            let hit = match pm.point.kind {
                CandidateKind::ThreadStart => th.steps_taken == 0,
                CandidateKind::BeforeAcquire => {
                    matches!(vm.next_inst(t), Some(Inst::Acquire { .. }))
                }
                CandidateKind::BeforeJoin => {
                    matches!(vm.next_inst(t), Some(Inst::Join { .. }))
                }
                CandidateKind::BeforeFlush => vm.flush_point(t),
                _ => false,
            };
            if hit {
                return Some(i);
            }
        }
        None
    }

    /// Does a pending *after*-anchored preemption fire after `t` just
    /// executed sync `seq_before` of kind `was`?
    fn fires_after(
        &self,
        t: ThreadId,
        seq_before: u32,
        was: Option<CandidateKind>,
        index: &PreemptionIndex,
        consumed: &[bool],
    ) -> Option<usize> {
        let was = was?;
        for &i in index.bucket(t, seq_before) {
            if consumed[i] {
                continue;
            }
            let pm = &self.preemptions[i];
            if pm.point.kind == was {
                return Some(i);
            }
        }
        None
    }

    /// Admissible switch targets at preemption `pm` (Algorithm 2's
    /// `preempt`): other runnable threads, filtered by CSV overlap under
    /// guidance.
    fn choices(&self, vm: &Vm<'_>, preempted: ThreadId, pm: &AnnotatedCandidate) -> Vec<ThreadId> {
        vm.runnable_iter()
            .filter(|&t| t != preempted)
            .filter(|&t| match self.guidance {
                Guidance::All => true,
                // A flush preemption perturbs the *visibility* of stores
                // already executed, and the threads that race with stale
                // memory do so on paths the passing run never took (a
                // stale read flips a branch — that is what makes the bug
                // SC-unreachable). Passing-run future-CSV sets therefore
                // systematically under-approximate at flush anchors, and
                // the CSV diff itself can be empty when the raced state
                // converges afterwards; fall back to unguided selection.
                Guidance::CsvOverlap if pm.point.kind == CandidateKind::BeforeFlush => true,
                Guidance::CsvOverlap => {
                    let pos = vm.thread(t).sync_seq;
                    let fut = self.future.future(t, pos).or_else(|| self.future.any(t));
                    match fut {
                        Some(set) => set.iter().any(|loc| pm.access_locs.contains(loc)),
                        None => false,
                    }
                }
            })
            .collect()
    }

    /// Depth-first exploration. Returns true as soon as any completed
    /// execution reproduces the target.
    fn explore(
        &self,
        mut vm: Vm<'_>,
        mut current: Option<ThreadId>,
        mut consumed: Vec<bool>,
        index: &PreemptionIndex,
        budget: &mut Budget,
    ) -> bool {
        // Scratch buffer reused across the stepping loop; recursion (one
        // level per injected preemption) gets its own.
        let mut runnable: Vec<ThreadId> = Vec::new();
        loop {
            if budget.exhausted() {
                return false;
            }
            if let Some(f) = vm.failure() {
                budget.record_try();
                return f.same_bug(&self.target);
            }
            if vm.steps() >= budget.max_steps {
                budget.record_try();
                return false;
            }
            vm.runnable_into(&mut runnable);
            if runnable.is_empty() {
                budget.record_try();
                return false;
            }
            let t = Self::pick(current, &runnable);
            current = Some(t);

            // Before-anchored preemption?
            if let Some(i) = self.fires_before(&vm, t, index, &consumed) {
                consumed[i] = true;
                let pm = &self.preemptions[i];
                let choices = self.choices(&vm, t, pm);
                for &c in &choices {
                    if budget.exhausted() {
                        return false;
                    }
                    if self.explore(vm.clone(), Some(c), consumed.clone(), index, budget) {
                        return true;
                    }
                }
                // All selections failed (or none admissible): continue the
                // original schedule without the preemption, as the paper's
                // preempt() does after restoring its checkpoint.
                continue;
            }

            let seq_before = vm.thread(t).sync_seq;
            let after_kind = match vm.next_inst(t) {
                Some(Inst::Release { .. }) => Some(CandidateKind::AfterRelease),
                Some(Inst::Spawn { .. }) => Some(CandidateKind::AfterSpawn),
                _ => None,
            };
            vm.step(t, &mut NullObserver);

            // After-anchored preemption?
            if let Some(i) = self.fires_after(t, seq_before, after_kind, index, &consumed) {
                consumed[i] = true;
                let pm = &self.preemptions[i];
                let choices = self.choices(&vm, t, pm);
                for &c in &choices {
                    if budget.exhausted() {
                        return false;
                    }
                    if self.explore(vm.clone(), Some(c), consumed.clone(), index, budget) {
                        return true;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{annotate, SyncLogger};
    use mcr_vm::{run, DeterministicScheduler, MemLoc, StressScheduler, Vm};
    use std::collections::{HashMap, HashSet};

    /// The paper's Fig. 1 race: passing deterministically, failing when
    /// T2's `x = 0` lands between T1's release and its `!x` check.
    const FIG1: &str = r#"
        global x: int;
        global input: [int; 2];
        lock l;
        fn F(p) { p[0] = 1; }
        fn T1() {
            var i; var p;
            for (i = 0; i < 2; i = i + 1) {
                x = 0;
                p = alloc(2);
                acquire l;
                if (input[i] > 0) {
                    x = 1;
                    p = null;
                }
                release l;
                if (!x) { F(p); }
            }
        }
        fn T2() { x = 0; }
        fn main() {
            spawn T1();
            spawn T2();
        }
    "#;

    fn setup(
        src: &str,
        input: &[i64],
    ) -> (
        mcr_lang::Program,
        Failure,
        crate::candidates::PassingRunInfo,
    ) {
        let p = mcr_lang::compile(src).unwrap();
        // Find a failing stress seed to get the target failure.
        let mut failure = None;
        for seed in 0..50_000 {
            let mut vm = Vm::new(&p, input);
            let mut s = StressScheduler::new(seed);
            run(&mut vm, &mut s, &mut NullObserver, 1_000_000);
            if let Some(f) = vm.failure() {
                failure = Some(f);
                break;
            }
        }
        let failure = failure.expect("stress must expose the race");
        // Passing run info.
        let mut vm = Vm::new(&p, input);
        let mut s = DeterministicScheduler::new();
        let mut log = SyncLogger::new();
        let out = run(&mut vm, &mut s, &mut log, 1_000_000);
        assert_eq!(out, mcr_vm::Outcome::Completed, "passing run must pass");
        (p, failure, log.finish())
    }

    #[test]
    fn fig1_reproduced_with_one_preemption() {
        let (p, failure, info) = setup(FIG1, &[0, 1]);
        let x = p.global_by_name("x").unwrap();
        let mut csvs = HashSet::new();
        csvs.insert(MemLoc::Global(x));
        let (ann, fut) = annotate(&info, &csvs, &HashMap::new());

        // The release in iteration 2 of T1 leads the block reading !x.
        let t1 = ThreadId(1);
        let release2 = ann
            .iter()
            .find(|a| {
                a.point.tid == t1
                    && a.point.kind == CandidateKind::AfterRelease
                    && a.point.sync_seq == 3
            })
            .expect("second release candidate");
        assert!(release2
            .access_locs
            .contains(&crate::candidates::CoarseLoc::Global(x)));

        let fresh = Vm::new(&p, &[0, 1]);
        let pre = vec![release2.clone()];
        let tr = TestRun {
            fresh_vm: &fresh,
            preemptions: &pre,
            target: failure,
            guidance: Guidance::CsvOverlap,
            future: &fut,
        };
        let mut budget = Budget::with_tries(100, 1_000_000);
        assert!(tr.execute(&mut budget), "failure must be reproduced");
        assert!(budget.tries <= 3, "took {} tries", budget.tries);
    }

    #[test]
    fn wrong_preemption_does_not_reproduce() {
        let (p, failure, info) = setup(FIG1, &[0, 1]);
        let x = p.global_by_name("x").unwrap();
        let mut csvs = HashSet::new();
        csvs.insert(MemLoc::Global(x));
        let (ann, fut) = annotate(&info, &csvs, &HashMap::new());
        // Preempting T1 at its very start cannot create the race.
        let t1_start = ann
            .iter()
            .find(|a| a.point.tid == ThreadId(1) && a.point.kind == CandidateKind::ThreadStart)
            .unwrap();
        let fresh = Vm::new(&p, &[0, 1]);
        let pre = vec![t1_start.clone()];
        let tr = TestRun {
            fresh_vm: &fresh,
            preemptions: &pre,
            target: failure,
            guidance: Guidance::All,
            future: &fut,
        };
        let mut budget = Budget::with_tries(100, 1_000_000);
        assert!(!tr.execute(&mut budget));
        assert!(budget.tries >= 1);
    }

    #[test]
    fn guidance_reduces_choices() {
        let (p, failure, info) = setup(FIG1, &[0, 1]);
        let x = p.global_by_name("x").unwrap();
        let mut csvs = HashSet::new();
        csvs.insert(MemLoc::Global(x));
        let (ann, fut) = annotate(&info, &csvs, &HashMap::new());
        let release2 = ann
            .iter()
            .find(|a| {
                a.point.tid == ThreadId(1)
                    && a.point.kind == CandidateKind::AfterRelease
                    && a.point.sync_seq == 3
            })
            .unwrap();
        let fresh = Vm::new(&p, &[0, 1]);
        let pre = vec![release2.clone()];

        let mut unguided_budget = Budget::with_tries(1000, 1_000_000);
        let tr_all = TestRun {
            fresh_vm: &fresh,
            preemptions: &pre,
            target: failure,
            guidance: Guidance::All,
            future: &fut,
        };
        assert!(tr_all.execute(&mut unguided_budget));

        let mut guided_budget = Budget::with_tries(1000, 1_000_000);
        let tr_guided = TestRun {
            fresh_vm: &fresh,
            preemptions: &pre,
            target: failure,
            guidance: Guidance::CsvOverlap,
            future: &fut,
        };
        assert!(tr_guided.execute(&mut guided_budget));
        assert!(guided_budget.tries <= unguided_budget.tries);
    }

    #[test]
    fn deadline_overshoot_stays_bounded_under_slow_polls() {
        use std::time::Duration;
        // A slow poller (~1ms per poll) with a 20ms deadline: the fixed
        // 256-poll cache would overshoot by a quarter second; the
        // adaptive period keeps clock reads within a few polls.
        let mut b = Budget::with_tries(u64::MAX, 1000);
        b.deadline = Some(Instant::now() + Duration::from_millis(20));
        let t0 = Instant::now();
        let mut polls = 0u64;
        while !b.exhausted() {
            polls += 1;
            assert!(polls < 100_000, "deadline never observed");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            t0.elapsed() < Duration::from_millis(150),
            "overshoot {:?} not bounded",
            t0.elapsed()
        );
        // Once expired, the verdict is cached.
        assert!(b.exhausted());
    }

    #[test]
    fn fast_polls_grow_the_clock_read_period() {
        use std::time::Duration;
        let mut b = Budget::with_tries(u64::MAX, 1000);
        b.deadline = Some(Instant::now() + Duration::from_secs(3600));
        // A tight poll loop drives the window under `POLL_WINDOW_LOW`,
        // doubling the period toward the cap.
        for _ in 0..2_000_000 {
            assert!(!b.exhausted());
        }
        assert!(
            b.poll_period.get() > MIN_POLL_PERIOD,
            "period stuck at {}",
            b.poll_period.get()
        );
        assert!(b.poll_period.get() <= MAX_POLL_PERIOD);
    }

    #[test]
    fn obsolete_watch_exhausts_only_beaten_indices() {
        let winner = Arc::new(AtomicUsize::new(usize::MAX));
        let at_5 = Budget::with_tries(u64::MAX, 1000).with_obsolete(Arc::clone(&winner), 5);
        assert!(!at_5.exhausted(), "no winner yet");
        winner.store(5, Ordering::Release);
        assert!(!at_5.exhausted(), "index 5 is not beaten by winner 5");
        winner.store(3, Ordering::Release);
        assert!(at_5.exhausted(), "winner 3 beats index 5");
        let at_2 = Budget::with_tries(u64::MAX, 1000).with_obsolete(Arc::clone(&winner), 2);
        assert!(!at_2.exhausted(), "indices below the winner keep running");
    }

    #[test]
    fn budget_caps_tries() {
        let (p, failure, info) = setup(FIG1, &[0, 1]);
        let (ann, fut) = annotate(&info, &HashSet::new(), &HashMap::new());
        let fresh = Vm::new(&p, &[0, 1]);
        // All candidates at once with a tiny budget: must stop.
        let tr = TestRun {
            fresh_vm: &fresh,
            preemptions: &ann,
            target: failure,
            guidance: Guidance::All,
            future: &fut,
        };
        let mut budget = Budget::with_tries(2, 1_000_000);
        let _ = tr.execute(&mut budget);
        assert!(budget.tries <= 2);
    }
}
