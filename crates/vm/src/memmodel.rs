//! Memory-model policy and fault injection — execution-time knobs on the
//! interpreter.
//!
//! The paper's pipeline assumed sequential consistency, which makes a
//! whole family of production heisenbugs (store-buffer reorderings, torn
//! publication, read-own-write-early) unreachable by construction. This
//! module adds the missing policy layer without forking the interpreter:
//!
//! * [`MemModel`] selects between strict SC (the default — bit-identical
//!   to the historical VM) and a TSO-style relaxed mode in which every
//!   thread owns a bounded FIFO *store buffer*. Under TSO, shared writes
//!   enqueue instead of hitting memory ([`crate::Event::StoreBuffered`]),
//!   reads snoop the thread's own buffer first (store-to-load
//!   forwarding), and buffer *drains* are first-class scheduling points
//!   ([`crate::SyncKind::Flush`]) that the CHESS worklist enumerates
//!   exactly like acquires and releases. Fences, lock operations, spawns,
//!   joins, and thread exit force a full drain.
//! * [`FaultSpec`] injects environment failures — a failing allocation or
//!   a lock-acquisition timeout — at a *schedule-independent* point: the
//!   n-th such operation of one thread. Faults are part of the VM
//!   configuration, so a schedule found under fault injection replays
//!   deterministically, and the fault identity travels inside the
//!   [`crate::Failure`] so distinct faults stay distinct bugs.
//!
//! Both knobs are pure supersets: with `MemModel::Sc` and no faults the
//! VM behaves byte-for-byte as before.

use crate::memloc::MemLoc;
use crate::value::{ThreadId, Value};
use mcr_lang::Pc;

/// Default per-thread store-buffer capacity under [`MemModel::Tso`].
///
/// Real store buffers hold a few dozen entries; a small bound keeps the
/// reachable-state blowup tame while still exposing every reordering a
/// deeper buffer would (any TSO anomaly needs only one pending store).
pub const DEFAULT_STORE_BUFFER_CAP: u32 = 8;

/// Which memory consistency model the VM executes under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemModel {
    /// Sequential consistency: every store is globally visible the moment
    /// it executes. The default, and bit-identical to the historical VM.
    #[default]
    Sc,
    /// Total store order: shared stores sit in a per-thread FIFO buffer
    /// (at most `buffer_cap` entries; the oldest entry spills to memory
    /// when a store would overflow it) until a drain point — a fence, a
    /// lock operation, a spawn/join, thread exit, or capacity pressure —
    /// commits them in order. The thread reads its own buffered values
    /// early; other threads see stale memory.
    Tso {
        /// Store-buffer capacity (at least 1; see
        /// [`DEFAULT_STORE_BUFFER_CAP`]).
        buffer_cap: u32,
    },
}

impl MemModel {
    /// TSO with the default buffer capacity.
    pub fn tso() -> MemModel {
        MemModel::Tso {
            buffer_cap: DEFAULT_STORE_BUFFER_CAP,
        }
    }

    /// Whether this is a relaxed (store-buffering) model.
    pub fn is_tso(&self) -> bool {
        matches!(self, MemModel::Tso { .. })
    }

    /// The store-buffer capacity, if the model buffers stores.
    pub fn buffer_cap(&self) -> Option<u32> {
        match self {
            MemModel::Sc => None,
            MemModel::Tso { buffer_cap } => Some((*buffer_cap).max(1)),
        }
    }
}

/// One pending store in a thread's TSO store buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferedStore {
    /// The (shared) location the store targets.
    pub loc: MemLoc,
    /// The value waiting to become globally visible.
    pub value: Value,
    /// The statement that issued the store.
    pub pc: Pc,
}

/// The kind of injected environment fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// An allocation request fails: `alloc(..)` yields `null` instead of
    /// a fresh object. Non-fatal — the program sees the null and runs its
    /// recovery path (or crashes dereferencing it later).
    AllocFail,
    /// A lock acquisition that would block times out instead: the blocked
    /// acquirer becomes runnable and crashes with
    /// [`crate::FailureKind::LockTimeout`] at the acquire. Fires only
    /// when the lock is actually held — an uncontended acquire consumes
    /// the ordinal without faulting.
    LockTimeout,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FaultKind::AllocFail => "alloc-fail",
            FaultKind::LockTimeout => "lock-timeout",
        })
    }
}

/// One fault to inject: the `nth` operation of `kind` performed by
/// thread `tid` (0-based, counted per thread).
///
/// Keying on the per-thread ordinal — not a global one — makes the
/// injection point *schedule-independent*: however the threads
/// interleave, "thread 2's first allocation" names the same program
/// point, so a schedule found under fault injection replays exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// The thread whose operation faults.
    pub tid: ThreadId,
    /// Which of its operations (0-based ordinal of allocs for
    /// [`FaultKind::AllocFail`], of acquires for
    /// [`FaultKind::LockTimeout`]).
    pub nth: u32,
}

/// The identity stamp of an injected fault, carried inside a
/// [`crate::Failure`] so two crashes caused by *different* injected
/// faults never collapse into one bug.
///
/// The thread id is deliberately omitted (thread numbering can differ
/// between a stress run and a replay, exactly as
/// [`crate::Failure::same_bug`] already assumes); the per-thread ordinal
/// plus kind plus crash pc is identity enough.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InjectedFault {
    /// What was injected.
    pub kind: FaultKind,
    /// The per-thread ordinal the injection matched.
    pub nth: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sc_is_default_and_unbuffered() {
        assert_eq!(MemModel::default(), MemModel::Sc);
        assert!(!MemModel::Sc.is_tso());
        assert_eq!(MemModel::Sc.buffer_cap(), None);
    }

    #[test]
    fn tso_cap_is_clamped_to_one() {
        assert_eq!(MemModel::tso().buffer_cap(), Some(DEFAULT_STORE_BUFFER_CAP));
        assert_eq!(MemModel::Tso { buffer_cap: 0 }.buffer_cap(), Some(1));
        assert!(MemModel::tso().is_tso());
    }

    #[test]
    fn fault_kinds_display() {
        assert_eq!(FaultKind::AllocFail.to_string(), "alloc-fail");
        assert_eq!(FaultKind::LockTimeout.to_string(), "lock-timeout");
    }
}
