//! Execution events and the observer interface.
//!
//! The VM emits a fine-grained event stream as it executes. Every consumer
//! of dynamic information in the reproduction pipeline — online execution
//! indexing, aligned-point location, trace collection for slicing, sync
//! point enumeration for the schedule search — is an [`Observer`] over this
//! stream. This mirrors the paper's Valgrind-based tracing component
//! without baking any analysis into the interpreter itself.

use crate::failure::Failure;
use crate::memloc::MemLoc;
use crate::value::{ThreadId, Value};
use mcr_lang::{FuncId, LockId, LoopId, Pc};

/// Kinds of synchronization operations (the CHESS scheduling points).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncKind {
    /// Lock acquisition (preemption candidates sit *before* it).
    Acquire(LockId),
    /// Lock release (preemption candidates sit *after* it).
    Release(LockId),
    /// Thread spawn; payload is the child thread.
    Spawn(ThreadId),
    /// Join; payload is the joined thread.
    Join(ThreadId),
    /// A store-buffer drain point (TSO mode): the thread's pending
    /// stores became globally visible here. Emitted by `fence`
    /// unconditionally and by any drain of a non-empty buffer, so the
    /// schedule search can enumerate preemptions *before* the flush —
    /// the only place a store→load reordering is observable.
    Flush,
}

/// One dynamic event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A statement began executing. Every executed instruction produces
    /// exactly one `Stmt` event, before its detail events.
    Stmt {
        /// Executing thread.
        tid: ThreadId,
        /// Statement location.
        pc: Pc,
        /// Instructions charged for this statement (0 for free synthetic
        /// counter updates, 1 otherwise).
        cost: u8,
    },
    /// A branch resolved.
    Branch {
        /// Executing thread.
        tid: ThreadId,
        /// Branch location.
        pc: Pc,
        /// Taken outcome.
        outcome: bool,
    },
    /// A memory read (emitted for every slot an expression touches).
    Read {
        /// Executing thread.
        tid: ThreadId,
        /// Statement performing the read.
        pc: Pc,
        /// Location read.
        loc: MemLoc,
        /// Value observed.
        value: Value,
    },
    /// A memory write.
    Write {
        /// Executing thread.
        tid: ThreadId,
        /// Statement performing the write.
        pc: Pc,
        /// Location written.
        loc: MemLoc,
        /// Value stored.
        value: Value,
    },
    /// A shared store entered the thread's store buffer instead of
    /// memory (TSO mode only). Pairs with a later [`Event::StoreFlushed`]
    /// for the same entry.
    StoreBuffered {
        /// Executing thread.
        tid: ThreadId,
        /// Statement that issued the store.
        pc: Pc,
        /// Location the store targets.
        loc: MemLoc,
        /// Buffered value.
        value: Value,
    },
    /// A buffered store became globally visible (TSO mode only).
    StoreFlushed {
        /// Thread whose buffer drained.
        tid: ThreadId,
        /// Statement that originally issued the store.
        pc: Pc,
        /// Location written.
        loc: MemLoc,
        /// Value committed to memory.
        value: Value,
    },
    /// A function body was entered (call, or thread root at spawn).
    FuncEnter {
        /// Thread whose stack grew.
        tid: ThreadId,
        /// The function.
        func: FuncId,
        /// Unique activation serial of the new frame.
        frame: u64,
    },
    /// A function body was exited.
    FuncExit {
        /// Thread whose stack shrank.
        tid: ThreadId,
        /// The function.
        func: FuncId,
        /// Activation serial of the popped frame.
        frame: u64,
    },
    /// A synchronization operation completed.
    Sync {
        /// Executing thread.
        tid: ThreadId,
        /// Statement location.
        pc: Pc,
        /// Operation kind.
        kind: SyncKind,
        /// Per-thread ordinal of this sync operation (0-based).
        seq: u32,
    },
    /// A new thread exists (its root frame is in place).
    ThreadStart {
        /// The new thread.
        tid: ThreadId,
        /// Its entry function.
        func: FuncId,
    },
    /// A thread finished.
    ThreadEnd {
        /// The finished thread.
        tid: ThreadId,
    },
    /// An `output(..)` value was emitted.
    Output {
        /// Executing thread.
        tid: ThreadId,
        /// The value.
        value: Value,
    },
    /// A loop was entered (its frame counter was reset).
    LoopEnter {
        /// Executing thread.
        tid: ThreadId,
        /// Location of the counter-reset instruction.
        pc: Pc,
        /// The loop.
        loop_id: LoopId,
    },
    /// A loop began an iteration (its frame counter was bumped).
    LoopIter {
        /// Executing thread.
        tid: ThreadId,
        /// Location of the counter-bump instruction.
        pc: Pc,
        /// The loop.
        loop_id: LoopId,
        /// Counter value after the bump (1 on the first iteration).
        count: i64,
    },
    /// The run crashed.
    Crash {
        /// The failure.
        failure: Failure,
    },
}

impl Event {
    /// The thread this event belongs to.
    pub fn tid(&self) -> ThreadId {
        match self {
            Event::Stmt { tid, .. }
            | Event::Branch { tid, .. }
            | Event::Read { tid, .. }
            | Event::Write { tid, .. }
            | Event::StoreBuffered { tid, .. }
            | Event::StoreFlushed { tid, .. }
            | Event::FuncEnter { tid, .. }
            | Event::FuncExit { tid, .. }
            | Event::Sync { tid, .. }
            | Event::ThreadStart { tid, .. }
            | Event::ThreadEnd { tid }
            | Event::Output { tid, .. }
            | Event::LoopEnter { tid, .. }
            | Event::LoopIter { tid, .. } => *tid,
            Event::Crash { failure } => failure.thread,
        }
    }
}

/// A consumer of the VM's event stream.
///
/// All methods are optional; implement only what the analysis needs.
pub trait Observer {
    /// Called for every event, in execution order.
    fn on_event(&mut self, step: u64, event: &Event);
}

/// An observer that ignores everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_event(&mut self, _step: u64, _event: &Event) {}
}

/// Fans one event stream out to two observers.
#[derive(Debug)]
pub struct Tee<'a, A: ?Sized, B: ?Sized> {
    /// First observer.
    pub a: &'a mut A,
    /// Second observer.
    pub b: &'a mut B,
}

impl<A: Observer + ?Sized, B: Observer + ?Sized> Observer for Tee<'_, A, B> {
    fn on_event(&mut self, step: u64, event: &Event) {
        self.a.on_event(step, event);
        self.b.on_event(step, event);
    }
}

/// An observer that records every event (test helper / small traces).
#[derive(Debug, Default)]
pub struct Recorder {
    /// Recorded `(step, event)` pairs.
    pub events: Vec<(u64, Event)>,
}

impl Observer for Recorder {
    fn on_event(&mut self, step: u64, event: &Event) {
        self.events.push((step, event.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_lang::{FuncId, StmtId};

    #[test]
    fn tee_forwards_to_both() {
        let mut r1 = Recorder::default();
        let mut r2 = Recorder::default();
        let ev = Event::ThreadEnd { tid: ThreadId(0) };
        {
            let mut tee = Tee {
                a: &mut r1,
                b: &mut r2,
            };
            tee.on_event(3, &ev);
        }
        assert_eq!(r1.events.len(), 1);
        assert_eq!(r2.events.len(), 1);
    }

    #[test]
    fn event_tid_extraction() {
        let ev = Event::Stmt {
            tid: ThreadId(2),
            pc: Pc::new(FuncId(0), StmtId(0)),
            cost: 1,
        };
        assert_eq!(ev.tid(), ThreadId(2));
    }
}
