//! Schedulers and run drivers.
//!
//! Three scheduling regimes cover the paper's three execution roles:
//!
//! * [`StressScheduler`] — seeded random interleaving at statement
//!   granularity. This plays the role of the *multicore production run*:
//!   uncontrolled true concurrency that occasionally exposes the
//!   Heisenbug and produces the failure core dump.
//! * [`DeterministicScheduler`] — the single-core *passing run*: run the
//!   current thread until it blocks or finishes, then pick the lowest
//!   thread id ("canonical order", as in the paper's case study). No
//!   preemption ever occurs, so the run is a pure function of program and
//!   input.
//! * preemption-injected runs for the schedule search are driven by the
//!   search crate, which uses [`Vm::step`] directly with checkpoints.

use crate::event::Observer;
use crate::failure::Failure;
use crate::rng::SplitMix64;
use crate::value::ThreadId;
use crate::vm::Vm;

/// Picks the next thread to step.
pub trait Scheduler {
    /// Chooses one of `runnable` (guaranteed non-empty, ascending order).
    fn pick(&mut self, vm: &Vm<'_>, runnable: &[ThreadId]) -> ThreadId;
}

/// Non-preemptive single-core scheduler: keep running the current thread
/// while it can run, otherwise switch to the runnable thread with the
/// lowest id.
#[derive(Debug, Default, Clone)]
pub struct DeterministicScheduler {
    current: Option<ThreadId>,
}

impl DeterministicScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for DeterministicScheduler {
    fn pick(&mut self, _vm: &Vm<'_>, runnable: &[ThreadId]) -> ThreadId {
        let pick = match self.current {
            Some(c) if runnable.contains(&c) => c,
            _ => runnable[0],
        };
        self.current = Some(pick);
        pick
    }
}

/// Seeded random scheduler simulating multicore interleaving.
///
/// Threads run in *bursts*: at every statement boundary the current
/// thread continues with probability `1 - switch/100` and is otherwise
/// replaced by a uniformly random runnable thread. Geometric burst
/// lengths are the standard software model of truly parallel cores with
/// scheduling quanta and memory-system jitter; a uniform per-statement
/// choice would make long thread delays (the ones that expose ordering
/// bugs) astronomically unlikely.
#[derive(Debug, Clone)]
pub struct StressScheduler {
    rng: SplitMix64,
    switch_percent: u64,
    current: Option<ThreadId>,
}

impl StressScheduler {
    /// Creates a stress scheduler from a seed with the default 20%
    /// per-statement switch probability; the same seed replays the same
    /// interleaving.
    pub fn new(seed: u64) -> Self {
        Self::with_switch_percent(seed, 20)
    }

    /// Creates a stress scheduler with an explicit switch probability
    /// (in percent, clamped to `1..=100`; zero and out-of-range inputs
    /// are brought into range rather than rejected so stress configs
    /// from untrusted seeds can never disable switching entirely).
    pub fn with_switch_percent(seed: u64, switch_percent: u64) -> Self {
        StressScheduler {
            rng: SplitMix64::new(seed),
            switch_percent: switch_percent.clamp(1, 100),
            current: Option::None,
        }
    }

    /// The effective (clamped) per-statement switch probability.
    pub fn switch_percent(&self) -> u64 {
        self.switch_percent
    }
}

impl Scheduler for StressScheduler {
    fn pick(&mut self, vm: &Vm<'_>, runnable: &[ThreadId]) -> ThreadId {
        if let Some(c) = self.current {
            if runnable.contains(&c) {
                // Flush points (pending store-buffer drains, fences) are
                // where weak-memory reorderings become observable, so a
                // stress run leans into them: double the switch odds right
                // before one. Exactly one rng draw either way keeps the
                // interleaving bit-identical for programs that never reach
                // a flush point (every SC program without fences).
                let switch = if vm.flush_point(c) {
                    (self.switch_percent * 2).min(100)
                } else {
                    self.switch_percent
                };
                if self.rng.next_below(100) >= switch {
                    return c;
                }
            }
        }
        let pick = runnable[self.rng.next_below(runnable.len() as u64) as usize];
        self.current = Some(pick);
        pick
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Every thread finished.
    Completed,
    /// The run crashed.
    Crashed(Failure),
    /// Threads remain but none is runnable (lock or join cycle).
    Deadlock,
    /// The step budget was exhausted.
    StepLimit,
    /// The `stop` predicate fired (state is as of that moment).
    Stopped,
}

impl Outcome {
    /// The failure, if the run crashed.
    pub fn failure(&self) -> Option<Failure> {
        match self {
            Outcome::Crashed(f) => Some(*f),
            _ => None,
        }
    }
}

/// Default step budget for driver loops.
pub const DEFAULT_MAX_STEPS: u64 = 50_000_000;

/// Runs the VM under `sched` until completion, crash, deadlock, or the
/// step budget is exhausted.
pub fn run(
    vm: &mut Vm<'_>,
    sched: &mut dyn Scheduler,
    obs: &mut dyn Observer,
    max_steps: u64,
) -> Outcome {
    run_until(vm, sched, obs, max_steps, |_| false)
}

/// Like [`run`], but additionally stops (returning [`Outcome::Stopped`])
/// as soon as `stop` returns true between steps. `stop` is evaluated
/// before each step, so `|vm| vm.steps() > n` stops with exactly `n + 1`
/// steps executed.
pub fn run_until(
    vm: &mut Vm<'_>,
    sched: &mut dyn Scheduler,
    obs: &mut dyn Observer,
    max_steps: u64,
    mut stop: impl FnMut(&Vm<'_>) -> bool,
) -> Outcome {
    // One scratch buffer for the whole run; the step loop never allocates.
    let mut runnable: Vec<ThreadId> = Vec::new();
    loop {
        if let Some(f) = vm.failure() {
            return Outcome::Crashed(f);
        }
        if stop(vm) {
            return Outcome::Stopped;
        }
        if vm.steps() >= max_steps {
            return Outcome::StepLimit;
        }
        vm.runnable_into(&mut runnable);
        if runnable.is_empty() {
            return if vm.all_done() {
                Outcome::Completed
            } else {
                Outcome::Deadlock
            };
        }
        let t = sched.pick(vm, &runnable);
        debug_assert!(runnable.contains(&t), "scheduler picked unrunnable thread");
        vm.step(t, obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{NullObserver, Recorder};
    use crate::value::Value;
    use crate::vm::GSlot;

    const RACY: &str = r#"
        global x: int;
        fn t1() { x = x + 1; x = x + 1; x = x + 1; x = x + 1; x = x + 1; }
        fn t2() { x = 0; x = 0; x = 0; }
        fn main() { var a; var b; a = spawn t1(); b = spawn t2(); join a; join b; }
    "#;

    #[test]
    fn deterministic_runs_are_identical() {
        let p = mcr_lang::compile(RACY).unwrap();
        let mut outs = Vec::new();
        for _ in 0..3 {
            let mut vm = Vm::new(&p, &[]);
            let mut s = DeterministicScheduler::new();
            let out = run(&mut vm, &mut s, &mut NullObserver, 1_000_000);
            assert_eq!(out, Outcome::Completed);
            let g = p.global_by_name("x").unwrap();
            outs.push(vm.globals()[g.0 as usize].clone());
        }
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[1], outs[2]);
    }

    #[test]
    fn deterministic_trace_is_stable() {
        let p = mcr_lang::compile(RACY).unwrap();
        let trace = |_: ()| {
            let mut vm = Vm::new(&p, &[]);
            let mut s = DeterministicScheduler::new();
            let mut rec = Recorder::default();
            run(&mut vm, &mut s, &mut rec, 1_000_000);
            rec.events
        };
        assert_eq!(trace(()), trace(()));
    }

    #[test]
    fn stress_same_seed_same_result() {
        let p = mcr_lang::compile(RACY).unwrap();
        let result = |seed: u64| {
            let mut vm = Vm::new(&p, &[]);
            let mut s = StressScheduler::new(seed);
            run(&mut vm, &mut s, &mut NullObserver, 1_000_000);
            let g = p.global_by_name("x").unwrap();
            vm.globals()[g.0 as usize].clone()
        };
        assert_eq!(result(7), result(7));
    }

    #[test]
    fn stress_explores_different_interleavings() {
        let p = mcr_lang::compile(RACY).unwrap();
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..40 {
            let mut vm = Vm::new(&p, &[]);
            let mut s = StressScheduler::new(seed);
            run(&mut vm, &mut s, &mut NullObserver, 1_000_000);
            let g = p.global_by_name("x").unwrap();
            if let GSlot::Scalar(Value::Int(v)) = vm.globals()[g.0 as usize] {
                distinct.insert(v);
            }
        }
        // Racy increments/resets must yield more than one final value
        // across 40 random interleavings.
        assert!(distinct.len() > 1, "only saw {distinct:?}");
    }

    #[test]
    fn switch_percent_inputs_are_clamped() {
        assert_eq!(
            StressScheduler::with_switch_percent(1, 0).switch_percent(),
            1
        );
        assert_eq!(
            StressScheduler::with_switch_percent(1, 55).switch_percent(),
            55
        );
        assert_eq!(
            StressScheduler::with_switch_percent(1, 100).switch_percent(),
            100
        );
        assert_eq!(
            StressScheduler::with_switch_percent(1, 10_000).switch_percent(),
            100
        );
    }

    #[test]
    fn flush_points_do_not_perturb_sc_interleavings() {
        // A fence-free SC program never reaches a flush point, so the
        // flush-aware pick must replay the exact interleaving the
        // historical scheduler produced (same rng draw sequence).
        let p = mcr_lang::compile(RACY).unwrap();
        for seed in [1u64, 7, 42, 1337] {
            let trace = |_: ()| {
                let mut vm = Vm::new(&p, &[]);
                let mut s = StressScheduler::new(seed);
                let mut rec = Recorder::default();
                run(&mut vm, &mut s, &mut rec, 1_000_000);
                rec.events
            };
            assert_eq!(trace(()), trace(()));
        }
    }

    #[test]
    fn deadlock_detection() {
        let src = r#"
            lock a; lock b;
            fn t1() { acquire a; acquire b; release b; release a; }
            fn main() { acquire b; spawn t1(); acquire a; release a; release b; }
        "#;
        let p = mcr_lang::compile(src).unwrap();
        // Force the interleaving: main holds b, t1 holds a, both wait.
        let mut vm = Vm::new(&p, &[]);
        let mut obs = NullObserver;
        let main = ThreadId(0);
        vm.step(main, &mut obs); // acquire b
        vm.step(main, &mut obs); // spawn t1
        let t1 = ThreadId(1);
        vm.step(t1, &mut obs); // acquire a
        assert!(!vm.runnable(t1), "t1 waits for b");
        assert!(!vm.runnable(main), "main waits for a");
        let mut s = DeterministicScheduler::new();
        let out = run(&mut vm, &mut s, &mut obs, 1000);
        assert_eq!(out, Outcome::Deadlock);
    }

    #[test]
    fn step_limit() {
        let p = mcr_lang::compile("global x: int; fn main() { while (1) { x = x + 1; } }").unwrap();
        let mut vm = Vm::new(&p, &[]);
        let mut s = DeterministicScheduler::new();
        let out = run(&mut vm, &mut s, &mut NullObserver, 500);
        assert_eq!(out, Outcome::StepLimit);
    }

    #[test]
    fn run_until_stops_at_predicate() {
        let p = mcr_lang::compile("global x: int; fn main() { x = 1; x = 2; x = 3; }").unwrap();
        let mut vm = Vm::new(&p, &[]);
        let mut s = DeterministicScheduler::new();
        let out = run_until(&mut vm, &mut s, &mut NullObserver, 1000, |vm| {
            vm.steps() >= 2
        });
        assert_eq!(out, Outcome::Stopped);
        assert_eq!(vm.steps(), 2);
    }

    #[test]
    fn crash_outcome_reports_failure() {
        let p = mcr_lang::compile("fn main() { var p; p = null; p[0] = 1; }").unwrap();
        let mut vm = Vm::new(&p, &[]);
        let mut s = DeterministicScheduler::new();
        let out = run(&mut vm, &mut s, &mut NullObserver, 1000);
        assert!(matches!(out, Outcome::Crashed(_)));
        assert_eq!(
            out.failure().unwrap().kind.to_string(),
            "null pointer dereference"
        );
    }
}
