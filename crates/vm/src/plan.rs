//! Direct-threaded dispatch plans: decode-once compilation of a
//! [`Program`] into a flat table of pre-decoded ops.
//!
//! The legacy interpreter re-decodes every statement on every step — a
//! `match` over [`Inst`] followed by a recursive walk of boxed [`Expr`]
//! trees. With ~70 ns checkpoints and an 18M steps/s core, that decode
//! is the dominant cost of every search try. A [`DispatchPlan`] hoists
//! it out of the hot loop: at session start each statement is compiled
//! once into a small, `Copy` `Op` whose operands are pre-resolved
//! indices (`ops[func_base[f] + stmt]`), and the interpreter's hot
//! arms read their pre-decoded operands from that table instead of
//! walking the `Expr` tree. Hot expression shapes are *fused* into
//! superinstructions — `local < k` inside a branch becomes one
//! load+compare+branch op, `x = x + 1` one read-modify-write op — and
//! every other scalar expression is pre-flattened into a postfix token
//! run (`Rhs::Expr`) evaluated on a small value stack, so the common
//! statement executes without touching the IR at all.
//!
//! Two invariants bound the design:
//!
//! * **Bit-identical runs.** A plan changes how a statement is decoded,
//!   never what it does: the observable event stream (reads, writes,
//!   branches, sync), failure kinds, step and instruction counts are
//!   exactly those of the legacy loop. Fusion therefore never crosses a
//!   statement boundary — statements are the observable scheduling
//!   unit — and anything without an exact fast path compiles to
//!   `Op::Slow`, which falls back to the legacy decoder.
//! * **Fleet sharing.** Plans serialize ([`DispatchPlan::to_bytes`])
//!   deterministically, so `mcr-core` can cache them in the artifact
//!   store and a fleet of near-duplicate jobs compiles each distinct
//!   program once (the ShareJIT idiom: share compiled code across
//!   processes through a common cache). Sharing is function-granular:
//!   a plan is compiled per function ([`FunctionPlan`], serialized
//!   independently and keyed by the function's own fingerprint) and
//!   [`DispatchPlan::assemble`] concatenates the units into the flat
//!   table — bit-identical to compiling the whole program at once, so a
//!   one-function edit recompiles exactly one unit while every other
//!   unit rehydrates from cache.

use crate::value::Value;
use mcr_lang::{
    BinOp, Expr, FuncId, GlobalId, Inst, LocalId, LockId, LoopId, Place, Program, StmtId, UnOp,
};

/// Value-stack capacity of the postfix expression evaluator. Expressions
/// deeper than this (never seen in practice — depth grows with
/// right-leaning nesting only) compile to `Op::Slow`.
pub(crate) const EXPR_STACK: usize = 16;

/// Number of [`Inst`] kinds the opcode layout was compiled against.
/// Serialized plans embed this as a layout-version byte: a plan written
/// by a build with a different instruction set never rehydrates.
const OPCODE_LAYOUT: u8 = 16;

/// Plan wire magic + version.
const MAGIC: &[u8; 4] = b"MCRD";
const VERSION: u8 = 1;

/// Per-function plan-unit wire magic (same version byte as the whole
/// plan — the formats evolve together).
const UNIT_MAGIC: &[u8; 4] = b"MCRU";

/// A pre-decoded assignable location (the cheap subset of [`Place`]
/// that resolves without evaluation, events, or failure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FastPlace {
    /// A local slot of the current frame.
    Local(LocalId),
    /// A scalar global.
    Global(GlobalId),
}

/// A pre-decoded right-hand side: the flattened expression shapes the
/// compiler recognizes. `LocalBin`/`GlobalBin` are the fused
/// superinstruction operands (one load + one binary op against an
/// immediate, the paper workloads' hottest expression shape); `Expr`
/// points at a pre-flattened postfix token run in the plan's side table
/// for every other scalar expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Rhs {
    /// An immediate (integer literal or `null`).
    Const(Value),
    /// A local read.
    Local(LocalId),
    /// A scalar-global read.
    Global(GlobalId),
    /// Fused `local <op> k`.
    LocalBin(LocalId, BinOp, i64),
    /// Fused `global <op> k`.
    GlobalBin(GlobalId, BinOp, i64),
    /// A pre-flattened postfix expression ([`DispatchPlan::expr`]).
    Expr(u32),
}

/// One token of a pre-flattened postfix expression. Evaluation runs the
/// tokens left to right over a small value stack — exactly the order
/// (and therefore exactly the read-event stream and first-failure
/// behavior) of the legacy recursive evaluator, which is eager and
/// left-to-right for every operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Tok {
    /// Push an immediate.
    Const(Value),
    /// Push a local (emits the read).
    Local(LocalId),
    /// Push a scalar global (emits the read).
    Global(GlobalId),
    /// Apply a unary operator to the top of stack.
    Un(UnOp),
    /// Apply a binary operator to the top two values.
    Bin(BinOp),
}

/// One pre-decoded op. `Copy`, so the step loop lifts it out of the
/// table by value and dispatches without borrowing the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    /// `dst = src` over pre-resolved operands (includes the fused
    /// read-modify-write superinstruction when `src` is `*Bin`).
    Assign {
        /// Pre-resolved destination.
        dst: FastPlace,
        /// Pre-decoded source.
        src: Rhs,
    },
    /// Conditional branch over a pre-decoded condition (includes the
    /// fused load+compare+branch superinstruction).
    Branch {
        /// Pre-decoded condition.
        cond: Rhs,
        /// Target when true.
        then_to: StmtId,
        /// Target when false.
        else_to: StmtId,
    },
    /// Unconditional jump.
    Jump {
        /// Target statement.
        to: StmtId,
    },
    /// Lock acquire (operand pre-resolved; blocking is the scheduler's
    /// concern, exactly as in the legacy loop).
    Acquire {
        /// The lock.
        lock: LockId,
    },
    /// Lock release.
    Release {
        /// The lock.
        lock: LockId,
    },
    /// Synthetic loop-counter reset.
    LoopEnter {
        /// The loop.
        loop_id: LoopId,
    },
    /// Synthetic loop-counter increment.
    LoopIter {
        /// The loop.
        loop_id: LoopId,
    },
    /// No operation.
    Nop,
    /// No fast path: dispatch through the legacy `Inst` decoder.
    Slow,
}

/// Aggregate shape of a compiled plan, for benchmarks and reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanStats {
    /// Total ops in the table (one per statement).
    pub ops: usize,
    /// Ops carrying a fused superinstruction operand.
    pub fused: usize,
    /// Ops that fall back to the legacy decoder.
    pub slow: usize,
}

/// A compiled dispatch plan for one [`Program`]: a flat table of
/// pre-decoded `Op`s, indexed by `func_base[func] + stmt`.
///
/// Build one with [`DispatchPlan::compile`] and attach it to a VM with
/// [`Vm::set_plan`](crate::Vm::set_plan); the plan is immutable and is
/// shared between checkpoints (and across sessions) behind an `Arc`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchPlan {
    /// Flat op table, all functions concatenated.
    ops: Vec<Op>,
    /// Start offset of each function's ops; `funcs.len() + 1` entries
    /// (the last is the total op count).
    func_base: Vec<u32>,
    /// Postfix token runs referenced by `Rhs::Expr`.
    exprs: Vec<Box<[Tok]>>,
}

impl DispatchPlan {
    /// Compiles `program` into a dispatch plan. Infallible: statements
    /// without a fast path compile to `Op::Slow`.
    ///
    /// Implemented as [`DispatchPlan::assemble`] over one
    /// [`FunctionPlan::compile`] per function, so a whole-program
    /// compile and an assembly of independently cached units are
    /// byte-identical *by construction*, not by test alone.
    pub fn compile(program: &Program) -> DispatchPlan {
        let units: Vec<FunctionPlan> = program.funcs.iter().map(FunctionPlan::compile).collect();
        DispatchPlan::assemble(&units)
    }

    /// Concatenates per-function plan units into the flat dispatch
    /// table, rebasing each unit's function-local expression indices
    /// onto the shared postfix table.
    ///
    /// Assembling the units of [`FunctionPlan::compile`] in function
    /// order reproduces [`DispatchPlan::compile`] exactly — same ops,
    /// same expression table, same [`DispatchPlan::to_bytes`] bytes —
    /// because whole-program compilation appends expressions strictly
    /// in function order too.
    pub fn assemble(units: &[FunctionPlan]) -> DispatchPlan {
        let mut ops = Vec::with_capacity(units.iter().map(|u| u.ops.len()).sum());
        let mut func_base = Vec::with_capacity(units.len() + 1);
        let mut exprs = Vec::with_capacity(units.iter().map(|u| u.exprs.len()).sum());
        for unit in units {
            func_base.push(ops.len() as u32);
            let base = exprs.len() as u32;
            ops.extend(unit.ops.iter().map(|&op| rebase_op(op, base)));
            exprs.extend(unit.exprs.iter().cloned());
        }
        func_base.push(ops.len() as u32);
        DispatchPlan {
            ops,
            func_base,
            exprs,
        }
    }

    /// The pre-decoded op at `(func, stmt)`; out-of-range lookups are
    /// `Op::Slow` (defensive — a matching plan never goes out of
    /// range).
    #[inline]
    pub(crate) fn op(&self, func: FuncId, stmt: StmtId) -> Op {
        let f = func.0 as usize;
        let Some(&base) = self.func_base.get(f) else {
            return Op::Slow;
        };
        let end = self.func_base[f + 1];
        let i = base as usize + stmt.0 as usize;
        if i < end as usize {
            self.ops[i]
        } else {
            Op::Slow
        }
    }

    /// The postfix token run behind an `Rhs::Expr` operand.
    #[inline]
    pub(crate) fn expr(&self, idx: u32) -> &[Tok] {
        &self.exprs[idx as usize]
    }

    /// Whether this plan's shape matches `program`: same function count
    /// and per-function statement counts. A rehydrated plan is only
    /// attached when this holds (the store key — the program
    /// fingerprint — already guarantees it short of hash collisions).
    pub fn matches(&self, program: &Program) -> bool {
        self.func_base.len() == program.funcs.len() + 1
            && program
                .funcs
                .iter()
                .enumerate()
                .all(|(i, f)| (self.func_base[i + 1] - self.func_base[i]) as usize == f.body.len())
    }

    /// Table shape summary (superinstruction and fallback counts).
    pub fn stats(&self) -> PlanStats {
        let mut stats = PlanStats {
            ops: self.ops.len(),
            ..PlanStats::default()
        };
        for op in &self.ops {
            match op {
                Op::Slow => stats.slow += 1,
                Op::Assign {
                    src: Rhs::LocalBin(..) | Rhs::GlobalBin(..),
                    ..
                }
                | Op::Branch {
                    cond: Rhs::LocalBin(..) | Rhs::GlobalBin(..),
                    ..
                } => stats.fused += 1,
                _ => {}
            }
        }
        stats
    }

    /// Serializes the plan. The encoding is deterministic — the same
    /// program always yields byte-identical plans, which is what lets a
    /// warm artifact store serve them content-addressed.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Vec::with_capacity(16 + self.ops.len() * 8);
        w.extend_from_slice(MAGIC);
        w.push(VERSION);
        w.push(OPCODE_LAYOUT);
        put_u32(&mut w, (self.func_base.len() - 1) as u32);
        for i in 0..self.func_base.len() - 1 {
            put_u32(&mut w, self.func_base[i + 1] - self.func_base[i]);
        }
        put_u32(&mut w, self.exprs.len() as u32);
        for toks in &self.exprs {
            put_u32(&mut w, toks.len() as u32);
            for tok in toks {
                put_tok(&mut w, *tok);
            }
        }
        for op in &self.ops {
            put_op(&mut w, op);
        }
        w
    }

    /// Deserializes a plan. Returns `None` for malformed bytes or a
    /// different wire / opcode-layout version — callers treat that as a
    /// cache miss and recompile.
    pub fn from_bytes(bytes: &[u8]) -> Option<DispatchPlan> {
        let mut r = R { b: bytes, pos: 0 };
        if r.take(4)? != MAGIC.as_slice() || r.u8()? != VERSION || r.u8()? != OPCODE_LAYOUT {
            return None;
        }
        let nfuncs = r.u32()? as usize;
        let mut func_base = Vec::with_capacity(nfuncs + 1);
        let mut total = 0u32;
        func_base.push(0);
        for _ in 0..nfuncs {
            total = total.checked_add(r.u32()?)?;
            func_base.push(total);
        }
        let nexprs = r.u32()? as usize;
        let mut exprs = Vec::with_capacity(nexprs.min(1024));
        for _ in 0..nexprs {
            let len = r.u32()? as usize;
            let mut toks = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                toks.push(get_tok(&mut r)?);
            }
            // Reject token runs the stack evaluator cannot execute
            // (corrupt bytes must never reach the hot loop).
            if !tokens_are_well_formed(&toks) {
                return None;
            }
            exprs.push(toks.into_boxed_slice());
        }
        let mut ops = Vec::with_capacity(total as usize);
        for _ in 0..total {
            let op = get_op(&mut r)?;
            if expr_ref_of(&op).is_some_and(|idx| idx as usize >= exprs.len()) {
                return None;
            }
            ops.push(op);
        }
        if r.pos != bytes.len() {
            return None;
        }
        Some(DispatchPlan {
            ops,
            func_base,
            exprs,
        })
    }
}

/// One function's compiled plan unit: its pre-decoded ops plus its own
/// (function-local) postfix expression table.
///
/// Units are the granularity at which compiled code is cached and
/// shared: each serializes independently ([`FunctionPlan::to_bytes`]),
/// so `mcr-core` stores one artifact per function keyed by the
/// function's fingerprint, and [`DispatchPlan::assemble`] concatenates
/// rehydrated units back into the flat table a VM executes. Expression
/// indices inside a unit are 0-based; assembly rebases them onto the
/// shared table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionPlan {
    /// Pre-decoded ops, one per statement of the function body.
    ops: Vec<Op>,
    /// Function-local postfix token runs referenced by `Rhs::Expr`.
    exprs: Vec<Box<[Tok]>>,
}

impl FunctionPlan {
    /// Compiles one function into a plan unit. Infallible: statements
    /// without a fast path compile to `Op::Slow`.
    pub fn compile(func: &mcr_lang::Function) -> FunctionPlan {
        let mut exprs = Vec::new();
        let ops = func
            .body
            .iter()
            .map(|inst| compile_inst(inst, &mut exprs))
            .collect();
        FunctionPlan { ops, exprs }
    }

    /// Whether this unit's shape matches `func` (same statement count).
    /// A rehydrated unit is only assembled when this holds.
    pub fn matches(&self, func: &mcr_lang::Function) -> bool {
        self.ops.len() == func.body.len()
    }

    /// Number of ops (statements) in the unit.
    pub fn ops_len(&self) -> usize {
        self.ops.len()
    }

    /// Serializes the unit. Deterministic, like
    /// [`DispatchPlan::to_bytes`]: the same function always yields
    /// byte-identical units, which is what makes them content-shareable
    /// across programs.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Vec::with_capacity(16 + self.ops.len() * 8);
        w.extend_from_slice(UNIT_MAGIC);
        w.push(VERSION);
        w.push(OPCODE_LAYOUT);
        put_u32(&mut w, self.ops.len() as u32);
        put_u32(&mut w, self.exprs.len() as u32);
        for toks in &self.exprs {
            put_u32(&mut w, toks.len() as u32);
            for tok in toks {
                put_tok(&mut w, *tok);
            }
        }
        for op in &self.ops {
            put_op(&mut w, op);
        }
        w
    }

    /// Deserializes a unit. Returns `None` for malformed bytes or a
    /// different wire / opcode-layout version — callers treat that as a
    /// cache miss and recompile the function.
    pub fn from_bytes(bytes: &[u8]) -> Option<FunctionPlan> {
        let mut r = R { b: bytes, pos: 0 };
        if r.take(4)? != UNIT_MAGIC.as_slice() || r.u8()? != VERSION || r.u8()? != OPCODE_LAYOUT {
            return None;
        }
        let nops = r.u32()? as usize;
        let nexprs = r.u32()? as usize;
        let mut exprs = Vec::with_capacity(nexprs.min(1024));
        for _ in 0..nexprs {
            let len = r.u32()? as usize;
            let mut toks = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                toks.push(get_tok(&mut r)?);
            }
            if !tokens_are_well_formed(&toks) {
                return None;
            }
            exprs.push(toks.into_boxed_slice());
        }
        let mut ops = Vec::with_capacity(nops.min(65536));
        for _ in 0..nops {
            let op = get_op(&mut r)?;
            if expr_ref_of(&op).is_some_and(|idx| idx as usize >= exprs.len()) {
                return None;
            }
            ops.push(op);
        }
        if r.pos != bytes.len() {
            return None;
        }
        Some(FunctionPlan { ops, exprs })
    }
}

/// Rebases an op's function-local expression index onto the assembled
/// plan's shared table.
fn rebase_op(op: Op, base: u32) -> Op {
    match op {
        Op::Assign {
            dst,
            src: Rhs::Expr(idx),
        } => Op::Assign {
            dst,
            src: Rhs::Expr(base + idx),
        },
        Op::Branch {
            cond: Rhs::Expr(idx),
            then_to,
            else_to,
        } => Op::Branch {
            cond: Rhs::Expr(base + idx),
            then_to,
            else_to,
        },
        other => other,
    }
}

/// The expression-table index an op references, if any (decode-time
/// bounds validation).
fn expr_ref_of(op: &Op) -> Option<u32> {
    match op {
        Op::Assign {
            src: Rhs::Expr(idx),
            ..
        }
        | Op::Branch {
            cond: Rhs::Expr(idx),
            ..
        } => Some(*idx),
        _ => None,
    }
}

/// Simulates a token run's stack discipline: no underflow, depth within
/// [`EXPR_STACK`], exactly one result.
fn tokens_are_well_formed(toks: &[Tok]) -> bool {
    let mut sp = 0usize;
    for tok in toks {
        match tok {
            Tok::Const(_) | Tok::Local(_) | Tok::Global(_) => {
                if sp == EXPR_STACK {
                    return false;
                }
                sp += 1;
            }
            Tok::Un(_) => {
                if sp == 0 {
                    return false;
                }
            }
            Tok::Bin(_) => {
                if sp < 2 {
                    return false;
                }
                sp -= 1;
            }
        }
    }
    sp == 1
}

/// Flattens a scalar expression into postfix tokens, returning the peak
/// stack depth; `None` for shapes with their own events or failure
/// modes (array/heap loads), which stay on the legacy path.
fn flatten_expr(e: &Expr, toks: &mut Vec<Tok>) -> Option<usize> {
    Some(match e {
        Expr::Const(v) => {
            toks.push(Tok::Const(Value::Int(*v)));
            1
        }
        Expr::Null => {
            toks.push(Tok::Const(Value::NULL));
            1
        }
        Expr::Local(l) => {
            toks.push(Tok::Local(*l));
            1
        }
        Expr::Global(g) => {
            toks.push(Tok::Global(*g));
            1
        }
        Expr::Unary(op, a) => {
            let d = flatten_expr(a, toks)?;
            toks.push(Tok::Un(*op));
            d
        }
        Expr::Binary(op, a, b) => {
            let da = flatten_expr(a, toks)?;
            let db = flatten_expr(b, toks)?;
            toks.push(Tok::Bin(*op));
            da.max(1 + db)
        }
        _ => return None,
    })
}

fn compile_rhs(e: &Expr, exprs: &mut Vec<Box<[Tok]>>) -> Option<Rhs> {
    match e {
        Expr::Const(v) => Some(Rhs::Const(Value::Int(*v))),
        Expr::Null => Some(Rhs::Const(Value::NULL)),
        Expr::Local(l) => Some(Rhs::Local(*l)),
        Expr::Global(g) => Some(Rhs::Global(*g)),
        Expr::Binary(op, a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Local(l), Expr::Const(k)) => Some(Rhs::LocalBin(*l, *op, *k)),
            (Expr::Global(g), Expr::Const(k)) => Some(Rhs::GlobalBin(*g, *op, *k)),
            _ => compile_expr(e, exprs),
        },
        _ => compile_expr(e, exprs),
    }
}

/// Flattens a compound scalar expression into the plan's postfix table.
fn compile_expr(e: &Expr, exprs: &mut Vec<Box<[Tok]>>) -> Option<Rhs> {
    let mut toks = Vec::new();
    let depth = flatten_expr(e, &mut toks)?;
    if depth > EXPR_STACK {
        return None;
    }
    exprs.push(toks.into_boxed_slice());
    Some(Rhs::Expr((exprs.len() - 1) as u32))
}

fn compile_inst(inst: &Inst, exprs: &mut Vec<Box<[Tok]>>) -> Op {
    match inst {
        Inst::Assign { dst, src } => {
            let dst = match dst {
                Place::Local(l) => FastPlace::Local(*l),
                Place::Global(g) => FastPlace::Global(*g),
                _ => return Op::Slow,
            };
            match compile_rhs(src, exprs) {
                Some(src) => Op::Assign { dst, src },
                None => Op::Slow,
            }
        }
        Inst::Branch {
            cond,
            then_to,
            else_to,
            ..
        } => match compile_rhs(cond, exprs) {
            Some(cond) => Op::Branch {
                cond,
                then_to: *then_to,
                else_to: *else_to,
            },
            None => Op::Slow,
        },
        Inst::Jump { to } => Op::Jump { to: *to },
        Inst::Acquire { lock } => Op::Acquire { lock: *lock },
        Inst::Release { lock } => Op::Release { lock: *lock },
        Inst::LoopEnter { loop_id } => Op::LoopEnter { loop_id: *loop_id },
        Inst::LoopIter { loop_id } => Op::LoopIter { loop_id: *loop_id },
        Inst::Nop => Op::Nop,
        // Call/Return/Spawn/Join/Alloc/Assert/Output/Fence mutate frames,
        // evaluate arbitrary expressions, or interact with the memory
        // model; they stay on the legacy path.
        _ => Op::Slow,
    }
}

// ---- wire helpers (LE, no deps) ------------------------------------

fn put_u32(w: &mut Vec<u8>, v: u32) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(w: &mut Vec<u8>, v: i64) {
    w.extend_from_slice(&v.to_le_bytes());
}

struct R<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> R<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.b.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Mod => 4,
        BinOp::Eq => 5,
        BinOp::Ne => 6,
        BinOp::Lt => 7,
        BinOp::Le => 8,
        BinOp::Gt => 9,
        BinOp::Ge => 10,
        BinOp::And => 11,
        BinOp::Or => 12,
    }
}

fn binop_from(tag: u8) -> Option<BinOp> {
    Some(match tag {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Mod,
        5 => BinOp::Eq,
        6 => BinOp::Ne,
        7 => BinOp::Lt,
        8 => BinOp::Le,
        9 => BinOp::Gt,
        10 => BinOp::Ge,
        11 => BinOp::And,
        12 => BinOp::Or,
        _ => return None,
    })
}

fn put_value(w: &mut Vec<u8>, v: Value) {
    match v {
        Value::Int(i) => {
            w.push(0);
            put_i64(w, i);
        }
        Value::Ptr(None) => w.push(1),
        // The compiler only emits Int / null immediates; other pointer
        // constants cannot appear in source.
        Value::Ptr(Some(_)) => unreachable!("no non-null pointer literals"),
    }
}

fn get_value(r: &mut R<'_>) -> Option<Value> {
    match r.u8()? {
        0 => Some(Value::Int(r.i64()?)),
        1 => Some(Value::NULL),
        _ => None,
    }
}

fn put_place(w: &mut Vec<u8>, p: FastPlace) {
    match p {
        FastPlace::Local(l) => {
            w.push(0);
            put_u32(w, l.0);
        }
        FastPlace::Global(g) => {
            w.push(1);
            put_u32(w, g.0);
        }
    }
}

fn get_place(r: &mut R<'_>) -> Option<FastPlace> {
    match r.u8()? {
        0 => Some(FastPlace::Local(LocalId(r.u32()?))),
        1 => Some(FastPlace::Global(GlobalId(r.u32()?))),
        _ => None,
    }
}

fn put_rhs(w: &mut Vec<u8>, rhs: Rhs) {
    match rhs {
        Rhs::Const(v) => {
            w.push(0);
            put_value(w, v);
        }
        Rhs::Local(l) => {
            w.push(1);
            put_u32(w, l.0);
        }
        Rhs::Global(g) => {
            w.push(2);
            put_u32(w, g.0);
        }
        Rhs::LocalBin(l, op, k) => {
            w.push(3);
            put_u32(w, l.0);
            w.push(binop_tag(op));
            put_i64(w, k);
        }
        Rhs::GlobalBin(g, op, k) => {
            w.push(4);
            put_u32(w, g.0);
            w.push(binop_tag(op));
            put_i64(w, k);
        }
        Rhs::Expr(idx) => {
            w.push(5);
            put_u32(w, idx);
        }
    }
}

fn unop_tag(op: UnOp) -> u8 {
    match op {
        UnOp::Not => 0,
        UnOp::Neg => 1,
    }
}

fn unop_from(tag: u8) -> Option<UnOp> {
    Some(match tag {
        0 => UnOp::Not,
        1 => UnOp::Neg,
        _ => return None,
    })
}

fn put_tok(w: &mut Vec<u8>, tok: Tok) {
    match tok {
        Tok::Const(v) => {
            w.push(0);
            put_value(w, v);
        }
        Tok::Local(l) => {
            w.push(1);
            put_u32(w, l.0);
        }
        Tok::Global(g) => {
            w.push(2);
            put_u32(w, g.0);
        }
        Tok::Un(op) => {
            w.push(3);
            w.push(unop_tag(op));
        }
        Tok::Bin(op) => {
            w.push(4);
            w.push(binop_tag(op));
        }
    }
}

fn get_tok(r: &mut R<'_>) -> Option<Tok> {
    Some(match r.u8()? {
        0 => Tok::Const(get_value(r)?),
        1 => Tok::Local(LocalId(r.u32()?)),
        2 => Tok::Global(GlobalId(r.u32()?)),
        3 => Tok::Un(unop_from(r.u8()?)?),
        4 => Tok::Bin(binop_from(r.u8()?)?),
        _ => return None,
    })
}

fn get_rhs(r: &mut R<'_>) -> Option<Rhs> {
    match r.u8()? {
        0 => Some(Rhs::Const(get_value(r)?)),
        1 => Some(Rhs::Local(LocalId(r.u32()?))),
        2 => Some(Rhs::Global(GlobalId(r.u32()?))),
        3 => Some(Rhs::LocalBin(
            LocalId(r.u32()?),
            binop_from(r.u8()?)?,
            r.i64()?,
        )),
        4 => Some(Rhs::GlobalBin(
            GlobalId(r.u32()?),
            binop_from(r.u8()?)?,
            r.i64()?,
        )),
        5 => Some(Rhs::Expr(r.u32()?)),
        _ => None,
    }
}

fn put_op(w: &mut Vec<u8>, op: &Op) {
    match *op {
        Op::Slow => w.push(0),
        Op::Nop => w.push(1),
        Op::Jump { to } => {
            w.push(2);
            put_u32(w, to.0);
        }
        Op::Acquire { lock } => {
            w.push(3);
            put_u32(w, lock.0);
        }
        Op::Release { lock } => {
            w.push(4);
            put_u32(w, lock.0);
        }
        Op::LoopEnter { loop_id } => {
            w.push(5);
            put_u32(w, loop_id.0);
        }
        Op::LoopIter { loop_id } => {
            w.push(6);
            put_u32(w, loop_id.0);
        }
        Op::Assign { dst, src } => {
            w.push(7);
            put_place(w, dst);
            put_rhs(w, src);
        }
        Op::Branch {
            cond,
            then_to,
            else_to,
        } => {
            w.push(8);
            put_rhs(w, cond);
            put_u32(w, then_to.0);
            put_u32(w, else_to.0);
        }
    }
}

fn get_op(r: &mut R<'_>) -> Option<Op> {
    Some(match r.u8()? {
        0 => Op::Slow,
        1 => Op::Nop,
        2 => Op::Jump {
            to: StmtId(r.u32()?),
        },
        3 => Op::Acquire {
            lock: LockId(r.u32()?),
        },
        4 => Op::Release {
            lock: LockId(r.u32()?),
        },
        5 => Op::LoopEnter {
            loop_id: LoopId(r.u32()?),
        },
        6 => Op::LoopIter {
            loop_id: LoopId(r.u32()?),
        },
        7 => Op::Assign {
            dst: get_place(r)?,
            src: get_rhs(r)?,
        },
        8 => Op::Branch {
            cond: get_rhs(r)?,
            then_to: StmtId(r.u32()?),
            else_to: StmtId(r.u32()?),
        },
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOT: &str = r#"
        global x: int;
        global a: [int; 4];
        lock l;
        fn work(n) {
            var i;
            while (i < n) {
                i = i + 1;
                acquire l;
                x = x + 1;
                release l;
                a[i % 4] = i;
            }
        }
        fn main() {
            var t;
            t = spawn work(5);
            work(3);
            join t;
        }
    "#;

    #[test]
    fn compile_covers_hot_shapes() {
        let p = mcr_lang::compile(HOT).unwrap();
        let plan = DispatchPlan::compile(&p);
        let stats = plan.stats();
        assert_eq!(
            stats.ops,
            p.funcs.iter().map(|f| f.body.len()).sum::<usize>()
        );
        assert!(stats.fused > 0, "while header + x = x + 1 must fuse");
        assert!(stats.slow < stats.ops, "fast paths must dominate");
        assert!(plan.matches(&p));
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let p = mcr_lang::compile(HOT).unwrap();
        let plan = DispatchPlan::compile(&p);
        let bytes = plan.to_bytes();
        assert_eq!(bytes, plan.to_bytes(), "serialization is deterministic");
        let back = DispatchPlan::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(back, plan);
        assert_eq!(back.to_bytes(), bytes);
        assert!(back.matches(&p));
    }

    #[test]
    fn malformed_bytes_are_rejected() {
        let p = mcr_lang::compile(HOT).unwrap();
        let bytes = DispatchPlan::compile(&p).to_bytes();
        assert!(DispatchPlan::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        let mut wrong_layout = bytes.clone();
        wrong_layout[5] ^= 1; // opcode-layout version byte
        assert!(DispatchPlan::from_bytes(&wrong_layout).is_none());
        assert!(DispatchPlan::from_bytes(b"junk").is_none());
    }

    #[test]
    fn mismatched_program_is_detected() {
        let p = mcr_lang::compile(HOT).unwrap();
        let other = mcr_lang::compile("fn main() { output(1); }").unwrap();
        let plan = DispatchPlan::compile(&p);
        assert!(!plan.matches(&other));
        assert!(DispatchPlan::compile(&other).matches(&other));
    }

    #[test]
    fn out_of_range_lookup_is_slow() {
        let p = mcr_lang::compile("fn main() { }").unwrap();
        let plan = DispatchPlan::compile(&p);
        assert_eq!(plan.op(FuncId(7), StmtId(0)), Op::Slow);
        assert_eq!(plan.op(FuncId(0), StmtId(999)), Op::Slow);
    }

    #[test]
    fn unit_roundtrip_is_bit_identical() {
        let p = mcr_lang::compile(HOT).unwrap();
        for func in &p.funcs {
            let unit = FunctionPlan::compile(func);
            let bytes = unit.to_bytes();
            assert_eq!(
                bytes,
                unit.to_bytes(),
                "unit serialization is deterministic"
            );
            let back = FunctionPlan::from_bytes(&bytes).expect("unit roundtrip");
            assert_eq!(back, unit);
            assert_eq!(back.to_bytes(), bytes);
            assert!(back.matches(func));
        }
    }

    #[test]
    fn assembled_units_equal_whole_program_compile() {
        let p = mcr_lang::compile(HOT).unwrap();
        // The fleet path: serialize each unit independently, rehydrate,
        // assemble. The result must be bit-identical to a direct compile.
        let units: Vec<FunctionPlan> = p
            .funcs
            .iter()
            .map(|f| FunctionPlan::from_bytes(&FunctionPlan::compile(f).to_bytes()).unwrap())
            .collect();
        let assembled = DispatchPlan::assemble(&units);
        let direct = DispatchPlan::compile(&p);
        assert_eq!(assembled, direct);
        assert_eq!(assembled.to_bytes(), direct.to_bytes());
    }

    #[test]
    fn editing_one_function_changes_only_its_unit() {
        let p1 = mcr_lang::compile(HOT).unwrap();
        let p2 = mcr_lang::compile(&HOT.replace("x = x + 1;", "x = x + 2;")).unwrap();
        let changed: Vec<usize> = p1
            .funcs
            .iter()
            .zip(&p2.funcs)
            .enumerate()
            .filter(|(_, (f1, f2))| {
                FunctionPlan::compile(f1).to_bytes() != FunctionPlan::compile(f2).to_bytes()
            })
            .map(|(i, _)| i)
            .collect();
        assert_eq!(changed, vec![0], "only `work` may recompile");
    }

    #[test]
    fn malformed_unit_bytes_are_rejected() {
        let p = mcr_lang::compile(HOT).unwrap();
        let bytes = FunctionPlan::compile(&p.funcs[0]).to_bytes();
        assert!(FunctionPlan::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        let mut wrong_layout = bytes.clone();
        wrong_layout[5] ^= 1; // opcode-layout version byte
        assert!(FunctionPlan::from_bytes(&wrong_layout).is_none());
        // A whole-plan blob is not a unit (magic differs).
        let whole = DispatchPlan::compile(&p).to_bytes();
        assert!(FunctionPlan::from_bytes(&whole).is_none());
        assert!(FunctionPlan::from_bytes(b"junk").is_none());
    }
}
