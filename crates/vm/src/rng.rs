//! A small deterministic PRNG (SplitMix64).
//!
//! Schedule reproducibility is load-bearing for this project: the *stress*
//! scheduler that plays the role of the multicore environment must replay
//! bit-identically from a seed, across platforms and library versions.
//! SplitMix64 is tiny, fast, and has well-understood statistical quality
//! for this purpose; depending on an external RNG crate would tie failing
//! schedules to that crate's version.

/// SplitMix64 pseudo-random number generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be nonzero).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Lemire-style rejection-free reduction is unnecessary here; the
        // modulo bias at these bounds (thread counts, percentages) is
        // negligible for scheduling purposes.
        self.next_u64() % bound
    }

    /// Uniform `i64` in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.next_below(span) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounded_values_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.next_below(5) < 5);
            let v = r.next_range(-3, 3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn reasonably_uniform() {
        let mut r = SplitMix64::new(99);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[r.next_below(4) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed: {counts:?}");
        }
    }
}
