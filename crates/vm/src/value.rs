//! Runtime values and identities.

use std::fmt;

/// Identifies a heap object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(pub u32);

/// Identifies a thread (its spawn order; `main` is thread 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A runtime value: a 64-bit integer or a (possibly null) pointer.
///
/// MiniCC is dynamically typed at the slot level, like memory in a core
/// dump: the same slot may hold an integer in one run and a pointer in
/// another. Dump comparison treats integers as primitives and pointers by
/// their null-ness (raw addresses are meaningless across runs — that is
/// exactly why the paper compares *reference paths*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Pointer to a heap object, or null.
    Ptr(Option<ObjId>),
}

impl Value {
    /// The null pointer.
    pub const NULL: Value = Value::Ptr(None);

    /// C-style truthiness: zero and null are false.
    pub fn truthy(self) -> bool {
        match self {
            Value::Int(v) => v != 0,
            Value::Ptr(p) => p.is_some(),
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(v),
            Value::Ptr(_) => None,
        }
    }

    /// The pointer payload, if this is a pointer.
    pub fn as_ptr(self) -> Option<Option<ObjId>> {
        match self {
            Value::Ptr(p) => Some(p),
            Value::Int(_) => None,
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::Int(0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Ptr(None) => write!(f, "null"),
            Value::Ptr(Some(o)) => write!(f, "&obj{}", o.0),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Int(v as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(-3).truthy());
        assert!(!Value::NULL.truthy());
        assert!(Value::Ptr(Some(ObjId(0))).truthy());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7).as_int(), Some(7));
        assert_eq!(Value::from(true), Value::Int(1));
        assert_eq!(Value::NULL.as_ptr(), Some(None));
        assert_eq!(Value::Int(1).as_ptr(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::NULL.to_string(), "null");
        assert_eq!(Value::Ptr(Some(ObjId(3))).to_string(), "&obj3");
    }
}
